"""Replay ordering guarantees and timeseries day-boundary edges."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.traffic.replay import iter_payloads, iter_wire_payloads
from repro.traffic.timeseries import adoption_curve, daily_flag_rate, daily_volume


# ----------------------------------------------------------------------
# replay: ordering and limit guarantees


class TestReplayOrdering:
    def test_payloads_preserve_dataset_row_order(self, small_dataset):
        subset = small_dataset.rows(0, 200)
        payloads = list(iter_payloads(subset))
        assert [p.session_id for p in payloads] == [
            str(sid) for sid in subset.session_ids
        ]
        for idx, payload in enumerate(payloads):
            assert payload.values == tuple(
                int(v) for v in subset.features[idx]
            )
            assert payload.user_agent == str(subset.user_agents[idx])

    def test_limit_truncates_without_reordering(self, small_dataset):
        full = [p.session_id for p in iter_payloads(small_dataset, limit=50)]
        prefix = [p.session_id for p in iter_payloads(small_dataset, limit=20)]
        assert full[:20] == prefix

    def test_limit_larger_than_dataset_is_safe(self, small_dataset):
        subset = small_dataset.rows(0, 10)
        assert len(list(iter_payloads(subset, limit=10_000))) == 10

    def test_limit_zero_yields_nothing(self, small_dataset):
        assert list(iter_payloads(small_dataset, limit=0)) == []

    def test_wire_payloads_align_with_payloads(self, small_dataset):
        subset = small_dataset.rows(0, 50)
        wires = list(iter_wire_payloads(subset))
        payloads = list(iter_payloads(subset))
        assert len(wires) == len(payloads)
        for wire, payload in zip(wires, payloads):
            body = json.loads(wire)
            assert body["sid"] == payload.session_id
            assert tuple(body["f"]) == payload.values

    def test_replay_is_deterministic(self, small_dataset):
        subset = small_dataset.rows(0, 100)
        assert list(iter_wire_payloads(subset)) == list(
            iter_wire_payloads(subset)
        )


# ----------------------------------------------------------------------
# timeseries: day-boundary edge cases


def _single_day_dataset(small_dataset):
    days = small_dataset.days.astype("datetime64[D]")
    first_day = np.unique(days)[0]
    return small_dataset.subset(days == first_day), str(first_day)


class TestTimeseriesDayBoundaries:
    def test_daily_volume_covers_every_session_once(self, small_dataset):
        volume = daily_volume(small_dataset)
        assert sum(count for _, count in volume) == len(small_dataset)
        days = [day for day, _ in volume]
        assert days == sorted(days)
        assert len(set(days)) == len(days)

    def test_single_day_dataset(self, small_dataset):
        subset, day = _single_day_dataset(small_dataset)
        volume = daily_volume(subset)
        assert volume == [(day, len(subset))]

    def test_daily_flag_rate_requires_matching_report(
        self, small_dataset, trained
    ):
        subset = small_dataset.rows(0, 500)
        report = trained.detect(subset)
        with pytest.raises(ValueError):
            daily_flag_rate(small_dataset, report)

    def test_daily_flag_rate_boundaries(self, small_dataset, trained):
        subset, _ = _single_day_dataset(small_dataset)
        report = trained.detect(subset)
        rates = daily_flag_rate(subset, report)
        assert len(rates) == 1
        day, rate, total = rates[0]
        assert total == len(subset)
        assert rate == pytest.approx(report.n_flagged / len(subset))
        assert 0.0 <= rate <= 1.0

    def test_adoption_curve_starts_at_first_seen(self, small_dataset):
        ua_key = str(small_dataset.ua_keys[0])
        curve = adoption_curve(small_dataset, ua_key)
        days = small_dataset.days.astype("datetime64[D]")
        matches = small_dataset.ua_keys == ua_key
        first_seen = str(days[matches].min())
        assert curve[0][0] == first_seen
        # No day before first_seen appears; shares are valid fractions.
        for day, share in curve:
            assert day >= first_seen
            assert 0.0 <= share <= 1.0

    def test_adoption_curve_window_is_exclusive_at_boundary(
        self, small_dataset
    ):
        ua_key = str(small_dataset.ua_keys[0])
        full = adoption_curve(small_dataset, ua_key)
        if len(full) < 2:
            pytest.skip("release active on a single day in this window")
        days = small_dataset.days.astype("datetime64[D]")
        matches = small_dataset.ua_keys == ua_key
        first_seen = days[matches].min()
        window = 1 + (
            np.datetime64(full[-1][0]) - first_seen
        ).astype(int)
        # window_days = N keeps days strictly within N days of launch:
        # the day at exactly +N is excluded (the ">= window_days" break).
        trimmed = adoption_curve(small_dataset, ua_key, window_days=int(window) - 1)
        assert trimmed == full[:-1] or len(trimmed) < len(full)
        all_days = adoption_curve(small_dataset, ua_key, window_days=int(window))
        assert all_days == full

    def test_adoption_curve_unknown_release_raises(self, small_dataset):
        with pytest.raises(ValueError):
            adoption_curve(small_dataset, "netscape-4")

    def test_adoption_curve_single_day_window(self, small_dataset):
        ua_key = str(small_dataset.ua_keys[0])
        curve = adoption_curve(small_dataset, ua_key, window_days=1)
        assert len(curve) == 1  # only the launch day itself
