"""Release-coverage intelligence: tracker bands, planner, infer policy."""

import io
import json
from datetime import date, timedelta

import pytest

from repro.browsers.releases import default_calendar
from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor, format_user_agent
from repro.core.config import PipelineConfig
from repro.core.pipeline import BrowserPolygraph
from repro.coverage import (
    CoverageConfig,
    CoverageTracker,
    RefreshPlanner,
    vendor_of,
)
from repro.fingerprint.collector import FingerprintCollector
from repro.fingerprint.script import CollectionScript
from repro.gauntlet.ledger import DIGEST_COLUMNS, TIMING_COLUMNS, DayLedger
from repro.service.api import CollectionApp
from repro.service.scoring import ScoringService


@pytest.fixture(scope="module")
def infer_pipeline(small_dataset):
    """Polygraph trained with the interim nearest-release policy."""
    config = PipelineConfig(unknown_ua_policy="infer")
    return BrowserPolygraph(config).fit(small_dataset)


# The training window tops out at version 114 for all three vendors and
# carries the legacy EdgeHTML releases (edge-17/18/19); the infer tests
# below assert against that shape.
def _max_known(pipeline, vendor):
    versions = [
        int(key.rsplit("-", 1)[1])
        for key in pipeline.cluster_model.ua_to_cluster
        if key.startswith(f"{vendor}-")
    ]
    return max(versions)


class TestVendorOf:
    def test_in_scope_vendors(self):
        assert vendor_of("chrome-118") == "chrome"
        assert vendor_of("edge-79") == "edge"
        assert vendor_of("firefox-119") == "firefox"

    def test_everything_else_is_other(self):
        assert vendor_of("safari-16") == "other"
        assert vendor_of("<unparseable>") == "other"


class TestCoverageTracker:
    def _tracker(self, **overrides):
        config = dict(
            window=50, min_observations=10, baseline_rate=0.05,
            adoption_allowance=0.25, adoption_days=7,
        )
        config.update(overrides)
        return CoverageTracker(config=CoverageConfig(**config))

    def test_observe_classifies_against_table(self):
        tracker = self._tracker()
        tracker.set_known_keys(["chrome-117"], generation=3)
        assert tracker.observe("chrome-117") is True
        assert tracker.observe("chrome-118") is False
        assert tracker.unknown_rate("chrome") == 0.5
        assert tracker.known_release_count == 1

    def test_observe_many_counts_unknowns(self):
        tracker = self._tracker()
        tracker.set_known_keys(["chrome-117", "firefox-118"])
        unknown = tracker.observe_many(
            ["chrome-117", "chrome-118", "firefox-118", "safari-16"]
        )
        assert unknown == 2
        assert tracker.unknown_rate("other") == 1.0

    def test_window_eviction_keeps_rate_current(self):
        tracker = self._tracker(window=10, min_observations=1)
        tracker.set_known_keys(["chrome-117"])
        for _ in range(10):
            tracker.observe("chrome-118")
        assert tracker.unknown_rate("chrome") == 1.0
        for _ in range(10):
            tracker.observe("chrome-117")
        # The unknown observations have been evicted from the window.
        assert tracker.unknown_rate("chrome") == 0.0

    def test_retrain_swaps_table(self):
        tracker = self._tracker()
        tracker.set_known_keys(["chrome-117"], generation=1)
        assert not tracker.is_known("chrome-118")
        tracker.set_known_keys(["chrome-117", "chrome-118"], generation=2)
        assert tracker.is_known("chrome-118")
        assert tracker.status_dict()["model_generation"] == 2

    def test_band_widens_inside_adoption_window(self):
        calendar = default_calendar()
        tracker = CoverageTracker(
            calendar=calendar,
            config=CoverageConfig(
                window=50, min_observations=10, baseline_rate=0.05,
                adoption_allowance=0.25, adoption_days=7,
            ),
        )
        # chrome-118 ships 2023-10-10 and is absent from the table.
        tracker.set_known_keys(["chrome-117"])
        shipped = date(2023, 10, 10)
        band = tracker.expected_band("chrome", day=shipped)
        assert band.adopting and band.high == pytest.approx(0.30)
        # Once the adoption window passes the band tightens back.
        later = tracker.expected_band(
            "chrome", day=shipped + timedelta(days=7)
        )
        assert later.high == pytest.approx(0.05)
        # Covering the release closes the window immediately.
        tracker.set_known_keys(["chrome-117", "chrome-118"])
        covered = tracker.expected_band("chrome", day=shipped)
        assert not covered.adopting

    def test_out_of_band_requires_warmup(self):
        tracker = self._tracker(min_observations=10)
        tracker.set_known_keys(["chrome-117"])
        day = date(2024, 3, 1)  # far from any calendar release
        for _ in range(9):
            tracker.observe("chrome-999", day=day)
        assert not tracker.out_of_band("chrome", day=day)
        tracker.observe("chrome-999", day=day)
        assert tracker.out_of_band("chrome", day=day)

    def test_adoption_spike_is_not_out_of_band(self):
        tracker = self._tracker(min_observations=5, adoption_allowance=1.0)
        tracker.set_known_keys(["chrome-117"])
        shipped = date(2023, 10, 10)
        for _ in range(10):
            tracker.observe("chrome-118", day=shipped)
        # 100% unknown, but chrome-118 shipped today: adoption, not attack.
        assert not tracker.out_of_band("chrome", day=shipped)

    def test_status_and_metrics_snapshot(self):
        tracker = self._tracker()
        tracker.set_known_keys(["chrome-117"], generation=5)
        day = date(2024, 3, 1)
        tracker.observe("chrome-117", day=day)
        tracker.observe("chrome-999", day=day)
        status = tracker.status_dict()
        assert status["day"] == "2024-03-01"
        assert status["vendors"]["chrome"]["observed"] == 2
        assert status["vendors"]["chrome"]["unknown"] == 1
        assert status["top_unknown"][0]["ua_key"] == "chrome-999"
        lines = tracker.metrics_lines()
        assert "polygraph_coverage_known_releases 1" in lines
        assert "polygraph_coverage_generation 5" in lines
        assert 'polygraph_coverage_unknown_total{vendor="chrome"} 1' in lines


class TestRefreshPlanner:
    def _pair(self, known, **config):
        tracker = CoverageTracker(
            config=CoverageConfig(
                window=50, min_observations=5, baseline_rate=0.05,
                adoption_allowance=0.25, adoption_days=7,
            )
        )
        tracker.set_known_keys(known)
        return tracker, RefreshPlanner(tracker, **config)

    def test_first_day_release_triggers_forced_retrain(self):
        _, planner = self._pair(["chrome-117"])
        decision = planner.decide(date(2023, 10, 10))  # chrome-118 ships
        assert decision.triggered and decision.retrain and decision.force
        assert "chrome-118" in decision.reason
        assert decision.vendors == ("chrome",)

    def test_covered_release_day_is_quiet(self):
        calendar = default_calendar()
        shipped = [
            r.key()
            for r in calendar.new_releases_between(
                date(2023, 10, 10), date(2023, 10, 11)
            )
        ]
        _, planner = self._pair(["chrome-117"] + shipped)
        assert not planner.decide(date(2023, 10, 10)).triggered

    def test_band_breach_triggers(self):
        tracker, planner = self._pair(["chrome-117"])
        day = date(2024, 3, 1)  # no release in sight
        for _ in range(10):
            tracker.observe("chrome-999", day=day)
        decision = planner.decide(day)
        assert decision.triggered and decision.force
        assert "out of band" in decision.reason
        assert decision.vendors == ("chrome",)

    def test_cooldown_suppresses_repeat_triggers(self):
        tracker, planner = self._pair(["chrome-117"], cooldown_days=3)
        day = date(2024, 3, 1)
        for _ in range(10):
            tracker.observe("chrome-999", day=day)
        assert planner.decide(day).triggered
        planner.note_retrain(day)
        assert not planner.decide(day + timedelta(days=2)).triggered
        assert planner.decide(day + timedelta(days=3)).triggered

    def test_out_of_scope_vendor_never_asks_for_retrain(self):
        # "other" has no calendar: sustained unknown traffic there is out
        # of band, but first-day triggers can only name real vendors.
        tracker, planner = self._pair(["chrome-117"])
        day = date(2024, 3, 1)
        for _ in range(10):
            tracker.observe("safari-16", day=day)
        decision = planner.decide(day)
        assert decision.triggered
        assert decision.vendors == ("other",)


class TestInferPolicy:
    def test_unknown_release_maps_to_nearest_neighbour(self, infer_pipeline):
        top = _max_known(infer_pipeline, "chrome")
        profile = BrowserProfile(Vendor.CHROME, top)
        vector = FingerprintCollector().collect(profile.environment())
        result = infer_pipeline.detect_session(vector, f"chrome-{top + 1}")
        assert result.inferred_release == f"chrome-{top}"
        assert result.inferred_distance == 1
        assert not result.known_ua
        # A genuine current-engine fingerprint matches the neighbour's
        # cluster, so the interim verdict is clean.
        assert not result.flagged

    def test_edgehtml_never_borrows_across_the_engine_boundary(
        self, infer_pipeline
    ):
        detector = infer_pipeline.detection_snapshot()[1]
        # edge-78 is EdgeHTML; edge-79 (Chromium) is numerically closer
        # than any legacy release, but the neighbour must stay in-engine.
        result = detector._infer("edge-78", predicted=0)
        assert result is not None
        assert result.inferred_release == "edge-19"
        assert result.inferred_distance == 59

    def test_chromium_edge_stays_chromium(self, infer_pipeline):
        detector = infer_pipeline.detection_snapshot()[1]
        result = detector._infer("edge-80", predicted=0)
        assert result.inferred_release == "edge-79"
        assert result.inferred_distance == 1

    def test_version_ties_break_toward_older(self, infer_pipeline):
        # chrome-76 and chrome-78 are known, chrome-77 is not.
        table = infer_pipeline.cluster_model.ua_to_cluster
        assert "chrome-76" in table and "chrome-78" in table
        assert "chrome-77" not in table
        detector = infer_pipeline.detection_snapshot()[1]
        result = detector._infer("chrome-77", predicted=0)
        assert result.inferred_release == "chrome-76"

    def test_unparseable_key_falls_back_to_ignore(self, infer_pipeline):
        profile = BrowserProfile(Vendor.CHROME, 112)
        vector = FingerprintCollector().collect(profile.environment())
        result = infer_pipeline.detect_session(vector, "definitely-not-a-ua")
        assert not result.flagged
        assert result.expected_cluster is None
        assert result.inferred_release is None

    def test_known_release_untouched_by_infer(self, infer_pipeline):
        profile = BrowserProfile(Vendor.CHROME, 112)
        vector = FingerprintCollector().collect(profile.environment())
        result = infer_pipeline.detect_session(vector, "chrome-112")
        assert result.known_ua
        assert result.inferred_release is None


class TestServiceIntegration:
    def _wire(self, version, session_id):
        ua = format_user_agent(Vendor.CHROME, version)
        profile = BrowserProfile(Vendor.CHROME, version)
        return CollectionScript().run(
            profile.environment(), ua, session_id
        ).to_wire()

    def test_verdict_carries_infer_provenance(self, infer_pipeline):
        service = ScoringService(infer_pipeline)
        top = _max_known(infer_pipeline, "chrome")
        verdict = service.score_wire(self._wire(top + 1, "cov-1"))
        assert verdict.accepted
        assert verdict.inferred_release == f"chrome-{top}"
        assert verdict.inferred_distance == 1
        known = service.score_wire(self._wire(112, "cov-2"))
        assert known.inferred_release is None

    def test_unknown_ua_counter_without_coverage(self, infer_pipeline):
        service = ScoringService(infer_pipeline)
        top = _max_known(infer_pipeline, "chrome")
        service.score_wire(self._wire(top + 1, "cov-3"))
        service.score_wire(self._wire(112, "cov-4"))
        assert service.unknown_ua_counts == {"chrome": 1}

    def test_attach_coverage_feeds_tracker(self, infer_pipeline):
        service = ScoringService(infer_pipeline)
        tracker = CoverageTracker(
            config=CoverageConfig(window=50, min_observations=5)
        )
        service.attach_coverage(tracker)
        assert tracker.known_release_count == len(
            infer_pipeline.cluster_model.ua_to_cluster
        )
        top = _max_known(infer_pipeline, "chrome")
        service.score_wire(self._wire(top + 1, "cov-5"))
        status = tracker.status_dict()
        assert status["vendors"]["chrome"]["unknown"] == 1

    def test_coverage_endpoint(self, infer_pipeline):
        service = ScoringService(infer_pipeline)
        bare = CollectionApp(service)
        status, _, body = _request(bare, "GET", "/coverage")
        assert status == "404 Not Found"
        tracker = CoverageTracker()
        service.attach_coverage(tracker)
        app = CollectionApp(service, coverage=tracker)
        status, _, body = _request(app, "GET", "/coverage")
        assert status == "200 OK"
        document = json.loads(body)
        assert set(document["vendors"]) == {
            "chrome", "edge", "firefox", "other"
        }

    def test_metrics_expose_unknown_ua_and_coverage(self, infer_pipeline):
        service = ScoringService(infer_pipeline)
        tracker = CoverageTracker()
        service.attach_coverage(tracker)
        app = CollectionApp(service, coverage=tracker)
        top = _max_known(infer_pipeline, "chrome")
        _request(app, "POST", "/collect", self._wire(top + 1, "cov-6"))
        status, _, body = _request(app, "GET", "/metrics")
        assert status == "200 OK"
        text = body.decode("utf-8")
        assert 'polygraph_unknown_ua_total{vendor="chrome"} 1' in text
        assert 'polygraph_coverage_unknown_total{vendor="chrome"} 1' in text

    def test_cluster_metrics_aggregate_unknown_ua(self, infer_pipeline):
        from repro.cluster import ClusterConfig, ClusterRouter, ShardSupervisor

        top = _max_known(infer_pipeline, "chrome")
        with ShardSupervisor.from_polygraph(
            infer_pipeline,
            config=ClusterConfig(n_shards=2, heartbeat_interval_s=5.0),
        ) as supervisor:
            router = ClusterRouter(supervisor)
            router.score_many(
                [self._wire(top + 1, "cov-cl-1"), self._wire(112, "cov-cl-2")]
            )
            assert supervisor.unknown_ua_counts() == {"chrome": 1}
            text = "\n".join(router.runtime_metrics_lines())
            assert 'polygraph_unknown_ua_total{vendor="chrome"} 1' in text


def _ledger_row(**overrides):
    row = {name: 0 for name in DIGEST_COLUMNS}
    row.update({name: None for name in TIMING_COLUMNS})
    row.update(
        day="2023-10-10", new_release_keys=[], rollout_status=None,
        rollout_stage=None, staged_version=None, serving_version=1,
        stock_age_days=0.0, coverage_reason=None,
    )
    row.update(overrides)
    return row


class TestLedgerBlindWindow:
    def test_summary_blind_window_metrics(self):
        ledger = DayLedger()
        ledger.record(**_ledger_row(
            day="2023-10-10", new_releases=1, unknown_sessions=10,
            unknown_fraud=4, unknown_fraud_flagged=3, unknown_legit=6,
            unknown_legit_flagged=1, coverage_trigger=1,
            coverage_reason="calendar first-day retrain (chrome-118)",
        ))
        ledger.record(**_ledger_row(day="2023-10-11", retrained=1))
        summary = ledger.summary()
        assert summary["unknown_ua_sessions"] == 10
        assert summary["unknown_ua_detection_rate"] == 0.75
        assert summary["unknown_ua_false_positive_rate"] == pytest.approx(
            1 / 6, abs=1e-4
        )
        assert summary["coverage_retrain_triggers"] == 1
        assert summary["mean_retrain_lag_days"] == 1.0
        assert summary["max_retrain_lag_days"] == 1

    def test_retrain_lag_right_censored(self):
        ledger = DayLedger()
        ledger.record(**_ledger_row(day="d0", new_releases=1))
        ledger.record(**_ledger_row(day="d1"))
        ledger.record(**_ledger_row(day="d2", retrained=1))
        ledger.record(**_ledger_row(day="d3", new_releases=1))
        ledger.record(**_ledger_row(day="d4"))
        assert ledger.retrain_lags() == [2, 2]  # second is censored

    def test_from_cells_skips_aggregate_and_tolerates_missing(self):
        ledger = DayLedger()
        ledger.record(**_ledger_row(day="2023-10-10", n_sessions=5))
        cells = ledger.to_cells()
        # Old artifacts lack the blind-window columns entirely.
        for cell in cells:
            for name in ("unknown_sessions", "coverage_trigger"):
                del cell[name]
        cells.append({"cell": "aggregate", "sessions": 5})
        rebuilt = DayLedger.from_cells(cells)
        assert len(rebuilt) == 1
        assert rebuilt.summary()["unknown_ua_sessions"] == 0
        assert rebuilt.summary()["unknown_ua_detection_rate"] is None


def _request(app, method, path, body=b""):
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    from wsgiref.util import setup_testing_defaults

    environ = {}
    setup_testing_defaults(environ)
    environ.update(
        {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "CONTENT_LENGTH": str(len(body)),
            "wsgi.input": io.BytesIO(body),
        }
    )
    chunks = app(environ, start_response)
    return captured["status"], captured["headers"], b"".join(chunks)
