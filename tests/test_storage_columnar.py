"""Columnar session-store format: migration, manifest, mixed reads."""

import json
from datetime import date

import numpy as np
import pytest

from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor
from repro.fingerprint.script import CollectionScript, FingerprintPayload
from repro.service import columnar
from repro.service.storage import SessionStore


def _payload(session_id, vendor=Vendor.CHROME, version=112, globs=()):
    profile = BrowserProfile(vendor, version)
    payload = CollectionScript().run(
        profile.environment(), profile.user_agent(), session_id
    )
    if globs:
        payload = FingerprintPayload(
            session_id=payload.session_id,
            user_agent=payload.user_agent,
            values=payload.values,
            service_time_ms=payload.service_time_ms,
            suspicious_globals=tuple(globs),
        )
    return payload


def _fill(store, n, prefix="s", start_day=date(2023, 5, 1)):
    store.append_many(
        (
            _payload(f"{prefix}-{i}", version=110 + (i % 3)),
            date(start_day.year, start_day.month, 1 + (i % 7)),
        )
        for i in range(n)
    )
    store.flush()


def _dataset_columns(dataset):
    return {
        "features": dataset.features,
        "ua_keys": np.asarray(dataset.ua_keys, dtype=object),
        "user_agents": np.asarray(dataset.user_agents, dtype=object),
        "session_ids": np.asarray(dataset.session_ids, dtype=object),
        "days": dataset.days.astype("datetime64[D]"),
    }


class TestMigration:
    def test_round_trip_equals_jsonl_export(self, tmp_path):
        store = SessionStore(tmp_path, max_records_per_segment=4)
        _fill(store, 11)
        before = _dataset_columns(store.export_dataset())
        records_before = list(store.iter_records())

        converted = store.migrate()
        assert all(path.suffix == ".npz" for path in converted)
        assert not list(tmp_path.glob("*.jsonl"))

        after = _dataset_columns(store.export_dataset())
        for name in before:
            assert np.array_equal(before[name], after[name]), name
        assert list(store.iter_records()) == records_before

    def test_suspicious_globals_survive_migration(self, tmp_path):
        store = SessionStore(tmp_path)
        store.append(_payload("g-1", globs=("window.awb", "window.mimic")))
        store.append(_payload("g-2"))
        store.migrate()
        records = list(store.iter_records())
        assert records[0]["g"] == ["window.awb", "window.mimic"]
        assert "g" not in records[1]

    def test_migrate_twice_is_noop(self, tmp_path):
        store = SessionStore(tmp_path)
        _fill(store, 3)
        assert len(store.migrate()) == 1
        assert store.migrate() == []
        assert len(store) == 3

    def test_mixed_store_exports_in_order(self, tmp_path):
        store = SessionStore(tmp_path, max_records_per_segment=5)
        _fill(store, 5, prefix="old")
        store.migrate()
        store.append_many(
            ((_payload(f"new-{i}"), date(2023, 6, 1)) for i in range(3))
        )
        dataset = store.export_dataset()
        assert len(dataset) == 8
        sids = [str(s) for s in dataset.session_ids]
        assert sids[:5] == [f"old-{i}" for i in range(5)]
        assert sids[5:] == [f"new-{i}" for i in range(3)]

    def test_appends_after_migrate_open_new_jsonl(self, tmp_path):
        store = SessionStore(tmp_path)
        _fill(store, 2)
        store.migrate()
        store.append(_payload("later"))
        suffixes = sorted(p.suffix for p in store.segments())
        assert suffixes == [".jsonl", ".npz"]


class TestManifest:
    def test_reopen_uses_manifest_not_rescan(self, tmp_path, monkeypatch):
        store = SessionStore(tmp_path, max_records_per_segment=10)
        _fill(store, 6)
        monkeypatch.setattr(
            SessionStore,
            "_scan_jsonl",
            staticmethod(lambda *a: pytest.fail("reopen rescanned a segment")),
        )
        reopened = SessionStore(tmp_path, max_records_per_segment=10)
        assert len(reopened) == 6

    def test_tail_scan_recovers_unflushed_appends(self, tmp_path):
        store = SessionStore(tmp_path, max_records_per_segment=100)
        _fill(store, 4)
        # Appends after the last flush are only in the file, not the
        # manifest — a crash, in effect.
        store.append(_payload("tail-1"), day=date(2023, 7, 9))
        store.append(_payload("tail-2"), day=date(2023, 7, 9))
        reopened = SessionStore(tmp_path, max_records_per_segment=100)
        assert len(reopened) == 6
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        (entry,) = manifest["segments"]
        assert entry["records"] == 6
        assert entry["max_day"] == "2023-07-09"

    def test_lost_manifest_rebuilt_from_disk(self, tmp_path):
        store = SessionStore(tmp_path, max_records_per_segment=3)
        _fill(store, 7)
        store.migrate()
        (tmp_path / "manifest.json").unlink()
        reopened = SessionStore(tmp_path)
        assert len(reopened) == 7
        assert len(reopened.export_dataset()) == 7

    def test_manifest_tracks_day_ranges(self, tmp_path):
        store = SessionStore(tmp_path)
        store.append(_payload("a"), day=date(2023, 5, 3))
        store.append(_payload("b"), day=date(2023, 5, 1))
        store.append(_payload("c"), day=date(2023, 5, 9))
        store.flush()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        (entry,) = manifest["segments"]
        assert entry["min_day"] == "2023-05-01"
        assert entry["max_day"] == "2023-05-09"
        assert entry["format"] == "jsonl"


class TestColumnarSegments:
    def test_mmap_and_load_agree(self, tmp_path):
        store = SessionStore(tmp_path)
        _fill(store, 9)
        (path,) = store.migrate()
        mapped = columnar.read_segment(path, mmap=True)
        loaded = columnar.read_segment(path, mmap=False)
        for name in columnar.COLUMNS:
            assert np.array_equal(mapped[name], loaded[name]), name
        assert isinstance(mapped["f"], np.memmap)

    def test_segment_records_reads_header_only(self, tmp_path):
        store = SessionStore(tmp_path)
        _fill(store, 5)
        (path,) = store.migrate()
        assert columnar.segment_records(path) == 5

    def test_export_is_zero_copy_for_single_segment(self, tmp_path):
        store = SessionStore(tmp_path)
        _fill(store, 6)
        store.migrate()
        dataset = SessionStore(tmp_path).export_dataset()
        assert isinstance(dataset.features, np.memmap)

    def test_precomputed_ua_keys_match_parser(self, tmp_path):
        store = SessionStore(tmp_path)
        _fill(store, 6)
        jsonl_keys = list(store.export_dataset().ua_keys)
        store.migrate()
        columnar_keys = [str(k) for k in store.export_dataset().ua_keys]
        assert columnar_keys == jsonl_keys
