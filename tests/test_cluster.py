"""Sharded serving cluster: ring, router, supervisor, distribution.

The contract under test is the one the ISSUE pins down: placement is
deterministic and minimal-movement, a killed shard loses no requests,
hedged/re-routed requests are byte-identical to single-shard scoring,
and a rollout flip at quorum never mixes generations for one session.
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterRouter,
    ModelDistributor,
    RouterConfig,
    ShardError,
    ShardSupervisor,
)
from repro.cluster.ring import HashRing, wire_routing_key
from repro.core.pipeline import BrowserPolygraph
from repro.core.retraining import ModelRegistry
from repro.runtime.pool import OVERLOADED_REASON
from repro.service.api import CollectionApp
from repro.service.scoring import ScoringService
from repro.traffic.generator import TrafficConfig, TrafficSimulator
from repro.traffic.replay import iter_wire_payloads


def _essence(verdict):
    """Every verdict field except latency (the only legitimate delta)."""
    return (
        verdict.session_id,
        verdict.accepted,
        verdict.flagged,
        verdict.risk_factor,
        verdict.reject_reason,
    )


@pytest.fixture(scope="module")
def wires(small_dataset):
    return [w for _, w in zip(range(600), iter_wire_payloads(small_dataset))]


@pytest.fixture(scope="module")
def alt_trained():
    """A second model whose verdicts can differ from ``trained``'s."""
    dataset = TrafficSimulator(TrafficConfig(seed=23).scaled(4_000)).generate()
    return BrowserPolygraph().fit(dataset)


# ----------------------------------------------------------------------
# ring


class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        first, second = HashRing(), HashRing()
        for ring in (first, second):
            for node in ("s0", "s1", "s2", "s3"):
                ring.add(node)
        keys = [f"sess-{i}".encode() for i in range(500)]
        assert [first.node_for(k) for k in keys] == [
            second.node_for(k) for k in keys
        ]

    def test_remove_moves_only_the_removed_nodes_keys(self):
        ring = HashRing()
        for node in ("s0", "s1", "s2", "s3"):
            ring.add(node)
        keys = [f"sess-{i}".encode() for i in range(2_000)]
        before = {k: ring.node_for(k) for k in keys}
        ring.remove("s2")
        for key, owner in before.items():
            if owner == "s2":
                assert ring.node_for(key) != "s2"
            else:
                assert ring.node_for(key) == owner

    def test_readd_restores_previous_placement(self):
        ring = HashRing()
        for node in ("s0", "s1", "s2"):
            ring.add(node)
        keys = [f"sess-{i}".encode() for i in range(500)]
        before = [ring.node_for(k) for k in keys]
        ring.remove("s1")
        ring.add("s1")
        assert [ring.node_for(k) for k in keys] == before

    def test_preference_is_the_failover_order(self):
        ring = HashRing()
        for node in ("s0", "s1", "s2", "s3"):
            ring.add(node)
        key = b"sess-42"
        order = ring.preference(key)
        assert sorted(order) == ["s0", "s1", "s2", "s3"]
        assert order[0] == ring.node_for(key)
        ring.remove(order[0])
        assert ring.node_for(key) == order[1]

    def test_spread_is_roughly_balanced(self):
        ring = HashRing(vnodes=64)
        for node in ("s0", "s1", "s2", "s3"):
            ring.add(node)
        keys = [f"sess-{i}".encode() for i in range(4_000)]
        counts = ring.spread(keys)
        assert sum(counts.values()) == len(keys)
        for node, count in counts.items():
            assert count > len(keys) * 0.10, (node, counts)

    def test_epoch_bumps_only_on_membership_change(self):
        ring = HashRing()
        ring.add("s0")
        epoch = ring.epoch
        ring.add("s0")  # idempotent: no change, no bump
        assert ring.epoch == epoch
        ring.remove("s0")
        assert ring.epoch == epoch + 1
        ring.remove("s0")
        assert ring.epoch == epoch + 1

    def test_empty_ring_has_no_owner(self):
        ring = HashRing()
        assert ring.node_for(b"anything") is None
        assert ring.preference(b"anything") == []


class TestWireRoutingKey:
    WIRE = b'{"sid":"sess-1","ua":"Mozilla/5.0","f":[1,2,3]}'

    def test_session_affinity_extracts_the_sid(self):
        assert wire_routing_key(self.WIRE, "session") == b"sess-1"

    def test_fingerprint_affinity_is_sid_independent(self):
        other = self.WIRE.replace(b"sess-1", b"sess-2")
        assert wire_routing_key(self.WIRE, "fingerprint") == wire_routing_key(
            other, "fingerprint"
        )
        assert wire_routing_key(self.WIRE, "session") != wire_routing_key(
            other, "session"
        )

    def test_malformed_wire_falls_back_to_whole_payload(self):
        assert wire_routing_key(b"not json at all") == b"not json at all"


# ----------------------------------------------------------------------
# cluster scoring


class TestClusterScoring:
    def test_cluster_verdicts_match_the_reference_service(self, trained, wires):
        reference = ScoringService(trained)
        expected = [_essence(reference.score_wire(w)) for w in wires]
        with ShardSupervisor.from_polygraph(
            trained, config=ClusterConfig(n_shards=3, heartbeat_interval_s=5.0)
        ) as supervisor:
            router = ClusterRouter(supervisor)
            verdicts = router.score_many(wires)
            assert [_essence(v) for v in verdicts] == expected
            assert router.scored_count == sum(1 for v in verdicts if v.accepted)

    def test_killed_shard_loses_no_requests(self, trained, wires):
        reference = ScoringService(trained)
        expected = [_essence(reference.score_wire(w)) for w in wires]
        supervisor = ShardSupervisor.from_polygraph(
            trained, config=ClusterConfig(n_shards=2, heartbeat_interval_s=0.05)
        )
        router = ClusterRouter(supervisor).start()
        try:
            half = len(wires) // 2
            first = router.score_many(wires[:half])
            supervisor.kill("s0")
            second = router.score_many(wires[half:])
            verdicts = first + second
            assert len(verdicts) == len(wires)
            assert not any(
                v is None or v.reject_reason == OVERLOADED_REASON
                for v in verdicts
            )
            assert [_essence(v) for v in verdicts] == expected
            deadline = time.time() + 10.0
            while time.time() < deadline and supervisor.healthy_count < 2:
                time.sleep(0.02)
            assert supervisor.healthy_count == 2
            assert supervisor.restarts("s0") == 1
        finally:
            router.shutdown()

    def test_hedged_requests_are_byte_identical(self, trained, wires):
        sample = wires[:150]
        reference = ScoringService(trained)
        expected = [_essence(reference.score_wire(w)) for w in sample]
        with ShardSupervisor.from_polygraph(
            trained, config=ClusterConfig(n_shards=2, heartbeat_interval_s=5.0)
        ) as supervisor:
            router = ClusterRouter(
                supervisor, RouterConfig(hedge_after_ms=0.0)
            )
            verdicts = [router.score_wire(w) for w in sample]
            assert [_essence(v) for v in verdicts] == expected
            assert router.hedged_total == len(sample)

    def test_fingerprint_affinity_matches_session_affinity(self, trained, wires):
        sample = wires[:200]
        outcomes = []
        for affinity in ("session", "fingerprint"):
            with ShardSupervisor.from_polygraph(
                trained,
                config=ClusterConfig(n_shards=3, heartbeat_interval_s=5.0),
            ) as supervisor:
                router = ClusterRouter(supervisor, RouterConfig(affinity=affinity))
                outcomes.append(
                    [_essence(v) for v in router.score_many(sample)]
                )
        assert outcomes[0] == outcomes[1]

    def test_rejects_are_aggregated_like_a_validator(self, trained):
        with ShardSupervisor.from_polygraph(
            trained, config=ClusterConfig(n_shards=2, heartbeat_interval_s=5.0)
        ) as supervisor:
            router = ClusterRouter(supervisor)
            verdict = router.score_wire(b"\x00 not json")
            assert not verdict.accepted
            quarantine = router.validator.quarantine
            assert quarantine.total_rejects == 1
            counts = quarantine.counts()
            assert {reason.value for reason in counts} == {"malformed"}


class TestProcessBackend:
    def test_process_shards_score_and_recover(self, trained, wires):
        sample = wires[:60]
        reference = ScoringService(trained)
        expected = [_essence(reference.score_wire(w)) for w in sample]
        supervisor = ShardSupervisor.from_polygraph(
            trained,
            config=ClusterConfig(
                n_shards=2, backend="process", heartbeat_interval_s=0.1
            ),
        )
        router = ClusterRouter(supervisor).start()
        try:
            verdicts = router.score_many(sample)
            assert [_essence(v) for v in verdicts] == expected
            status = supervisor.shards["s0"].ping()
            assert status.model_version == 1
            supervisor.kill("s1")
            with pytest.raises(ShardError):
                supervisor.shards["s1"].ping()
            deadline = time.time() + 15.0
            while time.time() < deadline and supervisor.healthy_count < 2:
                time.sleep(0.05)
            assert supervisor.healthy_count == 2
        finally:
            router.shutdown()


# ----------------------------------------------------------------------
# replicated distribution


class TestDistribution:
    @pytest.fixture()
    def registry(self, tmp_path, trained, alt_trained):
        from datetime import date

        registry = ModelRegistry(tmp_path / "registry")
        registry.promote(trained, date(2023, 7, 1), "bootstrap")
        registry.stage_candidate(alt_trained, date(2023, 8, 1), "retrain")
        return registry

    def test_quorum_flip_keeps_lagging_shard_on_old_generation(
        self, registry, wires
    ):
        supervisor = ShardSupervisor.from_registry(
            registry, config=ClusterConfig(n_shards=3, heartbeat_interval_s=5.0)
        )
        router = ClusterRouter(
            supervisor, RouterConfig(hedge_after_ms=0.0)
        ).start()
        try:
            distributor = ModelDistributor(supervisor, registry, quorum=2)
            assert supervisor.serving_version == 1

            # Wedge one shard so the push can only reach a quorum.
            blocked = supervisor.shards["s1"]
            original_install = blocked.install
            blocked.install = lambda *a, **k: (_ for _ in ()).throw(
                ShardError("install blocked")
            )
            report = distributor.publish(2)
            assert report.flipped
            assert report.serving_version == 2
            assert report.installed == ["s0", "s2"]
            assert set(report.failed) == {"s1"}
            assert not report.converged
            assert distributor.lagging_shards() == ["s1"]
            # The laggard serves its old generation whole — never a mix.
            assert blocked.model_version == 1

            # Sessions the laggard owns are answered by it alone: with
            # hedging forced on, no hedge may cross generations.
            owned = [
                w
                for w in wires
                if supervisor.ring.node_for(wire_routing_key(w)) == "s1"
            ][:25]
            assert owned, "expected some sessions routed to s1"
            hedges_before = router.hedged_total
            verdicts = [router.score_wire(w) for w in owned]
            assert all(v.accepted for v in verdicts)
            assert router.hedged_total == hedges_before

            # Same-version replicas may still hedge for each other.
            other = [
                w
                for w in wires
                if supervisor.ring.node_for(wire_routing_key(w)) != "s1"
            ][:10]
            router.score_wire(other[0])
            assert router.hedged_total > hedges_before

            # Unblock and converge: the retry brings the laggard over.
            blocked.install = original_install
            retried = distributor.retry_lagging()
            assert retried.converged
            assert distributor.lagging_shards() == []
            assert supervisor.shard_versions() == {"s0": 2, "s1": 2, "s2": 2}
        finally:
            router.shutdown()

    def test_digest_mismatch_refuses_the_replica(self, registry, tmp_path):
        supervisor = ShardSupervisor.from_registry(
            registry, config=ClusterConfig(n_shards=2, heartbeat_interval_s=5.0)
        ).start()
        try:
            entry = [e for e in registry.versions() if e["version"] == 2][0]
            path = registry.root / entry["path"]
            shard = supervisor.shards["s0"]
            with pytest.raises(ShardError):
                shard.install(path, "0" * 64, 2)
            assert shard.model_version == 1
        finally:
            supervisor.shutdown()

    def test_quorum_bounds_are_validated(self, registry):
        supervisor = ShardSupervisor.from_registry(
            registry, config=ClusterConfig(n_shards=2, heartbeat_interval_s=5.0)
        )
        with pytest.raises(ValueError):
            ModelDistributor(supervisor, registry, quorum=3)
        with pytest.raises(ValueError):
            ModelDistributor(supervisor, registry, quorum=0)
        supervisor.shutdown()


# ----------------------------------------------------------------------
# HTTP surface


def _wsgi(app, method, path, body=b""):
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(body)),
        "wsgi.input": io.BytesIO(body),
    }
    chunks = app(environ, start_response)
    return captured["status"], captured["headers"], b"".join(chunks)


class TestClusterEndpoint:
    def test_cluster_endpoint_reports_topology(self, trained, wires):
        with ShardSupervisor.from_polygraph(
            trained, config=ClusterConfig(n_shards=2, heartbeat_interval_s=5.0)
        ) as supervisor:
            router = ClusterRouter(supervisor)
            router.score_many(wires[:50])
            app = CollectionApp(router)
            status, _, body = _wsgi(app, "GET", "/cluster")
            assert status == "200 OK"
            document = json.loads(body)
            assert document["n_shards"] == 2
            assert document["healthy_shards"] == 2
            assert len(document["shards"]) == 2
            assert document["router"]["requests_total"] == 50

            status, _, body = _wsgi(app, "GET", "/metrics")
            assert status == "200 OK"
            text = body.decode()
            assert "polygraph_cluster_shards 2" in text
            assert 'polygraph_cluster_shard_healthy{shard="s0"} 1' in text

            status, _, body = _wsgi(app, "GET", "/health")
            assert status == "200 OK"
            assert json.loads(body)["status"] == "ok"

    def test_cluster_endpoint_degrades_without_a_cluster(self, trained):
        app = CollectionApp(ScoringService(trained))
        status, headers, body = _wsgi(app, "GET", "/cluster")
        assert status == "404 Not Found"
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body)["mode"] == "single-process"

    def test_collect_through_the_cluster(self, trained, wires):
        with ShardSupervisor.from_polygraph(
            trained, config=ClusterConfig(n_shards=2, heartbeat_interval_s=5.0)
        ) as supervisor:
            app = CollectionApp(ClusterRouter(supervisor))
            status, _, body = _wsgi(app, "POST", "/collect", wires[0])
            assert status == "202 Accepted"
            assert json.loads(body)["accepted"] is True
