"""Member-name generation and dataset replay tests."""

import numpy as np
import pytest

from repro.jsengine.membernames import member_names
from repro.fingerprint.script import FingerprintPayload
from repro.traffic.replay import iter_payloads, iter_wire_payloads


class TestMemberNames:
    def test_exact_count(self):
        for count in (0, 1, 20, 120, 400):
            assert len(member_names("Element", count)) == count

    def test_unique_within_interface(self):
        names = member_names("Document", 350)
        assert len(set(names)) == 350

    def test_prefix_stability(self):
        short = member_names("Range", 40)
        long = member_names("Range", 90)
        assert long[:40] == short

    def test_deterministic(self):
        assert member_names("AudioContext", 30) == member_names("AudioContext", 30)

    def test_domains_differ(self):
        element = set(member_names("Element", 60))
        canvas = set(member_names("CanvasRenderingContext2D", 60))
        # Different word stock: the method tails diverge.
        assert element != canvas

    def test_names_look_like_js_members(self):
        for name in member_names("HTMLVideoElement", 80):
            assert name[0].islower()
            assert " " not in name

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            member_names("Element", -1)

    def test_large_counts_supported(self):
        names = member_names("Selection", 900)
        assert len(set(names)) == 900


class TestReplay:
    def test_payloads_match_dataset(self, small_dataset):
        payloads = list(iter_payloads(small_dataset, limit=50))
        assert len(payloads) == 50
        for idx, payload in enumerate(payloads):
            assert payload.session_id == str(small_dataset.session_ids[idx])
            assert payload.values == tuple(
                int(v) for v in small_dataset.features[idx]
            )

    def test_wire_roundtrip(self, small_dataset):
        wire = next(iter_wire_payloads(small_dataset, limit=1))
        parsed = FingerprintPayload.from_wire(wire)
        assert parsed.session_id == str(small_dataset.session_ids[0])

    def test_limit_defaults_to_everything(self, small_dataset):
        count = sum(1 for _ in iter_payloads(small_dataset))
        assert count == len(small_dataset)

    def test_offline_and_online_verdicts_agree(self, trained, small_dataset):
        from repro.service.scoring import ScoringService

        subset = small_dataset.subset(np.arange(300))
        offline = trained.detect(subset)
        service = ScoringService(trained)
        for idx, wire in enumerate(iter_wire_payloads(subset)):
            verdict = service.score_wire(wire)
            assert verdict.accepted
            assert verdict.flagged == bool(offline.flagged[idx])
