"""Event-stream sessions: generation, tracking, revision, API."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core.pipeline import BrowserPolygraph
from repro.service.api import CollectionApp
from repro.service.scoring import ScoringService
from repro.sessions import (
    RevisionReason,
    SessionEventLog,
    SessionScoringService,
    SessionTracker,
    classify_revision,
)
from repro.sessions.service import _derived_session_id
from repro.sessions.tracker import EventRecord
from repro.traffic.events import (
    EventStreamConfig,
    EventType,
    SessionEvent,
    StreamScenario,
    build_event_streams,
    interleave_events,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def streams(small_dataset, trained):
    """Event streams whose engine-swap donors are guaranteed cross-cluster."""
    table = trained.cluster_model.ua_to_cluster

    def donor_ok(victim_key, donor_key):
        victim, donor = table.get(victim_key), table.get(donor_key)
        return victim is not None and donor is not None and victim != donor

    return build_event_streams(
        small_dataset, EventStreamConfig(seed=11), donor_ok=donor_ok
    )


def _session_service(trained, **kwargs):
    # TTL spans the whole simulated window: these tests feed streams
    # one at a time rather than in global timestamp order, and the
    # tracker ages sessions in event time (TTL semantics have their own
    # tests against an explicit clock).
    kwargs.setdefault("ttl_seconds", 1e9)
    return SessionScoringService(ScoringService(trained), **kwargs)


# ----------------------------------------------------------------------
# dataset timestamps (satellite: Session.timestamp plumbing)


class TestDatasetTimestamps:
    def test_generator_emits_timestamps(self, small_dataset):
        ts = small_dataset.timestamps
        assert ts is not None and ts.dtype == np.float64
        assert ts.shape[0] == len(small_dataset)
        # Each timestamp falls inside its row's calendar day.
        day_start = small_dataset.days.astype("datetime64[s]").astype(np.int64)
        offsets = ts - day_start
        assert (offsets >= 0).all() and (offsets < 86_400).all()

    def test_row_carries_timestamp(self, small_dataset):
        session = small_dataset.row(0)
        assert session.timestamp == pytest.approx(
            float(small_dataset.timestamps[0])
        )

    def test_save_load_round_trip(self, small_dataset, tmp_path):
        path = tmp_path / "ds.npz"
        subset = small_dataset.rows(0, 50)
        subset.save(str(path))
        loaded = type(small_dataset).load(str(path))
        np.testing.assert_allclose(loaded.timestamps, subset.timestamps)

    def test_concatenate_drops_timestamps_when_any_part_lacks_them(
        self, small_dataset
    ):
        a = small_dataset.rows(0, 10)
        b = small_dataset.rows(10, 20)
        both = type(small_dataset).concatenate([a, b])
        assert both.timestamps is not None and both.timestamps.shape[0] == 20
        from dataclasses import replace

        stripped = replace(b, timestamps=None)
        mixed = type(small_dataset).concatenate([a, stripped])
        assert mixed.timestamps is None


# ----------------------------------------------------------------------
# event model and stream generation


class TestEventStreams:
    def test_wire_round_trip(self):
        event = SessionEvent(
            session_id="sid-1",
            event_type=EventType.FORM_FILL,
            seq=2,
            timestamp=1234.5,
            user_agent="Mozilla/5.0 (X11; Linux x86_64) Test/1.0",
            values=(1, 2, 3),
            suspicious_globals=("evil",),
        )
        parsed = SessionEvent.from_wire(event.to_wire())
        assert parsed == event

    def test_core_wire_matches_single_vector_payload(self):
        event = SessionEvent(
            session_id="sid-1",
            event_type=EventType.PAGE_LOAD,
            seq=0,
            timestamp=0.0,
            user_agent="ua",
            values=(4, 5),
        )
        assert event.core_wire() == event.payload().to_wire()
        body = json.loads(event.core_wire())
        assert set(body) == {"sid", "ua", "f"}

    def test_malformed_wire_raises(self):
        with pytest.raises(ValueError):
            SessionEvent.from_wire(b"not json")
        with pytest.raises(ValueError):
            SessionEvent.from_wire(b'{"sid":"x"}')

    def test_streams_cover_every_row(self, streams, small_dataset):
        assert len(streams) == len(small_dataset)
        assert [s.row_index for s in streams] == list(range(len(streams)))

    def test_per_stream_invariants(self, streams):
        for stream in streams:
            assert stream.events[0].event_type is EventType.PAGE_LOAD
            assert [e.seq for e in stream.events] == list(
                range(len(stream.events))
            )
            timestamps = [e.timestamp for e in stream.events]
            assert timestamps == sorted(timestamps)
            assert len(set(timestamps)) == len(timestamps)

    def test_scenario_mix(self, streams):
        by_scenario = {}
        for stream in streams:
            by_scenario.setdefault(stream.scenario, []).append(stream)
        config = EventStreamConfig(seed=11)
        assert (
            len(by_scenario[StreamScenario.ENGINE_SWAP])
            == config.engine_swap_sessions
        )
        for stream in by_scenario[StreamScenario.ENGINE_SWAP]:
            assert stream.surface_changes() >= 1
        for stream in by_scenario[StreamScenario.HIJACK_HANDOFF]:
            assert len({e.user_agent for e in stream.events}) == 2
        for stream in by_scenario[StreamScenario.BENIGN_RECOLLECT]:
            assert stream.surface_changes() == 0
            assert len(stream.events) >= 2
        for stream in by_scenario[StreamScenario.SINGLE_SHOT]:
            assert len(stream.events) == 1

    def test_interleave_is_globally_ordered_and_seq_stable(self, streams):
        events = interleave_events(streams)
        assert len(events) == sum(len(s.events) for s in streams)
        timestamps = [e.timestamp for e in events]
        assert timestamps == sorted(timestamps)
        last_seq = {}
        for event in events:
            if event.session_id in last_seq:
                assert event.seq == last_seq[event.session_id] + 1
            last_seq[event.session_id] = event.seq


# ----------------------------------------------------------------------
# tracker


class TestSessionTracker:
    @staticmethod
    def _record(seq, ts, flagged=False, cluster=0):
        return EventRecord(
            seq=seq,
            event_type="page_load",
            timestamp=ts,
            flagged=flagged,
            risk_factor=None,
            predicted_cluster=cluster,
            ua_key="chrome-100",
        )

    def test_ttl_eviction(self):
        clock = {"now": 0.0}
        tracker = SessionTracker(ttl_seconds=10.0, clock=lambda: clock["now"])
        state, created = tracker.get_or_create("a")
        assert created
        state.record_event(self._record(0, 0.0), (1,), 32)
        clock["now"] = 5.0
        _, created = tracker.get_or_create("a")
        assert not created
        clock["now"] = 20.0
        _, created = tracker.get_or_create("a")
        assert created  # expired entry was replaced
        assert tracker.evicted_ttl == 1

    def test_peek_does_not_create(self):
        tracker = SessionTracker(clock=lambda: 0.0)
        assert tracker.peek("missing") is None
        assert len(tracker) == 0

    def test_capacity_eviction_is_lru(self):
        clock = {"now": 0.0}
        tracker = SessionTracker(
            max_sessions=2, ttl_seconds=1e9, clock=lambda: clock["now"]
        )
        tracker.get_or_create("a")
        tracker.get_or_create("b")
        tracker.get_or_create("a")  # refresh a
        tracker.get_or_create("c")  # evicts b
        assert tracker.peek("b") is None
        assert tracker.peek("a") is not None
        assert tracker.evicted_capacity == 1

    def test_event_log_is_bounded(self):
        tracker = SessionTracker(
            max_events_per_session=3, clock=lambda: 0.0
        )
        state, _ = tracker.get_or_create("a")
        for seq in range(10):
            state.record_event(
                self._record(seq, float(seq)), (seq,), tracker.max_events_per_session
            )
        assert [e.seq for e in state.events] == [7, 8, 9]
        assert state.event_count == 10
        assert state.distinct_vectors == 10

    def test_sweep_evicts_expired(self):
        clock = {"now": 0.0}
        tracker = SessionTracker(ttl_seconds=10.0, clock=lambda: clock["now"])
        for name in "abc":
            tracker.get_or_create(name)
        clock["now"] = 100.0
        assert tracker.sweep() == 3
        assert len(tracker) == 0


# ----------------------------------------------------------------------
# revision classification


class TestClassifyRevision:
    def _classify(self, **overrides):
        kwargs = dict(
            prior_flagged=False,
            prior_risk=None,
            prior_cluster=1,
            prior_ua_key="chrome-100",
            event_flagged=False,
            event_risk=None,
            result=None,
            event_ua_key="chrome-100",
        )
        kwargs.update(overrides)
        return classify_revision(**kwargs)

    def test_consistent_event_is_no_revision(self):
        assert self._classify() is None

    def test_flag_raised(self):
        assert (
            self._classify(event_flagged=True, event_risk=3, prior_cluster=None)
            is RevisionReason.FLAG_RAISED
        )

    def test_risk_increase_requires_higher_risk(self):
        assert (
            self._classify(
                prior_flagged=True,
                prior_risk=2,
                prior_cluster=None,
                event_flagged=True,
                event_risk=5,
            )
            is RevisionReason.RISK_INCREASE
        )
        assert (
            self._classify(
                prior_flagged=True,
                prior_risk=5,
                prior_cluster=None,
                event_flagged=True,
                event_risk=2,
            )
            is None
        )

    def test_ua_change_outranks_flag(self):
        assert (
            self._classify(event_ua_key="firefox-90", event_flagged=True)
            is RevisionReason.UA_CHANGE
        )

    def test_flag_cleared_is_informational(self):
        reason = self._classify(
            prior_flagged=True, prior_risk=4, prior_cluster=None
        )
        assert reason is RevisionReason.FLAG_CLEARED


# ----------------------------------------------------------------------
# session scoring service


class TestSessionScoringService:
    def test_first_event_verdict_bit_identical(self, trained, streams):
        single = ScoringService(trained)
        sessions = _session_service(trained)
        for stream in streams[:300]:
            event = stream.first
            expected = single.score_wire(event.core_wire())
            observed = sessions.observe_event(event).verdict
            assert (
                expected.session_id,
                expected.accepted,
                expected.flagged,
                expected.risk_factor,
                expected.reject_reason,
            ) == (
                observed.session_id,
                observed.accepted,
                observed.flagged,
                observed.risk_factor,
                observed.reject_reason,
            )

    def test_followup_events_not_deduplicated(self, trained, streams):
        sessions = _session_service(trained)
        stream = next(s for s in streams if len(s.events) >= 3)
        for event in stream.events:
            observation = sessions.observe_event(event)
            assert observation.verdict.accepted, observation.verdict
        snapshot = sessions.session_snapshot(stream.session_id)
        assert snapshot["event_count"] == len(stream.events)

    def test_engine_swap_detected_via_revision(self, trained, streams):
        sessions = _session_service(trained)
        swaps = [
            s for s in streams if s.scenario is StreamScenario.ENGINE_SWAP
        ]
        assert swaps
        for stream in swaps:
            # Invisible to the single-vector path...
            first_result = trained.detect_payload(stream.first.payload())
            assert not first_result.flagged
            revisions = []
            for event in stream.events:
                observation = sessions.observe_event(event)
                if observation.revision is not None:
                    revisions.append(observation.revision)
            # ...caught mid-session by the revision machinery.
            assert any(
                r.reason is RevisionReason.CLUSTER_FLIP and r.new_flagged
                for r in revisions
            ), stream.session_id
            snapshot = sessions.session_snapshot(stream.session_id)
            assert snapshot["flagged"]

    def test_benign_recollect_produces_no_revision(self, trained, streams):
        sessions = _session_service(trained)
        benign = [
            s
            for s in streams
            if s.scenario is StreamScenario.BENIGN_RECOLLECT
        ][:50]
        assert benign
        for stream in benign:
            first = sessions.observe_event(stream.first)
            if first.verdict.flagged:
                continue  # rare FP; sticky-flag semantics tested elsewhere
            for event in stream.events[1:]:
                observation = sessions.observe_event(event)
                assert observation.revision is None
                assert not observation.session_flagged

    def test_sticky_verdict_never_unflags(self, trained, streams):
        sessions = _session_service(trained)
        stream = next(
            s for s in streams if s.scenario is StreamScenario.ENGINE_SWAP
        )
        for event in stream.events:
            sessions.observe_event(event)
        flagged_snapshot = sessions.session_snapshot(stream.session_id)
        assert flagged_snapshot["flagged"]
        # Replay the clean first vector as a later event: still flagged.
        clean_again = SessionEvent(
            session_id=stream.session_id,
            event_type=EventType.RE_COLLECTION,
            seq=stream.events[-1].seq + 1,
            timestamp=stream.events[-1].timestamp + 1.0,
            user_agent=stream.first.user_agent,
            values=stream.first.values,
        )
        observation = sessions.observe_event(clean_again)
        assert observation.session_flagged
        risk_after = sessions.session_snapshot(stream.session_id)["risk_factor"]
        assert risk_after == flagged_snapshot["risk_factor"]

    def test_malformed_event_wire_rejected(self, trained):
        sessions = _session_service(trained)
        observation = sessions.observe_wire(b"garbage")
        assert not observation.verdict.accepted
        assert observation.verdict.reject_reason.startswith("malformed_event")

    def test_metrics_lines(self, trained, streams):
        sessions = _session_service(trained)
        for stream in streams[:20]:
            for event in stream.events:
                sessions.observe_event(event)
        lines = sessions.metrics_lines()
        text = "\n".join(lines)
        for metric in (
            "polygraph_session_active",
            "polygraph_session_events_total",
            "polygraph_session_revisions_total",
            "polygraph_session_escalations_total",
            "polygraph_session_evictions_total",
            "polygraph_session_revision_reason_total",
        ):
            assert metric in text

    def test_derived_session_id_respects_length_cap(self):
        from repro.service.ingest import MAX_SESSION_ID_LENGTH

        assert _derived_session_id("abc", 3) == "abc@3"
        long_sid = "x" * MAX_SESSION_ID_LENGTH
        derived = _derived_session_id(long_sid, 12)
        assert len(derived) <= MAX_SESSION_ID_LENGTH
        assert derived != _derived_session_id(long_sid, 13)


# ----------------------------------------------------------------------
# event log store


class TestSessionEventLog:
    @staticmethod
    def _append(log, sid, seq, ts, flagged=False):
        log.append(
            session_id=sid,
            event_type="page_load",
            seq=seq,
            timestamp=ts,
            ua_key="chrome-100",
            values=(1, 2, 3),
            flagged=flagged,
            risk=4 if flagged else None,
        )

    def test_seal_and_round_trip(self, tmp_path):
        log = SessionEventLog(tmp_path, segment_events=3)
        for seq in range(5):
            self._append(log, "a", seq, float(seq), flagged=seq == 4)
        stats = log.stats()
        assert stats["segments"] == 1
        assert stats["sealed_events"] == 3
        assert stats["buffered_events"] == 2
        events = log.events_for("a")
        assert [e["seq"] for e in events] == list(range(5))
        assert events[4]["flagged"] and events[4]["risk"] == 4
        assert events[0]["risk"] is None

    def test_window_query(self, tmp_path):
        log = SessionEventLog(tmp_path, segment_events=2, window_seconds=50.0)
        for seq in range(6):
            self._append(log, f"s{seq}", 0, seq * 20.0)
        recent = log.window(seconds=50.0)
        assert all(r["ts"] >= 100.0 - 50.0 for r in recent)
        assert {r["sid"] for r in recent} == {"s3", "s4", "s5"}

    def test_prune_drops_whole_old_segments(self, tmp_path):
        log = SessionEventLog(tmp_path, segment_events=2, window_seconds=30.0)
        for seq in range(6):
            self._append(log, f"s{seq}", 0, seq * 20.0)
        log.seal()
        assert log.stats()["segments"] == 3
        dropped = log.prune()
        assert dropped >= 1
        remaining = log.window(seconds=1e9)
        assert all(r["ts"] >= 100.0 - 30.0 for r in remaining)

    def test_manifest_survives_reopen(self, tmp_path):
        log = SessionEventLog(tmp_path, segment_events=2)
        for seq in range(4):
            self._append(log, "a", seq, float(seq))
        reopened = SessionEventLog(tmp_path, segment_events=2)
        assert reopened.stats()["segments"] == 2
        assert [e["seq"] for e in reopened.events_for("a")] == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# HTTP surface


def _call(app, method, path, body=b""):
    captured = {}

    def start_response(status, headers):
        captured["status"] = status

    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(body)),
        "wsgi.input": io.BytesIO(body),
    }
    chunks = app(environ, start_response)
    return captured["status"], json.loads(b"".join(chunks))


class TestSessionEndpoints:
    @pytest.fixture()
    def app(self, trained):
        service = ScoringService(trained)
        return CollectionApp(
            service, sessions=SessionScoringService(service)
        )

    def test_event_endpoint_round_trip(self, app, streams):
        stream = next(s for s in streams if len(s.events) >= 2)
        for event in stream.events:
            status, document = _call(app, "POST", "/event", event.to_wire())
            assert status == "202 Accepted", document
            assert document["session_id"] == stream.session_id
            assert document["event_seq"] == event.seq
        status, document = _call(app, "GET", f"/session/{stream.session_id}")
        assert status == "200 OK"
        assert document["event_count"] == len(stream.events)

    def test_sessions_status_endpoint(self, app, streams):
        _call(app, "POST", "/event", streams[0].first.to_wire())
        status, document = _call(app, "GET", "/sessions")
        assert status == "200 OK"
        assert document["events_total"] >= 1
        assert "revision_reasons" in document

    def test_unknown_session_404(self, app):
        status, document = _call(app, "GET", "/session/nope")
        assert status == "404 Not Found"

    def test_endpoints_404_without_session_layer(self, trained, streams):
        app = CollectionApp(ScoringService(trained))
        for method, path in (
            ("POST", "/event"),
            ("GET", "/sessions"),
            ("GET", "/session/x"),
        ):
            status, document = _call(
                app, method, path, streams[0].first.to_wire()
            )
            assert status == "404 Not Found"
            assert "session" in document["error"]

    def test_metrics_include_session_registry(self, app, streams):
        _call(app, "POST", "/event", streams[0].first.to_wire())
        captured = {}

        def start_response(status, headers):
            captured["status"] = status

        environ = {"REQUEST_METHOD": "GET", "PATH_INFO": "/metrics"}
        body = b"".join(app(environ, start_response)).decode()
        assert captured["status"] == "200 OK"
        assert "polygraph_session_active" in body
        assert "polygraph_session_events_total" in body
