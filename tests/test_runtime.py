"""Unit tests for the runtime building blocks: stats, cache, batcher, pool."""

import threading
import time

import pytest

from repro.runtime.batcher import MicroBatcher
from repro.runtime.cache import VerdictCache, quantize_vector
from repro.runtime.pool import Overloaded, WorkerPool, overloaded_verdict
from repro.runtime.stats import RuntimeStats, percentile
from repro.service.scoring import Verdict


class FakeClock:
    """Manually-advanced monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_nearest_rank(self):
        data = [10.0, 20.0, 30.0, 40.0]
        assert percentile(data, 50) == 20.0
        assert percentile(data, 99) == 40.0
        assert percentile(data, 0) == 10.0
        assert percentile(data, 100) == 40.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0


class TestRuntimeStats:
    def test_counters(self):
        stats = RuntimeStats()
        stats.incr("x")
        stats.incr("x", 4)
        assert stats.counter("x") == 5
        assert stats.counter("missing") == 0
        stats.set_counter("x", 2)
        assert stats.counter("x") == 2

    def test_gauges_track_peak(self):
        stats = RuntimeStats()
        stats.set_gauge("depth", 3)
        stats.set_gauge("depth", 9)
        stats.set_gauge("depth", 1)
        assert stats.gauge("depth") == 1
        assert stats.peak("depth") == 9

    def test_batch_distribution(self):
        stats = RuntimeStats()
        for size in (1, 4, 16):
            stats.observe_batch(size)
        assert stats.counter("batches_total") == 3
        assert stats.counter("batched_requests_total") == 21
        assert stats.mean_batch_size == 7.0
        assert stats.batch_size_percentile(99) == 16

    def test_stage_latency_percentiles(self):
        stats = RuntimeStats()
        for ms in (1.0, 2.0, 3.0, 100.0):
            stats.observe_stage("model", ms)
        assert stats.stage_percentile("model", 50) == 2.0
        assert stats.stage_percentile("model", 99) == 100.0
        assert stats.stages() == ["model"]

    def test_reservoir_bounds_observations(self):
        stats = RuntimeStats(reservoir=4)
        for ms in range(100):
            stats.observe_stage("total", float(ms))
        assert stats.stage_percentile("total", 0) == 96.0

    def test_cache_hit_rate(self):
        stats = RuntimeStats()
        assert stats.cache_hit_rate == 0.0
        stats.set_counter("cache_hits", 3)
        stats.set_counter("cache_misses", 1)
        assert stats.cache_hit_rate == 0.75

    def test_render_prometheus(self):
        stats = RuntimeStats()
        stats.incr("requests_total", 7)
        stats.set_gauge("queue_depth", 2)
        stats.observe_batch(8)
        stats.observe_stage("model", 1.5)
        text = "\n".join(stats.render_prometheus())
        assert "polygraph_runtime_requests_total 7" in text
        assert "polygraph_runtime_queue_depth 2" in text
        assert "polygraph_runtime_queue_depth_peak 2" in text
        assert 'polygraph_runtime_batch_size{quantile="p50"} 8' in text
        assert 'stage="model"' in text
        assert "polygraph_runtime_cache_hit_rate" in text

    def test_invalid_reservoir_rejected(self):
        with pytest.raises(ValueError):
            RuntimeStats(reservoir=0)


class TestQuantize:
    def test_identity_step(self):
        assert quantize_vector((1, 2, 3)) == (1, 2, 3)

    def test_coarser_step_buckets(self):
        assert quantize_vector((0, 7, 13, 19), step=10) == (0, 0, 10, 10)


class TestVerdictCache:
    def test_make_key_reuses_int_tuple(self):
        cache = VerdictCache()
        values = (1, 2, 3)
        key = cache.make_key(values, "chrome-112")
        assert key == ("chrome-112", (1, 2, 3))
        assert key[1] is values  # identity quantization, no copy

    def test_hit_and_miss_counters(self):
        cache = VerdictCache()
        key = cache.make_key((1, 2), "chrome-112")
        assert cache.get(key) is None
        assert cache.put(key, "verdict")
        assert cache.get(key) == "verdict"
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_under_pressure(self):
        cache = VerdictCache(max_entries=2, ttl_seconds=None)
        a, b, c = (("ua", (i,)) for i in range(3))
        cache.put(a, "A")
        cache.put(b, "B")
        assert cache.get(a) == "A"  # touch a: b becomes LRU
        cache.put(c, "C")
        assert cache.evictions == 1
        assert cache.get(b) is None  # evicted
        assert cache.get(a) == "A"
        assert cache.get(c) == "C"
        assert len(cache) == 2

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = VerdictCache(ttl_seconds=10.0, clock=clock)
        key = ("ua", (1,))
        cache.put(key, "V")
        clock.advance(9.0)
        assert cache.get(key) == "V"
        clock.advance(2.0)
        assert cache.get(key) is None
        assert cache.expirations == 1
        assert key not in cache

    def test_ttl_and_lru_pressure_together(self):
        clock = FakeClock()
        cache = VerdictCache(max_entries=3, ttl_seconds=5.0, clock=clock)
        for i in range(3):
            cache.put(("ua", (i,)), i)
        clock.advance(6.0)
        for i in range(3, 6):
            cache.put(("ua", (i,)), i)
        # Old entries were evicted by LRU pressure before their probe.
        assert len(cache) == 3
        assert cache.get(("ua", (4,))) == 4
        assert cache.get(("ua", (0,))) is None

    def test_invalidate_clears_and_pins_generation(self):
        cache = VerdictCache()
        cache.put(("ua", (1,)), "V")
        assert cache.invalidate(generation=2) == 1
        assert len(cache) == 0
        assert cache.model_generation == 2

    def test_stale_generation_put_refused(self):
        cache = VerdictCache()
        cache.set_model_generation(2)
        assert not cache.put(("ua", (1,)), "old", generation=1)
        assert cache.stale_drops == 1
        assert len(cache) == 0
        assert cache.put(("ua", (1,)), "new", generation=2)

    def test_sync_stats_mirrors_counters(self):
        stats = RuntimeStats()
        cache = VerdictCache(stats=stats)
        key = ("ua", (1,))
        cache.get(key)
        cache.put(key, "V")
        cache.get(key)
        cache.sync_stats()
        assert stats.counter("cache_hits") == 1
        assert stats.counter("cache_misses") == 1
        assert stats.cache_hit_rate == 0.5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            VerdictCache(max_entries=0)
        with pytest.raises(ValueError):
            VerdictCache(ttl_seconds=0.0)


class _Request:
    """Minimal batcher/pool request: records completion and failure."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.failure = None

    def fail(self, exc: BaseException) -> None:
        self.failure = exc


class TestMicroBatcher:
    def test_flushes_inline_when_full(self):
        batches = []
        batcher = MicroBatcher(batches.append, max_batch_size=3)
        assert not batcher.submit(_Request("a"))
        assert not batcher.submit(_Request("b"))
        assert batcher.submit(_Request("c"))  # third submit flushes
        assert len(batches) == 1
        assert [r.name for r in batches[0]] == ["a", "b", "c"]
        assert batcher.pending_count == 0

    def test_poll_respects_linger(self):
        clock = FakeClock()
        batches = []
        batcher = MicroBatcher(
            batches.append, max_batch_size=64, max_linger_ms=2.0, clock=clock
        )
        batcher.submit(_Request("a"))
        clock.advance(0.001)  # 1ms < linger
        assert batcher.poll() == 0
        clock.advance(0.0015)  # 2.5ms total >= linger
        assert batcher.poll() == 1
        assert len(batches) == 1

    def test_flush_unconditional(self):
        batches = []
        batcher = MicroBatcher(batches.append)
        assert batcher.flush() == 0  # nothing pending
        batcher.submit(_Request("a"))
        assert batcher.flush() == 1
        assert batcher.pending_count == 0

    def test_next_deadline_tracks_oldest(self):
        clock = FakeClock(100.0)
        batcher = MicroBatcher(lambda b: None, max_linger_ms=2.0, clock=clock)
        assert batcher.next_deadline() is None
        batcher.submit(_Request("a"))
        clock.advance(0.001)
        batcher.submit(_Request("b"))  # deadline pinned to the oldest
        assert batcher.next_deadline() == pytest.approx(100.002)

    def test_scorer_failure_fans_out(self):
        def boom(batch):
            raise RuntimeError("model down")

        batcher = MicroBatcher(boom, max_batch_size=2)
        a, b = _Request("a"), _Request("b")
        batcher.submit(a)
        batcher.submit(b)
        assert isinstance(a.failure, RuntimeError)
        assert isinstance(b.failure, RuntimeError)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, max_linger_ms=-1.0)


class TestOverloaded:
    def test_typed_shed_verdict(self):
        verdict = overloaded_verdict("s-1", 0.5)
        assert isinstance(verdict, Overloaded)
        assert isinstance(verdict, Verdict)
        assert not verdict.accepted
        assert verdict.reject_reason == "overloaded"
        assert verdict.session_id == "s-1"


class TestWorkerPool:
    def test_handles_everything_submitted(self):
        handled = []
        pool = WorkerPool(handled.append, n_workers=2, queue_capacity=64)
        pool.start()
        items = [_Request(str(i)) for i in range(32)]
        assert all(pool.submit(item) for item in items)
        pool.shutdown(drain=True)
        assert len(handled) == 32
        assert not pool.is_running

    def test_backpressure_sheds_when_full(self):
        release = threading.Event()
        entered = threading.Event()

        def slow(item):
            entered.set()
            release.wait(timeout=5.0)

        stats = RuntimeStats()
        pool = WorkerPool(slow, n_workers=1, queue_capacity=1, stats=stats)
        pool.start()
        assert pool.submit(_Request("in-flight"))
        assert entered.wait(timeout=5.0)  # worker is now blocked
        assert pool.submit(_Request("queued"))
        shed = sum(1 for _ in range(3) if not pool.submit(_Request("extra")))
        assert shed == 3  # queue full: everything beyond capacity shed
        assert stats.counter("requests_shed") == 3
        release.set()
        pool.shutdown(drain=True)

    def test_drain_on_shutdown_leaves_nothing_unanswered(self):
        release = threading.Event()
        handled = []

        def slow(item):
            release.wait(timeout=5.0)
            handled.append(item)

        pool = WorkerPool(slow, n_workers=1, queue_capacity=16)
        pool.start()
        for i in range(5):
            assert pool.submit(_Request(str(i)))
        release.set()
        pool.shutdown(drain=True)
        assert len(handled) == 5
        assert pool.queue_depth == 0

    def test_nondrain_shutdown_discards_backlog(self):
        release = threading.Event()
        entered = threading.Event()
        discarded = []
        handled = []

        def slow(item):
            entered.set()
            release.wait(timeout=5.0)
            handled.append(item)

        pool = WorkerPool(
            slow,
            n_workers=1,
            queue_capacity=16,
            on_discard=discarded.append,
        )
        pool.start()
        first = _Request("in-flight")
        pool.submit(first)
        assert entered.wait(timeout=5.0)
        backlog = [_Request("q1"), _Request("q2")]
        for item in backlog:
            assert pool.submit(item)
        stopper = threading.Thread(
            target=pool.shutdown, kwargs={"drain": False}, daemon=True
        )
        stopper.start()
        time.sleep(0.05)  # let shutdown drain the backlog to on_discard
        release.set()
        stopper.join(timeout=5.0)
        assert discarded == backlog
        assert handled == [first]

    def test_submit_after_shutdown_sheds(self):
        pool = WorkerPool(lambda item: None, n_workers=1)
        pool.start()
        pool.shutdown(drain=True)
        assert not pool.submit(_Request("late"))

    def test_handler_exception_fails_request(self):
        def boom(item):
            raise ValueError("bad request")

        pool = WorkerPool(boom, n_workers=1)
        pool.start()
        request = _Request("a")
        pool.submit(request)
        pool.shutdown(drain=True)
        assert isinstance(request.failure, ValueError)

    def test_idle_hook_runs_when_queue_empties(self):
        idled = threading.Event()
        pool = WorkerPool(
            lambda item: None, n_workers=1, idle=idled.set, poll_interval_s=0.001
        )
        pool.start()
        pool.submit(_Request("a"))
        assert idled.wait(timeout=5.0)
        pool.shutdown(drain=True)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(lambda item: None, n_workers=0)
        with pytest.raises(ValueError):
            WorkerPool(lambda item: None, queue_capacity=0)
