"""Wall-clock discipline: no implicit "today" inside ``src/repro``.

The gauntlet replays a virtual timeline; one stray ``date.today()`` in
a scoring, drift, or marketplace path would silently couple a replay to
the machine's clock and break bit-determinism.  This lint-style test
greps the source tree for bare wall-clock reads and fails on any hit
outside the sanctioned wrappers.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

# Files allowed to read the wall clock: the virtual-clock module itself
# is the sanctioned wrapper (it documents why it never needs to).
SANCTIONED = {
    SRC / "gauntlet" / "clock.py",
}

# Bare calendar-clock reads.  time.time()/perf_counter() are fine: they
# feed latency accounting, never verdict or calendar logic.
FORBIDDEN = re.compile(
    r"\bdate\.today\(\)"
    r"|\bdatetime\.now\(\)"
    r"|\bdatetime\.today\(\)"
    r"|\bdatetime\.utcnow\(\)"
)


def test_no_bare_wallclock_reads() -> None:
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in SANCTIONED:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            stripped = line.split("#", 1)[0]
            if FORBIDDEN.search(stripped):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "bare wall-clock reads found (thread an explicit date instead):\n"
        + "\n".join(offenders)
    )


def test_sanctioned_wrapper_exists() -> None:
    # The allowlist should not rot: every sanctioned path must exist.
    for path in SANCTIONED:
        assert path.exists(), f"sanctioned wrapper missing: {path}"
