"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.browsers.useragent import (
    Vendor,
    format_user_agent,
    parse_ua_key,
    parse_user_agent,
    ua_key,
)
from repro.core.risk import risk_factor, user_agent_distance
from repro.ml.elbow import relative_wcss_gain
from repro.ml.kmeans import KMeans
from repro.ml.metrics import (
    majority_cluster_accuracy,
    normalized_shannon_entropy,
    shannon_entropy,
)
from repro.ml.pca import PCA
from repro.ml.scaler import StandardScaler

_vendors = st.sampled_from(list(Vendor))
_versions = st.integers(min_value=1, max_value=300)
_ua_keys = st.builds(ua_key, _vendors, _versions)

_small_matrix = arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(min_value=5, max_value=40), st.integers(min_value=2, max_value=6)
    ),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
)


class TestUserAgentProperties:
    @given(_vendors, _versions)
    def test_format_parse_roundtrip(self, vendor, version):
        parsed = parse_user_agent(format_user_agent(vendor, version))
        assert parsed.vendor is vendor
        assert parsed.version == version

    @given(_vendors, _versions)
    def test_key_roundtrip(self, vendor, version):
        parsed = parse_ua_key(ua_key(vendor, version))
        assert (parsed.vendor, parsed.version) == (vendor, version)


class TestRiskProperties:
    @given(_ua_keys, _ua_keys)
    def test_distance_symmetric_and_bounded(self, a, b):
        d_ab = user_agent_distance(a, b)
        d_ba = user_agent_distance(b, a)
        assert d_ab == d_ba
        assert 0 <= d_ab <= 74  # floor(299/4) for same vendor, 20 cross

    @given(_ua_keys)
    def test_self_distance_zero(self, a):
        assert user_agent_distance(a, a) == 0

    @given(_ua_keys, st.lists(_ua_keys, min_size=1, max_size=8))
    def test_risk_factor_is_min_distance(self, session, cluster):
        expected = min(user_agent_distance(session, other) for other in cluster)
        assert risk_factor(session, cluster) == expected

    @given(_ua_keys, st.lists(_ua_keys, min_size=1, max_size=6), _ua_keys)
    def test_adding_a_member_never_raises_risk(self, session, cluster, extra):
        # Holds for non-empty clusters; the empty-cluster fallback is a
        # fixed cap, not a minimum.
        before = risk_factor(session, cluster)
        after = risk_factor(session, cluster + [extra])
        assert after <= before


class TestScalerProperties:
    @given(_small_matrix)
    @settings(max_examples=40)
    def test_inverse_roundtrip(self, matrix):
        scaler = StandardScaler()
        recovered = scaler.inverse_transform(scaler.fit_transform(matrix))
        assert np.allclose(recovered, matrix, atol=1e-6 * (1 + np.abs(matrix).max()))

    @given(_small_matrix)
    @settings(max_examples=40)
    def test_scaled_columns_bounded_moments(self, matrix):
        from hypothesis import assume

        data = np.asarray(matrix, dtype=float)
        original_stds = data.std(axis=0)
        scale = np.abs(data).max() + 1.0
        # Skip catastrophically ill-conditioned columns (spread below
        # float cancellation noise relative to the magnitude).
        assume(
            all(s == 0.0 or s > 1e-9 * scale for s in original_stds)
        )
        scaled = StandardScaler().fit_transform(data)
        for column in range(scaled.shape[1]):
            if original_stds[column] == 0.0:
                # Constant columns are centered to zero (scale forced 1).
                assert np.allclose(scaled[:, column], 0.0)
            else:
                assert abs(scaled[:, column].mean()) < 1e-6
                assert abs(scaled[:, column].std() - 1.0) < 1e-6


class TestPCAProperties:
    @given(_small_matrix)
    @settings(max_examples=30)
    def test_full_reconstruction(self, matrix):
        pca = PCA().fit(matrix)
        recovered = pca.inverse_transform(pca.transform(matrix))
        assert np.allclose(recovered, matrix, atol=1e-5 * (1 + np.abs(matrix).max()))

    @given(_small_matrix)
    @settings(max_examples=30)
    def test_variance_ratios_valid(self, matrix):
        pca = PCA().fit(matrix)
        ratios = pca.explained_variance_ratio_
        assert np.all(ratios >= -1e-12)
        assert float(ratios.sum()) <= 1.0 + 1e-9


class TestKMeansProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(
                st.integers(min_value=6, max_value=30),
                st.integers(min_value=2, max_value=4),
            ),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_inertia_nonnegative_and_labels_valid(self, matrix, k):
        model = KMeans(n_clusters=k, n_init=1, random_state=0).fit(matrix)
        assert model.inertia_ >= 0.0
        assert np.all(model.labels_ >= 0) and np.all(model.labels_ < k)


class TestMetricProperties:
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=60))
    def test_entropy_bounds(self, values):
        entropy = shannon_entropy(values)
        assert 0.0 <= entropy <= np.log2(len(set(values))) + 1e-9
        assert 0.0 <= normalized_shannon_entropy(values) <= 1.0 + 1e-9

    @given(
        st.lists(
            st.tuples(st.sampled_from("abc"), st.integers(0, 3)),
            min_size=1,
            max_size=60,
        )
    )
    def test_majority_accuracy_bounds(self, pairs):
        labels = [p[0] for p in pairs]
        clusters = [p[1] for p in pairs]
        accuracy = majority_cluster_accuracy(labels, clusters)
        assert 0.0 < accuracy <= 1.0

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6), min_size=1, max_size=30))
    def test_relative_gain_bounded_for_decreasing_wcss(self, values):
        decreasing = sorted(values, reverse=True)
        gains = relative_wcss_gain(decreasing)
        assert all(0.0 <= g <= 1.0 for g in gains)
