"""Fine-grained baseline simulators and the Appendix-5 pipeline."""

import json

import numpy as np
import pytest

from repro.baselines.amiunique import AmIUniqueTool
from repro.baselines.clientjs import ClientJSTool
from repro.baselines.fingerprintjs import FingerprintJSTool
from repro.baselines.flatten import encode_for_clustering, flatten_json
from repro.baselines.perf import default_profiles, measure_tools
from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor


class TestTools:
    @pytest.fixture(scope="class")
    def profile(self):
        return BrowserProfile(Vendor.CHROME, 112)

    def test_fingerprintjs_payload_size_band(self, profile):
        run = FingerprintJSTool().run(profile)
        assert 10_000 < run.payload_bytes() < 40_000  # paper: ~23KB

    def test_clientjs_payload_size_band(self, profile):
        run = ClientJSTool().run(profile)
        assert 6_000 < run.payload_bytes() < 20_000  # paper: ~10KB

    def test_amiunique_payload_size_band(self, profile):
        run = AmIUniqueTool().run(profile)
        assert 40_000 < run.payload_bytes() < 120_000  # paper: ~60KB

    def test_payloads_are_json_serializable(self, profile):
        for tool in (FingerprintJSTool(), ClientJSTool(), AmIUniqueTool()):
            run = tool.run(profile)
            assert json.loads(json.dumps(run.fingerprint))

    def test_installs_differ_in_device_noise(self, profile):
        tool = FingerprintJSTool()
        a = tool.run(profile, install_seed=1).fingerprint
        b = tool.run(profile, install_seed=2).fingerprint
        assert a["canvas"] != b["canvas"]
        assert a["userAgent"] == b["userAgent"]

    def test_versions_differ_in_era_signals(self):
        tool = FingerprintJSTool()
        a = tool.run(BrowserProfile(Vendor.CHROME, 100), install_seed=1).fingerprint
        b = tool.run(BrowserProfile(Vendor.CHROME, 112), install_seed=1).fingerprint
        assert a["eraFlags"] != b["eraFlags"]

    def test_clientjs_ua_fields_present(self, profile):
        doc = ClientJSTool().run(profile).fingerprint
        assert doc["ua_browserMajorVersion"] == 112
        assert doc["ua_browser"] == "Chrome"

    def test_service_time_measured(self, profile):
        run = AmIUniqueTool().run(profile)
        assert run.service_time_ms > 0.0


class TestFlatten:
    def test_nested_dict_flattening(self):
        flat = flatten_json({"a": {"b": {"c": 1}}, "d": True})
        assert flat == {"a.b.c": 1, "d": True}

    def test_lists_become_length_and_preview(self):
        flat = flatten_json({"fonts": ["Arial", "Verdana"]})
        assert flat["fonts.length"] == 2
        assert flat["fonts.preview"] == "Arial,Verdana"

    def test_encode_basic_types(self):
        docs = [
            {"n": 1, "b": True, "s": "x"},
            {"n": 2, "b": False, "s": "y"},
            {"n": 2, "b": True, "s": "x"},
            {"n": 1, "b": True, "s": "y"},
        ]
        matrix, names = encode_for_clustering(docs, exclude_prefixes=())
        assert matrix.shape == (4, 3)
        by_name = dict(zip(names, matrix.T))
        assert by_name["n"].tolist() == [1.0, 2.0, 2.0, 1.0]
        assert by_name["b"].tolist() == [1.0, 0.0, 1.0, 1.0]
        assert by_name["s"].tolist() == [0.0, 1.0, 0.0, 1.0]

    def test_missing_values_encode_minus_one(self):
        docs = [{"a": 1, "b": 5}, {"a": 2}, {"a": 2}]
        matrix, names = encode_for_clustering(docs, exclude_prefixes=())
        by_name = dict(zip(names, matrix.T))
        assert by_name["b"].tolist() == [5.0, -1.0, -1.0]

    def test_constant_columns_dropped(self):
        docs = [{"const": 7, "varies": i % 2} for i in range(6)]
        _, names = encode_for_clustering(docs, exclude_prefixes=())
        assert names == ["varies"]

    def test_unique_per_row_columns_dropped(self):
        docs = [{"hash": f"h{i}", "grp": i % 2} for i in range(8)]
        _, names = encode_for_clustering(docs, exclude_prefixes=())
        assert "hash" not in names and "grp" in names

    def test_ua_prefixes_excluded(self):
        docs = [{"ua_browser": f"B{i}", "keep": i % 3} for i in range(9)]
        _, names = encode_for_clustering(docs)
        assert names == ["keep"]

    def test_empty_documents_rejected(self):
        with pytest.raises(ValueError):
            encode_for_clustering([])


class TestPerf:
    def test_table2_shape(self):
        costs = {c.tool: c for c in measure_tools(repeats=2)}
        polygraph = costs["Browser Polygraph"]
        # Polygraph is the smallest payload by an order of magnitude.
        for name in ("AmIUnique", "FingerprintJS", "ClientJS"):
            assert costs[name].avg_payload_bytes > 8 * polygraph.avg_payload_bytes
        # And the fastest collector; AmIUnique is the slowest.
        assert polygraph.avg_service_time_ms < costs["ClientJS"].avg_service_time_ms
        assert costs["AmIUnique"].avg_service_time_ms == max(
            c.avg_service_time_ms for c in costs.values()
        )

    def test_polygraph_meets_finorg_budget(self):
        costs = {c.tool: c for c in measure_tools(repeats=2)}
        polygraph = costs["Browser Polygraph"]
        assert polygraph.avg_payload_bytes <= 1024
        assert polygraph.avg_service_time_ms <= 100.0

    def test_default_profiles_cover_vendors(self):
        vendors = {p.vendor for p in default_profiles()}
        assert vendors == {Vendor.CHROME, Vendor.FIREFOX, Vendor.EDGE}
