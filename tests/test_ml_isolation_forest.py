"""Isolation Forest unit tests."""

import numpy as np
import pytest

from repro.ml.isolation_forest import IsolationForest, average_path_length


def _data_with_outliers(rng, n_inliers=2000, n_outliers=5):
    inliers = rng.normal(0.0, 1.0, size=(n_inliers, 4))
    outliers = rng.uniform(15.0, 25.0, size=(n_outliers, 4))
    return np.vstack([inliers, outliers]), n_inliers


def test_outliers_score_higher(rng):
    data, n_inliers = _data_with_outliers(rng)
    forest = IsolationForest(random_state=0).fit(data)
    scores = forest.score_samples(data)
    assert scores[n_inliers:].min() > scores[:n_inliers].mean()


def test_top_scores_are_the_planted_outliers(rng):
    data, n_inliers = _data_with_outliers(rng)
    forest = IsolationForest(random_state=0).fit(data)
    scores = forest.score_samples(data)
    top5 = set(np.argsort(scores)[-5:])
    assert top5 == set(range(n_inliers, n_inliers + 5))


def test_fit_mask_respects_contamination_budget(rng):
    data, _ = _data_with_outliers(rng)
    forest = IsolationForest(contamination=0.002, random_state=0).fit(data)
    n_removed = int((~forest.fit_inlier_mask_).sum())
    assert n_removed == max(1, round(0.002 * data.shape[0]))


def test_fit_mask_caps_duplicate_ties(rng):
    # 100 identical isolated rows must not all be swept out when the
    # contamination budget is 2 rows (the EdgeHTML regression).
    inliers = rng.normal(0.0, 0.5, size=(1000, 3))
    duplicates = np.tile(np.array([[30.0, 30.0, 30.0]]), (100, 1))
    data = np.vstack([inliers, duplicates])
    forest = IsolationForest(contamination=0.002, random_state=0).fit(data)
    assert int((~forest.fit_inlier_mask_).sum()) == 2


def test_scores_within_unit_interval(rng):
    data, _ = _data_with_outliers(rng)
    forest = IsolationForest(random_state=0).fit(data)
    scores = forest.score_samples(data)
    assert float(scores.min()) > 0.0
    assert float(scores.max()) < 1.0


def test_predict_flags_new_extreme_point(rng):
    data, _ = _data_with_outliers(rng)
    forest = IsolationForest(contamination=0.002, random_state=0).fit(data)
    verdict = forest.predict(np.array([[50.0, 50.0, 50.0, 50.0]]))
    assert verdict[0] == -1


def test_predict_accepts_typical_point(rng):
    data, _ = _data_with_outliers(rng)
    forest = IsolationForest(contamination=0.002, random_state=0).fit(data)
    verdict = forest.predict(np.array([[0.1, -0.2, 0.0, 0.3]]))
    assert verdict[0] == 1


def test_deterministic_given_seed(rng):
    data, _ = _data_with_outliers(rng)
    a = IsolationForest(random_state=7).fit(data).score_samples(data)
    b = IsolationForest(random_state=7).fit(data).score_samples(data)
    assert np.allclose(a, b)


def test_average_path_length_values():
    assert average_path_length(np.array([1.0]))[0] == 0.0
    assert average_path_length(np.array([2.0]))[0] == 1.0
    # c(n) grows logarithmically.
    big = average_path_length(np.array([256.0]))[0]
    assert 9.0 < big < 12.0


def test_average_path_length_monotone():
    values = average_path_length(np.arange(2.0, 100.0))
    assert np.all(np.diff(values) > 0.0)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        IsolationForest(n_estimators=0)
    with pytest.raises(ValueError):
        IsolationForest(max_samples=1)
    with pytest.raises(ValueError):
        IsolationForest(contamination=0.7)


def test_score_before_fit_rejected():
    with pytest.raises(RuntimeError, match="not fitted"):
        IsolationForest().score_samples(np.zeros((2, 2)))


def test_subsample_clamped_to_dataset(rng):
    data = rng.normal(size=(50, 2))
    forest = IsolationForest(max_samples=256, random_state=0).fit(data)
    assert forest.subsample_size_ == 50
