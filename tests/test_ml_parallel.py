"""Worker-pool determinism: jobs=N must be bit-identical to jobs=1."""

import numpy as np
import pytest

from repro.core.clustering import ClusterModel
from repro.core.config import PipelineConfig
from repro.core.pipeline import BrowserPolygraph
from repro.ml import kmeans as kmeans_mod
from repro.ml.elbow import elbow_analysis, elbow_seed, select_k_elbow
from repro.ml.kmeans import KMeans
from repro.ml.parallel import parallel_map, resolve_jobs
from repro.ml.rows import row_groups
from repro.traffic.generator import TrafficConfig, TrafficSimulator


def _square(payload, item):
    return (payload or 0) + item * item


def _matrix(seed=5, groups=40, repeats=6, width=7):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(groups, width))
    data = np.repeat(base, repeats, axis=0)
    return data[rng.permutation(data.shape[0])]


@pytest.fixture
def force_pool(monkeypatch):
    """Drop the work-size gate so small fits really cross processes."""
    monkeypatch.setattr(kmeans_mod, "_MIN_PARALLEL_WORK", 0)


class TestParallelMap:
    def test_inline_matches_input_order(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_pool_preserves_order_and_payload(self):
        result = parallel_map(_square, list(range(20)), jobs=4, payload=100)
        assert result == [100 + i * i for i in range(20)]

    def test_pool_equals_inline(self):
        items = list(range(17))
        assert parallel_map(_square, items, jobs=3) == parallel_map(
            _square, items, jobs=1
        )

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(6) == 6
        assert resolve_jobs(-1) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestRowGroups:
    def test_reconstruction_and_counts(self):
        data = _matrix(seed=3, groups=12, repeats=4, width=5)
        first, inverse, counts = row_groups(data)
        assert np.array_equal(data[first][inverse], data)
        assert counts.sum() == data.shape[0]
        assert first.size == 12

    def test_matches_np_unique(self):
        rng = np.random.default_rng(9)
        data = rng.integers(0, 3, size=(200, 4)).astype(float)
        first, inverse, counts = row_groups(data)
        uniq, u_inverse, u_counts = np.unique(
            data, axis=0, return_inverse=True, return_counts=True
        )
        assert np.array_equal(data[first], uniq)
        assert np.array_equal(inverse, u_inverse.ravel())
        assert np.array_equal(counts, u_counts)


class TestKMeansParity:
    def test_pool_fit_is_bit_identical(self, force_pool):
        data = _matrix()
        serial = KMeans(n_clusters=6, n_init=4, random_state=17, jobs=1).fit(data)
        pooled = KMeans(n_clusters=6, n_init=4, random_state=17, jobs=4).fit(data)
        assert np.array_equal(serial.cluster_centers_, pooled.cluster_centers_)
        assert np.array_equal(serial.labels_, pooled.labels_)
        assert serial.inertia_ == pooled.inertia_
        assert serial.n_iter_ == pooled.n_iter_

    def test_jobs_does_not_change_predictions(self, force_pool):
        data = _matrix(seed=11)
        probe = _matrix(seed=12, groups=10, repeats=1)
        serial = KMeans(n_clusters=5, n_init=3, random_state=2, jobs=1).fit(data)
        pooled = KMeans(n_clusters=5, n_init=3, random_state=2, jobs=2).fit(data)
        assert np.array_equal(serial.predict(probe), pooled.predict(probe))


class TestElbowParity:
    def test_pool_sweep_is_bit_identical(self, force_pool):
        data = _matrix(seed=21)
        serial = elbow_analysis(data, range(2, 9), n_init=3, random_state=5, jobs=1)
        pooled = elbow_analysis(data, range(2, 9), n_init=3, random_state=5, jobs=4)
        assert serial.ks == pooled.ks
        assert serial.wcss == pooled.wcss
        assert serial.relative_gain == pooled.relative_gain
        assert select_k_elbow(serial) == select_k_elbow(pooled)

    def test_sweep_matches_standalone_fit(self):
        data = _matrix(seed=23)
        curve = elbow_analysis(data, [4, 6], n_init=2, random_state=9)
        standalone = KMeans(
            n_clusters=6, n_init=2, random_state=elbow_seed(9, 6)
        ).fit(data)
        assert curve.wcss[curve.ks.index(6)] == standalone.inertia_

    def test_k_beyond_samples_rejected_upfront(self):
        data = _matrix(seed=25, groups=4, repeats=1)
        with pytest.raises(ValueError, match="n_samples"):
            elbow_analysis(data, [2, 10], n_init=2, random_state=1)


class TestPipelineParity:
    @pytest.fixture(scope="class")
    def window(self):
        return TrafficSimulator(TrafficConfig(seed=7).scaled(4000)).generate()

    def test_cluster_model_parity(self, force_pool, window):
        serial = ClusterModel(PipelineConfig()).fit(
            window.matrix(), list(window.ua_keys), jobs=1
        )
        pooled = ClusterModel(PipelineConfig()).fit(
            window.matrix(), list(window.ua_keys), jobs=4
        )
        assert np.array_equal(
            serial.kmeans.cluster_centers_, pooled.kmeans.cluster_centers_
        )
        assert serial.kmeans.inertia_ == pooled.kmeans.inertia_
        assert serial.ua_to_cluster == pooled.ua_to_cluster
        assert serial.cluster_table == pooled.cluster_table
        assert serial.accuracy_ == pooled.accuracy_

    def test_polygraph_fit_parity(self, force_pool, window):
        serial = BrowserPolygraph().fit(window, jobs=1)
        pooled = BrowserPolygraph().fit(window, jobs=4)
        assert serial.cluster_table == pooled.cluster_table
        assert serial.accuracy == pooled.accuracy
