"""CLI end-to-end tests (via the in-process entry point)."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """A dataset and a trained model produced through the CLI itself."""
    root = tmp_path_factory.mktemp("cli")
    dataset_path = str(root / "traffic.npz")
    model_path = str(root / "model.json")
    assert main(["simulate", dataset_path, "--sessions", "6000", "--seed", "3"]) == 0
    assert main(["train", model_path, "--dataset", dataset_path]) == 0
    return dataset_path, model_path


def test_simulate_writes_loadable_dataset(artifacts):
    from repro.traffic.dataset import Dataset

    dataset_path, _ = artifacts
    dataset = Dataset.load(dataset_path)
    assert len(dataset) == 6000


def test_train_writes_model_json(artifacts):
    _, model_path = artifacts
    document = json.loads(open(model_path).read())
    assert document["format_version"] == 1
    assert len(document["kmeans"]["centers"]) == 11
    assert document["accuracy"] > 0.97


def test_detect_runs(artifacts, capsys):
    dataset_path, model_path = artifacts
    assert main(["detect", model_path, dataset_path]) == 0
    out = capsys.readouterr().out
    assert "flagged" in out


def test_drift_runs(artifacts, capsys):
    dataset_path, model_path = artifacts
    assert main(["drift", model_path, dataset_path]) == 0
    out = capsys.readouterr().out
    assert "retraining needed" in out


def test_experiment_table2(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SESSIONS", "6000")
    assert main(["experiment", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Browser Polygraph" in out and "AmIUnique" in out


def test_figures_command(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SESSIONS", "6000")
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    for needle in ("Figure 2", "Figure 3", "Figure 4", "Figure 5"):
        assert needle in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "table99"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
