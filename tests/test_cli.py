"""CLI end-to-end tests (via the in-process entry point)."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """A dataset and a trained model produced through the CLI itself."""
    root = tmp_path_factory.mktemp("cli")
    dataset_path = str(root / "traffic.npz")
    model_path = str(root / "model.json")
    assert main(["simulate", dataset_path, "--sessions", "6000", "--seed", "3"]) == 0
    assert main(["train", model_path, "--dataset", dataset_path]) == 0
    return dataset_path, model_path


def test_simulate_writes_loadable_dataset(artifacts):
    from repro.traffic.dataset import Dataset

    dataset_path, _ = artifacts
    dataset = Dataset.load(dataset_path)
    assert len(dataset) == 6000


def test_train_writes_model_json(artifacts):
    _, model_path = artifacts
    document = json.loads(open(model_path).read())
    assert document["format_version"] == 1
    assert len(document["kmeans"]["centers"]) == 11
    assert document["accuracy"] > 0.97


def test_detect_runs(artifacts, capsys):
    dataset_path, model_path = artifacts
    assert main(["detect", model_path, dataset_path]) == 0
    out = capsys.readouterr().out
    assert "flagged" in out


def test_drift_runs(artifacts, capsys):
    dataset_path, model_path = artifacts
    assert main(["drift", model_path, dataset_path]) == 0
    out = capsys.readouterr().out
    assert "retraining needed" in out


def test_experiment_table2(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SESSIONS", "6000")
    assert main(["experiment", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Browser Polygraph" in out and "AmIUnique" in out


def test_figures_command(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SESSIONS", "6000")
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    for needle in ("Figure 2", "Figure 3", "Figure 4", "Figure 5"):
        assert needle in out


def test_retrain_from_dataset(artifacts, tmp_path, capsys):
    dataset_path, model_path = artifacts
    output = str(tmp_path / "refreshed.json")
    assert main(
        ["retrain", model_path, "--dataset", dataset_path, "--output", output]
    ) == 0
    out = capsys.readouterr().out
    assert "retrained on 6000 sessions" in out
    document = json.loads(open(output).read())
    assert document["format_version"] == 1


def test_retrain_requires_one_source(artifacts, capsys):
    _, model_path = artifacts
    assert main(["retrain", model_path]) == 2
    assert "--dataset or --store" in capsys.readouterr().err


def test_store_info_and_migrate(tmp_path, capsys):
    from datetime import date

    from repro.browsers.profiles import BrowserProfile
    from repro.browsers.useragent import Vendor
    from repro.fingerprint.script import CollectionScript
    from repro.service.storage import SessionStore

    root = tmp_path / "store"
    store = SessionStore(root)
    profile = BrowserProfile(Vendor.CHROME, 112)
    for i in range(4):
        store.append(
            CollectionScript().run(
                profile.environment(), profile.user_agent(), f"cli-{i}"
            ),
            day=date(2023, 5, 2),
        )
    store.flush()

    assert main(["store", "info", str(root)]) == 0
    assert "4 records" in capsys.readouterr().out
    assert main(["store", "migrate", str(root)]) == 0
    assert "sealed 1 segment" in capsys.readouterr().out
    assert main(["store", "migrate", str(root)]) == 0
    assert "no JSONL segments" in capsys.readouterr().out

    dataset = SessionStore(root).export_dataset()
    assert len(dataset) == 4


def test_train_with_jobs_matches_serial(artifacts, tmp_path):
    dataset_path, model_path = artifacts
    parallel_path = str(tmp_path / "model-jobs.json")
    assert main(
        ["train", parallel_path, "--dataset", dataset_path, "--jobs", "2"]
    ) == 0
    serial = json.loads(open(model_path).read())
    parallel = json.loads(open(parallel_path).read())
    assert parallel["kmeans"]["centers"] == serial["kmeans"]["centers"]
    assert parallel["accuracy"] == serial["accuracy"]


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "table99"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_bench_runtime_smoke(capsys):
    assert main(
        ["bench-runtime", "--sessions", "1500", "--concurrency", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "cache hit rate" in out


def test_rollout_cli_lifecycle(artifacts, tmp_path, capsys):
    from datetime import date

    from repro.core.pipeline import BrowserPolygraph
    from repro.core.retraining import ModelRegistry

    _, model_path = artifacts
    registry_dir = str(tmp_path / "registry")
    registry = ModelRegistry(registry_dir)
    pipeline = BrowserPolygraph.load(model_path)
    registry.promote(pipeline, date(2023, 7, 1), "bootstrap")
    registry.stage_candidate(pipeline, date(2023, 8, 1), "candidate")

    assert main(["rollout", registry_dir, "start", "--stages", "0.25,1.0"]) == 0
    out = capsys.readouterr().out
    assert "started in shadow" in out

    assert main(["rollout", registry_dir, "status"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["status"] == "shadow"
    assert status["candidate_version"] == 2

    for expectation in ("canary stage 0", "canary stage 1", "is live"):
        assert main(["rollout", registry_dir, "promote"]) == 0
        assert expectation in capsys.readouterr().out
    assert registry.live_version == 2


def test_rollout_cli_abort_and_errors(artifacts, tmp_path, capsys):
    from datetime import date

    from repro.core.pipeline import BrowserPolygraph
    from repro.core.retraining import ModelRegistry

    _, model_path = artifacts
    registry_dir = str(tmp_path / "registry")

    # Status/abort before any rollout is a clean error, not a crash.
    assert main(["rollout", registry_dir, "status"]) == 2
    capsys.readouterr()

    registry = ModelRegistry(registry_dir)
    pipeline = BrowserPolygraph.load(model_path)
    registry.promote(pipeline, date(2023, 7, 1), "bootstrap")

    # No staged candidate yet.
    assert main(["rollout", registry_dir, "start"]) == 2
    capsys.readouterr()

    registry.stage_candidate(pipeline, date(2023, 8, 1), "candidate")
    assert main(["rollout", registry_dir, "start"]) == 0
    capsys.readouterr()
    assert main(["rollout", registry_dir, "abort"]) == 0
    assert "aborted" in capsys.readouterr().out
    assert registry.live_version == 1


def test_serve_requires_model_or_registry(capsys):
    assert main(["serve"]) == 2
    assert "--registry" in capsys.readouterr().err


def test_serve_parser_accepts_runtime_flags(artifacts):
    import argparse

    from repro.cli import _build_parser

    _, model_path = artifacts
    args = _build_parser().parse_args(
        [
            "serve",
            model_path,
            "--runtime",
            "--workers", "2",
            "--batch-size", "16",
            "--linger-ms", "1.5",
            "--queue-capacity", "128",
            "--cache-entries", "512",
            "--cache-ttl", "60",
            "--port", "0",
        ]
    )
    assert isinstance(args, argparse.Namespace)
    assert args.runtime and args.workers == 2 and args.cache_ttl == 60.0


def test_serve_parser_accepts_cluster_flags(artifacts):
    from repro.cli import _build_parser

    _, model_path = artifacts
    args = _build_parser().parse_args(
        [
            "serve",
            model_path,
            "--shards", "4",
            "--shard-backend", "thread",
            "--affinity", "fingerprint",
            "--hedge-ms", "5.0",
        ]
    )
    assert args.shards == 4
    assert args.shard_backend == "thread"
    assert args.affinity == "fingerprint"
    assert args.hedge_ms == 5.0


def test_build_cluster_serves_a_router(artifacts):
    import argparse

    from repro.cli import _build_cluster
    from repro.cluster import ClusterRouter

    _, model_path = artifacts
    args = argparse.Namespace(
        model=model_path, shards=2, shard_backend="thread",
        affinity="session", hedge_ms=None, workers=1, batch_size=16,
        linger_ms=1.0, queue_capacity=256, cache_entries=128, cache_ttl=60.0,
        transport="shm", ring_slots=256,
    )
    router, managers = _build_cluster(args, None)
    try:
        assert isinstance(router, ClusterRouter)
        assert managers == []
        assert router.supervisor.healthy_count == 2
        assert router.cluster_status()["n_shards"] == 2
    finally:
        router.shutdown()


def test_cluster_status_command_against_live_server(artifacts, capsys):
    import threading
    from wsgiref.simple_server import make_server

    from repro.cluster import ClusterConfig, ClusterRouter, ShardSupervisor
    from repro.core.pipeline import BrowserPolygraph
    from repro.service.api import CollectionApp

    _, model_path = artifacts
    supervisor = ShardSupervisor.from_polygraph(
        BrowserPolygraph.load(model_path),
        config=ClusterConfig(n_shards=2, heartbeat_interval_s=5.0),
    )
    router = ClusterRouter(supervisor).start()
    httpd = make_server("127.0.0.1", 0, CollectionApp(router))
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{httpd.server_port}"
        assert main(["cluster", "status", "--url", url]) == 0
        out = capsys.readouterr().out
        assert "2/2 shards healthy" in out
        assert "s0" in out and "s1" in out
    finally:
        httpd.shutdown()
        thread.join(timeout=5)
        httpd.server_close()
        router.shutdown()


def test_cluster_status_reports_single_process_servers(artifacts, capsys):
    import threading
    from wsgiref.simple_server import make_server

    from repro.core.pipeline import BrowserPolygraph
    from repro.service.api import CollectionApp
    from repro.service.scoring import ScoringService

    _, model_path = artifacts
    service = ScoringService(BrowserPolygraph.load(model_path))
    httpd = make_server("127.0.0.1", 0, CollectionApp(service))
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{httpd.server_port}"
        assert main(["cluster", "status", "--url", url]) == 1
        assert "single-process" in capsys.readouterr().out
    finally:
        httpd.shutdown()
        thread.join(timeout=5)
        httpd.server_close()


def test_cluster_status_unreachable_server(capsys):
    assert main(["cluster", "status", "--url", "http://127.0.0.1:1"]) == 2
    assert "cannot reach" in capsys.readouterr().err


def test_serve_parser_accepts_coverage_flag(artifacts):
    from repro.cli import _build_parser

    _, model_path = artifacts
    args = _build_parser().parse_args(["serve", model_path, "--coverage"])
    assert args.coverage is True
    args = _build_parser().parse_args(["serve", model_path])
    assert args.coverage is False


def test_coverage_status_command_against_live_server(artifacts, capsys):
    import threading
    from wsgiref.simple_server import make_server

    from repro.core.pipeline import BrowserPolygraph
    from repro.coverage import CoverageTracker
    from repro.service.api import CollectionApp
    from repro.service.scoring import ScoringService

    _, model_path = artifacts
    service = ScoringService(BrowserPolygraph.load(model_path))
    tracker = CoverageTracker()
    service.attach_coverage(tracker)
    httpd = make_server(
        "127.0.0.1", 0, CollectionApp(service, coverage=tracker)
    )
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{httpd.server_port}"
        assert main(["coverage", "status", "--url", url]) == 0
        out = capsys.readouterr().out
        assert "known releases" in out
        assert "chrome" in out and "firefox" in out
    finally:
        httpd.shutdown()
        thread.join(timeout=5)
        httpd.server_close()


def test_coverage_status_reports_untracked_server(artifacts, capsys):
    import threading
    from wsgiref.simple_server import make_server

    from repro.core.pipeline import BrowserPolygraph
    from repro.service.api import CollectionApp
    from repro.service.scoring import ScoringService

    _, model_path = artifacts
    service = ScoringService(BrowserPolygraph.load(model_path))
    httpd = make_server("127.0.0.1", 0, CollectionApp(service))
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{httpd.server_port}"
        assert main(["coverage", "status", "--url", url]) == 1
        assert "without coverage" in capsys.readouterr().out
    finally:
        httpd.shutdown()
        thread.join(timeout=5)
        httpd.server_close()


def test_coverage_status_unreachable_server(capsys):
    assert main(["coverage", "status", "--url", "http://127.0.0.1:1"]) == 2
    assert "cannot reach" in capsys.readouterr().err


def test_serve_drains_on_sigterm(artifacts):
    import os
    import signal
    import threading
    import time
    from urllib.request import urlopen
    from wsgiref.simple_server import make_server

    from repro.cli import _serve_until_signalled
    from repro.core.pipeline import BrowserPolygraph
    from repro.service.api import CollectionApp
    from repro.service.scoring import ScoringService

    _, model_path = artifacts
    service = ScoringService(BrowserPolygraph.load(model_path))
    with make_server("127.0.0.1", 0, CollectionApp(service)) as httpd:
        port = httpd.server_port

        def _fire():
            # Prove the server answers, then deliver a real SIGTERM.
            deadline = time.time() + 5.0
            while time.time() < deadline:
                try:
                    with urlopen(
                        f"http://127.0.0.1:{port}/health", timeout=2.0
                    ) as response:
                        assert response.status == 200
                    break
                except OSError:
                    time.sleep(0.05)
            os.kill(os.getpid(), signal.SIGTERM)

        threading.Thread(target=_fire, daemon=True).start()
        before = signal.getsignal(signal.SIGTERM)
        _serve_until_signalled(httpd)  # returns only because of the signal
        assert signal.getsignal(signal.SIGTERM) is before


def test_build_service_selects_runtime(artifacts):
    import argparse

    from repro.cli import _build_service
    from repro.core.pipeline import BrowserPolygraph
    from repro.runtime.service import RuntimeScoringService
    from repro.service.scoring import ScoringService

    _, model_path = artifacts
    pipeline = BrowserPolygraph.load(model_path)
    base = argparse.Namespace(
        runtime=False, workers=2, batch_size=16, linger_ms=1.0,
        queue_capacity=64, cache_entries=128, cache_ttl=60.0,
    )
    assert isinstance(_build_service(pipeline, base), ScoringService)
    base.runtime = True
    service = _build_service(pipeline, base)
    try:
        assert isinstance(service, RuntimeScoringService)
        assert service.pool.is_running
    finally:
        service.shutdown()
