"""Safe model rollout: shadow scoring, canary ramp, automatic rollback."""

import json
from datetime import date

import pytest

from repro.core.retraining import (
    STATUS_CANDIDATE,
    STATUS_LIVE,
    STATUS_ROLLED_BACK,
    ModelRegistry,
)
from repro.rollout import (
    CANARY,
    LIVE,
    ROLLED_BACK,
    SHADOW,
    DisagreementReport,
    GuardrailConfig,
    RolloutConfig,
    RolloutError,
    RolloutManager,
    RolloutState,
    load_state,
    save_state,
    session_bucket,
)
from repro.runtime.service import RuntimeConfig, RuntimeScoringService
from repro.service.api import CollectionApp
from repro.service.scoring import ScoringService
from repro.traffic.replay import iter_payloads

SALT = "fixed-test-salt"


def _stage_wires(dataset, prefix, limit):
    """Replay wires with fresh session ids (dodges the dedup window)."""
    wires = []
    for idx, payload in enumerate(iter_payloads(dataset, limit)):
        body = json.loads(payload.to_wire().decode())
        body["sid"] = f"{prefix}-{idx}"
        wires.append(json.dumps(body, separators=(",", ":")).encode())
    return wires


def _fields(verdict):
    return (verdict.accepted, verdict.flagged, verdict.risk_factor)


def _break_model(polygraph):
    """Rotate the cluster table so every expectation is wrong."""
    model = polygraph.cluster_model
    k = model.config.n_clusters
    model.ua_to_cluster = {
        ua: (cluster + 1) % k for ua, cluster in model.ua_to_cluster.items()
    }
    model._rebuild_table()
    return polygraph


@pytest.fixture()
def registry(tmp_path, trained):
    """v1 live (the baseline) + v2 staged candidate (identical model)."""
    reg = ModelRegistry(tmp_path / "registry")
    reg.promote(trained, date(2023, 7, 1), "bootstrap")
    reg.stage_candidate(reg.load(1), date(2023, 8, 1), "retrained candidate")
    return reg


def _runtime(registry, **config_kwargs):
    live = registry.load(1)
    kwargs = {"n_workers": 2, "max_linger_ms": 0.5}
    kwargs.update(config_kwargs)
    return RuntimeScoringService(live, config=RuntimeConfig(**kwargs)).start()


def _manager(registry, runtime, tmp_path, **overrides):
    config = RolloutConfig(
        stages=overrides.pop("stages", (0.25, 1.0)),
        shadow_sample_rate=overrides.pop("shadow_sample_rate", 0.5),
        min_stage_verdicts=overrides.pop("min_stage_verdicts", 3),
    )
    guardrails = GuardrailConfig(
        max_disagreement_rate=overrides.pop("max_disagreement_rate", 0.02),
        max_flag_rate_delta=overrides.pop("max_flag_rate_delta", 0.02),
        min_comparisons=overrides.pop("min_comparisons", 25),
    )
    assert not overrides
    return RolloutManager(
        registry,
        runtime=runtime,
        config=config,
        guardrails=guardrails,
        state_path=tmp_path / "rollout.json",
    )


class TestSessionBucket:
    def test_deterministic_and_in_range(self):
        buckets = [session_bucket(SALT, f"s-{i}") for i in range(500)]
        assert buckets == [session_bucket(SALT, f"s-{i}") for i in range(500)]
        assert all(0.0 <= b < 1.0 for b in buckets)
        # Roughly uniform: both halves populated.
        assert 100 < sum(b < 0.5 for b in buckets) < 400

    def test_salt_changes_assignment(self):
        ids = [f"s-{i}" for i in range(200)]
        a = {sid: session_bucket("salt-a", sid) < 0.25 for sid in ids}
        b = {sid: session_bucket("salt-b", sid) < 0.25 for sid in ids}
        assert a != b

    def test_growing_stages_are_sticky(self):
        ids = [f"s-{i}" for i in range(1000)]
        at_1 = {sid for sid in ids if session_bucket(SALT, sid) < 0.01}
        at_25 = {sid for sid in ids if session_bucket(SALT, sid) < 0.25}
        assert at_1 <= at_25


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stages": ()},
            {"stages": (0.5, 0.25)},
            {"stages": (0.0, 1.0)},
            {"stages": (0.5, 1.5)},
            {"shadow_sample_rate": 0.0},
            {"min_stage_verdicts": 0},
        ],
    )
    def test_bad_rollout_config(self, kwargs):
        with pytest.raises(ValueError):
            RolloutConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_disagreement_rate": 1.5},
            {"max_flag_rate_delta": -0.1},
            {"max_latency_p99_ms": 0},
            {"min_comparisons": 0},
        ],
    )
    def test_bad_guardrails(self, kwargs):
        with pytest.raises(ValueError):
            GuardrailConfig(**kwargs)


class TestRolloutState:
    def test_roundtrip(self, tmp_path):
        state = RolloutState(
            candidate_version=2,
            baseline_version=1,
            stages=(0.01, 1.0),
            shadow_sample_rate=0.5,
            salt=SALT,
            status=CANARY,
            stage_index=1,
        )
        state.record("advance", 12.5)
        path = tmp_path / "state.json"
        save_state(state, path)
        restored = load_state(path)
        assert restored == state
        assert restored.stage_fraction == 1.0

    def test_missing_file_is_none(self, tmp_path):
        assert load_state(tmp_path / "absent.json") is None

    def test_stage_fraction_by_status(self):
        state = RolloutState(2, 1, (0.25, 1.0), 0.5, SALT)
        assert state.stage_fraction == 0.0  # shadow
        state.status = CANARY
        state.stage_index = 0
        assert state.stage_fraction == 0.25
        state.status = LIVE
        assert state.stage_fraction == 1.0


class TestDisagreementReport:
    def test_rates_and_per_ua(self):
        report = DisagreementReport()
        for _ in range(8):
            report.record("chrome-112", False, None, False, None)
        report.record("firefox-119", False, None, True, 3)
        report.record("firefox-119", True, 2, True, 2)
        assert report.comparisons == 10
        assert report.disagreement_rate == pytest.approx(0.1)
        assert report.flag_rate_delta == pytest.approx(0.1)
        assert report.per_ua()["firefox-119"]["rate"] == pytest.approx(0.5)
        assert report.risk_shift > 0

    def test_snapshot_restore_roundtrip(self):
        report = DisagreementReport()
        report.record("chrome-112", False, None, True, 5)
        report.note_shed()
        restored = DisagreementReport.restore(report.snapshot())
        assert restored.snapshot() == report.snapshot()
        assert restored.disagreement_rate == report.disagreement_rate


class TestInferredVerdictMirroring:
    """Interim inferred *flags* are not comparison evidence; passes are.

    A candidate retrained to know a fresh release rightly disagrees
    with live's inferred false flags on it — those pairs must not feed
    the disagreement guardrail.  But live's inferred passes still
    mirror, so an overblocking candidate (the chaos drill) is caught.
    """

    class _Result:
        def __init__(self, flagged, inferred_release):
            self.flagged = flagged
            self.risk_factor = 2 if flagged else None
            self.inferred_release = inferred_release

    def test_only_inferred_flags_are_skipped(self, registry, tmp_path):
        manager = RolloutManager(
            registry, state_path=tmp_path / "rollout.json"
        )
        seen = []

        class _Shadow:
            def mirror(self, values, ua_key, flagged, risk):
                seen.append((ua_key, flagged))

        manager._shadow = _Shadow()
        manager.mirror(None, "chrome-200", self._Result(True, "chrome-114"))
        manager.mirror(None, "chrome-200", self._Result(False, "chrome-114"))
        manager.mirror(None, "chrome-114", self._Result(True, None))
        assert seen == [("chrome-200", False), ("chrome-114", True)]


class TestHealthyRollout:
    """A well-behaved candidate walks shadow → canary → live."""

    def test_end_to_end_promotion(self, registry, small_dataset, tmp_path):
        runtime = _runtime(registry)
        manager = _manager(registry, runtime, tmp_path)
        try:
            state = manager.start(2, salt=SALT)
            assert state.status == SHADOW and runtime.rollout is manager

            # Shadow: live serves everything, half of it mirrored.
            for wire in _stage_wires(small_dataset, "shadow", 300):
                runtime.score_wire(wire)
            assert manager.drain_shadow()
            assert manager.report.comparisons >= 25
            assert manager.report.disagreement_rate == 0.0
            assert manager.evaluate() is None

            invalidations_before = runtime.cache.invalidations
            for stage, prefix in enumerate(("canary0", "canary1")):
                state = manager.advance()
                assert state.status == CANARY and state.stage_index == stage
                # Exactly one cache invalidation per stage transition.
                assert (
                    runtime.cache.invalidations
                    == invalidations_before + stage + 1
                )
                for wire in _stage_wires(small_dataset, prefix, 300):
                    runtime.score_wire(wire)
                assert manager.drain_shadow()
                assert manager.controller.stage_verdicts >= 3

            generation_before = runtime.polygraph.model_generation
            state = manager.advance()
            assert state.status == LIVE
            # Promotion = install: one generation bump, whose swap
            # listener performs the transition's single invalidation.
            assert runtime.polygraph.model_generation == generation_before + 1
            assert runtime.cache.invalidations == invalidations_before + 3
            assert runtime.rollout is None
            assert registry.live_version == 2
            entry = registry.versions()[1]
            assert entry["version"] == 2 and entry["status"] == STATUS_LIVE

            # Post-promotion verdicts match the candidate model.
            wires = _stage_wires(small_dataset, "after", 200)
            baseline = ScoringService(registry.load(2))
            expected = [_fields(baseline.score_wire(w)) for w in wires]
            assert [_fields(runtime.score_wire(w)) for w in wires] == expected
        finally:
            manager.close()
            runtime.shutdown()

    def test_advance_requires_evidence(self, registry, tmp_path):
        runtime = _runtime(registry)
        manager = _manager(registry, runtime, tmp_path)
        try:
            manager.start(2, salt=SALT)
            with pytest.raises(RolloutError, match="not complete"):
                manager.advance()
        finally:
            manager.close()
            runtime.shutdown()

    def test_only_one_rollout_at_a_time(self, registry, tmp_path):
        runtime = _runtime(registry)
        manager = _manager(registry, runtime, tmp_path)
        try:
            manager.start(2, salt=SALT)
            with pytest.raises(RolloutError, match="in flight"):
                manager.start(2)
        finally:
            manager.close()
            runtime.shutdown()


class TestBrokenCandidate:
    """A bad candidate is caught mid-ramp and rolled back automatically."""

    def test_guardrail_breach_rolls_back(self, registry, small_dataset, tmp_path):
        broken_version = registry.stage_candidate(
            _break_model(registry.load(1)), date(2023, 8, 2), "broken"
        )
        runtime = _runtime(registry)
        manager = _manager(registry, runtime, tmp_path)
        rollbacks = []
        try:
            manager.begin(
                registry.load(broken_version),
                broken_version,
                salt=SALT,
                on_rollback=rollbacks.append,
            )
            # Straight into canary: the operator force-advances before
            # the shadow stage has gathered evidence.
            state = manager.advance(force=True)
            assert state.status == CANARY and state.stage_fraction == 0.25

            for wire in _stage_wires(small_dataset, "ramp", 400):
                runtime.score_wire(wire)
            manager.drain_shadow()

            state = manager.state
            assert state.status == ROLLED_BACK
            assert state.breach is not None
            assert state.breach["name"] in ("disagreement_rate", "flag_rate_delta")
            assert rollbacks and rollbacks[0] is not None
            assert runtime.rollout is None
            entry = [
                e
                for e in registry.versions()
                if e["version"] == broken_version
            ][0]
            assert entry["status"] == STATUS_ROLLED_BACK
            assert registry.live_version == 1

            # The runtime provably serves the prior model's verdicts —
            # including for sessions that were on the candidate arm.
            wires = _stage_wires(small_dataset, "post", 300)
            baseline = ScoringService(registry.load(1))
            expected = [_fields(baseline.score_wire(w)) for w in wires]
            assert [_fields(runtime.score_wire(w)) for w in wires] == expected
            # Sanity: the broken model would have disagreed on these.
            broken_scores = ScoringService(registry.load(broken_version))
            assert [
                _fields(broken_scores.score_wire(w))
                for w in _stage_wires(small_dataset, "post", 300)
            ] != expected
        finally:
            manager.close()
            runtime.shutdown()

    def test_rollback_after_promotion_reinstalls_baseline(
        self, registry, small_dataset, tmp_path
    ):
        runtime = _runtime(registry)
        manager = _manager(registry, runtime, tmp_path, min_comparisons=5)
        try:
            manager.start(2, salt=SALT)
            for wire in _stage_wires(small_dataset, "shadow", 100):
                runtime.score_wire(wire)
            manager.drain_shadow()
            manager.advance(force=True)
            manager.advance(force=True)
            state = manager.advance(force=True)
            assert state.status == LIVE

            generation = runtime.polygraph.model_generation
            state = manager.rollback()
            assert state.status == ROLLED_BACK
            # Baseline reinstalled: generation bumped again.
            assert runtime.polygraph.model_generation == generation + 1
            assert registry.live_version == 1
        finally:
            manager.close()
            runtime.shutdown()


class TestRestartResume:
    """Rollout state survives a process restart mid-canary."""

    def test_resume_keeps_stage_and_split(
        self, registry, small_dataset, tmp_path
    ):
        runtime = _runtime(registry)
        manager = _manager(registry, runtime, tmp_path, min_comparisons=5)
        sids = [f"resume-{i}" for i in range(200)]
        try:
            manager.start(2, salt=SALT)
            for wire in _stage_wires(small_dataset, "shadow", 100):
                runtime.score_wire(wire)
            manager.drain_shadow()
            state = manager.advance(force=True)
            assert state.status == CANARY and state.stage_index == 0
            routes_before = {sid: manager.route(sid) for sid in sids}
            comparisons_before = manager.report.comparisons
            manager.save()
        finally:
            manager.close()
            runtime.shutdown()  # the "crash"

        runtime2 = _runtime(registry)
        manager2 = _manager(registry, runtime2, tmp_path, min_comparisons=5)
        try:
            state = manager2.resume()
            assert state is not None and state.in_flight
            assert state.status == CANARY and state.stage_index == 0
            assert state.salt == SALT
            assert runtime2.rollout is manager2
            # Same salt, same stage → bit-identical sticky split.
            assert {sid: manager2.route(sid) for sid in sids} == routes_before
            # The disagreement evidence survived too.
            assert manager2.report.comparisons == comparisons_before
            # And the resumed rollout can still finish.
            manager2.advance(force=True)
            state = manager2.advance(force=True)
            assert state.status == LIVE
            assert registry.live_version == 2
        finally:
            manager2.close()
            runtime2.shutdown()

    def test_resume_without_state_is_noop(self, registry, tmp_path):
        manager = RolloutManager(registry, state_path=tmp_path / "none.json")
        assert manager.resume() is None
        assert not manager.in_flight

    def test_resume_aborts_when_candidate_missing(self, registry, tmp_path):
        path = tmp_path / "rollout.json"
        state = RolloutState(99, 1, (1.0,), 0.5, SALT, status=CANARY, stage_index=0)
        save_state(state, path)
        manager = RolloutManager(registry, state_path=path)
        resumed = manager.resume()
        assert resumed.status == "aborted"
        assert load_state(path).status == "aborted"


class TestOfflineManager:
    """The CLI drives the same state machine without a runtime."""

    def test_offline_walk_to_live(self, registry, tmp_path):
        manager = _manager(registry, None, tmp_path)
        manager.start(2, salt=SALT)
        manager.advance(force=True)
        manager.advance(force=True)
        state = manager.advance(force=True)
        assert state.status == LIVE
        assert registry.live_version == 2

    def test_abort_marks_candidate(self, registry, tmp_path):
        manager = _manager(registry, None, tmp_path)
        manager.start(2, salt=SALT)
        state = manager.abort()
        assert state.status == "aborted"
        assert registry.versions()[1]["status"] == STATUS_ROLLED_BACK
        assert registry.live_version == 1


class TestMetricsAndEndpoint:
    def test_metrics_lines(self, registry, small_dataset, tmp_path):
        runtime = _runtime(registry)
        manager = _manager(registry, runtime, tmp_path)
        try:
            manager.start(2, salt=SALT)
            for wire in _stage_wires(small_dataset, "m", 60):
                runtime.score_wire(wire)
            manager.drain_shadow()
            lines = runtime.runtime_metrics_lines()
            rendered = "\n".join(lines)
            # The generation gauge is absolute: no runtime prefix.
            assert any(
                line.startswith("polygraph_model_generation ") for line in lines
            )
            assert "polygraph_runtime_polygraph_model_generation" not in rendered
            assert "polygraph_rollout_in_flight 1" in rendered
            assert "polygraph_rollout_stage -1" in rendered
            assert "polygraph_rollout_disagreement_rate" in rendered
            assert "polygraph_rollout_stage_age_seconds" in rendered
            assert "polygraph_rollout_comparisons_total" in rendered
        finally:
            manager.close()
            runtime.shutdown()

    def test_rollout_endpoint(self, registry, tmp_path):
        runtime = _runtime(registry)
        manager = _manager(registry, runtime, tmp_path)

        def get(app, path):
            captured = {}

            def start_response(status, headers):
                captured["status"] = status

            body = b"".join(
                app({"REQUEST_METHOD": "GET", "PATH_INFO": path}, start_response)
            )
            return captured["status"], json.loads(body.decode())

        try:
            app = CollectionApp(runtime)
            status, body = get(app, "/rollout")
            assert status.startswith("404")

            manager.start(2, salt=SALT)
            status, body = get(app, "/rollout")
            assert status.startswith("200")
            assert body["status"] == SHADOW
            assert body["candidate_version"] == 2
            assert body["baseline_version"] == 1
            assert body["comparisons"] == 0
        finally:
            manager.close()
            runtime.shutdown()
