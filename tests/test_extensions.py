"""Section 8 extensions: stratified sampling and the namespace probe."""

import numpy as np
import pytest

from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor, parse_ua_key
from repro.core.config import PipelineConfig
from repro.core.pipeline import BrowserPolygraph
from repro.core.sampling import stratified_sample, stratum_counts
from repro.fingerprint.script import CollectionScript
from repro.fraudbrowsers.base import FraudProfile
from repro.fraudbrowsers.catalog import fraud_browser
from repro.fraudbrowsers.namespace_probe import (
    scan_environment,
    scan_globals,
)


class TestStratifiedSampling:
    def test_caps_large_strata(self, small_dataset):
        sampled = stratified_sample(small_dataset, max_per_stratum=50)
        counts = stratum_counts(sampled)
        assert max(counts.values()) <= 50

    def test_keeps_small_strata_whole(self, small_dataset):
        before = stratum_counts(small_dataset)
        sampled = stratified_sample(small_dataset, max_per_stratum=50)
        after = stratum_counts(sampled)
        for key, count in before.items():
            if count <= 50:
                assert after.get(key) == count

    def test_preserves_all_strata(self, small_dataset):
        sampled = stratified_sample(small_dataset, max_per_stratum=10)
        assert set(stratum_counts(sampled)) == set(stratum_counts(small_dataset))

    def test_deterministic(self, small_dataset):
        a = stratified_sample(small_dataset, max_per_stratum=30, seed=1)
        b = stratified_sample(small_dataset, max_per_stratum=30, seed=1)
        assert a.session_ids.tolist() == b.session_ids.tolist()

    def test_training_on_sample_preserves_table_structure(self, small_dataset, trained):
        sampled = stratified_sample(small_dataset, max_per_stratum=400)
        assert len(sampled) < len(small_dataset)
        polygraph = BrowserPolygraph().fit(sampled)
        # Rare user-agents survive the downsampling into the table.
        full_table = trained.cluster_model.ua_to_cluster
        sampled_table = polygraph.cluster_model.ua_to_cluster
        assert set(sampled_table) == set(full_table)
        assert polygraph.accuracy > 0.98

    def test_invalid_parameters_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            stratified_sample(small_dataset, max_per_stratum=0)
        with pytest.raises(ValueError):
            stratified_sample(small_dataset, max_per_stratum=5, min_per_stratum=9)


class TestNamespaceProbe:
    def test_genuine_browser_is_clean(self):
        env = BrowserProfile(Vendor.CHROME, 112).environment()
        assert scan_environment(env) == []

    def test_antbrowser_detected_by_name(self):
        ant = fraud_browser("AntBrowser-2023.05")
        env = ant.environment(FraudProfile(ant.full_name, parse_ua_key("chrome-112")))
        hits = scan_environment(env)
        assert {h.product for h in hits} == {"AntBrowser"}
        assert "ANTBROWSER" in {h.global_name for h in hits}

    def test_linken_sphere_and_clonbrowser_detected(self):
        for label, product_name in (
            ("Linken Sphere-8.93", "Linken Sphere"),
            ("ClonBrowser-4.6.6", "ClonBrowser"),
        ):
            product = fraud_browser(label)
            env = product.environment(
                FraudProfile(product.full_name, parse_ua_key("chrome-110"))
            )
            hits = scan_environment(env)
            assert any(h.product == product_name for h in hits)

    def test_generic_wrapper_heuristic(self):
        hits = scan_globals(["__wrapper__", "spoofEngine", "fetch"])
        assert len(hits) == 2
        assert all(h.product == "unknown-wrapper" for h in hits)

    def test_standard_globals_never_hit(self):
        hits = scan_globals(["window", "document", "localStorage"])
        assert hits == []

    def test_payload_carries_probe_findings(self):
        ant = fraud_browser("AntBrowser-2023.05")
        env = ant.environment(FraudProfile(ant.full_name, parse_ua_key("chrome-112")))
        payload = CollectionScript().run(env, "chrome-112")
        assert "ANTBROWSER" in payload.suspicious_globals
        assert payload.size_bytes <= 1024  # still within the budget

    def test_clean_payload_omits_probe_field(self):
        profile = BrowserProfile(Vendor.FIREFOX, 110)
        payload = CollectionScript().run(profile.environment(), profile.user_agent())
        assert payload.suspicious_globals == ()
        assert b'"g"' not in payload.to_wire()


class TestProbeEscalation:
    @pytest.fixture(scope="class")
    def probing_polygraph(self, small_dataset):
        config = PipelineConfig(enable_namespace_probe=True)
        return BrowserPolygraph(config).fit(small_dataset)

    def _antbrowser_payload(self, claimed_key: str):
        ant = fraud_browser("AntBrowser-2023.05")
        env = ant.environment(FraudProfile(ant.full_name, parse_ua_key(claimed_key)))
        return CollectionScript().run(env, claimed_key)

    def test_escalates_even_when_cluster_matches(self, probing_polygraph):
        # AntBrowser's Chromium 112 engine claiming a same-cluster UA
        # evades the clustering check but not the probe.
        engine_cluster = probing_polygraph.cluster_model.predict_cluster(
            self._antbrowser_payload("chrome-112").vector()
        )
        claimed = probing_polygraph.cluster_model.cluster_members(engine_cluster)[0]
        payload = self._antbrowser_payload(claimed)
        result = probing_polygraph.detect_payload(payload)
        assert result.flagged
        assert result.risk_factor == 20

    def test_probe_disabled_by_default(self, trained):
        engine_cluster = trained.cluster_model.predict_cluster(
            self._antbrowser_payload("chrome-112").vector()
        )
        claimed = trained.cluster_model.cluster_members(engine_cluster)[0]
        result = trained.detect_payload(self._antbrowser_payload(claimed))
        assert not result.flagged

    def test_clean_sessions_unaffected(self, probing_polygraph):
        profile = BrowserProfile(Vendor.CHROME, 112)
        payload = CollectionScript().run(profile.environment(), profile.user_agent())
        assert not probing_polygraph.detect_payload(payload).flagged
