"""Retraining orchestrator and model registry tests."""

import json
from datetime import date

import pytest

from repro.core.retraining import (
    STATUS_CANDIDATE,
    STATUS_LIVE,
    STATUS_ROLLED_BACK,
    ModelRegistry,
    RetrainingOrchestrator,
)
from repro.traffic.generator import TrafficConfig, TrafficSimulator


@pytest.fixture(scope="module")
def autumn():
    config = TrafficConfig(
        start=date(2023, 7, 20), end=date(2023, 11, 10), seed=31
    ).scaled(20_000)
    return TrafficSimulator(config).generate()


@pytest.fixture(scope="module")
def quiet_window():
    config = TrafficConfig(
        start=date(2023, 7, 20), end=date(2023, 9, 10), seed=41
    ).scaled(10_000)
    return TrafficSimulator(config).generate()


class TestModelRegistry:
    def test_promote_and_load_roundtrip(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        version = registry.promote(trained, date(2023, 7, 1), "bootstrap")
        assert version == 1
        loaded = registry.load()
        assert loaded.cluster_table == trained.cluster_table

    def test_versions_increment(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.promote(trained, date(2023, 7, 1), "first")
        registry.promote(trained, date(2023, 8, 1), "second")
        assert registry.latest_version == 2
        assert [v["version"] for v in registry.versions()] == [1, 2]
        assert registry.versions()[1]["reason"] == "second"

    def test_load_specific_version(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.promote(trained, date(2023, 7, 1), "first")
        assert registry.load(version=1).accuracy == pytest.approx(trained.accuracy)

    def test_empty_registry_rejected(self, tmp_path):
        with pytest.raises(LookupError):
            ModelRegistry(tmp_path).load()

    def test_unknown_version_rejected(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.promote(trained, date(2023, 7, 1), "first")
        with pytest.raises(LookupError):
            registry.load(version=9)

    def test_entries_carry_digest_and_status(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.promote(trained, date(2023, 7, 1), "first")
        entry = registry.versions()[0]
        assert entry["status"] == STATUS_LIVE
        assert len(entry["sha256"]) == 64

    def test_staged_candidate_not_loaded_by_default(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.promote(trained, date(2023, 7, 1), "first")
        registry.stage_candidate(trained, date(2023, 8, 1), "staged")
        assert registry.latest_version == 2
        assert registry.live_version == 1
        assert registry.versions()[1]["status"] == STATUS_CANDIDATE
        # load() follows live status, not recency.
        assert registry.load().cluster_table == trained.cluster_table
        registry.mark_live(2)
        assert registry.live_version == 2

    def test_rollback_restores_prior_model_bit_for_bit(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.promote(trained, date(2023, 7, 1), "v1")
        v1_bytes = (tmp_path / "model-v001.json").read_bytes()
        registry.promote(trained, date(2023, 8, 1), "v2")

        prior = registry.rollback()
        assert prior == 1
        assert registry.live_version == 1
        assert registry.versions()[1]["status"] == STATUS_ROLLED_BACK
        # The v1 artifact on disk never moved.
        assert (tmp_path / "model-v001.json").read_bytes() == v1_bytes
        # And reloading + re-saving it reproduces those bytes exactly.
        reloaded = registry.load()
        reloaded.save(tmp_path / "resaved.json")
        assert (tmp_path / "resaved.json").read_bytes() == v1_bytes

    def test_rollback_without_prior_rejected(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.promote(trained, date(2023, 7, 1), "only")
        with pytest.raises(LookupError):
            registry.rollback()

    def test_tampered_model_file_rejected(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.promote(trained, date(2023, 7, 1), "v1")
        path = tmp_path / "model-v001.json"
        document = json.loads(path.read_text())
        document["accuracy"] = 1.0  # hand-edit the stored model
        path.write_text(json.dumps(document, indent=2))
        with pytest.raises(ValueError, match="digest"):
            registry.load(1)

    def test_swapped_model_file_rejected(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.promote(trained, date(2023, 7, 1), "v1")
        index_path = tmp_path / "registry.json"
        index = json.loads(index_path.read_text())
        index[0]["sha256"] = "0" * 64  # index no longer matches the file
        index_path.write_text(json.dumps(index, indent=2))
        with pytest.raises(ValueError, match="digest"):
            registry.load(1)


class TestOrchestrator:
    def test_bootstrap_promotes_v1(self, small_dataset, tmp_path):
        orchestrator = RetrainingOrchestrator(ModelRegistry(tmp_path))
        polygraph = orchestrator.bootstrap(small_dataset, date(2023, 7, 1))
        assert polygraph.accuracy > 0.985
        assert orchestrator.registry.latest_version == 1

    def test_quiet_window_does_not_retrain(
        self, small_dataset, quiet_window, tmp_path
    ):
        orchestrator = RetrainingOrchestrator(ModelRegistry(tmp_path))
        orchestrator.bootstrap(small_dataset, date(2023, 7, 1))
        outcome = orchestrator.scheduled_check(quiet_window, date(2023, 9, 12))
        assert not outcome.drift_detected
        assert not outcome.retrained
        assert orchestrator.registry.latest_version == 1

    def test_autumn_drift_triggers_verified_promotion(
        self, small_dataset, autumn, tmp_path
    ):
        orchestrator = RetrainingOrchestrator(ModelRegistry(tmp_path))
        orchestrator.bootstrap(small_dataset, date(2023, 7, 1))
        outcome = orchestrator.scheduled_check(autumn, date(2023, 11, 5))
        assert outcome.drift_detected and outcome.retrained and outcome.promoted
        assert orchestrator.registry.latest_version == 2
        # The promoted model knows the drifted releases.
        assert (
            orchestrator.current.cluster_model.expected_cluster("firefox-119")
            is not None
        )
        # And a repeat check on the same window is quiet.
        repeat = orchestrator.scheduled_check(autumn, date(2023, 11, 6))
        assert not repeat.drift_detected

    def test_drift_stages_candidate_when_rollout_attached(
        self, small_dataset, autumn, tmp_path
    ):
        from repro.rollout import LIVE, SHADOW, RolloutConfig, RolloutManager

        registry = ModelRegistry(tmp_path)
        manager = RolloutManager(
            registry,
            config=RolloutConfig(stages=(1.0,)),
            state_path=tmp_path / "rollout.json",
        )
        orchestrator = RetrainingOrchestrator(registry, rollout=manager)
        orchestrator.bootstrap(small_dataset, date(2023, 7, 1))
        baseline = orchestrator.current

        outcome = orchestrator.scheduled_check(autumn, date(2023, 11, 5))
        assert outcome.drift_detected and outcome.retrained
        # Not promoted: staged for rollout instead.
        assert not outcome.promoted
        assert outcome.staged_version == 2
        assert registry.versions()[1]["status"] == STATUS_CANDIDATE
        assert registry.live_version == 1
        assert manager.in_flight and manager.state.status == SHADOW
        assert orchestrator.current is baseline

        # While the rollout is in flight, further checks defer.
        repeat = orchestrator.scheduled_check(autumn, date(2023, 11, 6))
        assert repeat.drift_detected and not repeat.retrained
        assert "deferred" in repeat.detail

        # Rollout completes → the orchestrator adopts the candidate.
        manager.advance(force=True)
        state = manager.advance(force=True)
        assert state.status == LIVE
        assert registry.live_version == 2
        assert orchestrator.current is not baseline
        quiet = orchestrator.scheduled_check(autumn, date(2023, 11, 7))
        assert not quiet.drift_detected

    def test_window_cap_slides(self, small_dataset, autumn, tmp_path):
        cap = len(small_dataset)
        orchestrator = RetrainingOrchestrator(
            ModelRegistry(tmp_path), max_window_sessions=cap
        )
        orchestrator.bootstrap(small_dataset, date(2023, 7, 1))
        orchestrator.scheduled_check(autumn, date(2023, 11, 5))
        assert len(orchestrator.window) <= cap

    def test_check_before_bootstrap_rejected(self, quiet_window, tmp_path):
        orchestrator = RetrainingOrchestrator(ModelRegistry(tmp_path))
        with pytest.raises(RuntimeError):
            orchestrator.scheduled_check(quiet_window, date(2023, 9, 1))

    def test_invalid_floor_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RetrainingOrchestrator(ModelRegistry(tmp_path), accuracy_floor=1.5)

    def test_history_records_every_check(
        self, small_dataset, quiet_window, tmp_path
    ):
        orchestrator = RetrainingOrchestrator(ModelRegistry(tmp_path))
        orchestrator.bootstrap(small_dataset, date(2023, 7, 1))
        orchestrator.scheduled_check(quiet_window, date(2023, 9, 12))
        assert len(orchestrator.history) == 1
        assert orchestrator.history[0].check_date == date(2023, 9, 12)
