"""Retraining orchestrator and model registry tests."""

from datetime import date

import pytest

from repro.core.retraining import ModelRegistry, RetrainingOrchestrator
from repro.traffic.generator import TrafficConfig, TrafficSimulator


@pytest.fixture(scope="module")
def autumn():
    config = TrafficConfig(
        start=date(2023, 7, 20), end=date(2023, 11, 10), seed=31
    ).scaled(20_000)
    return TrafficSimulator(config).generate()


@pytest.fixture(scope="module")
def quiet_window():
    config = TrafficConfig(
        start=date(2023, 7, 20), end=date(2023, 9, 10), seed=41
    ).scaled(10_000)
    return TrafficSimulator(config).generate()


class TestModelRegistry:
    def test_promote_and_load_roundtrip(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        version = registry.promote(trained, date(2023, 7, 1), "bootstrap")
        assert version == 1
        loaded = registry.load()
        assert loaded.cluster_table == trained.cluster_table

    def test_versions_increment(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.promote(trained, date(2023, 7, 1), "first")
        registry.promote(trained, date(2023, 8, 1), "second")
        assert registry.latest_version == 2
        assert [v["version"] for v in registry.versions()] == [1, 2]
        assert registry.versions()[1]["reason"] == "second"

    def test_load_specific_version(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.promote(trained, date(2023, 7, 1), "first")
        assert registry.load(version=1).accuracy == pytest.approx(trained.accuracy)

    def test_empty_registry_rejected(self, tmp_path):
        with pytest.raises(LookupError):
            ModelRegistry(tmp_path).load()

    def test_unknown_version_rejected(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.promote(trained, date(2023, 7, 1), "first")
        with pytest.raises(LookupError):
            registry.load(version=9)


class TestOrchestrator:
    def test_bootstrap_promotes_v1(self, small_dataset, tmp_path):
        orchestrator = RetrainingOrchestrator(ModelRegistry(tmp_path))
        polygraph = orchestrator.bootstrap(small_dataset, date(2023, 7, 1))
        assert polygraph.accuracy > 0.985
        assert orchestrator.registry.latest_version == 1

    def test_quiet_window_does_not_retrain(
        self, small_dataset, quiet_window, tmp_path
    ):
        orchestrator = RetrainingOrchestrator(ModelRegistry(tmp_path))
        orchestrator.bootstrap(small_dataset, date(2023, 7, 1))
        outcome = orchestrator.scheduled_check(quiet_window, date(2023, 9, 12))
        assert not outcome.drift_detected
        assert not outcome.retrained
        assert orchestrator.registry.latest_version == 1

    def test_autumn_drift_triggers_verified_promotion(
        self, small_dataset, autumn, tmp_path
    ):
        orchestrator = RetrainingOrchestrator(ModelRegistry(tmp_path))
        orchestrator.bootstrap(small_dataset, date(2023, 7, 1))
        outcome = orchestrator.scheduled_check(autumn, date(2023, 11, 5))
        assert outcome.drift_detected and outcome.retrained and outcome.promoted
        assert orchestrator.registry.latest_version == 2
        # The promoted model knows the drifted releases.
        assert (
            orchestrator.current.cluster_model.expected_cluster("firefox-119")
            is not None
        )
        # And a repeat check on the same window is quiet.
        repeat = orchestrator.scheduled_check(autumn, date(2023, 11, 6))
        assert not repeat.drift_detected

    def test_window_cap_slides(self, small_dataset, autumn, tmp_path):
        cap = len(small_dataset)
        orchestrator = RetrainingOrchestrator(
            ModelRegistry(tmp_path), max_window_sessions=cap
        )
        orchestrator.bootstrap(small_dataset, date(2023, 7, 1))
        orchestrator.scheduled_check(autumn, date(2023, 11, 5))
        assert len(orchestrator.window) <= cap

    def test_check_before_bootstrap_rejected(self, quiet_window, tmp_path):
        orchestrator = RetrainingOrchestrator(ModelRegistry(tmp_path))
        with pytest.raises(RuntimeError):
            orchestrator.scheduled_check(quiet_window, date(2023, 9, 1))

    def test_invalid_floor_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RetrainingOrchestrator(ModelRegistry(tmp_path), accuracy_floor=1.5)

    def test_history_records_every_check(
        self, small_dataset, quiet_window, tmp_path
    ):
        orchestrator = RetrainingOrchestrator(ModelRegistry(tmp_path))
        orchestrator.bootstrap(small_dataset, date(2023, 7, 1))
        orchestrator.scheduled_check(quiet_window, date(2023, 9, 12))
        assert len(orchestrator.history) == 1
        assert orchestrator.history[0].check_date == date(2023, 9, 12)
