"""Shared-memory shard transport: slab, slot ring, bulk paths, failures.

The contract under test is the one the transport ISSUE pins down: the
slot ring backpressures instead of dropping work, a crashed child
re-attaches the *same* slab after restart, the pickle fallback keeps
serving (and counts) when shared memory is unavailable, and the bulk
router-side paths (``ingest_many``, ``get_many``) are observably
identical to their per-wire equivalents.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterRouter,
    RouterConfig,
    ShardSupervisor,
)
from repro.cluster.transport import ShmSlab, SlotRing, attach_slab_views
from repro.runtime.cache import VerdictCache
from repro.runtime.fastingest import WireIngest
from repro.runtime.service import RuntimeConfig
from repro.service.ingest import RejectReason
from repro.service.scoring import ScoringService
from repro.traffic.replay import iter_wire_payloads


def _essence(verdict):
    return (
        verdict.session_id,
        verdict.accepted,
        verdict.flagged,
        verdict.risk_factor,
        verdict.reject_reason,
    )


@pytest.fixture(scope="module")
def wires(small_dataset):
    return [w for _, w in zip(range(300), iter_wire_payloads(small_dataset))]


# ----------------------------------------------------------------------
# slot ring


class TestSlotRing:
    def test_lease_release_roundtrip(self):
        ring = SlotRing(8)
        assert ring.occupancy == 0
        start, count = ring.lease(5)
        assert (start, count) == (0, 5)
        assert ring.occupancy == 5
        ring.release(5)
        assert ring.occupancy == 0

    def test_short_lease_at_ring_edge_then_wraparound(self):
        ring = SlotRing(4)
        assert ring.lease(3) == (0, 3)
        # Only one slot remains before the edge: the lease is short.
        assert ring.lease(3) == (3, 1)
        assert ring.lease(1) is None  # full
        ring.release(3)  # oldest run (FIFO)
        # The head sits at the edge; the next lease wraps to slot 0.
        assert ring.lease(3) == (0, 3)
        assert ring.occupancy == 4

    def test_lease_returns_none_only_when_full(self):
        ring = SlotRing(2)
        assert ring.lease(2) == (0, 2)
        assert ring.lease(1) is None
        ring.release(1)
        assert ring.lease(1) is not None

    def test_release_validates_against_over_free(self):
        ring = SlotRing(4)
        with pytest.raises(ValueError):
            ring.release(1)  # nothing leased
        ring.lease(2)
        with pytest.raises(ValueError):
            ring.release(3)

    def test_lease_validates_want(self):
        ring = SlotRing(4)
        with pytest.raises(ValueError):
            ring.lease(0)

    def test_single_slot_ring(self):
        ring = SlotRing(1)
        assert ring.lease(5) == (0, 1)
        assert ring.lease(1) is None
        ring.release(1)
        assert ring.lease(1) == (0, 1)


# ----------------------------------------------------------------------
# slab create / attach


class TestShmSlab:
    def test_attached_views_share_the_parent_buffer(self):
        slab = ShmSlab(4, 3)
        try:
            slab.rows[2] = (1.5, 2.5, 3.5)
            slab.meta[2] = 42
            meta, results, rows, close = attach_slab_views(slab.name, 4, 3)
            try:
                assert list(rows[2]) == [1.5, 2.5, 3.5]
                assert meta[2] == 42
                # Writes from the attached side flow back (the child
                # writes results in place; the parent reads them).
                results[2] = (1, 1, 9, 0)
                assert list(slab.results[2]) == [1, 1, 9, 0]
            finally:
                results = rows = meta = None
                close()
        finally:
            slab.close()

    def test_attach_rejects_header_mismatch(self):
        slab = ShmSlab(4, 3)
        try:
            with pytest.raises(ValueError):
                attach_slab_views(slab.name, 2, 3)
        finally:
            slab.close()

    def test_attach_missing_slab_raises(self):
        with pytest.raises((OSError, FileNotFoundError)):
            attach_slab_views("polygraph-no-such-slab", 4, 3)

    def test_slab_validates_dimensions(self):
        with pytest.raises(ValueError):
            ShmSlab(0, 3)
        with pytest.raises(ValueError):
            ShmSlab(4, 0)


# ----------------------------------------------------------------------
# bulk router-side paths: parity with the per-wire equivalents


class TestIngestManyParity:
    def _mixed_wires(self, wires):
        good = wires[:20]
        return (
            good
            + [good[0]]  # duplicate sid
            + [b"\x00 not json"]  # malformed
            + [good[1][:40]]  # truncated json
            + [good[2].replace(b'"f":[', b'"f":[999999,', 1)]  # range
        )

    def test_bulk_outcomes_match_sequential_ingest(self, wires):
        mixed = self._mixed_wires(wires)
        sequential = WireIngest()
        expected = [sequential.ingest(w) for w in mixed]
        bulk = WireIngest()
        outcomes = bulk.ingest_many(mixed)
        assert len(outcomes) == len(mixed)
        for outcome, (reason, fields) in zip(outcomes, expected):
            if reason is None:
                assert outcome == fields
            else:
                assert outcome is reason

    def test_bulk_counters_match_sequential_ingest(self, wires):
        mixed = self._mixed_wires(wires)
        sequential = WireIngest()
        for wire in mixed:
            sequential.ingest(wire)
        bulk = WireIngest()
        bulk.ingest_many(mixed)
        assert bulk.requests_total == sequential.requests_total
        assert bulk.rejected_count == sequential.rejected_count
        assert (
            bulk.validator.accepted_count
            == sequential.validator.accepted_count
        )
        assert (
            bulk.validator.quarantine.counts()
            == sequential.validator.quarantine.counts()
        )

    def test_bulk_dedup_window_evicts_like_sequential(self, wires):
        # A window of 3 with 5 admitted wires: the first two fall out,
        # so re-sending them is NOT a duplicate, but the last is.
        from repro.service.ingest import PayloadValidator

        sample = wires[:5]
        replay = [sample[0], sample[4]]
        sequential = WireIngest(PayloadValidator(dedup_window=3))
        expected = [sequential.ingest(w)[0] for w in sample + replay]
        bulk = WireIngest(PayloadValidator(dedup_window=3))
        outcomes = bulk.ingest_many(sample + replay)
        assert [
            o if isinstance(o, RejectReason) else None for o in outcomes
        ] == expected
        assert outcomes[-1] is RejectReason.DUPLICATE
        assert isinstance(outcomes[-2], tuple)


class TestGetManyParity:
    def _loaded_pair(self, clock):
        caches = []
        for _ in range(2):
            cache = VerdictCache(
                max_entries=8, ttl_seconds=10.0, clock=clock
            )
            for i in range(4):
                cache.put(("ua", (i,)), f"verdict-{i}")
            caches.append(cache)
        return caches

    def test_results_and_counters_match_sequential_get(self):
        now = [100.0]
        reference, bulk = self._loaded_pair(lambda: now[0])
        keys = [
            ("ua", (0,)),
            None,  # rejected position: passes through untouched
            ("ua", (9,)),  # miss
            ("ua", (1,)),
            ("ua", (0,)),  # repeat hit
        ]
        expected = [
            None if k is None else reference.get(k) for k in keys
        ]
        assert bulk.get_many(keys) == expected
        assert bulk.hits == reference.hits
        assert bulk.misses == reference.misses
        assert bulk.expirations == reference.expirations

    def test_ttl_expiry_matches_sequential_get(self):
        now = [100.0]
        reference, bulk = self._loaded_pair(lambda: now[0])
        now[0] = 111.0  # past the 10s TTL
        keys = [("ua", (0,)), ("ua", (1,))]
        expected = [reference.get(k) for k in keys]
        assert bulk.get_many(keys) == expected == [None, None]
        assert bulk.expirations == reference.expirations == 2
        assert len(bulk) == len(reference)

    def test_lru_touch_matches_sequential_get(self):
        now = [100.0]
        reference, bulk = self._loaded_pair(lambda: now[0])
        reference.get(("ua", (0,)))
        bulk.get_many([("ua", (0,))])
        # Fill both to capacity: the eviction victims must coincide
        # (the get refreshed entry 0, so entry 1 goes first).
        for cache in (reference, bulk):
            for i in range(4, 9):
                cache.put(("ua", (i,)), f"verdict-{i}")
        for probe in range(9):
            key = ("ua", (probe,))
            assert (key in bulk) == (key in reference), probe


# ----------------------------------------------------------------------
# transport failure modes (process shards)


class TestTransportFailureModes:
    def test_tiny_ring_backpressures_without_losing_work(self, trained, wires):
        """Slot exhaustion stalls the producer; every wire is answered."""
        sample = wires[:120]
        reference = ScoringService(trained)
        expected = [_essence(reference.score_wire(w)) for w in sample]
        supervisor = ShardSupervisor.from_polygraph(
            trained,
            config=ClusterConfig(
                n_shards=1,
                backend="process",
                transport="shm",
                ring_slots=8,
                heartbeat_interval_s=5.0,
            ),
            # No verdict cache: every admitted wire crosses the ring.
            runtime_config=RuntimeConfig(cache_entries=0),
        )
        router = ClusterRouter(supervisor).start()
        try:
            verdicts = router.score_many(sample)
            assert [_essence(v) for v in verdicts] == expected
            stats = supervisor.shards["s0"].transport_stats()
            assert stats["mode"] == "shm"
            assert stats["ring_slots"] == 8
            assert stats["backpressure_waits"] > 0
            assert stats["ring_occupancy"] == 0  # all drained
            assert stats["ring_occupancy_peak"] == 8
            assert stats["zero_copy_rows"] == sum(
                1 for v in verdicts if v.accepted
            )
        finally:
            router.shutdown()

    def test_crash_mid_batch_restarts_and_reattaches_the_slab(
        self, trained, wires
    ):
        supervisor = ShardSupervisor.from_polygraph(
            trained,
            config=ClusterConfig(
                n_shards=2,
                backend="process",
                transport="shm",
                heartbeat_interval_s=0.05,
            ),
        )
        router = ClusterRouter(supervisor).start()
        try:
            slab_names = {
                shard_id: shard._slab.name
                for shard_id, shard in supervisor.shards.items()
            }
            half = len(wires) // 2
            first = router.score_many(wires[:half])
            supervisor.kill("s0")
            second = router.score_many(wires[half:])
            # Nothing is lost: the router re-routes around the corpse.
            reference = ScoringService(trained)
            expected = [_essence(reference.score_wire(w)) for w in wires]
            assert [_essence(v) for v in first + second] == expected
            deadline = time.time() + 15.0
            while time.time() < deadline and supervisor.healthy_count < 2:
                time.sleep(0.05)
            assert supervisor.healthy_count == 2
            assert supervisor.restarts("s0") == 1
            # The slab outlives the child: the restarted process
            # attached the same segment, and scoring still works.
            assert {
                shard_id: shard._slab.name
                for shard_id, shard in supervisor.shards.items()
            } == slab_names
            # Fresh session ids (the originals sit in dedup windows).
            fresh = [
                w.replace(b'{"sid":"', b'{"sid":"r2-', 1)
                for w in wires[:40]
            ]
            fresh_expected = [
                _essence(ScoringService(trained).score_wire(w))
                for w in fresh
            ]
            again = router.score_many(fresh)
            assert [_essence(v) for v in again] == fresh_expected
            assert supervisor.shards["s0"].transport_stats()["mode"] == "shm"
        finally:
            router.shutdown()

    def test_thread_and_shm_backends_agree(self, trained, wires):
        sample = wires[:100]
        outcomes = []
        for backend, transport in (("thread", "shm"), ("process", "shm")):
            supervisor = ShardSupervisor.from_polygraph(
                trained,
                config=ClusterConfig(
                    n_shards=2,
                    backend=backend,
                    transport=transport,
                    heartbeat_interval_s=5.0,
                ),
            )
            router = ClusterRouter(supervisor).start()
            try:
                outcomes.append(
                    [_essence(v) for v in router.score_many(sample)]
                )
            finally:
                router.shutdown()
        assert outcomes[0] == outcomes[1]

    def test_pickle_fallback_serves_and_counts(
        self, trained, wires, monkeypatch
    ):
        """shm requested but unavailable: pickle serves, and says so."""
        import repro.cluster.supervisor as supervisor_mod

        def no_shm(*args, **kwargs):
            raise OSError("shared memory unavailable")

        monkeypatch.setattr(supervisor_mod, "ShmSlab", no_shm)
        sample = wires[:50]
        reference = ScoringService(trained)
        expected = [_essence(reference.score_wire(w)) for w in sample]
        supervisor = ShardSupervisor.from_polygraph(
            trained,
            config=ClusterConfig(
                n_shards=1,
                backend="process",
                transport="shm",
                heartbeat_interval_s=5.0,
            ),
        )
        router = ClusterRouter(supervisor).start()
        try:
            verdicts = router.score_many(sample)
            assert [_essence(v) for v in verdicts] == expected
            shard = supervisor.shards["s0"]
            assert shard.pickle_fallback_wires == len(sample)
            stats = shard.transport_stats()
            assert stats["mode"] == "pickle"
            assert stats["pickle_fallbacks"] == len(sample)
            text = "\n".join(router.runtime_metrics_lines())
            assert 'polygraph_transport_shm_mode{shard="s0"} 0' in text
            assert (
                f'polygraph_transport_pickle_fallbacks_total{{shard="s0"}} '
                f"{len(sample)}" in text
            )
        finally:
            router.shutdown()

    def test_transport_metrics_absent_for_thread_clusters(
        self, trained, wires
    ):
        supervisor = ShardSupervisor.from_polygraph(
            trained,
            config=ClusterConfig(n_shards=2, heartbeat_interval_s=5.0),
        )
        router = ClusterRouter(supervisor).start()
        try:
            router.score_many(wires[:20])
            text = "\n".join(router.runtime_metrics_lines())
            assert "polygraph_transport_" not in text
        finally:
            router.shutdown()
