"""The fusion serving path: policy, guardrails, service, API, CLI."""

import io
import json

import pytest

from repro.core.pipeline import BrowserPolygraph
from repro.fusion.arm import FusionArm
from repro.fusion.model import FusionModel, SecondOpinion
from repro.fusion.policy import (
    AgreementCell,
    FusionGuardrailConfig,
    FusionPolicy,
    FusionPolicyConfig,
)
from repro.service.api import CollectionApp
from repro.service.ingest import PayloadValidator
from repro.service.scoring import ScoringService
from repro.sessions.service import SessionScoringService
from repro.traffic.events import EventType, SessionEvent
from repro.traffic.replay import iter_wire_payloads


@pytest.fixture(scope="module")
def fusion_model(trained, small_dataset):
    # A subset is plenty for serving-path tests; what matters is that
    # the model is bound to the same projection `trained` serves.
    return FusionModel.train(
        small_dataset.rows(0, 6_000), trained.cluster_model
    )


def _opinion(lift, probability=0.5):
    return SecondOpinion(
        raw=0.5,
        probability=probability,
        lift=lift,
        matched_node=True,
        staleness_days=0.0,
    )


class _StubModel:
    """Controllable second opinions for exercising the arm's guardrails."""

    def __init__(self, lift):
        self._lift = lift

    def bind(self, cluster_model):
        return self

    def second_opinion(
        self,
        values,
        user_agent,
        day=None,
        untrusted_ip=False,
        untrusted_cookie=False,
    ):
        return _opinion(self._lift)

    def status_dict(self):
        return {"nodes": 0}


# ----------------------------------------------------------------------
# policy


class TestFusionPolicy:
    def test_agree_benign(self):
        fused = FusionPolicy().decide(False, _opinion(lift=0.5))
        assert fused.cell is AgreementCell.AGREE_BENIGN
        assert not fused.second_flagged and not fused.fused_flagged

    def test_agree_fraud(self):
        fused = FusionPolicy().decide(True, _opinion(lift=3.0))
        assert fused.cell is AgreementCell.AGREE_FRAUD
        assert fused.second_flagged and fused.fused_flagged

    def test_cluster_only(self):
        fused = FusionPolicy().decide(True, _opinion(lift=0.0))
        assert fused.cell is AgreementCell.CLUSTER_ONLY
        assert not fused.second_flagged and fused.fused_flagged

    def test_second_opinion_only(self):
        fused = FusionPolicy().decide(False, _opinion(lift=3.0))
        assert fused.cell is AgreementCell.SECOND_ONLY
        assert fused.second_flagged and fused.fused_flagged

    def test_second_only_cell_has_its_own_bar(self):
        policy = FusionPolicy(
            FusionPolicyConfig(second_opinion_lift=2.0, second_only_lift=4.0)
        )
        fused = policy.decide(False, _opinion(lift=3.0))
        # Fraud-grade enough to enter the matrix, not enough to flag alone.
        assert fused.cell is AgreementCell.SECOND_ONLY
        assert fused.second_flagged and not fused.fused_flagged
        assert policy.decide(False, _opinion(lift=5.0)).fused_flagged

    def test_annotator_mode_never_escalates(self):
        policy = FusionPolicy(FusionPolicyConfig(second_only_flags=False))
        fused = policy.decide(False, _opinion(lift=10.0))
        assert fused.second_flagged and not fused.fused_flagged

    def test_additive_only_contract(self):
        # A flagged cluster verdict survives every configuration.
        policy = FusionPolicy(FusionPolicyConfig(cluster_only_flags=False))
        assert policy.decide(True, _opinion(lift=0.0)).fused_flagged

    def test_verdict_to_dict(self):
        document = FusionPolicy().decide(True, _opinion(lift=3.0)).to_dict()
        assert document["cell"] == "agree_fraud"
        assert document["fused_flagged"] is True

    @pytest.mark.parametrize(
        "overrides",
        [
            {"second_opinion_lift": 0.0},
            {"second_opinion_lift": 3.0, "second_only_lift": 2.0},
        ],
    )
    def test_policy_config_validation(self, overrides):
        with pytest.raises(ValueError):
            FusionPolicyConfig(**overrides)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"max_second_flag_rate": 1.5},
            {"max_fused_flag_rate_delta": -0.1},
            {"max_mean_latency_ms": 0.0},
            {"min_verdicts": 0},
        ],
    )
    def test_guardrail_config_validation(self, overrides):
        with pytest.raises(ValueError):
            FusionGuardrailConfig(**overrides)


# ----------------------------------------------------------------------
# the serving arm and its guardrails


class TestFusionArmGuardrails:
    def test_second_flag_rate_breach_disables(self):
        arm = FusionArm(
            _StubModel(lift=5.0),
            guardrails=FusionGuardrailConfig(
                max_second_flag_rate=0.0, min_verdicts=1
            ),
        )
        # The breaching verdict is still served; the arm disables after.
        outcome = arm.consider((1, 2), "ua", cluster_flagged=False)
        assert outcome is not None
        assert not arm.enabled
        assert arm.disable_reason == "second_flag_rate"
        assert arm.breach["limit"] == 0.0
        # Sticky: every later session is cluster-only.
        assert arm.consider((1, 2), "ua", cluster_flagged=False) is None

    def test_fused_flag_rate_delta_breach_disables(self):
        arm = FusionArm(
            _StubModel(lift=5.0),
            guardrails=FusionGuardrailConfig(
                max_second_flag_rate=1.0,
                max_fused_flag_rate_delta=0.0,
                min_verdicts=1,
            ),
        )
        arm.consider((1, 2), "ua", cluster_flagged=False)
        assert arm.disable_reason == "fused_flag_rate_delta"

    def test_latency_breach_disables(self):
        arm = FusionArm(
            _StubModel(lift=0.0),
            guardrails=FusionGuardrailConfig(
                max_mean_latency_ms=1e-9, min_verdicts=1
            ),
        )
        arm.consider((1, 2), "ua", cluster_flagged=False)
        assert arm.disable_reason == "second_opinion_latency"

    def test_quiet_below_min_verdicts(self):
        arm = FusionArm(
            _StubModel(lift=5.0),
            guardrails=FusionGuardrailConfig(
                max_second_flag_rate=0.0, min_verdicts=10
            ),
        )
        for _ in range(9):
            assert arm.consider((1, 2), "ua", False) is not None
        assert arm.enabled

    def test_status_and_metrics_reflect_disable(self):
        arm = FusionArm(
            _StubModel(lift=5.0),
            guardrails=FusionGuardrailConfig(
                max_second_flag_rate=0.0, min_verdicts=1
            ),
        )
        arm.consider((1, 2), "ua", cluster_flagged=True)
        status = arm.status_dict()
        assert not status["enabled"]
        assert status["verdicts"] == 1
        assert status["cells"]["agree_fraud"] == 1
        lines = arm.metrics_lines()
        assert "polygraph_fusion_enabled 0" in lines
        assert (
            'polygraph_fusion_disabled_info{reason="second_flag_rate"} 1'
            in lines
        )

    def test_retrain_disables_the_arm(self, small_dataset):
        # A model-generation swap invalidates the node embeddings'
        # geometry, so the arm must roll back to cluster-only verdicts.
        subset = small_dataset.rows(0, 3_000)
        polygraph = BrowserPolygraph().fit(subset)
        model = FusionModel.train(subset, polygraph.cluster_model)
        service = ScoringService(polygraph, fusion=FusionArm(model))
        wires = list(iter_wire_payloads(subset, limit=2))
        before = service.score_wire(wires[0])
        assert before.fused_flagged is not None
        service.retrain(subset)
        assert not service.fusion.enabled
        assert service.fusion.disable_reason == "model_generation_changed"
        after = service.score_wire(wires[1])
        assert after.accepted
        assert after.fused_flagged is None and after.fusion_cell is None


# ----------------------------------------------------------------------
# scoring service integration


class TestScoringServiceFusion:
    def test_cluster_verdict_identical_with_and_without_arm(
        self, trained, fusion_model, small_dataset
    ):
        plain = ScoringService(trained)
        fused = ScoringService(trained, fusion=FusionArm(fusion_model))
        for wire in iter_wire_payloads(small_dataset.rows(0, 128)):
            expected = plain.score_wire(wire)
            observed = fused.score_wire(wire)
            assert (
                expected.session_id,
                expected.accepted,
                expected.flagged,
                expected.risk_factor,
                expected.reject_reason,
            ) == (
                observed.session_id,
                observed.accepted,
                observed.flagged,
                observed.risk_factor,
                observed.reject_reason,
            )
            # Provenance: absent without an arm, present with one.
            assert expected.fused_flagged is None
            assert expected.fusion_cell is None
            assert observed.fused_flagged is not None
            assert observed.fusion_cell in {c.value for c in AgreementCell}
            assert 0.0 <= observed.second_probability <= 1.0

    def test_session_snapshot_carries_fused_verdict(
        self, trained, fusion_model, small_dataset
    ):
        inner = ScoringService(trained, fusion=FusionArm(fusion_model))
        sessions = SessionScoringService(inner, ttl_seconds=1e9)
        event = SessionEvent(
            session_id="fused-sid",
            event_type=EventType.PAGE_LOAD,
            seq=0,
            timestamp=0.0,
            user_agent=str(small_dataset.user_agents[0]),
            values=tuple(int(v) for v in small_dataset.features[0]),
        )
        observation = sessions.observe_event(event)
        assert observation.verdict.accepted
        assert observation.verdict.fused_flagged is not None
        snapshot = sessions.session_snapshot("fused-sid")
        fused = snapshot["fused_verdict"]
        assert set(fused) == {
            "fused_flagged",
            "cell",
            "second_probability",
            "second_lift",
        }
        assert fused["cell"] in {c.value for c in AgreementCell}


# ----------------------------------------------------------------------
# HTTP surface


def _request(app, method, path, body=b""):
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    from wsgiref.util import setup_testing_defaults

    environ = {}
    setup_testing_defaults(environ)
    environ.update(
        {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "CONTENT_LENGTH": str(len(body)),
            "wsgi.input": io.BytesIO(body),
        }
    )
    chunks = app(environ, start_response)
    return captured["status"], captured["headers"], b"".join(chunks)


class TestFusionEndpoints:
    @pytest.fixture(scope="class")
    def app(self, trained, fusion_model):
        service = ScoringService(
            trained,
            validator=PayloadValidator(dedup_window=0),
            fusion=FusionArm(fusion_model),
        )
        return CollectionApp(service)

    def _envelope(self, small_dataset, idx=0, **context):
        wire = next(iter_wire_payloads(small_dataset.rows(idx, idx + 1)))
        envelope = json.loads(wire)
        envelope.update(context)
        return json.dumps(envelope).encode("utf-8")

    def test_check_without_fusion_is_404(self, trained):
        app = CollectionApp(ScoringService(trained))
        status, _, body = _request(app, "POST", "/check", b"{}")
        assert status == "404 Not Found"
        assert json.loads(body)["error"] == "fusion not enabled"
        status, _, _ = _request(app, "GET", "/fusion")
        assert status == "404 Not Found"

    def test_check_returns_fused_verdict(self, app, small_dataset):
        body = self._envelope(
            small_dataset, day="2023-06-01", untrusted_ip=True
        )
        status, _, response = _request(app, "POST", "/check", body)
        assert status == "200 OK"
        document = json.loads(response)
        assert document["accepted"]
        assert isinstance(document["fused_flagged"], bool)
        assert document["fusion_cell"] in {c.value for c in AgreementCell}
        assert 0.0 <= document["second_probability"] <= 1.0

    def test_check_rejects_bad_day(self, app, small_dataset):
        body = self._envelope(small_dataset, day="not-a-date")
        status, _, response = _request(app, "POST", "/check", body)
        assert status == "400 Bad Request"
        assert json.loads(response)["error"] == "bad day"

    def test_check_rejects_malformed_body(self, app):
        status, _, response = _request(app, "POST", "/check", b"not json")
        assert status == "400 Bad Request"
        assert json.loads(response)["error"] == "malformed body"

    def test_fusion_status_endpoint(self, app):
        status, _, body = _request(app, "GET", "/fusion")
        assert status == "200 OK"
        document = json.loads(body)
        assert document["enabled"]
        assert set(document["cells"]) == {c.value for c in AgreementCell}
        assert document["model"]["nodes"] > 0

    def test_metrics_include_fusion_counters(self, app, small_dataset):
        _request(
            app, "POST", "/check", self._envelope(small_dataset, idx=1)
        )
        status, _, body = _request(app, "GET", "/metrics")
        assert status == "200 OK"
        text = body.decode("utf-8")
        assert "polygraph_fusion_enabled 1" in text
        assert "polygraph_fusion_verdicts_total" in text
        assert 'polygraph_fusion_cell_total{cell="agree_benign"}' in text


# ----------------------------------------------------------------------
# CLI


class TestFusionCli:
    def test_fuse_train_and_status(self, trained, tmp_path, capsys):
        from repro.cli import main

        model_path = tmp_path / "model.json"
        trained.save(model_path)
        fusion_path = tmp_path / "fusion.json"
        assert (
            main(
                [
                    "fuse",
                    "train",
                    str(model_path),
                    str(fusion_path),
                    "--sessions",
                    "3000",
                ]
            )
            == 0
        )
        assert fusion_path.exists()
        out = capsys.readouterr().out
        assert "propagated weak tags over" in out
        assert main(["fuse", "status", str(fusion_path)]) == 0
        out = capsys.readouterr().out
        assert "fusion model over" in out
        assert "pipeline digest" in out

    def test_serve_fusion_rejects_runtime_modes(
        self, trained, tmp_path, capsys
    ):
        from repro.cli import main

        model_path = tmp_path / "model.json"
        trained.save(model_path)
        rc = main(
            [
                "serve",
                str(model_path),
                "--fusion",
                "whatever.json",
                "--runtime",
            ]
        )
        assert rc == 2
        assert "per-request" in capsys.readouterr().err
