"""Adversarial co-evolution gauntlet tests.

Covers the deterministic clock, the day ledger's digest contract, the
adversary's feedback loop, per-day traffic generation, the forced
(alarm-escalated) retraining path, and a miniature end-to-end replay
exercising the chaos-drill rollback plus bit-determinism.
"""

from datetime import date, timedelta

import numpy as np
import pytest

from repro.core.retraining import ModelRegistry, RetrainingOrchestrator
from repro.fraudbrowsers.marketplace import Marketplace
from repro.gauntlet import (
    AdversaryConfig,
    AdversaryDirector,
    DayLedger,
    DayTrafficFactory,
    DIGEST_COLUMNS,
    GauntletConfig,
    TIMING_COLUMNS,
    VirtualClock,
    run_gauntlet,
)
from repro.traffic.generator import TrafficConfig, TrafficSimulator
from repro.traffic.sessions import SessionKind


class TestVirtualClock:
    def test_starts_at_given_day(self):
        clock = VirtualClock(date(2023, 5, 5))
        assert clock.today == date(2023, 5, 5)

    def test_advance_moves_and_returns_new_day(self):
        clock = VirtualClock(date(2023, 5, 5))
        assert clock.advance() == date(2023, 5, 6)
        assert clock.advance(days=3) == date(2023, 5, 9)
        assert clock.today == date(2023, 5, 9)

    def test_advance_rejects_nonpositive(self):
        clock = VirtualClock(date(2023, 5, 5))
        with pytest.raises(ValueError):
            clock.advance(0)

    def test_time_is_monotonic_within_a_day(self):
        clock = VirtualClock(date(2023, 5, 5))
        first, second = clock.time(), clock.time()
        assert second > first
        # Ticks never leak into the next virtual day.
        midnight = (date(2023, 5, 5) - date(1970, 1, 1)).days * 86_400.0
        assert midnight <= first < midnight + 86_400.0
        assert second < midnight + 86_400.0

    def test_time_jumps_a_day_on_advance(self):
        clock = VirtualClock(date(2023, 5, 5))
        before = clock.time()
        clock.advance()
        assert clock.time() - before >= 86_400.0 - 1.0


def _ledger_row(**overrides):
    row = {name: 0 for name in DIGEST_COLUMNS}
    row.update({name: None for name in TIMING_COLUMNS})
    row.update(
        day="2023-05-05",
        new_release_keys=[],
        staged_version=None,
        rollout_status=None,
        rollout_stage=None,
        serving_version=1,
        breach=None,
    )
    row.update(overrides)
    return row


class TestDayLedger:
    def test_record_requires_every_column(self):
        ledger = DayLedger()
        with pytest.raises(ValueError, match="missing columns"):
            ledger.record(day="2023-05-05")

    def test_record_rejects_unknown_columns(self):
        ledger = DayLedger()
        with pytest.raises(ValueError, match="unknown columns"):
            ledger.record(**_ledger_row(), surprise=1)

    def test_digest_ignores_timing_columns(self):
        a, b = DayLedger(), DayLedger()
        a.record(**_ledger_row(p99_ms=5.0, failovers=0))
        b.record(**_ledger_row(p99_ms=500.0, failovers=70))
        assert a.digest() == b.digest()

    def test_digest_tracks_event_columns(self):
        a, b = DayLedger(), DayLedger()
        a.record(**_ledger_row(n_fraud=3))
        b.record(**_ledger_row(n_fraud=4))
        assert a.digest() != b.digest()

    def test_cells_roundtrip_preserves_digest(self):
        ledger = DayLedger()
        ledger.record(
            **_ledger_row(n_sessions=10, n_legit=8, n_fraud=2, p99_ms=4.2)
        )
        ledger.record(
            **_ledger_row(day="2023-05-06", retrained=1, staged_version=2)
        )
        rebuilt = DayLedger.from_cells(ledger.to_cells())
        assert len(rebuilt) == 2
        assert rebuilt.digest() == ledger.digest()
        assert rebuilt.column("p99_ms") == ledger.column("p99_ms")

    def test_summary_aggregates(self):
        ledger = DayLedger()
        ledger.record(
            **_ledger_row(
                n_sessions=10,
                n_legit=8,
                n_fraud=2,
                fraud_cat1=2,
                flagged_cat1=1,
                flagged_legit=1,
                retrained=1,
                rollbacks=1,
            )
        )
        summary = ledger.summary()
        assert summary["days"] == 1
        assert summary["per_category"]["cat1"]["detection_rate"] == 0.5
        assert summary["false_positive_rate"] == pytest.approx(1 / 8)
        assert summary["retrains"] == 1
        assert summary["rollbacks"] == 1


def _director(seed=3, **overrides):
    config = AdversaryConfig(**overrides)
    # Feedback-loop tests never touch the supply chain, so the vector
    # factory is not needed.
    return AdversaryDirector(config, Marketplace(seed=seed), None, seed=seed)


class TestAdversaryDirector:
    def test_no_adaptation_below_threshold(self):
        director = _director()
        made = director.observe(date(2023, 6, 1), {2: (2, 20)})
        assert made == []
        assert not director.buy_freshest

    def test_burned_category_triggers_retooling(self):
        director = _director()
        start_target = director.cat2_targets[director.cat2_index]
        made = director.observe(date(2023, 6, 1), {2: (10, 10)})
        actions = [a.action for a in made]
        assert any("rotate spoof target" in a for a in actions)
        assert any("buy freshest" in a for a in actions)
        assert any("shift" in a for a in actions)
        assert director.cat2_targets[director.cat2_index] != start_target
        assert director.buy_freshest

    def test_weight_moves_off_the_burned_category(self):
        director = _director()
        before = director.weights[2]
        director.observe(date(2023, 6, 1), {2: (10, 10)})
        assert director.weights[2] < before
        assert sum(director.weights.values()) == pytest.approx(1.0)

    def test_cooldown_blocks_back_to_back_adaptations(self):
        director = _director(cooldown_days=14)
        day = date(2023, 6, 1)
        assert director.observe(day, {2: (10, 10)})
        assert director.observe(day + timedelta(days=5), {1: (10, 10)}) == []
        assert director.observe(day + timedelta(days=14), {1: (10, 10)})

    def test_sparse_feedback_is_not_trusted(self):
        director = _director(min_feedback=10)
        made = director.observe(date(2023, 6, 1), {2: (5, 5)})
        assert made == []

    def test_feedback_determinism(self):
        days = [date(2023, 6, 1) + timedelta(days=i * 15) for i in range(3)]
        outcomes = []
        for _ in range(2):
            director = _director(seed=9)
            for day in days:
                director.observe(day, {2: (9, 10), 3: (0, 10)})
            outcomes.append(director.state_summary())
        assert outcomes[0] == outcomes[1]


class TestDayTrafficFactory:
    @pytest.fixture(scope="class")
    def factory(self):
        return DayTrafficFactory()

    def test_release_lands_on_its_ship_day(self, factory):
        # chrome-118 ships 2023-10-10; [start, end) semantics.
        assert "chrome-118" in factory.new_release_keys(
            date(2023, 10, 10), date(2023, 10, 11)
        )
        assert factory.new_release_keys(
            date(2023, 10, 11), date(2023, 10, 12)
        ) == []

    def test_legit_rows_shape(self, factory):
        rng = np.random.default_rng(5)
        rows = factory.legit_rows(date(2023, 10, 12), 40, rng, brave=2)
        assert len(rows) == 42
        kinds = {row["kind"] for row in rows}
        assert kinds == {SessionKind.LEGIT, SessionKind.DERIVATIVE}
        assert all(row["category"] == 0 for row in rows)

    def test_assemble_prefixes_session_ids(self, factory):
        rng = np.random.default_rng(5)
        rows = factory.legit_rows(date(2023, 10, 12), 10, rng)
        dataset = factory.assemble(rows, rng, sid_prefix="g7-d001")
        assert len(dataset) == 10
        assert all(
            str(sid).startswith("g7-d001-") for sid in dataset.session_ids
        )
        assert len(set(dataset.session_ids)) == 10


class TestForcedRetraining:
    @pytest.fixture(scope="class")
    def quiet(self):
        config = TrafficConfig(
            start=date(2023, 7, 20), end=date(2023, 9, 10), seed=47
        ).scaled(8_000)
        return TrafficSimulator(config).generate()

    def test_force_retrains_without_drift(self, quiet, tmp_path):
        registry = ModelRegistry(tmp_path)
        orchestrator = RetrainingOrchestrator(registry, accuracy_floor=0.9)
        orchestrator.bootstrap(quiet.rows(0, 5_000), on=date(2023, 9, 1))
        live = quiet.rows(5_000, len(quiet))
        # Without force, a clean window changes nothing.
        clean = orchestrator.scheduled_check(live, on=date(2023, 9, 10))
        assert not clean.retrained
        forced = orchestrator.scheduled_check(
            live, on=date(2023, 9, 10), force=True
        )
        assert forced.retrained and not forced.drift_detected
        assert registry.versions()[-1]["reason"] == (
            "forced refresh (flag-rate alarm)"
        )


def _mini_config(seed):
    """A 14-day replay across chrome-118 with the drill on day 8."""
    return GauntletConfig(
        start=date(2023, 10, 5),
        days=14,
        seed=seed,
        sessions_per_day=150,
        brave_per_day=1,
        bootstrap_days=90,
        bootstrap_sessions=5_000,
        max_window_sessions=9_000,
        monitor_window=1_200,
        monitor_min_observations=500,
        min_comparisons=25,
        min_stage_verdicts=8,
        drill_day=8,
        drill_stale_rows=1_200,
        attacks_per_day=6,
    )


class TestGauntletEndToEnd:
    @pytest.fixture(scope="class")
    def replay(self):
        return run_gauntlet(_mini_config(seed=11))

    def test_every_day_ledgered(self, replay):
        assert len(replay.ledger) == 14
        assert replay.summary["days"] == 14

    def test_drill_candidate_rolled_back(self, replay):
        assert replay.summary["rollbacks"] >= 1
        breaches = [b for b in replay.ledger.column("breach") if b]
        assert breaches  # the guardrail named its reason

    def test_shard_churn_recovered(self, replay):
        assert sum(replay.ledger.column("shard_restarts")) >= 1
        # Every day still scored its full traffic after the kill.
        assert all(n > 0 for n in replay.ledger.column("n_sessions"))

    def test_identical_seeds_identical_digests(self, replay):
        again = run_gauntlet(_mini_config(seed=11))
        assert again.ledger.digest() == replay.ledger.digest()

    def test_different_seeds_diverge(self, replay):
        other = run_gauntlet(_mini_config(seed=12))
        assert other.ledger.digest() != replay.ledger.digest()
