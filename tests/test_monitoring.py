"""FlagRateMonitor edge cases: empty, saturated, and tiny windows."""

from __future__ import annotations

import pytest

from repro.service.monitoring import FlagRateMonitor


class TestFlagRateMonitor:
    def test_empty_window_never_alarms(self):
        monitor = FlagRateMonitor()
        assert monitor.windowed_rate == 0.0
        assert not monitor.alarm
        assert "ALARM" not in monitor.describe()

    def test_all_flagged_window_alarms_after_warmup(self):
        monitor = FlagRateMonitor(window=500, min_observations=100)
        for _ in range(99):
            monitor.observe(True)
        assert not monitor.alarm  # still warming up
        monitor.observe(True)
        assert monitor.windowed_rate == 1.0
        assert monitor.alarm
        assert "ALARM" in monitor.describe()

    def test_window_shorter_than_warmup_still_alarms_when_full(self):
        # A window smaller than min_observations can never reach the
        # nominal warmup count; a full window must be allowed to alarm.
        monitor = FlagRateMonitor(window=50, min_observations=2_000)
        for _ in range(49):
            monitor.observe(True)
        assert not monitor.alarm
        monitor.observe(True)
        assert monitor.alarm

    def test_zero_flag_rate_alarms_below_the_band(self):
        # Silence is also a failure mode: a model that stops flagging
        # anything has drifted just as surely as one flagging everything.
        monitor = FlagRateMonitor(
            window=1_000, expected_rate=0.01, min_observations=200
        )
        for _ in range(500):
            monitor.observe(False)
        assert monitor.windowed_rate == 0.0
        assert monitor.alarm

    def test_healthy_rate_stays_quiet(self):
        monitor = FlagRateMonitor(
            window=1_000, expected_rate=0.01, min_observations=200
        )
        for index in range(1_000):
            monitor.observe(index % 100 == 0)  # exactly the expected rate
        assert not monitor.alarm

    def test_rolling_eviction_keeps_the_count_exact(self):
        monitor = FlagRateMonitor(
            window=10, expected_rate=0.01, min_observations=1
        )
        for _ in range(10):
            monitor.observe(True)
        assert monitor.windowed_rate == 1.0
        for _ in range(10):
            monitor.observe(False)
        assert monitor.windowed_rate == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FlagRateMonitor(window=0)
        with pytest.raises(ValueError):
            FlagRateMonitor(expected_rate=0.0)
        with pytest.raises(ValueError):
            FlagRateMonitor(tolerance_factor=1.0)
