"""Feature specs, collector, candidates, and collection script tests."""

import json

import numpy as np
import pytest

from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor
from repro.fingerprint.browserprint import time_based_features
from repro.fingerprint.candidates import generate_candidates
from repro.fingerprint.collector import FingerprintCollector
from repro.fingerprint.features import (
    DEVIATION_FEATURES,
    FEATURE_NAMES,
    FEATURE_SPECS,
    FeatureSpec,
    N_DEVIATION,
    N_FEATURES,
    N_TIME,
    TIME_FEATURES,
    deviation_feature_indices,
    time_feature_indices,
)
from repro.fingerprint.script import (
    CollectionScript,
    FingerprintPayload,
    MAX_PAYLOAD_BYTES,
    MAX_SERVICE_TIME_MS,
)
from repro.jsengine.environment import JSEnvironment
from repro.jsengine.evolution import Engine, PRIMARY_INTERFACES


class TestFeatureSpecs:
    def test_paper_feature_counts(self):
        assert N_DEVIATION == 22
        assert N_TIME == 6
        assert N_FEATURES == 28

    def test_table8_order_starts_with_element(self):
        assert DEVIATION_FEATURES[0].interface == "Element"
        assert DEVIATION_FEATURES[1].interface == "Document"

    def test_deviation_set_matches_evolution_primaries(self):
        assert {s.interface for s in DEVIATION_FEATURES} == set(PRIMARY_INTERFACES)

    def test_feature_names_are_js_expressions(self):
        assert (
            FEATURE_NAMES[0]
            == "Object.getOwnPropertyNames(Element.prototype).length"
        )
        assert FEATURE_NAMES[-1].endswith(".prototype.hasOwnProperty('getPropertyValue')")

    def test_index_helpers_partition_columns(self):
        dev = deviation_feature_indices()
        time_idx = time_feature_indices()
        assert sorted(dev + time_idx) == list(range(N_FEATURES))
        assert len(dev) == 22 and len(time_idx) == 6

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            FeatureSpec("weird", "Element")
        with pytest.raises(ValueError):
            FeatureSpec("time", "Element")  # missing prop
        with pytest.raises(ValueError):
            FeatureSpec("deviation", "Element", prop="x")

    def test_spec_keys_are_unique(self):
        keys = [s.key() for s in FEATURE_SPECS]
        assert len(set(keys)) == len(keys)


class TestCollector:
    def test_vector_length_and_dtype(self):
        env = JSEnvironment(Engine.CHROMIUM, 112)
        vector = FingerprintCollector().collect(env)
        assert vector.shape == (28,)
        assert vector.dtype == np.int32

    def test_time_features_are_binary(self):
        env = JSEnvironment(Engine.GECKO, 110)
        vector = FingerprintCollector().collect(env)
        for idx in time_feature_indices():
            assert vector[idx] in (0, 1)

    def test_same_release_same_vector(self):
        a = FingerprintCollector().collect(JSEnvironment(Engine.CHROMIUM, 112))
        b = FingerprintCollector().collect(JSEnvironment(Engine.CHROMIUM, 112))
        assert np.array_equal(a, b)

    def test_vendor_split_visible_in_time_features(self):
        chrome = FingerprintCollector().collect(JSEnvironment(Engine.CHROMIUM, 110))
        firefox = FingerprintCollector().collect(JSEnvironment(Engine.GECKO, 110))
        time_idx = time_feature_indices()
        assert any(chrome[i] != firefox[i] for i in time_idx)

    def test_collect_many_stacks(self):
        envs = [JSEnvironment(Engine.CHROMIUM, v) for v in (100, 110)]
        matrix = FingerprintCollector().collect_many(envs)
        assert matrix.shape == (2, 28)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            FingerprintCollector([])
        with pytest.raises(ValueError):
            FingerprintCollector().collect_many([])


class TestCandidates:
    @pytest.fixture(scope="class")
    def candidates(self):
        return generate_candidates()

    def test_counts_match_paper(self, candidates):
        assert len(candidates.deviation) == 200
        assert len(candidates.time_based) == 313
        assert len(candidates.all_specs) == 513

    def test_top22_is_the_table8_set(self, candidates):
        top22 = {s.interface for s in candidates.deviation[:22]}
        assert top22 == set(PRIMARY_INTERFACES)

    def test_ranking_is_descending(self, candidates):
        # deviation_std holds the normalized std; the selection itself is
        # ranked by raw std, so just confirm every selected feature varies.
        assert all(v > 0.0 for v in candidates.deviation_std.values())

    def test_reference_fingerprints_cover_releases(self, candidates):
        assert "chrome-112" in candidates.reference_fingerprints
        assert "firefox-102" in candidates.reference_fingerprints
        assert "edge-18" in candidates.reference_fingerprints

    def test_reference_vector_width(self, candidates):
        vector = candidates.reference_vector("chrome-112")
        assert vector.shape == (513,)
        assert candidates.reference_vector("safari-16") is None

    def test_time_based_features_helper(self):
        specs = time_based_features()
        assert len(specs) == 313
        assert all(s.kind == "time" for s in specs)


class TestCollectionScript:
    def test_payload_meets_finorg_budget(self):
        profile = BrowserProfile(Vendor.CHROME, 112)
        payload = CollectionScript().run(
            profile.environment(), profile.user_agent(), "s1"
        )
        assert payload.size_bytes <= MAX_PAYLOAD_BYTES
        assert payload.service_time_ms <= MAX_SERVICE_TIME_MS
        assert payload.within_budget()

    def test_wire_roundtrip(self):
        profile = BrowserProfile(Vendor.FIREFOX, 110)
        payload = CollectionScript().run(
            profile.environment(), profile.user_agent(), "s2"
        )
        parsed = FingerprintPayload.from_wire(payload.to_wire())
        assert parsed.session_id == "s2"
        assert parsed.user_agent == payload.user_agent
        assert parsed.values == payload.values

    def test_wire_format_is_compact_json(self):
        payload = FingerprintPayload("x", "ua", (1, 2, 3), 0.0)
        body = json.loads(payload.to_wire())
        assert body == {"sid": "x", "ua": "ua", "f": [1, 2, 3]}

    def test_malformed_wire_rejected(self):
        with pytest.raises(ValueError):
            FingerprintPayload.from_wire(b"not json")
        with pytest.raises(ValueError):
            FingerprintPayload.from_wire(b'{"sid": "x"}')

    def test_injectable_clock(self):
        ticks = iter([0.0, 0.050])
        payload = CollectionScript().run(
            JSEnvironment(Engine.CHROMIUM, 112),
            "ua",
            clock=lambda: next(ticks),
        )
        assert payload.service_time_ms == pytest.approx(50.0)

    def test_vector_matches_values(self):
        payload = FingerprintPayload("x", "ua", (5, 6), 0.0)
        assert payload.vector().tolist() == [5, 6]
