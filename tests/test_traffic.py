"""Traffic simulator tests: popularity, tags, dataset, generator."""

from collections import Counter
from datetime import date

import numpy as np
import pytest

from repro.browsers.useragent import Vendor
from repro.fingerprint.features import FEATURE_NAMES
from repro.traffic.dataset import Dataset
from repro.traffic.generator import TrafficConfig, TrafficSimulator
from repro.traffic.popularity import PopularityModel
from repro.traffic.sessions import SessionKind
from repro.traffic.tags import Persona, TagModel, TagRates


class TestPopularity:
    @pytest.fixture(scope="class")
    def model(self):
        return PopularityModel()

    def test_shares_normalized(self, model):
        shares = model.shares_on(date(2023, 5, 1))
        assert sum(s.share for s in shares) == pytest.approx(1.0)

    def test_latest_versions_dominate(self, model):
        day = date(2023, 5, 1)
        shares = {(s.vendor, s.version): s.share for s in model.shares_on(day)}
        assert shares[(Vendor.CHROME, 112)] > shares[(Vendor.CHROME, 100)]
        assert shares[(Vendor.CHROME, 112)] > 0.05

    def test_unreleased_versions_absent(self, model):
        shares = {(s.vendor, s.version) for s in model.shares_on(date(2023, 5, 1))}
        assert (Vendor.CHROME, 115) not in shares

    def test_ancient_stratum_present(self, model):
        shares = {(s.vendor, s.version) for s in model.shares_on(date(2023, 5, 1))}
        assert (Vendor.EDGE, 18) in shares
        assert (Vendor.CHROME, 60) in shares

    def test_firefox_92_excluded(self, model):
        shares = {(s.vendor, s.version) for s in model.shares_on(date(2023, 5, 1))}
        assert (Vendor.FIREFOX, 92) not in shares
        assert (Vendor.FIREFOX, 93) in shares

    def test_sampling_respects_weights(self, model, rng):
        picks = model.sample(date(2023, 5, 1), 4000, rng)
        counts = Counter(picks)
        # The most common pick must be a recent Chrome release.
        (vendor, version), _ = counts.most_common(1)[0]
        assert vendor is Vendor.CHROME and version >= 110

    def test_sampling_zero_count(self, model, rng):
        assert model.sample(date(2023, 5, 1), 0, rng) == []


class TestTagModel:
    def test_default_rates_calibrated_to_paper(self):
        model = TagModel()
        ordinary = model.rates_for(Persona.ORDINARY)
        assert 0.45 <= ordinary.untrusted_ip <= 0.55
        assert ordinary.ato < 0.01
        fraudster = model.rates_for(Persona.FRAUDSTER)
        assert fraudster.untrusted_ip > 0.9
        assert fraudster.ato > ordinary.ato * 5

    def test_sampling_matches_rates(self, rng):
        model = TagModel()
        personas = tuple([Persona.FRAUDSTER] * 5000)
        ip, cookie, ato = model.sample_many(personas, rng)
        assert abs(ip.mean() - 0.95) < 0.02
        assert abs(cookie.mean() - 0.92) < 0.02

    def test_single_sample_shape(self, rng):
        triple = TagModel().sample(Persona.ORDINARY, rng)
        assert len(triple) == 3
        assert all(isinstance(v, bool) for v in triple)

    def test_rate_override(self):
        model = TagModel({Persona.ORDINARY: TagRates(1.0, 1.0, 1.0)})
        assert model.rates_for(Persona.ORDINARY).ato == 1.0

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            TagRates(1.5, 0.5, 0.0)


class TestTrafficConfig:
    def test_scaled_preserves_ratio(self):
        config = TrafficConfig().scaled(20_500)
        assert config.n_sessions == 20_500
        assert config.cat1_sessions == 20
        assert config.cat2_sessions == 32

    def test_fraud_total(self):
        config = TrafficConfig(
            cat1_sessions=1, cat2_sessions=2, cat3_sessions=3, cat4_sessions=4
        )
        assert config.fraud_total() == 10

    def test_too_small_config_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            TrafficSimulator(TrafficConfig(n_sessions=100))


class TestGenerator:
    def test_row_counts_match_config(self, small_dataset):
        config = TrafficConfig().scaled(15_000)
        assert len(small_dataset) == 15_000
        kinds = Counter(small_dataset.truth_kind.tolist())
        assert kinds[SessionKind.FRAUD.value] == config.fraud_total()
        assert kinds[SessionKind.DERIVATIVE.value] == config.brave_sessions

    def test_deterministic_given_seed(self):
        a = TrafficSimulator(TrafficConfig(seed=42).scaled(3000)).generate()
        b = TrafficSimulator(TrafficConfig(seed=42).scaled(3000)).generate()
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.ua_keys, b.ua_keys)
        assert np.array_equal(a.ato, b.ato)

    def test_different_seeds_differ(self):
        a = TrafficSimulator(TrafficConfig(seed=1).scaled(3000)).generate()
        b = TrafficSimulator(TrafficConfig(seed=2).scaled(3000)).generate()
        assert not np.array_equal(a.features, b.features)

    def test_feature_names_attached(self, small_dataset):
        assert small_dataset.feature_names == list(FEATURE_NAMES)

    def test_tag_rates_near_paper(self, small_dataset):
        rates = small_dataset.tag_rates()
        assert abs(rates["untrusted_ip"] - 0.51) < 0.03
        assert abs(rates["untrusted_cookie"] - 0.49) < 0.03
        assert rates["ato"] < 0.01

    def test_many_distinct_releases(self, small_dataset):
        # The paper's window saw 113 releases; ours should be comparable.
        assert len(small_dataset.distinct_releases()) > 60

    def test_dates_inside_window(self, small_dataset):
        config = TrafficConfig()
        days = small_dataset.days.astype("datetime64[D]")
        assert days.min() >= np.datetime64(config.start)
        assert days.max() < np.datetime64(config.end)

    def test_legit_sessions_match_reference_surface(self, small_dataset):
        # An unperturbed legit Chrome session equals the lab fingerprint.
        from repro.browsers.profiles import BrowserProfile
        from repro.fingerprint.collector import FingerprintCollector

        mask = (
            (small_dataset.truth_kind == "legit")
            & (small_dataset.ua_keys == "chrome-112")
            & (small_dataset.truth_perturbation == "")
        )
        assert mask.sum() > 0
        row = small_dataset.features[np.nonzero(mask)[0][0]]
        reference = FingerprintCollector().collect(
            BrowserProfile(Vendor.CHROME, 112).environment()
        )
        assert np.array_equal(row, reference)

    def test_category2_fraud_has_engine_fingerprint(self, small_dataset):
        from repro.fingerprint.collector import FingerprintCollector
        from repro.fraudbrowsers.catalog import fraud_browser
        from repro.jsengine.environment import JSEnvironment
        from repro.jsengine.evolution import Engine

        mask = small_dataset.truth_browser == "GoLogin-3.2.19"
        if not mask.any():
            pytest.skip("no GoLogin sessions in this sample")
        engine_version = fraud_browser("GoLogin-3.2.19").engine_version
        reference = FingerprintCollector().collect(
            JSEnvironment(Engine.CHROMIUM, engine_version)
        )
        for row in small_dataset.features[mask][:5]:
            assert np.array_equal(row, reference)

    def test_session_ids_unique(self, small_dataset):
        ids = small_dataset.session_ids.tolist()
        assert len(set(ids)) == len(ids)

    def test_candidate_space_generation(self):
        from repro.fingerprint.candidates import generate_candidates

        candidates = generate_candidates()
        dataset = TrafficSimulator(
            TrafficConfig(seed=3).scaled(1500), specs=candidates.all_specs
        ).generate()
        assert dataset.n_features == 513


class TestDataset:
    def test_subset_by_mask(self, small_dataset):
        mask = small_dataset.ua_keys == "chrome-112"
        subset = small_dataset.subset(mask)
        assert len(subset) == int(mask.sum())
        assert set(subset.ua_keys.tolist()) == {"chrome-112"}

    def test_concatenate(self, small_dataset):
        first = small_dataset.subset(np.arange(100))
        second = small_dataset.subset(np.arange(100, 150))
        combined = Dataset.concatenate([first, second])
        assert len(combined) == 150

    def test_concatenate_mismatched_columns_rejected(self, small_dataset):
        clone = small_dataset.subset(np.arange(10))
        clone.feature_names = ["x"] * small_dataset.n_features
        with pytest.raises(ValueError):
            Dataset.concatenate([small_dataset.subset(np.arange(10)), clone])

    def test_save_load_roundtrip(self, small_dataset, tmp_path):
        path = str(tmp_path / "traffic.npz")
        subset = small_dataset.subset(np.arange(500))
        subset.save(path)
        loaded = Dataset.load(path)
        assert np.array_equal(loaded.features, subset.features)
        assert loaded.ua_keys.tolist() == subset.ua_keys.tolist()
        assert np.array_equal(loaded.ato, subset.ato)
        assert loaded.feature_names == subset.feature_names
        assert loaded.days.tolist() == subset.days.tolist()

    def test_row_materializes_session(self, small_dataset):
        session = small_dataset.row(0)
        assert len(session.features) == small_dataset.n_features
        assert session.truth is not None

    def test_misaligned_columns_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="misaligned"):
            Dataset(
                features=small_dataset.features[:10],
                ua_keys=small_dataset.ua_keys[:9],
                user_agents=small_dataset.user_agents[:10],
                session_ids=small_dataset.session_ids[:10],
                days=small_dataset.days[:10],
                untrusted_ip=small_dataset.untrusted_ip[:10],
                untrusted_cookie=small_dataset.untrusted_cookie[:10],
                ato=small_dataset.ato[:10],
                truth_kind=small_dataset.truth_kind[:10],
                truth_browser=small_dataset.truth_browser[:10],
                truth_category=small_dataset.truth_category[:10],
                truth_perturbation=small_dataset.truth_perturbation[:10],
            )

    def test_fraud_masks(self, small_dataset):
        fraud = small_dataset.is_fraud()
        detectable = small_dataset.is_detectable_fraud()
        assert detectable.sum() <= fraud.sum()
        assert set(small_dataset.truth_category[detectable].tolist()) <= {1, 2}
