"""Stolen-profile marketplace and attack-campaign tests."""

from datetime import date

import pytest

from repro.fraudbrowsers.catalog import fraud_browser
from repro.fraudbrowsers.marketplace import AttackCampaign, Marketplace


@pytest.fixture()
def market(small_dataset):
    market = Marketplace(seed=13)
    market.harvest_from_traffic(small_dataset, infection_rate=0.02)
    return market


class TestMarketplace:
    def test_harvest_size_matches_infection_rate(self, small_dataset, market):
        assert market.stock == round(0.02 * len(small_dataset))

    def test_listings_carry_victim_identity(self, small_dataset, market):
        listing = market.inventory[0]
        assert listing.victim_session_id.startswith("sess-")
        assert listing.user_agent.version > 0
        assert listing.price_usd > 0

    def test_inventory_sorted_oldest_first(self, market):
        dates = [p.harvested_on for p in market.inventory]
        assert dates == sorted(dates)

    def test_buy_depletes_stock_oldest_first(self, market):
        before = market.stock
        bought = market.buy(10)
        assert len(bought) == 10
        assert market.stock == before - 10
        assert market.sold_count == 10
        assert all(
            b.harvested_on <= market.inventory[0].harvested_on for b in bought
        )

    def test_buy_more_than_stock(self, market):
        bought = market.buy(market.stock + 50)
        assert market.stock == 0
        assert len(bought) > 0

    def test_average_age(self, market):
        age = market.average_age_days(date(2023, 9, 1))
        assert age > 30  # the window ended July 1

    def test_harvest_deterministic(self, small_dataset):
        a = Marketplace(seed=5)
        a.harvest_from_traffic(small_dataset, infection_rate=0.01)
        b = Marketplace(seed=5)
        b.harvest_from_traffic(small_dataset, infection_rate=0.01)
        assert [p.victim_session_id for p in a.inventory] == [
            p.victim_session_id for p in b.inventory
        ]

    def test_invalid_rate_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            Marketplace().harvest_from_traffic(small_dataset, infection_rate=0.0)

    def test_invalid_buy_rejected(self, market):
        with pytest.raises(ValueError):
            market.buy(0)


class TestAttackCampaign:
    def test_sessions_claim_victim_user_agents(self, market):
        campaign = AttackCampaign(fraud_browser("GoLogin-3.3.23"), market, seed=1)
        sessions = campaign.run(8)
        assert len(sessions) == 8
        for attack in sessions:
            assert attack.payload.user_agent == attack.victim.user_agent.raw
            assert len(attack.payload.values) == 28

    def test_category2_attacks_mostly_caught(self, trained, market):
        campaign = AttackCampaign(fraud_browser("GoLogin-3.3.23"), market, seed=2)
        sessions = campaign.run(20)
        flagged = sum(
            trained.detect_payload(a.payload).flagged for a in sessions
        )
        assert flagged / len(sessions) > 0.6

    def test_antbrowser_attacks_carry_markers(self, market):
        campaign = AttackCampaign(fraud_browser("AntBrowser-2023.05"), market, seed=3)
        sessions = campaign.run(3)
        for attack in sessions:
            assert "ANTBROWSER" in attack.payload.suspicious_globals

    def test_campaign_consumes_marketplace_stock(self, market):
        stock = market.stock
        AttackCampaign(fraud_browser("Octo Browser-1.10"), market, seed=4).run(12)
        assert market.stock == stock - 12

    def test_invalid_attack_count_rejected(self, market):
        campaign = AttackCampaign(fraud_browser("GoLogin-3.3.23"), market)
        with pytest.raises(ValueError):
            campaign.run(0)
