"""Node graph, label propagation, and the persistable fusion model."""

import json
from dataclasses import replace
from datetime import date, timedelta

import numpy as np
import pytest

from repro.core.pipeline import BrowserPolygraph
from repro.fusion.labels import weak_labels
from repro.fusion.model import FusionModel, load_fusion_document
from repro.fusion.propagation import (
    PropagationConfig,
    build_node_index,
    propagate,
    seed_scores,
    staleness_bucket,
)
from repro.fusion.staleness import release_date_for, staleness_for


@pytest.fixture(scope="module")
def fusion_model(trained, small_dataset):
    return FusionModel.train(small_dataset, trained.cluster_model)


class TestPropagationConfig:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"n_neighbors": 0},
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"max_iterations": -1},
            {"tolerance": 0.0},
            {"shrinkage": -1.0},
            {"tag_scale": 0.0},
            {"staleness_bucket_days": 0.0},
            {"max_staleness_buckets": -1},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            replace(PropagationConfig(), **overrides)


class TestStaleness:
    def test_known_release_has_a_ship_date(self):
        assert release_date_for("chrome-112") is not None

    def test_unknown_release_degrades_to_fresh(self):
        assert release_date_for("nonsense-999") is None
        assert staleness_for("nonsense-999", date(2023, 6, 1)) == 0.0

    def test_missing_day_degrades_to_fresh(self):
        assert staleness_for("chrome-112", None) == 0.0

    def test_staleness_grows_with_the_session_date(self):
        released = release_date_for("chrome-112")
        on_release = staleness_for("chrome-112", released)
        later = staleness_for("chrome-112", released + timedelta(days=120))
        assert on_release == 0.0
        assert later == 120.0

    def test_sessions_before_release_clamp_to_zero(self):
        released = release_date_for("chrome-112")
        early = staleness_for("chrome-112", released - timedelta(days=30))
        assert early == 0.0

    def test_bucketing_is_capped(self):
        config = PropagationConfig()
        days = np.array([0.0, 44.0, 45.0, 400.0, 10_000.0])
        buckets = staleness_bucket(days, config)
        assert buckets.tolist() == [0, 0, 1, 5, 5]


class TestNodeGraph:
    def _index(self, config=None):
        config = config or PropagationConfig()
        digests = ["a", "a", "b", "b", "b", "c"]
        projected = np.array(
            [[0.0, 0.0], [0.2, 0.0], [5.0, 5.0], [5.1, 5.0], [5.0, 5.2],
             [10.0, 0.0]]
        )
        ip = np.array([0, 0, 1, 1, 1, 0], dtype=bool)
        cookie = np.zeros(6, dtype=bool)
        staleness = np.array([0.0, 0.0, 120.0, 120.0, 120.0, 0.0])
        return build_node_index(
            digests, projected, ip, cookie, staleness, config
        )

    def test_sessions_collapse_by_key(self):
        index = self._index()
        assert len(index) == 3
        assert index.counts.tolist() == [2.0, 3.0, 1.0]
        assert index.node_of.tolist() == [0, 0, 1, 1, 1, 2]
        # Key carries (digest, ip, cookie, staleness-bucket).
        assert index.keys[1] == ("b", 1, 0, 2)

    def test_embeddings_mean_the_member_projections(self):
        index = self._index()
        assert index.embeddings[0][:2] == pytest.approx([0.1, 0.0])
        assert index.embeddings.shape == (3, 5)  # 2 PCA + ip/cookie/bucket

    def test_seed_scores_shrink_toward_base(self):
        index = self._index()
        config = PropagationConfig(shrinkage=10.0)
        seeds = np.array([0, 0, 1, 1, 0, 0], dtype=bool)
        shrunk, base = seed_scores(index, seeds, config)
        assert base == pytest.approx(2 / 6)
        # Node 1 holds both seeds: (2 + 10*base) / (3 + 10).
        assert shrunk[1] == pytest.approx((2 + 10 * base) / 13)
        # Un-seeded nodes sit below base (pure shrinkage).
        assert shrunk[2] < base

    def test_member_mask_keeps_the_holdout_blind(self):
        index = self._index()
        config = PropagationConfig(shrinkage=0.0)
        seeds = np.array([0, 0, 1, 1, 0, 0], dtype=bool)
        fit_only = np.array([1, 1, 1, 0, 0, 1], dtype=bool)
        shrunk, base = seed_scores(
            index, seeds, config, member_mask=fit_only
        )
        # Only the masked-in seed counts: node 1 has 1 seed / 1 member.
        assert base == pytest.approx(1 / 4)
        assert shrunk[1] == pytest.approx(1.0)

    def test_propagation_converges_and_spreads(self):
        index = self._index()
        config = PropagationConfig(n_neighbors=2)
        seeds = np.array([0.0, 0.5, 0.0])
        result = propagate(index.embeddings, seeds, config)
        assert result.converged
        assert result.iterations <= config.max_iterations
        # Neighbors of the seeded node pick up mass.
        assert result.node_scores[0] > 0.0

    def test_non_convergence_falls_back_to_seeds(self):
        index = self._index()
        config = replace(
            PropagationConfig(), max_iterations=1, tolerance=1e-300
        )
        seeds = np.array([0.1, 0.5, 0.0])
        result = propagate(index.embeddings, seeds, config)
        assert not result.converged
        assert np.array_equal(result.node_scores, seeds)

    def test_single_node_graph_survives(self):
        config = PropagationConfig()
        index = build_node_index(
            ["only"],
            np.zeros((1, 2)),
            np.zeros(1, dtype=bool),
            np.zeros(1, dtype=bool),
            np.zeros(1),
            config,
        )
        result = propagate(index.embeddings, np.array([0.3]), config)
        assert result.node_scores.shape == (1,)


class TestFusionModel:
    def test_training_summary(self, fusion_model, small_dataset):
        assert fusion_model.n_nodes > 50
        assert fusion_model.trained_sessions == len(small_dataset)
        assert fusion_model.converged
        assert 0.0 < fusion_model.base_rate < 0.05
        assert fusion_model.reliability["n"] == len(small_dataset) // 2

    def test_exact_node_hit(self, fusion_model, small_dataset):
        labels = weak_labels(small_dataset)
        days = small_dataset.days.astype("datetime64[D]").astype(object)
        idx = 0
        opinion = fusion_model.second_opinion(
            small_dataset.features[idx],
            str(small_dataset.user_agents[idx]),
            day=days[idx],
            untrusted_ip=bool(labels.untrusted_ip[idx]),
            untrusted_cookie=bool(labels.untrusted_cookie[idx]),
        )
        assert opinion.matched_node
        assert 0.0 <= opinion.probability <= 1.0

    def test_unseen_fingerprint_takes_nearest_node(
        self, fusion_model, small_dataset
    ):
        values = tuple(int(v) + 997 for v in small_dataset.features[0])
        opinion = fusion_model.second_opinion(
            values, str(small_dataset.user_agents[0])
        )
        assert not opinion.matched_node
        assert 0.0 <= opinion.probability <= 1.0

    def test_unparseable_user_agent_degrades_to_fresh(self, fusion_model):
        opinion = fusion_model.second_opinion(
            (0,) * 28, "Not A Browser/0.0", day=date(2023, 6, 1)
        )
        assert opinion.staleness_days == 0.0

    def test_score_dataset_matches_pointwise_opinions(
        self, fusion_model, small_dataset
    ):
        subset = small_dataset.rows(0, 200)
        labels = weak_labels(subset)
        scores = fusion_model.score_dataset(subset, labels=labels)
        days = subset.days.astype("datetime64[D]").astype(object)
        for idx in (0, 57, 199):
            opinion = fusion_model.second_opinion(
                subset.features[idx],
                str(subset.user_agents[idx]),
                day=days[idx],
                untrusted_ip=bool(labels.untrusted_ip[idx]),
                untrusted_cookie=bool(labels.untrusted_cookie[idx]),
            )
            assert scores["raw"][idx] == pytest.approx(opinion.raw)
            assert scores["probability"][idx] == pytest.approx(
                opinion.probability
            )
            assert bool(scores["matched"][idx]) == opinion.matched_node

    def test_save_load_round_trip(self, fusion_model, trained, tmp_path):
        path = tmp_path / "fusion.json"
        digest = fusion_model.save(path)
        assert load_fusion_document(path)["sha256"] == digest
        restored = FusionModel.load(path, cluster_model=trained.cluster_model)
        assert restored.node_keys == fusion_model.node_keys
        assert np.allclose(restored.node_scores, fusion_model.node_scores)
        assert np.allclose(
            restored.node_embeddings, fusion_model.node_embeddings
        )
        assert restored.calibrator.base_rate == fusion_model.base_rate
        original = fusion_model.second_opinion((1,) * 28, "ua")
        loaded = restored.second_opinion((1,) * 28, "ua")
        assert loaded.probability == pytest.approx(original.probability)

    def test_tampered_document_rejected(self, fusion_model, tmp_path):
        path = tmp_path / "fusion.json"
        fusion_model.save(path)
        document = json.loads(path.read_text())
        document["node_scores"][0] = 0.999
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="digest"):
            load_fusion_document(path)

    def test_binding_to_a_different_pipeline_rejected(
        self, fusion_model, small_dataset
    ):
        other = BrowserPolygraph().fit(small_dataset.rows(0, 3_000))
        with pytest.raises(ValueError, match="different cluster model"):
            fusion_model.bind(other.cluster_model)

    def test_empty_tag_population(self, trained, small_dataset):
        subset = small_dataset.rows(0, 2_000)
        no_tags = replace(subset, ato=np.zeros(len(subset), dtype=bool))
        model = FusionModel.train(no_tags, trained.cluster_model)
        assert model.base_rate == 0.0
        opinion = model.second_opinion(
            subset.features[0], str(subset.user_agents[0])
        )
        assert opinion.probability == 0.0
        assert opinion.lift == 0.0

    def test_all_tagged_population(self, trained, small_dataset):
        subset = small_dataset.rows(0, 2_000)
        all_tags = replace(subset, ato=np.ones(len(subset), dtype=bool))
        model = FusionModel.train(all_tags, trained.cluster_model)
        assert model.base_rate == 1.0
        opinion = model.second_opinion(
            subset.features[0], str(subset.user_agents[0])
        )
        assert opinion.probability == 1.0
        assert opinion.lift == pytest.approx(1.0)

    def test_non_convergent_training_falls_back(
        self, trained, small_dataset
    ):
        config = replace(
            PropagationConfig(), max_iterations=1, tolerance=1e-300
        )
        model = FusionModel.train(
            small_dataset.rows(0, 2_000), trained.cluster_model, config
        )
        assert not model.converged
        opinion = model.second_opinion(
            small_dataset.features[0], str(small_dataset.user_agents[0])
        )
        assert 0.0 <= opinion.probability <= 1.0
