"""User-agent, release calendar, configs, derivatives, profile tests."""

from datetime import date, timedelta

import pytest

from repro.browsers.configs import (
    BENIGN_PERTURBATIONS,
    Perturbation,
    perturbation_by_name,
)
from repro.browsers.derivatives import (
    brave_environment,
    tor_claimed_firefox_version,
    tor_environment,
)
from repro.browsers.profiles import BrowserProfile
from repro.browsers.releases import ReleaseCalendar, default_calendar, engine_for_vendor
from repro.browsers.useragent import (
    UserAgentError,
    Vendor,
    format_user_agent,
    parse_ua_key,
    parse_user_agent,
    ua_key,
)
from repro.jsengine.environment import JSEnvironment
from repro.jsengine.evolution import Engine


class TestUserAgent:
    @pytest.mark.parametrize(
        "vendor,version",
        [
            (Vendor.CHROME, 59),
            (Vendor.CHROME, 119),
            (Vendor.FIREFOX, 46),
            (Vendor.FIREFOX, 119),
            (Vendor.EDGE, 79),
            (Vendor.EDGE, 119),
            (Vendor.EDGE, 17),
            (Vendor.EDGE, 18),
        ],
    )
    def test_roundtrip(self, vendor, version):
        parsed = parse_user_agent(format_user_agent(vendor, version))
        assert parsed.vendor is vendor
        assert parsed.version == version

    def test_edge_chromium_contains_chrome_token(self):
        raw = format_user_agent(Vendor.EDGE, 112)
        assert "Chrome/112" in raw and "Edg/112" in raw
        assert parse_user_agent(raw).vendor is Vendor.EDGE

    def test_edgehtml_spoofs_chrome_64(self):
        raw = format_user_agent(Vendor.EDGE, 18)
        assert "Chrome/64" in raw and "Edge/18" in raw
        parsed = parse_user_agent(raw)
        assert parsed.vendor is Vendor.EDGE and parsed.version == 18

    def test_firefox_rv_token(self):
        raw = format_user_agent(Vendor.FIREFOX, 110)
        assert "rv:110.0" in raw and "Gecko/20100101" in raw

    def test_macos_token(self):
        raw = format_user_agent(Vendor.CHROME, 110, "Macintosh; Intel Mac OS X 10_15_7")
        assert "Macintosh" in raw
        assert parse_user_agent(raw).version == 110

    def test_plain_chrome_parses_as_chrome(self):
        parsed = parse_user_agent(format_user_agent(Vendor.CHROME, 101))
        assert parsed.vendor is Vendor.CHROME

    def test_garbage_rejected(self):
        with pytest.raises(UserAgentError):
            parse_user_agent("curl/8.0")

    def test_empty_rejected(self):
        with pytest.raises(UserAgentError):
            parse_user_agent("   ")

    def test_zero_version_rejected(self):
        with pytest.raises(UserAgentError):
            format_user_agent(Vendor.CHROME, 0)

    def test_ua_key_roundtrip(self):
        parsed = parse_ua_key(ua_key(Vendor.FIREFOX, 102))
        assert parsed.vendor is Vendor.FIREFOX and parsed.version == 102
        assert parsed.raw.startswith("Mozilla/")

    def test_bad_ua_key_rejected(self):
        with pytest.raises(UserAgentError):
            parse_ua_key("safari-16")

    def test_display_and_key(self):
        parsed = parse_ua_key("chrome-112")
        assert parsed.display() == "Chrome 112"
        assert parsed.key() == "chrome-112"


class TestReleaseCalendar:
    @pytest.fixture(scope="class")
    def calendar(self):
        return default_calendar()

    def test_known_anchor_dates(self, calendar):
        assert calendar.release(Vendor.CHROME, 114).released == date(2023, 5, 30)
        assert calendar.release(Vendor.FIREFOX, 115).released == date(2023, 7, 4)

    def test_release_dates_monotone_per_vendor(self, calendar):
        for vendor in (Vendor.CHROME, Vendor.FIREFOX):
            releases = calendar.released_before(vendor, date(2024, 6, 1))
            dates = [r.released for r in releases]
            assert dates == sorted(dates)

    def test_edge_lags_chrome(self, calendar):
        chrome = calendar.release(Vendor.CHROME, 110).released
        edge = calendar.release(Vendor.EDGE, 110).released
        assert chrome < edge <= chrome.replace(day=min(chrome.day + 14, 28))

    def test_edgehtml_releases_present(self, calendar):
        for version in (17, 18, 19):
            assert calendar.has_release(Vendor.EDGE, version)

    def test_latest_before(self, calendar):
        latest = calendar.latest_before(Vendor.CHROME, date(2023, 6, 15))
        assert latest.version == 114

    def test_latest_before_no_history_rejected(self, calendar):
        with pytest.raises(KeyError):
            calendar.latest_before(Vendor.CHROME, date(2015, 1, 1))

    def test_new_releases_between(self, calendar):
        fresh = calendar.new_releases_between(date(2023, 10, 20), date(2023, 11, 5))
        keys = {r.key() for r in fresh}
        assert "firefox-119" in keys and "chrome-119" in keys

    def test_new_releases_between_includes_start_day(self, calendar):
        # [start, end): a release shipping exactly on `start` is in
        # the window — the gauntlet relies on this to land releases in
        # traffic the day they ship, not a day late.
        ship = calendar.release(Vendor.CHROME, 118).released
        keys = {
            r.key()
            for r in calendar.new_releases_between(ship, ship + timedelta(days=1))
        }
        assert "chrome-118" in keys

    def test_new_releases_between_excludes_end_day(self, calendar):
        ship = calendar.release(Vendor.CHROME, 118).released
        before = calendar.new_releases_between(ship - timedelta(days=1), ship)
        assert "chrome-118" not in {r.key() for r in before}

    def test_new_releases_between_empty_window(self, calendar):
        ship = calendar.release(Vendor.CHROME, 118).released
        assert calendar.new_releases_between(ship, ship) == []

    def test_latest_before_excludes_same_day_release(self, calendar):
        # "Before" is strict: on the ship day itself the previous
        # version is still the latest.
        ship = calendar.release(Vendor.CHROME, 118).released
        assert calendar.latest_before(Vendor.CHROME, ship).version == 117
        after = calendar.latest_before(Vendor.CHROME, ship + timedelta(days=1))
        assert after.version == 118

    def test_latest_before_first_release_boundary(self, calendar):
        # The day after the oldest release is the earliest queryable
        # cutoff; the release's own ship day still has no history.
        oldest = calendar.released_before(Vendor.CHROME, date(2024, 6, 1))[0]
        earliest = calendar.latest_before(
            Vendor.CHROME, oldest.released + timedelta(days=1)
        )
        assert earliest.version == oldest.version
        with pytest.raises(KeyError):
            calendar.latest_before(Vendor.CHROME, oldest.released)

    def test_engine_for_vendor(self):
        assert engine_for_vendor(Vendor.CHROME, 100) is Engine.CHROMIUM
        assert engine_for_vendor(Vendor.EDGE, 100) is Engine.CHROMIUM
        assert engine_for_vendor(Vendor.EDGE, 18) is Engine.EDGEHTML
        assert engine_for_vendor(Vendor.FIREFOX, 100) is Engine.GECKO

    def test_engine_for_vendor_edge_transition(self):
        # Edge moved to Chromium at 79: 78 is the last EdgeHTML build.
        assert engine_for_vendor(Vendor.EDGE, 78) is Engine.EDGEHTML
        assert engine_for_vendor(Vendor.EDGE, 79) is Engine.CHROMIUM
        assert engine_for_vendor(Vendor.FIREFOX, 1) is Engine.GECKO
        assert engine_for_vendor(Vendor.CHROME, 1) is Engine.CHROMIUM

    def test_out_of_scope_release_rejected(self, calendar):
        with pytest.raises(KeyError):
            calendar.release(Vendor.CHROME, 300)


class TestPerturbations:
    def test_lookup_by_name(self):
        assert perturbation_by_name("ext-duckduckgo").count_adjustments == {
            "Element": 2
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            perturbation_by_name("nope")

    def test_engine_scoping(self):
        ff_only = perturbation_by_name("ff-disable-serviceworkers")
        assert ff_only.applies_to(Engine.GECKO, 110)
        assert not ff_only.applies_to(Engine.CHROMIUM, 110)

    def test_version_window_scoping(self):
        trial = perturbation_by_name("chrome-119-field-trial")
        assert trial.applies_to(Engine.CHROMIUM, 119, Vendor.CHROME)
        assert not trial.applies_to(Engine.CHROMIUM, 118, Vendor.CHROME)
        assert not trial.applies_to(Engine.CHROMIUM, 120, Vendor.CHROME)

    def test_vendor_scoping(self):
        trial = perturbation_by_name("chrome-119-field-trial")
        assert not trial.applies_to(Engine.CHROMIUM, 119, Vendor.EDGE)

    def test_apply_zeroes_interfaces(self):
        env = JSEnvironment(Engine.GECKO, 110)
        perturbed = perturbation_by_name("ff-disable-serviceworkers").apply(env)
        assert perturbed.own_property_count("ServiceWorker") == 0
        assert env.own_property_count("ServiceWorker") > 0

    def test_apply_on_wrong_engine_is_identity(self):
        env = JSEnvironment(Engine.CHROMIUM, 110)
        perturbed = perturbation_by_name("ff-disable-serviceworkers").apply(env)
        assert perturbed is env

    def test_downgrade_changes_version(self):
        env = JSEnvironment(Engine.CHROMIUM, 112)
        frozen = perturbation_by_name("chromium-enterprise-frozen").apply(env)
        assert frozen.version == 106

    def test_probabilities_are_small(self):
        for perturbation in BENIGN_PERTURBATIONS:
            assert 0.0 < perturbation.probability < 0.06

    def test_custom_perturbation_adjusts_counts(self):
        env = JSEnvironment(Engine.CHROMIUM, 110)
        custom = Perturbation(name="x", count_adjustments={"Element": 5})
        assert custom.apply(env).own_property_count("Element") == (
            env.own_property_count("Element") + 5
        )


class TestDerivatives:
    def test_brave_differs_from_chrome(self):
        brave = brave_environment(112)
        chrome = JSEnvironment(Engine.CHROMIUM, 112)
        assert brave.own_property_count("Element") < chrome.own_property_count("Element")

    def test_brave_claims_chromium_engine(self):
        assert brave_environment(110).engine is Engine.CHROMIUM

    def test_tor_lags_firefox(self):
        assert tor_claimed_firefox_version(115) == 102

    def test_tor_zeroes_fingerprinting_apis(self):
        env = tor_environment(115)
        assert env.own_property_count("CanvasRenderingContext2D") == 0
        assert env.own_property_count("WebGL2RenderingContext") == 0


class TestBrowserProfile:
    def test_environment_engine_matches_vendor(self):
        assert BrowserProfile(Vendor.FIREFOX, 100).environment().engine is Engine.GECKO
        assert BrowserProfile(Vendor.EDGE, 18).environment().engine is Engine.EDGEHTML

    def test_user_agent_is_truthful(self):
        profile = BrowserProfile(Vendor.CHROME, 111)
        assert parse_user_agent(profile.user_agent()).version == 111
        assert profile.ua_key() == "chrome-111"

    def test_perturbations_apply_in_order(self):
        extension = perturbation_by_name("ext-duckduckgo")
        profile = BrowserProfile(Vendor.CHROME, 111, (extension,))
        plain = BrowserProfile(Vendor.CHROME, 111)
        assert profile.environment().own_property_count("Element") == (
            plain.environment().own_property_count("Element") + 2
        )
