"""Detection explanations and the WSGI collection endpoint."""

import io
import json

import numpy as np
import pytest

from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor, parse_ua_key
from repro.core.explain import explain_detection
from repro.fingerprint.collector import FingerprintCollector
from repro.fingerprint.script import CollectionScript
from repro.fraudbrowsers.base import FraudProfile
from repro.fraudbrowsers.catalog import fraud_browser
from repro.service.api import CollectionApp
from repro.service.ingest import PayloadValidator
from repro.service.scoring import ScoringService


class TestExplain:
    def test_consistent_session(self, trained):
        vector = FingerprintCollector().collect(
            BrowserProfile(Vendor.CHROME, 112).environment()
        )
        explanation = explain_detection(
            trained.cluster_model, vector, "chrome-112"
        )
        assert explanation.matches_claim
        assert "consistent" in explanation.summary()
        assert explanation.closest_release == "chrome-112"
        assert explanation.closest_distance == pytest.approx(0.0, abs=1e-9)

    def test_fraud_session_explained(self, trained):
        product = fraud_browser("GoLogin-3.3.23")
        vector = FingerprintCollector().collect(
            product.environment(
                FraudProfile(product.full_name, parse_ua_key("firefox-110"))
            )
        )
        explanation = explain_detection(
            trained.cluster_model, vector, "firefox-110"
        )
        assert not explanation.matches_claim
        # The engine is Chromium 114: the nearest legit release must be
        # a modern Chromium build, and the summary must say so.
        closest = parse_ua_key(explanation.closest_release)
        assert closest.vendor in (Vendor.CHROME, Vendor.EDGE)
        assert closest.version == 114
        assert "contradicts" in explanation.summary()
        assert explanation.divergences  # feature-level diff present

    def test_divergences_ranked_by_magnitude(self, trained):
        product = fraud_browser("GoLogin-3.3.23")
        vector = FingerprintCollector().collect(
            product.environment(
                FraudProfile(product.full_name, parse_ua_key("chrome-60"))
            )
        )
        explanation = explain_detection(trained.cluster_model, vector, "chrome-60")
        magnitudes = [abs(d.z_score) for d in explanation.divergences]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_unknown_claimed_ua(self, trained):
        vector = FingerprintCollector().collect(
            BrowserProfile(Vendor.CHROME, 112).environment()
        )
        explanation = explain_detection(trained.cluster_model, vector, "chrome-300")
        assert explanation.expected_cluster is None
        assert not explanation.matches_claim

    def test_unfitted_model_rejected(self):
        from repro.core.clustering import ClusterModel

        with pytest.raises(ValueError):
            explain_detection(ClusterModel(), np.zeros(28), "chrome-112")


def _request(app, method, path, body=b""):
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    from wsgiref.util import setup_testing_defaults

    environ = {}
    setup_testing_defaults(environ)
    environ.update(
        {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "CONTENT_LENGTH": str(len(body)),
            "wsgi.input": io.BytesIO(body),
        }
    )
    chunks = app(environ, start_response)
    return captured["status"], captured["headers"], b"".join(chunks)


class TestCollectionApp:
    @pytest.fixture(scope="class")
    def app(self, trained):
        service = ScoringService(
            trained, validator=PayloadValidator(dedup_window=0)
        )
        return CollectionApp(service)

    def _wire(self, session_id="api-1"):
        profile = BrowserProfile(Vendor.CHROME, 112)
        return CollectionScript().run(
            profile.environment(), profile.user_agent(), session_id
        ).to_wire()

    def test_collect_accepts_genuine_payload(self, app):
        status, headers, body = _request(app, "POST", "/collect", self._wire())
        assert status == "202 Accepted"
        document = json.loads(body)
        assert document["accepted"] and not document["flagged"]
        assert headers["Content-Type"] == "application/json"

    def test_collect_rejects_garbage(self, app):
        status, _, body = _request(app, "POST", "/collect", b"not json")
        assert status == "400 Bad Request"
        assert json.loads(body)["reject_reason"] == "malformed"

    def test_collect_rejects_empty_body(self, app):
        status, _, _ = _request(app, "POST", "/collect", b"")
        assert status == "400 Bad Request"

    def test_collect_flags_fraud(self, app):
        from repro.browsers.useragent import format_user_agent, parse_user_agent

        product = fraud_browser("GoLogin-3.3.23")
        victim = format_user_agent(Vendor.FIREFOX, 110)
        payload = CollectionScript().run(
            product.environment(
                FraudProfile(product.full_name, parse_user_agent(victim))
            ),
            victim,
            "api-fraud",
        )
        status, _, body = _request(app, "POST", "/collect", payload.to_wire())
        assert status == "202 Accepted"
        document = json.loads(body)
        assert document["flagged"] and document["risk_factor"] == 20

    def test_health_endpoint(self, app):
        status, _, body = _request(app, "GET", "/health")
        assert status == "200 OK"
        document = json.loads(body)
        assert document["status"] == "ok"
        assert document["clusters"] == 11

    def test_metrics_endpoint(self, app):
        status, headers, body = _request(app, "GET", "/metrics")
        assert status == "200 OK"
        text = body.decode()
        assert "polygraph_sessions_scored" in text
        assert "polygraph_payloads_rejected" in text
        assert headers["Content-Type"].startswith("text/plain")

    def test_unknown_route(self, app):
        status, _, _ = _request(app, "GET", "/nope")
        assert status == "404 Not Found"

    def test_runs_under_wsgiref(self, app):
        from wsgiref.validate import validator as wsgi_validator

        status, _, body = _request(
            wsgi_validator(app), "POST", "/collect", self._wire("api-val")
        )
        assert status == "202 Accepted"


class TestHttpRoundtrip:
    def test_real_http_server(self, trained):
        """Serve the WSGI app on a real socket and POST a payload."""
        import http.client
        import threading
        from wsgiref.simple_server import WSGIRequestHandler, make_server

        class QuietHandler(WSGIRequestHandler):
            def log_message(self, *args):  # silence request logging
                pass

        service = ScoringService(
            trained, validator=PayloadValidator(dedup_window=0)
        )
        server = make_server(
            "127.0.0.1", 0, CollectionApp(service), handler_class=QuietHandler
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            profile = BrowserProfile(Vendor.CHROME, 112)
            wire = CollectionScript().run(
                profile.environment(), profile.user_agent(), "http-1"
            ).to_wire()
            connection = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
            connection.request(
                "POST", "/collect", body=wire,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 202
            document = json.loads(response.read())
            assert document["accepted"] and not document["flagged"]

            connection.request("GET", "/health")
            health = connection.getresponse()
            assert health.status == 200
            assert json.loads(health.read())["clusters"] == 11
            connection.close()
        finally:
            server.shutdown()
            thread.join(timeout=5)
