"""Shard-affine session lanes behind the cluster router.

Pins the satellite contract that lifted the old ``--session-ttl
requires single-process mode`` restriction: lane placement follows the
ring, scoring still flows through the router (so verdicts match the
single-process session layer), ``GET /sessions`` aggregates across
lanes, and each lane's durable event log lives in its own
``shard-<id>`` subdirectory.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cluster import ClusterConfig, ClusterRouter, ShardSupervisor
from repro.cluster.sessions import ClusterSessionService
from repro.service.api import CollectionApp
from repro.service.scoring import ScoringService
from repro.sessions import SessionScoringService
from repro.traffic.events import EventStreamConfig, build_event_streams


@pytest.fixture(scope="module")
def streams(small_dataset, trained):
    table = trained.cluster_model.ua_to_cluster

    def donor_ok(victim_key, donor_key):
        victim, donor = table.get(victim_key), table.get(donor_key)
        return victim is not None and donor is not None and victim != donor

    return build_event_streams(
        small_dataset, EventStreamConfig(seed=11), donor_ok=donor_ok
    )


@pytest.fixture()
def cluster(trained):
    supervisor = ShardSupervisor.from_polygraph(
        trained,
        config=ClusterConfig(n_shards=3, heartbeat_interval_s=5.0),
    )
    router = ClusterRouter(supervisor).start()
    yield router
    router.shutdown()


def _observe_all(service, streams, limit=12):
    observations = []
    for stream in streams[:limit]:
        for event in stream.events:
            observations.append(service.observe_wire(event.to_wire()))
    return observations


def _essence(observation):
    d = observation.to_dict()
    return (
        d["session_id"],
        d["accepted"],
        d["event_flagged"],
        d["event_risk"],
        d["session_flagged"],
        d["session_risk"],
        d["revision"],
        d["event_seq"],
        d["session_created"],
    )


class TestLanePlacement:
    def test_lane_follows_the_ring(self, cluster):
        sessions = ClusterSessionService(cluster, ttl_seconds=1e9)
        ring = cluster.supervisor.ring
        for i in range(50):
            sid = f"sess-{i}"
            assert sessions.lane_of(sid) == ring.node_for(sid.encode())

    def test_drained_ring_places_deterministically(self, cluster):
        sessions = ClusterSessionService(cluster, ttl_seconds=1e9)
        ring = cluster.supervisor.ring
        for shard_id in list(cluster.supervisor.shards):
            ring.remove(shard_id)
        lanes = {f"sess-{i}": sessions.lane_of(f"sess-{i}") for i in range(30)}
        # Stable across calls, valid lane ids, and not all one lane.
        assert all(
            sessions.lane_of(sid) == lane for sid, lane in lanes.items()
        )
        assert set(lanes.values()) <= set(cluster.supervisor.shards)
        assert len(set(lanes.values())) > 1

    def test_state_lands_in_the_owning_lane(self, cluster, streams):
        sessions = ClusterSessionService(cluster, ttl_seconds=1e9)
        stream = streams[0]
        sessions.observe_wire(stream.first.to_wire())
        owner = sessions.lane_of(stream.session_id)
        snapshot = sessions.session_snapshot(stream.session_id)
        assert snapshot is not None
        assert snapshot["shard"] == owner
        # The other lanes hold nothing for this session.
        for shard_id, lane in sessions._lanes.items():
            state = lane.session_snapshot(stream.session_id)
            assert (state is None) == (shard_id != owner)

    def test_snapshot_probes_other_lanes_after_ring_movement(
        self, cluster, streams
    ):
        sessions = ClusterSessionService(cluster, ttl_seconds=1e9)
        stream = streams[0]
        sessions.observe_wire(stream.first.to_wire())
        owner = sessions.lane_of(stream.session_id)
        cluster.supervisor.ring.remove(owner)
        try:
            snapshot = sessions.session_snapshot(stream.session_id)
            assert snapshot is not None
            assert snapshot["shard"] == owner
        finally:
            cluster.supervisor.ring.add(owner)


class TestClusterSessionParity:
    def test_observations_match_the_single_process_layer(
        self, cluster, trained, streams
    ):
        single = SessionScoringService(
            ScoringService(trained), ttl_seconds=1e9
        )
        sharded = ClusterSessionService(cluster, ttl_seconds=1e9)
        expected = [_essence(o) for o in _observe_all(single, streams)]
        actual = [_essence(o) for o in _observe_all(sharded, streams)]
        assert actual == expected

    def test_aggregate_status_sums_the_lanes(self, cluster, streams):
        sessions = ClusterSessionService(cluster, ttl_seconds=1e9)
        _observe_all(sessions, streams)
        status = sessions.status_dict()
        assert status["partitions"] == 3
        assert set(status["shards"]) == set(cluster.supervisor.shards)
        for field in (
            "active_sessions",
            "events_total",
            "revisions_total",
            "escalations_total",
        ):
            assert status[field] == sum(
                lane[field] for lane in status["shards"].values()
            )
        assert status["events_total"] == sum(
            len(s.events) for s in streams[:12]
        )
        # At least two lanes actually saw traffic.
        active = [
            lane
            for lane in status["shards"].values()
            if lane["events_total"] > 0
        ]
        assert len(active) > 1

    def test_metrics_keep_single_process_names_plus_per_shard(
        self, cluster, streams
    ):
        sessions = ClusterSessionService(cluster, ttl_seconds=1e9)
        _observe_all(sessions, streams, limit=4)
        text = "\n".join(sessions.metrics_lines())
        assert "polygraph_session_active " in text
        assert "polygraph_session_events_total " in text
        for shard_id in cluster.supervisor.shards:
            assert (
                f'polygraph_session_active_by_shard{{shard="{shard_id}"}}'
                in text
            )


class TestEventLogSubdirectories:
    def test_each_lane_writes_its_own_subdirectory(
        self, cluster, streams, tmp_path
    ):
        sessions = ClusterSessionService(
            cluster, ttl_seconds=1e9, event_log_root=tmp_path / "logs"
        )
        observed = _observe_all(sessions, streams)
        assert observed
        touched = {
            sessions.lane_of(s.session_id) for s in streams[:12]
        }
        appended = 0
        for shard_id in touched:
            lane_dir = tmp_path / "logs" / f"shard-{shard_id}"
            assert lane_dir.is_dir(), shard_id
            lane_log = sessions._lanes[shard_id].event_log
            assert lane_log is not None
            assert lane_log.root == lane_dir
            appended += lane_log.appended
        assert appended == len(observed)


class TestSessionsEndpointThroughTheCluster:
    def _call(self, app, method, path, body=b""):
        captured = {}

        def start_response(status, headers):
            captured["status"] = status

        environ = {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "CONTENT_LENGTH": str(len(body)),
            "wsgi.input": io.BytesIO(body),
        }
        chunks = app(environ, start_response)
        return captured["status"], json.loads(b"".join(chunks))

    def test_event_and_sessions_endpoints(self, cluster, streams):
        app = CollectionApp(
            cluster,
            sessions=ClusterSessionService(cluster, ttl_seconds=1e9),
        )
        stream = next(s for s in streams if len(s.events) >= 2)
        for event in stream.events:
            status, document = self._call(
                app, "POST", "/event", event.to_wire()
            )
            assert status == "202 Accepted", document
            assert document["session_id"] == stream.session_id
        status, document = self._call(
            app, "GET", f"/session/{stream.session_id}"
        )
        assert status == "200 OK"
        assert document["event_count"] == len(stream.events)
        assert document["shard"] in cluster.supervisor.shards
        status, document = self._call(app, "GET", "/sessions")
        assert status == "200 OK"
        assert document["partitions"] == 3
        assert document["events_total"] == len(stream.events)
