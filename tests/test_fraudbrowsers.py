"""Fraud browser simulator tests."""

import numpy as np
import pytest

from repro.browsers.useragent import Vendor, parse_ua_key
from repro.fingerprint.collector import FingerprintCollector
from repro.fraudbrowsers.base import Category, FraudProfile
from repro.fraudbrowsers.catalog import (
    FRAUD_BROWSERS,
    fraud_browser,
    fraud_browsers_in_category,
)
from repro.fraudbrowsers.profiles import build_experiment_profiles
from repro.jsengine.environment import JSEnvironment
from repro.jsengine.evolution import Engine


def _claimed(key: str):
    return parse_ua_key(key)


class TestCatalog:
    def test_table1_inventory_present(self):
        names = {b.name for b in FRAUD_BROWSERS}
        for expected in (
            "Linken Sphere", "ClonBrowser", "Incogniton", "GoLogin",
            "CheBrowser", "VMLogin", "Octo Browser", "Sphere",
            "AntBrowser", "AdsPower",
        ):
            assert expected in names

    def test_category_membership(self):
        assert fraud_browser("Linken Sphere-8.93").category is Category.IMPOSSIBLE_FINGERPRINT
        assert fraud_browser("GoLogin-3.3.23").category is Category.FIXED_ENGINE
        assert fraud_browser("AdsPower-5.4.20").category is Category.ENGINE_FOLLOWS_UA

    def test_lookup_by_bare_name(self):
        assert fraud_browser("Incogniton").version == "3.2.7.7"

    def test_unknown_browser_rejected(self):
        with pytest.raises(KeyError):
            fraud_browser("HonestBrowser-1.0")

    def test_category_filter(self):
        cat2 = fraud_browsers_in_category(Category.FIXED_ENGINE)
        assert len(cat2) >= 7
        assert all(b.category is Category.FIXED_ENGINE for b in cat2)

    def test_sphere_ships_ancient_engine(self):
        assert fraud_browser("Sphere-1.3").engine_version == 61


class TestEnvironments:
    def test_category2_ignores_claimed_ua(self):
        product = fraud_browser("GoLogin-3.3.23")
        env_ff = product.environment(
            FraudProfile(product.full_name, _claimed("firefox-110"))
        )
        env_chrome = product.environment(
            FraudProfile(product.full_name, _claimed("chrome-90"))
        )
        collector = FingerprintCollector()
        assert np.array_equal(collector.collect(env_ff), collector.collect(env_chrome))
        assert env_ff.engine is Engine.CHROMIUM
        assert env_ff.version == product.engine_version

    def test_category2_matches_genuine_engine(self):
        product = fraud_browser("GoLogin-3.3.23")
        env = product.environment(
            FraudProfile(product.full_name, _claimed("firefox-110"))
        )
        genuine = JSEnvironment(Engine.CHROMIUM, product.engine_version)
        collector = FingerprintCollector()
        assert np.array_equal(collector.collect(env), collector.collect(genuine))

    def test_category3_follows_claimed_ua(self):
        product = fraud_browser("AdsPower-5.4.20")
        env = product.environment(
            FraudProfile(product.full_name, _claimed("firefox-110"))
        )
        assert env.engine is Engine.GECKO
        assert env.version == 110

    def test_category1_matches_no_genuine_browser(self):
        product = fraud_browser("Linken Sphere-8.93")
        collector = FingerprintCollector()
        vector = collector.collect(
            product.environment(FraudProfile(product.full_name, _claimed("chrome-112"), 3))
        )
        for version in range(59, 120):
            genuine = collector.collect(JSEnvironment(Engine.CHROMIUM, version))
            assert not np.array_equal(vector, genuine)

    def test_category1_profiles_differ_from_each_other(self):
        product = fraud_browser("ClonBrowser-4.6.6")
        collector = FingerprintCollector()
        vectors = [
            collector.collect(
                product.environment(
                    FraudProfile(product.full_name, _claimed("chrome-112"), seed)
                )
            )
            for seed in range(5)
        ]
        distinct = {tuple(v.tolist()) for v in vectors}
        assert len(distinct) == 5

    def test_category1_deterministic_per_profile(self):
        product = fraud_browser("Linken Sphere-8.93")
        profile = FraudProfile(product.full_name, _claimed("chrome-100"), 9)
        collector = FingerprintCollector()
        assert np.array_equal(
            collector.collect(product.environment(profile)),
            collector.collect(product.environment(profile)),
        )


class TestExperimentProfiles:
    _TABLE = {
        0: ["chrome-110", "chrome-113", "edge-110"],
        1: ["firefox-101", "firefox-114"],
        2: ["chrome-59", "chrome-68"],
        3: ["chrome-114", "edge-114"],
        4: [],
    }

    def test_gologin_two_per_cluster(self):
        profiles = build_experiment_profiles(fraud_browser("GoLogin-3.3.23"), self._TABLE)
        assert len(profiles) == 8  # 4 populated clusters x 2

    def test_incogniton_one_per_cluster(self):
        profiles = build_experiment_profiles(
            fraud_browser("Incogniton-3.2.7.7"), self._TABLE
        )
        assert len(profiles) == 4

    def test_octo_adds_random_extras(self):
        profiles = build_experiment_profiles(
            fraud_browser("Octo Browser-1.10"), self._TABLE
        )
        assert len(profiles) == 9  # 8 + 1 randomized

    def test_sphere_uses_canned_profiles(self):
        profiles = build_experiment_profiles(fraud_browser("Sphere-1.3"), self._TABLE)
        assert len(profiles) == 9
        assert profiles[0].claimed.key() == "chrome-63"

    def test_profiles_are_deterministic(self):
        a = build_experiment_profiles(fraud_browser("GoLogin-3.3.23"), self._TABLE)
        b = build_experiment_profiles(fraud_browser("GoLogin-3.3.23"), self._TABLE)
        assert [p.claimed.key() for p in a] == [p.claimed.key() for p in b]

    def test_claimable_vendors(self):
        assert Vendor.FIREFOX in fraud_browser("GoLogin-3.3.23").claimable_vendors()
        assert fraud_browser("Sphere-1.3").claimable_vendors() == (Vendor.CHROME,)
