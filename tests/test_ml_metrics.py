"""Clustering / entropy / anonymity metric tests."""

import math

import numpy as np
import pytest

from repro.ml.metrics import (
    anonymity_set_sizes,
    anonymity_survey,
    majority_cluster_accuracy,
    majority_cluster_map,
    normalized_shannon_entropy,
    shannon_entropy,
    silhouette_samples_mean,
)


class TestMajorityCluster:
    def test_perfect_assignment(self):
        labels = ["a", "a", "b", "b"]
        clusters = [0, 0, 1, 1]
        assert majority_cluster_accuracy(labels, clusters) == 1.0
        assert majority_cluster_map(labels, clusters) == {"a": 0, "b": 1}

    def test_minority_rows_count_as_misclustered(self):
        labels = ["a"] * 10
        clusters = [0] * 9 + [1]
        assert majority_cluster_accuracy(labels, clusters) == pytest.approx(0.9)

    def test_two_labels_may_share_a_cluster(self):
        # The paper's Table 3 groups several user-agents per cluster; that
        # is NOT a misclustering under Formula 1.
        labels = ["chrome-59", "chrome-60", "firefox-51"]
        clusters = [2, 2, 2]
        assert majority_cluster_accuracy(labels, clusters) == 1.0

    def test_tie_breaks_toward_smaller_cluster_id(self):
        mapping = majority_cluster_map(["a", "a"], [1, 0])
        assert mapping["a"] == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            majority_cluster_map(["a"], [0, 1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            majority_cluster_accuracy([], [])


class TestEntropy:
    def test_uniform_distribution(self):
        values = ["a", "b", "c", "d"]
        assert shannon_entropy(values) == pytest.approx(2.0)

    def test_constant_distribution(self):
        assert shannon_entropy(["x"] * 50) == pytest.approx(0.0)

    def test_biased_coin(self):
        values = ["h"] * 75 + ["t"] * 25
        expected = -(0.75 * math.log2(0.75) + 0.25 * math.log2(0.25))
        assert shannon_entropy(values) == pytest.approx(expected)

    def test_normalized_bounds(self):
        values = list(range(100))
        normalized = normalized_shannon_entropy(values)
        assert normalized == pytest.approx(1.0)
        assert normalized_shannon_entropy(["x"] * 100) == pytest.approx(0.0)

    def test_normalized_with_explicit_total(self):
        values = ["a", "b"] * 50
        assert normalized_shannon_entropy(values, total=4) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            shannon_entropy([])


class TestAnonymity:
    def test_set_sizes(self):
        fingerprints = [(1,), (1,), (2,), (3,), (3,), (3,)]
        assert anonymity_set_sizes(fingerprints) == [2, 2, 1, 3, 3, 3]

    def test_survey_percentages_sum_to_100(self):
        fingerprints = [(i % 3,) for i in range(90)] + [(99,)]
        survey = anonymity_survey(fingerprints, buckets=((1, 1), (2, 10**9)))
        assert sum(survey.values()) == pytest.approx(100.0)

    def test_survey_unique_share(self):
        fingerprints = [(0,)] * 99 + [(1,)]
        survey = anonymity_survey(fingerprints, buckets=((1, 1), (2, 10**9)))
        assert survey["1"] == pytest.approx(1.0)

    def test_survey_empty_rejected(self):
        with pytest.raises(ValueError):
            anonymity_survey([])


class TestSilhouette:
    def test_separated_blobs_score_high(self, rng):
        data = np.vstack(
            [
                rng.normal(0.0, 0.2, size=(50, 2)),
                rng.normal(10.0, 0.2, size=(50, 2)),
            ]
        )
        clusters = [0] * 50 + [1] * 50
        assert silhouette_samples_mean(data, clusters) > 0.9

    def test_random_labels_score_low(self, rng):
        data = rng.normal(size=(100, 2))
        clusters = rng.integers(0, 2, size=100)
        assert silhouette_samples_mean(data, clusters) < 0.2

    def test_single_cluster_rejected(self, rng):
        with pytest.raises(ValueError):
            silhouette_samples_mean(rng.normal(size=(10, 2)), [0] * 10)
