"""Isotonic calibration and the fit/holdout split — pure-numpy units."""

import numpy as np
import pytest

from repro.fusion.calibration import (
    IsotonicCalibrator,
    pav_fit,
    reliability_report,
    split_halves,
)


class TestPAV:
    def test_already_monotone_is_identity(self):
        values = np.array([0.0, 0.1, 0.4, 0.9])
        assert np.allclose(pav_fit(values), values)

    def test_violators_pool_to_block_means(self):
        # Classic example: a decreasing pair pools to its mean.
        fitted = pav_fit(np.array([1.0, 0.0]))
        assert np.allclose(fitted, [0.5, 0.5])

    def test_output_is_nondecreasing(self):
        rng = np.random.default_rng(3)
        fitted = pav_fit(rng.normal(size=200))
        assert np.all(np.diff(fitted) >= -1e-12)

    def test_preserves_mean(self):
        rng = np.random.default_rng(5)
        values = rng.uniform(size=64)
        assert pav_fit(values).mean() == pytest.approx(values.mean())


class TestIsotonicCalibrator:
    def test_empty_tag_set(self):
        # No outcomes at all: calibrate to zero everywhere, zero base.
        calibrator = IsotonicCalibrator.fit(np.array([]), np.array([]))
        assert calibrator.base_rate == 0.0
        assert calibrator.transform_one(0.7) == 0.0

    def test_single_class_all_negative(self):
        raw = np.linspace(0, 1, 50)
        calibrator = IsotonicCalibrator.fit(raw, np.zeros(50))
        assert calibrator.base_rate == 0.0
        assert np.all(calibrator.transform(raw) == 0.0)

    def test_single_class_all_positive(self):
        # The all-tagged population: every probability is 1.
        raw = np.linspace(0, 1, 50)
        calibrator = IsotonicCalibrator.fit(raw, np.ones(50))
        assert calibrator.base_rate == 1.0
        assert np.all(calibrator.transform(raw) == 1.0)

    def test_monotone_and_clipped(self):
        rng = np.random.default_rng(11)
        raw = rng.uniform(size=500)
        outcomes = (rng.uniform(size=500) < raw).astype(float)
        calibrator = IsotonicCalibrator.fit(raw, outcomes)
        grid = np.linspace(-1.0, 2.0, 100)  # outside the fitted range too
        probabilities = calibrator.transform(grid)
        assert np.all(np.diff(probabilities) >= -1e-12)
        assert probabilities.min() >= 0.0 and probabilities.max() <= 1.0

    def test_recovers_a_monotone_signal(self):
        rng = np.random.default_rng(13)
        raw = rng.uniform(size=4000)
        outcomes = (rng.uniform(size=4000) < raw).astype(float)
        calibrator = IsotonicCalibrator.fit(raw, outcomes)
        assert calibrator.transform_one(0.9) > calibrator.transform_one(0.1)
        assert calibrator.transform_one(0.5) == pytest.approx(0.5, abs=0.1)

    def test_duplicate_raw_scores_collapse_to_knots(self):
        raw = np.array([0.2, 0.2, 0.2, 0.8, 0.8])
        outcomes = np.array([0.0, 0.0, 1.0, 1.0, 1.0])
        calibrator = IsotonicCalibrator.fit(raw, outcomes)
        assert calibrator.xs.shape == (2,)  # one knot per distinct raw

    def test_round_trip_through_dict(self):
        raw = np.linspace(0, 1, 20)
        outcomes = (raw > 0.6).astype(float)
        calibrator = IsotonicCalibrator.fit(raw, outcomes)
        restored = IsotonicCalibrator.from_dict(calibrator.to_dict())
        assert np.array_equal(restored.xs, calibrator.xs)
        assert np.array_equal(restored.ys, calibrator.ys)
        assert restored.base_rate == calibrator.base_rate

    def test_misaligned_curve_rejected(self):
        with pytest.raises(ValueError):
            IsotonicCalibrator(xs=[0.0, 1.0], ys=[0.0], base_rate=0.0)


class TestReliabilityReport:
    def test_empty(self):
        report = reliability_report(np.array([]), np.array([]))
        assert report == {"bins": [], "ece": 0.0, "n": 0}

    def test_perfectly_calibrated_has_near_zero_ece(self):
        rng = np.random.default_rng(17)
        probabilities = rng.uniform(size=20_000)
        outcomes = (rng.uniform(size=20_000) < probabilities).astype(float)
        report = reliability_report(probabilities, outcomes)
        assert report["n"] == 20_000
        assert report["ece"] < 0.03

    def test_miscalibrated_has_large_ece(self):
        probabilities = np.full(1000, 0.9)
        outcomes = np.zeros(1000)
        report = reliability_report(probabilities, outcomes)
        assert report["ece"] > 0.8

    def test_constant_probabilities_single_degenerate_range(self):
        probabilities = np.full(100, 0.5)
        outcomes = np.ones(100)
        report = reliability_report(probabilities, outcomes)
        assert report["n"] == 100  # degenerate range must not crash


class TestSplitHalves:
    def test_partition(self):
        fit_mask, holdout_mask = split_halves(11)
        assert not np.any(fit_mask & holdout_mask)
        assert np.all(fit_mask | holdout_mask)
        assert fit_mask.sum() == 6 and holdout_mask.sum() == 5

    def test_deterministic_and_interleaved(self):
        fit_mask, _ = split_halves(6)
        assert fit_mask.tolist() == [True, False, True, False, True, False]

    def test_empty(self):
        fit_mask, holdout_mask = split_halves(0)
        assert fit_mask.shape == (0,) and holdout_mask.shape == (0,)
