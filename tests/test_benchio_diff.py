"""Bench artifact diff tool tests (``python -m repro.analysis.benchio``)."""

import pytest

from repro.analysis.benchio import (
    diff_bench_documents,
    main,
    read_bench_json,
    write_bench_json,
)


def _doc(tmp_path, name, wires_per_s, flag_rate, filename):
    path = tmp_path / filename
    write_bench_json(
        path,
        benchmark=name,
        config={"seed": 7},
        cells=[
            {
                "cell": "full",
                "wires_per_s": wires_per_s,
                "flag_rate": flag_rate,
                "deterministic": True,
            }
        ],
    )
    return path


class TestDiffDocuments:
    def test_within_tolerance_has_no_regressions(self, tmp_path):
        old = read_bench_json(_doc(tmp_path, "b", 1000.0, 0.02, "old.json"))
        new = read_bench_json(_doc(tmp_path, "b", 950.0, 0.02, "new.json"))
        result = diff_bench_documents(old, new, max_regress=0.15)
        assert result["regressions"] == []

    def test_throughput_drop_is_a_regression(self, tmp_path):
        old = read_bench_json(_doc(tmp_path, "b", 1000.0, 0.02, "old.json"))
        new = read_bench_json(_doc(tmp_path, "b", 700.0, 0.02, "new.json"))
        result = diff_bench_documents(old, new, max_regress=0.15)
        assert len(result["regressions"]) == 1
        assert result["regressions"][0].startswith("full.wires_per_s:")

    def test_non_throughput_metrics_never_gate(self, tmp_path):
        # flag_rate halving is a big relative change but not a
        # throughput metric, so it must not gate.
        old = read_bench_json(_doc(tmp_path, "b", 1000.0, 0.04, "old.json"))
        new = read_bench_json(_doc(tmp_path, "b", 1000.0, 0.02, "new.json"))
        result = diff_bench_documents(old, new, max_regress=0.15)
        assert result["regressions"] == []

    def test_improvement_is_not_a_regression(self, tmp_path):
        old = read_bench_json(_doc(tmp_path, "b", 1000.0, 0.02, "old.json"))
        new = read_bench_json(_doc(tmp_path, "b", 1500.0, 0.02, "new.json"))
        result = diff_bench_documents(old, new, max_regress=0.15)
        assert result["regressions"] == []

    def test_bools_are_not_compared_numerically(self, tmp_path):
        old = read_bench_json(_doc(tmp_path, "b", 1000.0, 0.02, "old.json"))
        new = read_bench_json(_doc(tmp_path, "b", 1000.0, 0.02, "new.json"))
        result = diff_bench_documents(old, new)
        metrics = {metric for _, metric, *_ in result["rows"]}
        assert "deterministic" not in metrics

    def test_extra_gate_fails_on_drop(self, tmp_path):
        old = read_bench_json(_doc(tmp_path, "b", 1000.0, 0.04, "old.json"))
        new = read_bench_json(_doc(tmp_path, "b", 1000.0, 0.02, "new.json"))
        result = diff_bench_documents(
            old, new, max_regress=0.15, extra_gates=["flag_rate"]
        )
        assert len(result["regressions"]) == 1
        assert "flag_rate" in result["regressions"][0]

    def test_lower_is_better_gates_rises_not_drops(self, tmp_path):
        old = read_bench_json(_doc(tmp_path, "b", 1000.0, 0.02, "old.json"))
        worse = read_bench_json(_doc(tmp_path, "b", 1000.0, 0.04, "new.json"))
        result = diff_bench_documents(
            old, worse, max_regress=0.15, lower_is_better=["flag_rate"]
        )
        assert len(result["regressions"]) == 1
        assert "lower is better" in result["regressions"][0]
        # The same metric falling is an improvement, never a regression.
        result = diff_bench_documents(
            worse, old, max_regress=0.15, lower_is_better=["flag_rate"]
        )
        assert result["regressions"] == []


class TestDiffCli:
    def test_exit_zero_within_tolerance(self, tmp_path, capsys):
        old = _doc(tmp_path, "b", 1000.0, 0.02, "old.json")
        new = _doc(tmp_path, "b", 990.0, 0.02, "new.json")
        assert main(["diff", str(old), str(new)]) == 0
        assert "wires_per_s" not in capsys.readouterr().err

    def test_exit_nonzero_on_throughput_regression(self, tmp_path, capsys):
        old = _doc(tmp_path, "b", 1000.0, 0.02, "old.json")
        new = _doc(tmp_path, "b", 700.0, 0.02, "new.json")
        assert main(["diff", str(old), str(new), "--max-regress", "0.15"]) == 1
        captured = capsys.readouterr()
        assert "wires_per_s" in captured.out + captured.err

    def test_max_regress_is_tunable(self, tmp_path):
        old = _doc(tmp_path, "b", 1000.0, 0.02, "old.json")
        new = _doc(tmp_path, "b", 700.0, 0.02, "new.json")
        assert main(["diff", str(old), str(new), "--max-regress", "0.5"]) == 0

    def test_mismatched_benchmarks_rejected(self, tmp_path):
        old = _doc(tmp_path, "alpha", 1000.0, 0.02, "old.json")
        new = _doc(tmp_path, "beta", 1000.0, 0.02, "new.json")
        assert main(["diff", str(old), str(new)]) == 2

    def test_gate_and_lower_is_better_flags(self, tmp_path):
        old = _doc(tmp_path, "b", 1000.0, 0.02, "old.json")
        new = _doc(tmp_path, "b", 1000.0, 0.04, "new.json")
        # flag_rate doubled: fine by default, a regression when gated
        # in the lower-is-better direction, fine as a higher-is-better
        # gate.
        assert main(["diff", str(old), str(new)]) == 0
        assert main(
            ["diff", str(old), str(new), "--lower-is-better", "flag_rate"]
        ) == 1
        assert main(["diff", str(old), str(new), "--gate", "flag_rate"]) == 0
