"""Calibration audit tests: the simulator must match the paper's marginals."""

import pytest

from repro.analysis.calibration import audit_traffic


def test_training_window_is_calibrated(small_dataset):
    checks = audit_traffic(small_dataset)
    failing = [c for c in checks if not c.within_tolerance]
    assert not failing, "decalibrated marginals: " + "; ".join(
        f"{c.name}: measured {c.measured}, paper {c.paper_value}" for c in failing
    )


def test_audit_covers_the_key_marginals(small_dataset):
    names = {c.name for c in audit_traffic(small_dataset)}
    assert "Untrusted_IP base rate" in names
    assert "ATO base rate" in names
    assert "unique fingerprint share" in names
    assert "fingerprints in anonymity sets > 50" in names


def test_audit_rejects_tiny_datasets(small_dataset):
    import numpy as np

    with pytest.raises(ValueError):
        audit_traffic(small_dataset.subset(np.arange(100)))
