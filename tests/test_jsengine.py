"""Catalog, evolution model, and JSEnvironment tests."""

import numpy as np
import pytest

from repro.jsengine.catalog import (
    ALL_INTERFACES,
    CATALOG_SIZE,
    STABLE_INTERFACES,
    VOLATILE_INTERFACES,
    extended_interfaces,
)
from repro.jsengine.environment import JSEnvironment
from repro.jsengine.evolution import (
    CANONICAL_TIME_PROPERTIES,
    CHROMIUM_ERA_STARTS,
    Engine,
    EvolutionModel,
    GECKO_119_SHIFT,
    GECKO_ERA_STARTS,
    PRIMARY_INTERFACES,
    default_model,
)


class TestCatalog:
    def test_catalog_size_matches_paper(self):
        assert len(ALL_INTERFACES) == CATALOG_SIZE == 1006

    def test_volatile_list_has_200_entries(self):
        assert len(VOLATILE_INTERFACES) == 200

    def test_no_duplicates(self):
        assert len(set(ALL_INTERFACES)) == len(ALL_INTERFACES)

    def test_primary_interfaces_are_volatile(self):
        assert set(PRIMARY_INTERFACES) <= set(VOLATILE_INTERFACES)

    def test_extended_interfaces_deterministic(self):
        assert extended_interfaces(30) == extended_interfaces(30)

    def test_extended_interfaces_unique(self):
        names = extended_interfaces(600)
        assert len(set(names)) == 600

    def test_extended_interfaces_negative_rejected(self):
        with pytest.raises(ValueError):
            extended_interfaces(-1)


class TestEvolutionModel:
    @pytest.fixture(scope="class")
    def model(self):
        return default_model()

    def test_counts_deterministic_across_instances(self):
        a = EvolutionModel(seed=1)
        b = EvolutionModel(seed=1)
        for iface in ("Element", "Document", "StaticRange"):
            assert a.property_count(iface, Engine.CHROMIUM, 100) == b.property_count(
                iface, Engine.CHROMIUM, 100
            )

    def test_different_seeds_differ(self):
        a = EvolutionModel(seed=1)
        b = EvolutionModel(seed=2)
        diffs = sum(
            a.property_count(i, Engine.CHROMIUM, 100)
            != b.property_count(i, Engine.CHROMIUM, 100)
            for i in PRIMARY_INTERFACES
        )
        assert diffs > 0

    def test_counts_constant_within_an_era(self, model):
        # Modern eras only: ancient versions can still see +1 steps from
        # the legacy BrowserPrint-style properties introduced mid-window.
        for version_a, version_b in ((102, 105), (110, 113), (90, 101)):
            assert model.property_count(
                "Element", Engine.CHROMIUM, version_a
            ) == model.property_count("Element", Engine.CHROMIUM, version_b)

    def test_counts_jump_at_era_boundaries(self, model):
        for boundary in CHROMIUM_ERA_STARTS[1:]:
            before = model.property_count("Element", Engine.CHROMIUM, boundary - 1)
            after = model.property_count("Element", Engine.CHROMIUM, boundary)
            assert after > before

    def test_chromium_counts_monotone_across_eras(self, model):
        counts = [
            model.property_count("Document", Engine.CHROMIUM, v)
            for v in (60, 70, 95, 105, 111, 115)
        ]
        assert counts == sorted(counts)

    def test_gecko_era_boundaries(self, model):
        assert model.gecko_era(46) == 0
        assert model.gecko_era(50) == 0
        assert model.gecko_era(51) == 1
        assert model.gecko_era(100) == 2
        assert model.gecko_era(101) == 3

    def test_stable_interfaces_never_change(self, model):
        for iface in STABLE_INTERFACES[:20]:
            counts = {
                model.property_count(iface, engine, version)
                for engine in (Engine.CHROMIUM, Engine.GECKO)
                for version in (60, 90, 110)
            }
            assert len(counts) == 1

    def test_unknown_interface_counts_zero(self, model):
        assert model.property_count("NoSuchInterface", Engine.CHROMIUM, 100) == 0

    def test_edgehtml_smaller_than_chromium(self, model):
        for iface in ("Element", "Document", "Range"):
            assert model.property_count(iface, Engine.EDGEHTML, 18) < (
                model.property_count(iface, Engine.CHROMIUM, 100)
            )

    def test_gecko_119_reverts_to_era_two_scale(self, model):
        # The 119 refactor exposes a surface sized like Firefox 93-100.
        for iface in GECKO_119_SHIFT:
            if not model.knows_interface(iface):
                continue
            v119 = model.property_count(iface, Engine.GECKO, 119)
            v100 = model.property_count(iface, Engine.GECKO, 100)
            assert abs(v119 - v100) <= 2

    def test_gecko_119_differs_from_118(self, model):
        diffs = sum(
            model.property_count(i, Engine.GECKO, 119)
            != model.property_count(i, Engine.GECKO, 118)
            for i in PRIMARY_INTERFACES
        )
        assert diffs >= 10

    def test_property_names_match_counts(self, model):
        for iface in ("Element", "Navigator", "StaticRange", "Window"):
            for engine, version in ((Engine.CHROMIUM, 112), (Engine.GECKO, 100)):
                names = model.property_names(iface, engine, version)
                assert len(names) == model.property_count(iface, engine, version)

    def test_property_names_unique(self, model):
        names = model.property_names("Element", Engine.CHROMIUM, 112)
        assert len(set(names)) == len(names)

    def test_time_properties_catalog_size(self, model):
        assert len(model.time_properties) == 313

    def test_canonical_time_properties_present(self, model):
        keys = {p.key() for p in model.time_properties}
        for named in CANONICAL_TIME_PROPERTIES:
            assert named.key() in keys

    def test_device_memory_semantics(self, model):
        assert model.has_property("Navigator", "deviceMemory", Engine.CHROMIUM, 100)
        assert not model.has_property("Navigator", "deviceMemory", Engine.CHROMIUM, 60)
        assert not model.has_property("Navigator", "deviceMemory", Engine.GECKO, 100)

    def test_speech_synthesis_is_gecko_only(self, model):
        assert model.has_property("Window", "speechSynthesis", Engine.GECKO, 100)
        assert not model.has_property(
            "Window", "speechSynthesis", Engine.CHROMIUM, 100
        )

    def test_count_vector_matches_scalar_queries(self, model):
        interfaces = ["Element", "Document", "StaticRange"]
        vector = model.count_vector(interfaces, Engine.CHROMIUM, 112)
        assert vector.tolist() == [
            model.property_count(i, Engine.CHROMIUM, 112) for i in interfaces
        ]


class TestJSEnvironment:
    def test_count_and_names_consistent(self):
        env = JSEnvironment(Engine.CHROMIUM, 112)
        for iface in ("Element", "Range", "Window"):
            assert env.own_property_count(iface) == len(
                env.get_own_property_names(iface)
            )

    def test_positive_adjustment_injects_names(self):
        env = JSEnvironment(Engine.CHROMIUM, 112, count_adjustments={"Element": 2})
        base = JSEnvironment(Engine.CHROMIUM, 112)
        assert env.own_property_count("Element") == base.own_property_count("Element") + 2
        assert len(env.get_own_property_names("Element")) == env.own_property_count("Element")

    def test_negative_adjustment_trims(self):
        env = JSEnvironment(Engine.CHROMIUM, 112, count_adjustments={"Element": -3})
        base = JSEnvironment(Engine.CHROMIUM, 112)
        assert env.own_property_count("Element") == base.own_property_count("Element") - 3

    def test_zeroed_interface_reports_nothing(self):
        env = JSEnvironment(
            Engine.GECKO, 110, zeroed_interfaces=("ServiceWorker",)
        )
        assert env.own_property_count("ServiceWorker") == 0
        assert env.get_own_property_names("ServiceWorker") == ()
        assert not env.prototype_has_own("ServiceWorker", "anything")

    def test_with_overrides_merges(self):
        env = JSEnvironment(Engine.CHROMIUM, 112, count_adjustments={"Element": 1})
        layered = env.with_overrides(
            count_adjustments={"Element": 2}, zeroed_interfaces=("Crypto",)
        )
        assert layered.count_adjustments["Element"] == 3
        assert "Crypto" in layered.zeroed_interfaces
        # The original environment is untouched.
        assert env.count_adjustments["Element"] == 1
        assert "Crypto" not in env.zeroed_interfaces

    def test_missing_interface_is_empty(self):
        env = JSEnvironment(Engine.CHROMIUM, 112)
        assert env.own_property_count("TotallyMadeUp") == 0

    def test_negative_adjustment_never_goes_below_zero(self):
        env = JSEnvironment(
            Engine.CHROMIUM, 112, count_adjustments={"StaticRange": -1000}
        )
        assert env.own_property_count("StaticRange") == 0
        assert env.get_own_property_names("StaticRange") == ()
