"""Core pipeline tests: preprocessing, clustering, detection, drift,
persistence, and the end-to-end facade."""

from datetime import date

import numpy as np
import pytest

from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor, parse_ua_key
from repro.core.config import PipelineConfig
from repro.core.clustering import ClusterModel
from repro.core.detection import FraudDetector
from repro.core.drift import DriftDetector
from repro.core.pipeline import BrowserPolygraph
from repro.core.preprocessing import Preprocessor
from repro.fingerprint.collector import FingerprintCollector
from repro.fingerprint.features import deviation_feature_indices, time_feature_indices
from repro.fingerprint.script import CollectionScript
from repro.fraudbrowsers.base import FraudProfile
from repro.fraudbrowsers.catalog import fraud_browser
from repro.traffic.generator import TrafficConfig, TrafficSimulator


class TestConfig:
    def test_defaults_match_paper(self):
        config = PipelineConfig()
        assert config.n_pca_components == 7
        assert config.n_clusters == 11
        assert config.outlier_contamination == 2e-5
        assert config.vendor_mismatch_risk == 20
        assert config.version_divisor == 4
        assert config.drift_accuracy_threshold == 0.98

    def test_with_overrides(self):
        config = PipelineConfig().with_overrides(n_clusters=6)
        assert config.n_clusters == 6
        assert config.n_pca_components == 7

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_pca_components": 0},
            {"n_clusters": 1},
            {"outlier_contamination": 0.9},
            {"version_divisor": 0},
            {"unknown_ua_policy": "explode"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PipelineConfig(**kwargs)


class TestPreprocessor:
    def test_scales_only_deviation_columns(self, small_dataset):
        preprocessor = Preprocessor()
        scaled, _ = preprocessor.fit(small_dataset.matrix())
        for idx in time_feature_indices():
            assert set(np.unique(scaled[:, idx])) <= {0.0, 1.0}
        for idx in deviation_feature_indices()[:5]:
            assert abs(scaled[:, idx].mean()) < 1e-6

    def test_outlier_budget_respected(self, small_dataset):
        preprocessor = Preprocessor()
        _, mask = preprocessor.fit(small_dataset.matrix())
        expected = max(1, round(2e-5 * len(small_dataset)))
        assert int((~mask).sum()) == expected
        assert preprocessor.n_outliers_ == expected

    def test_removed_rows_are_never_pristine_legit_sessions(self, trained, small_dataset):
        # The paper verified none of the removed rows matched a pristine
        # legitimate browser; the ClusterModel automates that check by
        # rescuing rows that equal a lab reference fingerprint.
        mask = trained.cluster_model.inlier_mask_
        removed = np.nonzero(~mask)[0]
        for idx in removed:
            assert (
                small_dataset.truth_kind[idx] != "legit"
                or small_dataset.truth_perturbation[idx] != ""
            )

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            Preprocessor().transform(np.zeros((2, 28)))


class TestClusterModel:
    def test_accuracy_matches_paper_band(self, trained):
        assert 0.985 <= trained.accuracy <= 1.0

    def test_cluster_table_covers_all_clusters(self, trained):
        table = trained.cluster_table
        assert set(table) == set(range(11))

    def test_majority_of_clusters_hold_user_agents(self, trained):
        populated = [c for c, uas in trained.cluster_table.items() if uas]
        assert 8 <= len(populated) <= 11

    def test_modern_chromium_era_clusters(self, trained):
        model = trained.cluster_model
        # Chrome and Edge of the same modern version share a cluster.
        assert model.expected_cluster("chrome-112") == model.expected_cluster("edge-112")
        # Different eras sit in different clusters.
        assert model.expected_cluster("chrome-112") != model.expected_cluster("chrome-105")
        assert model.expected_cluster("chrome-114") != model.expected_cluster("chrome-112")

    def test_firefox_clusters_apart_from_chromium(self, trained):
        model = trained.cluster_model
        assert model.expected_cluster("firefox-110") != model.expected_cluster("chrome-110")

    def test_predict_reference_vectors_land_in_expected_cluster(self, trained):
        model = trained.cluster_model
        for key in ("chrome-112", "firefox-110", "chrome-105"):
            parsed = parse_ua_key(key)
            vector = FingerprintCollector().collect(
                BrowserProfile(parsed.vendor, parsed.version).environment()
            )
            assert model.predict_cluster(vector) == model.expected_cluster(key)

    def test_unknown_ua_expected_cluster_none(self, trained):
        assert trained.cluster_model.expected_cluster("safari-16") is None
        assert trained.cluster_model.expected_cluster("chrome-250") is None

    def test_misaligned_inputs_rejected(self, small_dataset):
        model = ClusterModel()
        with pytest.raises(ValueError):
            model.fit(small_dataset.matrix(), ["x"] * 3)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            ClusterModel().predict_clusters(np.zeros((2, 28)))


class TestDetection:
    def test_genuine_sessions_not_flagged(self, trained):
        script = CollectionScript()
        for vendor, version in ((Vendor.CHROME, 112), (Vendor.FIREFOX, 110)):
            profile = BrowserProfile(vendor, version)
            payload = script.run(profile.environment(), profile.user_agent())
            result = trained.detect_payload(payload)
            assert not result.flagged
            assert result.risk_factor is None

    def test_cat2_fraud_cross_vendor_flagged_with_max_risk(self, trained):
        product = fraud_browser("GoLogin-3.3.23")
        profile = FraudProfile(product.full_name, parse_ua_key("firefox-110"))
        vector = FingerprintCollector().collect(product.environment(profile))
        result = trained.detect_session(vector, "firefox-110")
        assert result.flagged
        assert result.risk_factor == 20

    def test_cat2_fraud_far_version_flagged_with_version_risk(self, trained):
        product = fraud_browser("GoLogin-3.3.23")  # Chromium 114 engine
        profile = FraudProfile(product.full_name, parse_ua_key("chrome-60"))
        vector = FingerprintCollector().collect(product.environment(profile))
        result = trained.detect_session(vector, "chrome-60")
        assert result.flagged
        assert 10 <= result.risk_factor <= 20

    def test_cat2_fraud_same_cluster_not_flagged(self, trained):
        # Claiming a user-agent from the engine's own cluster evades
        # coarse-grained detection (the paper's non-flagged cases).
        product = fraud_browser("GoLogin-3.3.23")
        engine_cluster = trained.cluster_model.predict_cluster(
            FingerprintCollector().collect(
                product.environment(
                    FraudProfile(product.full_name, parse_ua_key("chrome-114"))
                )
            )
        )
        members = trained.cluster_model.cluster_members(engine_cluster)
        assert members, "engine cluster should hold user-agents"
        claimed = members[0]
        vector = FingerprintCollector().collect(
            product.environment(FraudProfile(product.full_name, parse_ua_key(claimed)))
        )
        assert not trained.detect_session(vector, claimed).flagged

    def test_unknown_ua_policy_ignore(self, trained):
        vector = FingerprintCollector().collect(
            BrowserProfile(Vendor.CHROME, 112).environment()
        )
        result = trained.detect_session(vector, "Mozilla/5.0 (X11) Gecko")
        assert not result.flagged
        assert result.expected_cluster is None

    def test_unknown_ua_policy_flag(self, small_dataset):
        config = PipelineConfig(unknown_ua_policy="flag")
        polygraph = BrowserPolygraph(config).fit(small_dataset)
        vector = FingerprintCollector().collect(
            BrowserProfile(Vendor.CHROME, 112).environment()
        )
        result = polygraph.detect_session(vector, "definitely-not-a-ua")
        assert result.flagged
        assert result.risk_factor == 20

    def test_batch_report_consistency(self, trained, small_dataset):
        report = trained.detect(small_dataset)
        assert len(report) == len(small_dataset)
        # Flagged implies a risk factor; unflagged implies none.
        assert np.all(report.risk_factors[report.flagged] >= 0)
        assert np.all(report.risk_factors[~report.flagged] == -1)
        # risk_over is a subset of flagged.
        assert np.all(report.flagged[report.risk_over(1)])

    def test_batch_matches_single_session_path(self, trained, small_dataset):
        subset = small_dataset.subset(np.arange(200))
        report = trained.detect(subset)
        for idx in range(0, 200, 37):
            single = trained.detect_session(
                subset.features[idx], str(subset.ua_keys[idx])
            )
            assert single.flagged == bool(report.flagged[idx])
            if single.flagged:
                assert single.risk_factor == int(report.risk_factors[idx])

    def test_detector_requires_fitted_model(self):
        with pytest.raises(ValueError):
            FraudDetector(ClusterModel())

    def test_flagged_sessions_enriched_in_fraud(self, trained, small_dataset):
        report = trained.detect(small_dataset)
        fraud = small_dataset.is_detectable_fraud()
        flagged_fraud_rate = fraud[report.flagged].mean()
        overall_fraud_rate = fraud.mean()
        assert flagged_fraud_rate > 10 * overall_fraud_rate

    def test_recall_on_detectable_fraud(self, trained, small_dataset):
        report = trained.detect(small_dataset)
        fraud = small_dataset.is_detectable_fraud()
        recall = report.flagged[fraud].mean()
        assert recall > 0.5  # paper: 67-84% per product


class TestDrift:
    @pytest.fixture(scope="class")
    def drift_window(self):
        config = TrafficConfig(
            start=date(2023, 7, 20), end=date(2023, 11, 10), seed=11
        ).scaled(20_000)
        return TrafficSimulator(config).generate()

    def test_stable_releases_keep_cluster(self, trained, drift_window):
        records = {
            r.ua_key: r for r in trained.drift_report(drift_window)
        }
        for key in ("chrome-116", "firefox-117", "edge-116"):
            if key not in records:
                continue
            record = records[key]
            assert not record.cluster_changed
            assert record.accuracy > 0.985

    def test_firefox_119_changes_cluster(self, trained, drift_window):
        records = {r.ua_key: r for r in trained.drift_report(drift_window)}
        assert "firefox-119" in records
        assert records["firefox-119"].cluster_changed
        assert records["firefox-119"].retrain_needed(0.98)

    def test_chrome_119_accuracy_drops(self, trained, drift_window):
        records = {r.ua_key: r for r in trained.drift_report(drift_window)}
        assert "chrome-119" in records
        assert records["chrome-119"].accuracy < 0.98

    def test_retrain_signal_raised(self, trained, drift_window):
        records = trained.drift_report(drift_window)
        assert trained.retrain_needed(records)

    def test_min_sessions_floor(self, trained, drift_window):
        records = trained.drift_report(drift_window, min_sessions=50)
        assert all(r.n_sessions >= 50 for r in records)

    def test_known_releases_not_rechecked(self, trained, drift_window):
        records = trained.drift_report(drift_window)
        trained_keys = set(trained.cluster_model.ua_to_cluster)
        assert all(r.ua_key not in trained_keys for r in records)

    def test_evaluate_release_missing_ua_rejected(self, trained, drift_window):
        detector = DriftDetector(trained.cluster_model)
        with pytest.raises(ValueError):
            detector.evaluate_release(drift_window, "chrome-999")

    def test_retraining_absorbs_new_releases(self, trained, small_dataset, drift_window):
        from repro.traffic.dataset import Dataset

        fresh = BrowserPolygraph().fit(
            Dataset.concatenate([small_dataset, drift_window])
        )
        records = fresh.drift_report(drift_window)
        assert not records or not fresh.retrain_needed(records)

    def test_window_with_no_new_releases_is_empty(self, trained, small_dataset):
        # Every release in the training window is already in the table,
        # so there is nothing to evaluate — and nothing to divide by.
        assert trained.drift_report(small_dataset) == []

    def test_huge_min_sessions_skips_every_release(self, trained, drift_window):
        records = trained.drift_report(
            drift_window, min_sessions=len(drift_window) + 1
        )
        assert records == []

    def test_release_without_prior_in_table_has_no_baseline(
        self, trained, drift_window
    ):
        import copy

        # Strip every Chrome release from the trained table: Chrome
        # releases in the window become "new", and none of them has a
        # same-vendor predecessor to compare clusters against.
        model = copy.copy(trained.cluster_model)
        model.ua_to_cluster = {
            ua: cluster
            for ua, cluster in model.ua_to_cluster.items()
            if not ua.startswith("chrome")
        }
        detector = DriftDetector(model)
        records = [
            r
            for r in detector.evaluate_window(drift_window, min_sessions=1)
            if r.ua_key.startswith("chrome")
        ]
        assert records
        for record in records:
            assert record.baseline_ua is None
            assert record.baseline_cluster is None
            # No baseline → a cluster change is undecidable, so only the
            # accuracy arm of the trigger can fire.
            assert not record.cluster_changed
            assert record.retrain_needed(0.98) == (record.accuracy < 0.98)


class TestPersistence:
    def test_save_load_roundtrip(self, trained, small_dataset, tmp_path):
        path = str(tmp_path / "model.json")
        trained.save(path)
        loaded = BrowserPolygraph.load(path)
        assert loaded.cluster_table == trained.cluster_table
        assert loaded.accuracy == pytest.approx(trained.accuracy)
        subset = small_dataset.subset(np.arange(300))
        a = trained.detect(subset)
        b = loaded.detect(subset)
        assert np.array_equal(a.flagged, b.flagged)
        assert np.array_equal(a.risk_factors, b.risk_factors)

    def test_save_unfitted_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            BrowserPolygraph().save(str(tmp_path / "x.json"))

    def test_load_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99}')
        with pytest.raises(ValueError, match="unsupported"):
            BrowserPolygraph.load(str(path))


class TestFacade:
    def test_unfitted_usage_rejected(self, small_dataset):
        polygraph = BrowserPolygraph()
        assert not polygraph.is_fitted
        with pytest.raises(RuntimeError):
            polygraph.detect(small_dataset)
        with pytest.raises(RuntimeError):
            _ = polygraph.accuracy

    def test_wrong_feature_width_rejected(self, small_dataset):
        from repro.fingerprint.features import FEATURE_SPECS

        polygraph = BrowserPolygraph(specs=FEATURE_SPECS[:10])
        with pytest.raises(ValueError, match="features"):
            polygraph.fit(small_dataset)

    def test_fit_returns_self(self, small_dataset):
        polygraph = BrowserPolygraph()
        assert polygraph.fit(small_dataset) is polygraph
        assert polygraph.is_fitted


class TestVectorBatchPath:
    """detect_vectors: the batch API behind the scoring runtime."""

    def test_rows_match_single_session_path(self, trained, small_dataset):
        n = 64
        matrix = small_dataset.matrix()[:n]
        uas = list(small_dataset.ua_keys[:n])
        batched = trained.detect_vectors(matrix, uas)
        for row, ua, result in zip(matrix, uas, batched):
            single = trained.detect_session(row, ua)
            assert (result.predicted_cluster, result.flagged, result.risk_factor) == (
                single.predicted_cluster,
                single.flagged,
                single.risk_factor,
            )

    def test_misaligned_lengths_rejected(self, trained, small_dataset):
        matrix = small_dataset.matrix()[:4]
        with pytest.raises(ValueError):
            trained.detect_vectors(matrix, list(small_dataset.ua_keys[:3]))

    def test_one_dimensional_matrix_rejected(self, trained, small_dataset):
        with pytest.raises(ValueError):
            trained.detect_vectors(small_dataset.matrix()[0], ["chrome-112"])

    def test_before_fit_rejected(self, small_dataset):
        with pytest.raises(RuntimeError):
            BrowserPolygraph().detect_vectors(
                small_dataset.matrix()[:2], list(small_dataset.ua_keys[:2])
            )


class TestModelSwap:
    """Atomic model swaps: generation counter + retrain listeners."""

    def test_generation_bumps_on_every_fit(self, small_dataset):
        polygraph = BrowserPolygraph()
        assert polygraph.model_generation == 0
        polygraph.fit(small_dataset)
        assert polygraph.model_generation == 1
        polygraph.retrain(small_dataset)
        assert polygraph.model_generation == 2

    def test_snapshot_is_consistent_pair(self, small_dataset):
        polygraph = BrowserPolygraph().fit(small_dataset)
        generation, detector = polygraph.detection_snapshot()
        assert generation == polygraph.model_generation
        polygraph.retrain(small_dataset)
        new_generation, new_detector = polygraph.detection_snapshot()
        assert new_generation == generation + 1
        assert new_detector is not detector
        # The old snapshot detector still scores (in-flight batches).
        result = detector.evaluate_vectors(
            small_dataset.matrix()[:1], list(small_dataset.ua_keys[:1])
        )[0]
        assert result.predicted_cluster >= 0

    def test_snapshot_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            BrowserPolygraph().detection_snapshot()

    def test_listeners_fire_after_swap(self, small_dataset):
        polygraph = BrowserPolygraph()
        seen = []
        polygraph.add_retrain_listener(seen.append)
        polygraph.fit(small_dataset)
        assert seen == [1]
        polygraph.retrain(small_dataset)
        assert seen == [1, 2]
        polygraph.remove_retrain_listener(seen.append)
        polygraph.retrain(small_dataset)
        assert seen == [1, 2]

    def test_remove_unknown_listener_is_noop(self, small_dataset):
        BrowserPolygraph().remove_retrain_listener(lambda g: None)


class TestEscalation:
    def test_disabled_by_default(self, trained, small_dataset):
        result = trained.detect_session(
            small_dataset.matrix()[0], small_dataset.ua_keys[0]
        )
        escalated = trained.escalate_result(result, ("antBrowserInjected",))
        assert escalated is result

    def test_probe_escalates_to_vendor_mismatch_risk(self, small_dataset):
        config = PipelineConfig(enable_namespace_probe=True)
        polygraph = BrowserPolygraph(config=config).fit(small_dataset)
        result = polygraph.detect_session(
            small_dataset.matrix()[0], small_dataset.ua_keys[0]
        )
        escalated = polygraph.escalate_result(result, ("antBrowserInjected",))
        assert escalated.flagged
        assert escalated.risk_factor == config.vendor_mismatch_risk
        # No suspicious globals: untouched even with the probe enabled.
        assert polygraph.escalate_result(result, ()) is result
