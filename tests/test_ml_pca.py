"""PCA unit tests."""

import numpy as np
import pytest

from repro.ml.pca import PCA, components_for_variance


def _correlated_data(rng, n=400):
    latent = rng.normal(size=(n, 2))
    mixing = np.array([[1.0, 0.5, 0.2, 0.0], [0.0, 0.3, 1.0, 0.7]])
    return latent @ mixing + rng.normal(0.0, 0.01, size=(n, 4))


def test_components_are_orthonormal(rng):
    pca = PCA().fit(_correlated_data(rng))
    gram = pca.components_ @ pca.components_.T
    assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-8)


def test_explained_variance_ratio_sums_to_one(rng):
    pca = PCA().fit(_correlated_data(rng))
    assert pytest.approx(1.0, abs=1e-9) == float(
        np.sum(pca.explained_variance_ratio_)
    )


def test_explained_variance_is_sorted_descending(rng):
    pca = PCA().fit(_correlated_data(rng))
    ev = pca.explained_variance_
    assert all(a >= b for a, b in zip(ev, ev[1:]))


def test_two_components_capture_planar_data(rng):
    pca = PCA(n_components=2).fit(_correlated_data(rng))
    assert float(np.sum(pca.explained_variance_ratio_)) > 0.99


def test_transform_then_inverse_reconstructs_planar_data(rng):
    data = _correlated_data(rng)
    pca = PCA(n_components=2).fit(data)
    reconstructed = pca.inverse_transform(pca.transform(data))
    assert np.allclose(reconstructed, data, atol=0.1)


def test_projection_matches_manual_computation(rng):
    data = _correlated_data(rng)
    pca = PCA(n_components=3).fit(data)
    manual = (data - data.mean(axis=0)) @ pca.components_.T
    assert np.allclose(pca.transform(data), manual)


def test_deterministic_across_fits(rng):
    data = _correlated_data(rng)
    first = PCA(n_components=2).fit(data)
    second = PCA(n_components=2).fit(data.copy())
    assert np.allclose(first.components_, second.components_)


def test_cumulative_variance_ratio_monotone(rng):
    pca = PCA().fit(_correlated_data(rng))
    cumulative = pca.cumulative_variance_ratio()
    assert np.all(np.diff(cumulative) >= -1e-12)


def test_components_for_variance_planar(rng):
    assert components_for_variance(_correlated_data(rng), 0.99) == 2


def test_components_for_variance_full():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(100, 3))
    assert components_for_variance(data, 1.0) == 3


def test_components_for_variance_bad_ratio(rng):
    with pytest.raises(ValueError):
        components_for_variance(_correlated_data(rng), 0.0)


def test_too_many_components_rejected(rng):
    with pytest.raises(ValueError, match="exceeds"):
        PCA(n_components=10).fit(rng.normal(size=(50, 4)))


def test_single_sample_rejected():
    with pytest.raises(ValueError, match="two samples"):
        PCA().fit(np.zeros((1, 4)))


def test_transform_before_fit_rejected():
    with pytest.raises(RuntimeError, match="not fitted"):
        PCA().transform(np.zeros((2, 2)))


def test_transform_wrong_width_rejected(rng):
    pca = PCA(n_components=2).fit(_correlated_data(rng))
    with pytest.raises(ValueError):
        pca.transform(np.zeros((3, 7)))


def test_constant_data_zero_ratio():
    data = np.ones((50, 3))
    pca = PCA().fit(data)
    assert np.allclose(pca.explained_variance_ratio_, 0.0)
