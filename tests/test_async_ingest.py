"""Async ingest front end: real sockets, ordering, backpressure.

Exercises :class:`~repro.service.aingest.AsyncIngestServer` the way a
client sees it — over TCP — pinning the contract the tentpole claims:
``POST /collect`` verdicts match the WSGI app byte-for-field, every
other endpoint passes through to the same app, responses on one
connection come back in request order even with pipelining, and the
high-watermark pauses reads instead of shedding work.
"""

from __future__ import annotations

import http.client
import json
import socket
import time

import pytest

from repro.runtime.pool import OVERLOADED_REASON, overloaded_verdict
from repro.service.aingest import AsyncIngestServer
from repro.service.api import CollectionApp
from repro.service.scoring import ScoringService
from repro.traffic.replay import iter_wire_payloads


@pytest.fixture(scope="module")
def wires(small_dataset):
    return [w for _, w in zip(range(200), iter_wire_payloads(small_dataset))]


def _serve(service, **kwargs):
    kwargs.setdefault("host", "127.0.0.1")
    kwargs.setdefault("port", 0)  # ephemeral
    return AsyncIngestServer(service, CollectionApp(service), **kwargs)


def _request(port, method, path, body=b""):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        payload = response.read()
        return response.status, dict(response.getheaders()), payload
    finally:
        conn.close()


def _pipeline(port, requests, timeout=15.0):
    """Send raw pipelined requests; return responses in arrival order."""
    rendered = b"".join(
        (
            f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        + body
        for method, path, body in requests
    )
    responses = []
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(rendered)
        buffer = b""
        while len(responses) < len(requests):
            while b"\r\n\r\n" not in buffer:
                chunk = sock.recv(65536)
                if not chunk:
                    raise AssertionError(
                        f"connection closed after {len(responses)} responses"
                    )
                buffer += chunk
            head, _, buffer = buffer.partition(b"\r\n\r\n")
            status_line, *header_lines = head.decode("latin-1").split("\r\n")
            length = next(
                int(line.partition(":")[2])
                for line in header_lines
                if line.lower().startswith("content-length:")
            )
            while len(buffer) < length:
                buffer += sock.recv(65536)
            responses.append((status_line, buffer[:length]))
            buffer = buffer[length:]
    return responses


class TestCollectParity:
    def test_collect_verdicts_match_the_reference(self, trained, wires):
        sample = wires[:40]
        reference = ScoringService(trained)
        expected = [
            (v.accepted, v.flagged, v.risk_factor)
            for v in (reference.score_wire(w) for w in sample)
        ]
        with _serve(ScoringService(trained)) as server:
            actual = []
            for wire in sample:
                status, _, payload = _request(
                    server.port, "POST", "/collect", wire
                )
                assert status == 202
                document = json.loads(payload)
                actual.append(
                    (
                        document["accepted"],
                        document["flagged"],
                        document["risk_factor"],
                    )
                )
            assert actual == expected
            assert server.collect_total == len(sample)

    def test_malformed_wire_is_400_with_reason(self, trained):
        with _serve(ScoringService(trained)) as server:
            status, _, payload = _request(
                server.port, "POST", "/collect", b"\x00 not json"
            )
            assert status == 400
            assert json.loads(payload)["reject_reason"] == "malformed"

    def test_overloaded_service_maps_to_503_with_retry_after(self):
        class Saturated:
            scored_count = 0
            flagged_count = 0

            def score_many(self, wires):
                return [overloaded_verdict() for _ in wires]

        with _serve(Saturated()) as server:
            status, headers, payload = _request(
                server.port, "POST", "/collect", b'{"sid":"x"}'
            )
            assert status == 503
            assert headers.get("Retry-After") == "1"
            assert json.loads(payload)["reject_reason"] == OVERLOADED_REASON

    def test_post_without_length_is_411(self, trained):
        with _serve(ScoringService(trained)) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                sock.sendall(b"POST /collect HTTP/1.1\r\nHost: t\r\n\r\n")
                reply = sock.recv(65536)
            assert reply.startswith(b"HTTP/1.1 411")


class TestWsgiPassthrough:
    def test_health_and_metrics_serve_through_the_bridge(
        self, trained, wires
    ):
        with _serve(ScoringService(trained)) as server:
            _request(server.port, "POST", "/collect", wires[0])
            status, _, payload = _request(server.port, "GET", "/health")
            assert status == 200
            assert json.loads(payload)["status"] == "ok"
            status, _, payload = _request(server.port, "GET", "/metrics")
            assert status == 200
            text = payload.decode()
            # The WSGI app's series and this server's own, merged.
            assert "polygraph_sessions_scored" in text
            assert "polygraph_ingest_requests" in text
            assert "polygraph_ingest_collect_requests 1" in text

    def test_unknown_path_is_the_apps_404(self, trained):
        with _serve(ScoringService(trained)) as server:
            status, _, _ = _request(server.port, "GET", "/nope")
            assert status == 404


class TestKeepAliveOrdering:
    def test_pipelined_responses_arrive_in_request_order(
        self, trained, wires
    ):
        good, bad = wires[0], b"\x00 not json"
        with _serve(ScoringService(trained)) as server:
            responses = _pipeline(
                server.port,
                [
                    ("POST", "/collect", good),
                    ("POST", "/collect", bad),
                    ("GET", "/health", b""),
                    ("POST", "/collect", wires[1]),
                ],
            )
        statuses = [line.split(" ", 1)[1] for line, _ in responses]
        assert statuses[0].startswith("202")
        assert statuses[1].startswith("400")
        assert statuses[2].startswith("200")
        assert statuses[3].startswith("202")

    def test_connection_close_is_honored(self, trained, wires):
        with _serve(ScoringService(trained)) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                body = wires[2]
                sock.sendall(
                    b"POST /collect HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                # The server must answer, then actually close: recv
                # draining to EOF (instead of blocking on a kept-alive
                # socket) is the proof.
                reply = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    reply += chunk
            assert reply.startswith(b"HTTP/1.1 202")


class TestBatchingAndBackpressure:
    def test_concurrent_collects_coalesce_into_batches(
        self, trained, wires
    ):
        sample = wires[:30]
        with _serve(
            ScoringService(trained), batch_max=64, linger_ms=20.0
        ) as server:
            responses = _pipeline(
                server.port,
                [("POST", "/collect", w) for w in sample],
                timeout=30.0,
            )
            assert all(
                line.split(" ", 1)[1].startswith("202")
                for line, _ in responses
            )
            assert server.batch_rows_total == len(sample)
            # The linger let pipelined wires pile into shared batches.
            assert server.batches_total < len(sample)

    def test_high_watermark_pauses_reads_without_shedding(
        self, trained, wires
    ):
        inner = ScoringService(trained)

        class Slow:
            scored_count = 0
            flagged_count = 0

            def score_many(self, batch):
                time.sleep(0.02)
                return [inner.score_wire(w) for w in batch]

        sample = wires[40:60]
        with _serve(
            Slow(), batch_max=2, max_pending=2, linger_ms=0.0
        ) as server:
            responses = _pipeline(
                server.port,
                [("POST", "/collect", w) for w in sample],
                timeout=30.0,
            )
            # Every wire is answered — backpressure stalls the socket
            # rather than 503ing admitted work.
            assert len(responses) == len(sample)
            assert all(
                line.split(" ", 1)[1].startswith("202")
                for line, _ in responses
            )
            assert server.backpressure_pauses > 0
