"""Service layer tests: ingest, storage, scoring, monitoring."""

import json
from datetime import date

import numpy as np
import pytest

from repro.browsers.profiles import BrowserProfile
from repro.browsers.releases import default_calendar
from repro.browsers.useragent import Vendor
from repro.fingerprint.script import CollectionScript, FingerprintPayload
from repro.service.ingest import PayloadValidator, QuarantineLog, RejectReason
from repro.service.monitoring import DriftScheduler, FlagRateMonitor
from repro.service.scoring import ScoringService
from repro.service.storage import SessionStore


def _payload(session_id="s-1", vendor=Vendor.CHROME, version=112):
    profile = BrowserProfile(vendor, version)
    return CollectionScript().run(
        profile.environment(), profile.user_agent(), session_id
    )


class TestValidator:
    def test_accepts_genuine_payload(self):
        validator = PayloadValidator()
        result = validator.ingest_wire(_payload().to_wire())
        assert result.accepted
        assert result.payload.session_id == "s-1"
        assert validator.accepted_count == 1

    def test_rejects_oversized(self):
        validator = PayloadValidator()
        result = validator.ingest_wire(b"x" * 2000)
        assert not result.accepted
        assert result.reason is RejectReason.OVERSIZED

    def test_rejects_malformed_json(self):
        validator = PayloadValidator()
        assert validator.ingest_wire(b"{oops").reason is RejectReason.MALFORMED

    def test_rejects_wrong_arity(self):
        validator = PayloadValidator()
        bad = FingerprintPayload("s-2", _payload().user_agent, (1, 2, 3), 0.0)
        assert validator.ingest_payload(bad).reason is RejectReason.WRONG_ARITY

    def test_rejects_out_of_range_values(self):
        validator = PayloadValidator()
        good = _payload("s-3")
        bad = FingerprintPayload(
            "s-3", good.user_agent, (-5,) + good.values[1:], 0.0
        )
        assert validator.ingest_payload(bad).reason is RejectReason.VALUE_RANGE

    def test_rejects_unparseable_ua(self):
        validator = PayloadValidator()
        good = _payload("s-4")
        bad = FingerprintPayload("s-4", "curl/8.0", good.values, 0.0)
        assert validator.ingest_payload(bad).reason is RejectReason.UNPARSEABLE_UA

    def test_rejects_bad_session_id(self):
        validator = PayloadValidator()
        good = _payload("s-5")
        bad = FingerprintPayload("x" * 80, good.user_agent, good.values, 0.0)
        assert validator.ingest_payload(bad).reason is RejectReason.BAD_SESSION_ID

    def test_rejects_replayed_session_id(self):
        validator = PayloadValidator()
        wire = _payload("s-6").to_wire()
        assert validator.ingest_wire(wire).accepted
        assert validator.ingest_wire(wire).reason is RejectReason.DUPLICATE

    def test_dedup_window_expires(self):
        validator = PayloadValidator(dedup_window=2)
        for sid in ("a", "b", "c"):
            assert validator.ingest_payload(_payload(sid)).accepted
        # "a" fell out of the window, so a replay of it is accepted again.
        assert validator.ingest_payload(_payload("a")).accepted

    def test_batch_preserves_order(self):
        validator = PayloadValidator()
        wires = [_payload("b-1").to_wire(), b"garbage", _payload("b-2").to_wire()]
        results = validator.ingest_batch(wires)
        assert [r.accepted for r in results] == [True, False, True]

    def test_quarantine_counts(self):
        quarantine = QuarantineLog(capacity=2)
        validator = PayloadValidator(quarantine=quarantine)
        for _ in range(3):
            validator.ingest_wire(b"junk")
        assert quarantine.total_rejects == 3
        assert len(quarantine.entries()) == 2  # capped retention
        assert quarantine.counts()[RejectReason.MALFORMED] == 3


class TestSessionStore:
    def test_append_and_export(self, tmp_path):
        store = SessionStore(tmp_path)
        for i in range(5):
            store.append(_payload(f"st-{i}"), day=date(2023, 5, 1))
        assert len(store) == 5
        dataset = store.export_dataset()
        assert len(dataset) == 5
        assert set(dataset.ua_keys.tolist()) == {"chrome-112"}

    def test_rotation(self, tmp_path):
        store = SessionStore(tmp_path, max_records_per_segment=2)
        for i in range(5):
            store.append(_payload(f"rot-{i}"))
        assert len(store.segments()) == 3
        assert len(store) == 5

    def test_reopen_resumes_active_segment(self, tmp_path):
        store = SessionStore(tmp_path, max_records_per_segment=10)
        store.append(_payload("first"))
        reopened = SessionStore(tmp_path, max_records_per_segment=10)
        reopened.append(_payload("second"))
        assert len(reopened) == 2
        assert len(reopened.segments()) == 1

    def test_records_are_valid_jsonl(self, tmp_path):
        store = SessionStore(tmp_path)
        store.append(_payload("json-1"))
        line = store.segments()[0].read_text().strip()
        record = json.loads(line)
        assert record["sid"] == "json-1"

    def test_empty_export_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SessionStore(tmp_path).export_dataset()


class TestScoringService:
    @pytest.fixture(scope="class")
    def service(self, trained, tmp_path_factory):
        store = SessionStore(tmp_path_factory.mktemp("scoring"))
        return ScoringService(trained, store=store)

    def test_genuine_session_passes(self, service):
        verdict = service.score_wire(_payload("sc-1").to_wire())
        assert verdict.accepted and not verdict.flagged
        assert verdict.latency_ms < 100.0  # Section 3 budget

    def test_fraud_session_flagged(self, service):
        from repro.browsers.useragent import format_user_agent, parse_user_agent
        from repro.fraudbrowsers.base import FraudProfile
        from repro.fraudbrowsers.catalog import fraud_browser

        gologin = fraud_browser("GoLogin-3.3.23")
        victim = format_user_agent(Vendor.FIREFOX, 110)
        profile = FraudProfile(gologin.full_name, parse_user_agent(victim))
        payload = CollectionScript().run(gologin.environment(profile), victim, "sc-2")
        verdict = service.score_wire(payload.to_wire())
        assert verdict.actionable
        assert verdict.risk_factor == 20

    def test_garbage_rejected_without_scoring(self, service):
        before = service.scored_count
        verdict = service.score_wire(b"\x00\x01 not json")
        assert not verdict.accepted
        assert verdict.reject_reason == "malformed"
        assert service.scored_count == before

    def test_accepted_payloads_persisted(self, service):
        before = len(service.store)
        service.score_wire(_payload("sc-3").to_wire())
        assert len(service.store) == before + 1

    def test_unfitted_pipeline_rejected(self):
        from repro.core.pipeline import BrowserPolygraph

        with pytest.raises(ValueError):
            ScoringService(BrowserPolygraph())


class TestFlagRateMonitor:
    def test_healthy_rate_no_alarm(self):
        monitor = FlagRateMonitor(window=1000, min_observations=100)
        for i in range(1000):
            monitor.observe(i % 250 == 0)  # 0.4%
        assert not monitor.alarm

    def test_spike_raises_alarm(self):
        monitor = FlagRateMonitor(window=1000, min_observations=100)
        for i in range(1000):
            monitor.observe(i % 10 == 0)  # 10%
        assert monitor.alarm
        assert "ALARM" in monitor.describe()

    def test_silent_model_raises_alarm(self):
        # A model that never flags anything is as broken as one that
        # flags everything.
        monitor = FlagRateMonitor(window=5000, min_observations=4000)
        for _ in range(5000):
            monitor.observe(False)
        assert monitor.alarm

    def test_no_alarm_before_min_observations(self):
        monitor = FlagRateMonitor(window=1000, min_observations=500)
        for _ in range(100):
            monitor.observe(True)
        assert not monitor.alarm

    def test_window_slides(self):
        monitor = FlagRateMonitor(window=100, min_observations=10)
        for _ in range(100):
            monitor.observe(True)
        for _ in range(100):
            monitor.observe(False)
        assert monitor.windowed_rate == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FlagRateMonitor(window=0)
        with pytest.raises(ValueError):
            FlagRateMonitor(expected_rate=0.0)
        with pytest.raises(ValueError):
            FlagRateMonitor(tolerance_factor=1.0)


class TestDriftScheduler:
    def test_autumn_2023_schedule(self):
        scheduler = DriftScheduler()
        plans = scheduler.plan(date(2023, 7, 15), date(2023, 11, 10))
        assert len(plans) >= 4  # Firefox 115-119 anchor five checks
        all_releases = [key for plan in plans for key in plan.releases]
        assert "firefox-119" in all_releases
        assert "chrome-119" in all_releases

    def test_checks_follow_firefox_by_lag(self):
        from datetime import timedelta

        scheduler = DriftScheduler(lag_days=4)
        calendar = default_calendar()
        plans = scheduler.plan(date(2023, 7, 1), date(2023, 8, 15))
        ff115 = calendar.release(Vendor.FIREFOX, 115).released
        assert any(
            p.check_date == ff115 + timedelta(days=4) for p in plans
        )

    def test_releases_not_double_counted(self):
        plans = DriftScheduler().plan(date(2023, 7, 15), date(2023, 11, 10))
        seen = [key for plan in plans for key in plan.releases]
        assert len(seen) == len(set(seen))

    def test_next_check(self):
        plan = DriftScheduler().next_check(date(2023, 9, 1))
        assert plan is not None
        assert plan.check_date > date(2023, 9, 1)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            DriftScheduler().plan(date(2023, 9, 1), date(2023, 9, 1))
