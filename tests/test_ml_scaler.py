"""StandardScaler unit tests."""

import numpy as np
import pytest

from repro.ml.scaler import StandardScaler


def test_fit_transform_zero_mean_unit_variance(rng):
    data = rng.normal(5.0, 3.0, size=(500, 4))
    scaled = StandardScaler().fit_transform(data)
    assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)


def test_transform_uses_training_moments(rng):
    train = rng.normal(0.0, 1.0, size=(200, 3))
    test = rng.normal(10.0, 1.0, size=(50, 3))
    scaler = StandardScaler().fit(train)
    scaled_test = scaler.transform(test)
    # Shifted data must not be re-centered to zero.
    assert scaled_test.mean() > 5.0


def test_constant_column_maps_to_zero():
    data = np.column_stack([np.full(100, 7.0), np.arange(100, dtype=float)])
    scaled = StandardScaler().fit_transform(data)
    assert np.allclose(scaled[:, 0], 0.0)
    assert not np.allclose(scaled[:, 1], 0.0)


def test_column_mask_leaves_other_columns_untouched(rng):
    data = rng.normal(50.0, 10.0, size=(300, 3))
    scaler = StandardScaler(columns=[0, 2])
    scaled = scaler.fit_transform(data)
    assert np.allclose(scaled[:, 1], data[:, 1])
    assert abs(scaled[:, 0].mean()) < 1e-9
    assert abs(scaled[:, 2].mean()) < 1e-9


def test_inverse_transform_roundtrip(rng):
    data = rng.normal(3.0, 2.0, size=(100, 5))
    scaler = StandardScaler()
    recovered = scaler.inverse_transform(scaler.fit_transform(data))
    assert np.allclose(recovered, data)


def test_inverse_transform_with_mask_roundtrip(rng):
    data = rng.normal(3.0, 2.0, size=(100, 4))
    scaler = StandardScaler(columns=[1, 3])
    recovered = scaler.inverse_transform(scaler.fit_transform(data))
    assert np.allclose(recovered, data)


def test_out_of_range_column_rejected():
    with pytest.raises(ValueError, match="out of range"):
        StandardScaler(columns=[5]).fit(np.zeros((10, 3)))


def test_transform_before_fit_rejected():
    with pytest.raises(RuntimeError, match="not fitted"):
        StandardScaler().transform(np.zeros((2, 2)))


def test_wrong_width_rejected(rng):
    scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
    with pytest.raises(ValueError, match="expected 3 features"):
        scaler.transform(rng.normal(size=(5, 4)))


def test_empty_matrix_rejected():
    with pytest.raises(ValueError, match="empty"):
        StandardScaler().fit(np.zeros((0, 3)))


def test_one_dimensional_input_rejected():
    with pytest.raises(ValueError, match="2-D"):
        StandardScaler().fit(np.zeros(5))


def test_integer_input_produces_float_output():
    data = np.arange(20, dtype=np.int32).reshape(10, 2)
    scaled = StandardScaler().fit_transform(data)
    assert scaled.dtype == float
