"""Algorithm 1 (risk factor) tests."""

import pytest

from repro.browsers.useragent import Vendor, format_user_agent, parse_ua_key
from repro.core.risk import risk_factor, user_agent_distance


class TestDistance:
    def test_vendor_mismatch_is_maximum(self):
        assert user_agent_distance("chrome-112", "firefox-112") == 20

    def test_same_release_is_zero(self):
        assert user_agent_distance("chrome-112", "chrome-112") == 0

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("chrome-112", "chrome-113", 0),   # floor(1/4)
            ("chrome-112", "chrome-115", 0),   # floor(3/4)
            ("chrome-112", "chrome-116", 1),   # floor(4/4)
            ("chrome-112", "chrome-119", 1),   # floor(7/4)
            ("chrome-112", "chrome-120", 2),   # floor(8/4)
            ("chrome-59", "chrome-114", 13),   # floor(55/4)
        ],
    )
    def test_version_distance_divided_by_four(self, a, b, expected):
        assert user_agent_distance(a, b) == expected

    def test_distance_is_symmetric(self):
        assert user_agent_distance("chrome-100", "chrome-60") == user_agent_distance(
            "chrome-60", "chrome-100"
        )

    def test_custom_constants(self):
        assert user_agent_distance("chrome-1", "firefox-1", vendor_mismatch=99) == 99
        assert user_agent_distance("chrome-10", "chrome-20", version_divisor=10) == 1

    def test_accepts_full_ua_strings(self):
        raw_a = format_user_agent(Vendor.CHROME, 112)
        raw_b = format_user_agent(Vendor.CHROME, 120)
        assert user_agent_distance(raw_a, raw_b) == 2

    def test_accepts_parsed_objects(self):
        a = parse_ua_key("edge-110")
        b = parse_ua_key("edge-114")
        assert user_agent_distance(a, b) == 1

    def test_edge_and_chrome_are_distinct_vendors(self):
        # Algorithm 1 treats Edge and Chrome as different vendors even
        # though they share the Chromium engine.
        assert user_agent_distance("chrome-112", "edge-112") == 20


class TestRiskFactor:
    def test_minimum_over_cluster(self):
        cluster = ["chrome-110", "chrome-111", "chrome-112", "edge-110"]
        assert risk_factor("chrome-109", cluster) == 0

    def test_vendor_mismatch_cluster(self):
        cluster = ["firefox-101", "firefox-114"]
        assert risk_factor("chrome-112", cluster) == 20

    def test_mixed_cluster_prefers_same_vendor(self):
        # Paper cluster 2 shape: old Chrome and old Firefox together.
        cluster = ["chrome-59", "chrome-68", "firefox-51", "firefox-91"]
        assert risk_factor("chrome-80", cluster) == 3  # floor(12/4)
        assert risk_factor("firefox-95", cluster) == 1  # floor(4/4)

    def test_empty_cluster_maps_to_maximum(self):
        assert risk_factor("chrome-112", []) == 20

    def test_early_exit_on_zero(self):
        cluster = ["chrome-112"] + ["firefox-1"] * 1000
        assert risk_factor("chrome-112", cluster) == 0

    def test_custom_constants_flow_through(self):
        assert risk_factor("chrome-1", ["firefox-1"], vendor_mismatch=7) == 7
        assert risk_factor("chrome-10", ["chrome-30"], version_divisor=5) == 4

    def test_sphere_explanation_from_paper(self):
        # Sphere 1.3 emulates Chrome 61 (cluster 2).  A profile claiming
        # Firefox 60 is NOT caught because Firefox 51-91 shares cluster 2.
        cluster2 = [f"chrome-{v}" for v in range(59, 69)] + [
            f"firefox-{v}" for v in range(51, 92)
        ]
        assert risk_factor("firefox-60", cluster2) == 0
