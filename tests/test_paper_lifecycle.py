"""The paper's full lifecycle as one integration narrative.

Train on the March-July window, serve live traffic through the service
layer, watch drift through autumn, retrain on the October signal, and
confirm the retrained model absorbs the new releases — the complete
Sections 6.2-7.3 story in a single deterministic run.
"""

from datetime import date

import numpy as np
import pytest

from repro.core.pipeline import BrowserPolygraph
from repro.service.ingest import PayloadValidator
from repro.service.monitoring import DriftScheduler, FlagRateMonitor
from repro.service.scoring import ScoringService
from repro.traffic.dataset import Dataset
from repro.traffic.generator import TrafficConfig, TrafficSimulator
from repro.traffic.replay import iter_wire_payloads


@pytest.fixture(scope="module")
def autumn_window():
    config = TrafficConfig(
        start=date(2023, 7, 20), end=date(2023, 11, 10), seed=31
    ).scaled(20_000)
    return TrafficSimulator(config).generate()


class TestLifecycle:
    def test_full_story(self, small_dataset, autumn_window, tmp_path):
        # --- 1. offline training (Section 6.4) -----------------------
        polygraph = BrowserPolygraph().fit(small_dataset)
        assert polygraph.accuracy > 0.985

        # --- 2. online serving (Sections 3 + 6.5) --------------------
        validator = PayloadValidator(dedup_window=0)
        service = ScoringService(polygraph, validator=validator)
        monitor = FlagRateMonitor(window=3000, min_observations=1000)
        subset = small_dataset.subset(np.arange(3000))
        for wire in iter_wire_payloads(subset):
            verdict = service.score_wire(wire)
            assert verdict.accepted
            assert verdict.latency_ms < 100.0
            monitor.observe(verdict.flagged)
        assert not monitor.alarm  # flag rate inside the healthy band

        # --- 3. scheduled drift checks (Section 6.6) -----------------
        scheduler = DriftScheduler()
        plans = scheduler.plan(date(2023, 7, 20), date(2023, 11, 10))
        assert plans, "autumn must contain scheduled checks"
        records = polygraph.drift_report(autumn_window)
        assert polygraph.retrain_needed(records)  # the October signal

        # --- 4. retraining response (Section 7.3) --------------------
        extended = Dataset.concatenate([small_dataset, autumn_window])
        polygraph.retrain(extended)
        post = polygraph.drift_report(autumn_window)
        assert not post or not polygraph.retrain_needed(post)
        assert polygraph.cluster_model.expected_cluster("firefox-119") is not None

        # --- 5. persistence round trip -------------------------------
        path = str(tmp_path / "lifecycle-model.json")
        polygraph.save(path)
        reloaded = BrowserPolygraph.load(path)
        fresh = autumn_window.subset(np.arange(500))
        a = polygraph.detect(fresh)
        b = reloaded.detect(fresh)
        assert np.array_equal(a.flagged, b.flagged)

    def test_verdicts_stable_across_service_and_batch(
        self, trained, small_dataset
    ):
        subset = small_dataset.subset(np.arange(400))
        batch = trained.detect(subset)
        service = ScoringService(trained, validator=PayloadValidator(dedup_window=0))
        online_flags = [
            service.score_wire(wire).flagged
            for wire in iter_wire_payloads(subset)
        ]
        assert online_flags == batch.flagged.tolist()
