"""MiniBatchKMeans and ASCII-figure rendering tests."""

import numpy as np
import pytest

from repro.analysis.figures import bar_chart, line_chart, render_figures
from repro.ml.kmeans import KMeans
from repro.ml.metrics import majority_cluster_accuracy
from repro.ml.minibatch_kmeans import MiniBatchKMeans


def _blobs(rng, centers, n_per=300, scale=0.15):
    return np.vstack(
        [c + rng.normal(0.0, scale, size=(n_per, len(c))) for c in centers]
    )


class TestMiniBatchKMeans:
    def test_recovers_separated_blobs(self, rng):
        centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]
        data = _blobs(rng, centers)
        model = MiniBatchKMeans(n_clusters=3, random_state=0).fit(data)
        found = sorted(
            tuple(np.round(c).astype(int)) for c in model.cluster_centers_
        )
        assert found == [(0, 0), (0, 10), (10, 0)]

    def test_inertia_close_to_full_kmeans(self, rng):
        data = _blobs(rng, [(0, 0), (6, 0), (0, 6), (6, 6)], scale=0.5)
        full = KMeans(n_clusters=4, n_init=4, random_state=0).fit(data)
        mini = MiniBatchKMeans(n_clusters=4, random_state=0).fit(data)
        assert mini.inertia_ <= full.inertia_ * 1.25

    def test_predict_consistent_with_labels(self, rng):
        data = _blobs(rng, [(0, 0), (8, 8)])
        model = MiniBatchKMeans(n_clusters=2, random_state=0).fit(data)
        assert np.array_equal(model.predict(data), model.labels_)

    def test_majority_accuracy_on_era_like_duplicates(self, rng):
        # The pipeline's duplicate-heavy regime.
        base = rng.normal(0.0, 5.0, size=(6, 4))
        data = np.repeat(base, 500, axis=0)
        labels = [f"ua-{i}" for i in range(6) for _ in range(500)]
        model = MiniBatchKMeans(n_clusters=6, random_state=1).fit(data)
        assert majority_cluster_accuracy(labels, model.labels_) > 0.95

    def test_deterministic_given_seed(self, rng):
        data = _blobs(rng, [(0, 0), (5, 5)])
        a = MiniBatchKMeans(n_clusters=2, random_state=3).fit(data)
        b = MiniBatchKMeans(n_clusters=2, random_state=3).fit(data)
        assert np.allclose(a.cluster_centers_, b.cluster_centers_)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MiniBatchKMeans(n_clusters=0)
        with pytest.raises(ValueError):
            MiniBatchKMeans(n_clusters=2, batch_size=0)
        with pytest.raises(ValueError):
            MiniBatchKMeans(n_clusters=2, n_iterations=0)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            MiniBatchKMeans(n_clusters=2).predict(np.zeros((1, 2)))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            MiniBatchKMeans(n_clusters=5).fit(np.zeros((3, 2)))


class TestFigures:
    def test_bar_chart_scales_to_peak(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([])

    def test_line_chart_contains_points(self):
        chart = line_chart([1, 2, 3], [1.0, 4.0, 9.0], title="T")
        assert chart.startswith("T")
        assert chart.count("*") == 3

    def test_line_chart_flat_series(self):
        chart = line_chart([1, 2], [5.0, 5.0])
        assert "*" in chart

    def test_line_chart_mismatched_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], [1.0])

    def test_render_figures_combines_all(self):
        text = render_figures(
            pca_cumulative=[0.6, 0.9, 0.97, 0.99],
            elbow_rows=[(2, 100.0, 0.0), (3, 40.0, 0.6), (4, 35.0, 0.12)],
            anonymity={"1": 0.3, "2-10": 1.0, "501-+": 95.0},
        )
        for needle in ("Figure 2", "Figure 3", "Figure 4", "Figure 5"):
            assert needle in text
