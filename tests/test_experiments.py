"""Smoke tests of the paper-artifact drivers at reduced scale.

Each driver must run end to end and reproduce the paper's qualitative
shape; the benchmarks exercise them at full scale.
"""

import numpy as np
import pytest

from repro.analysis import experiments as ex


@pytest.fixture(scope="module", autouse=True)
def small_scale(monkeypatch_module):
    monkeypatch_module.setenv("REPRO_SESSIONS", "15000")
    yield


@pytest.fixture(scope="module")
def monkeypatch_module():
    from _pytest.monkeypatch import MonkeyPatch

    patcher = MonkeyPatch()
    yield patcher
    patcher.undo()


def test_table2(capsys):
    result = ex.table2_performance(repeats=2)
    tools = [row[0] for row in result.rows]
    assert tools[-1] == "Browser Polygraph"
    sizes = {row[0]: row[2] for row in result.rows}
    assert sizes["Browser Polygraph"] < 1024 < sizes["ClientJS"]
    assert "Table 2" in result.render()


def test_fig2_pca_variance():
    result = ex.fig2_pca_variance()
    cumulative = [row[1] for row in result.rows]
    assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))
    assert cumulative[6] > 0.985  # seven components reach 98.5%


def test_fig3_fig4_elbow():
    result = ex.fig3_fig4_elbow()
    wcss = [row[1] for row in result.rows]
    # Local optima can produce small up-ticks; the trend must descend.
    assert all(b <= a * 1.10 + 1e-6 for a, b in zip(wcss, wcss[1:]))
    assert wcss[-1] < wcss[0] * 0.2
    assert result.notes


def test_table3(capsys):
    result = ex.table3_cluster_table()
    assert len(result.rows) == 11
    rendered = result.render()
    assert "Chrome" in rendered and "Firefox" in rendered
    empty = [r for r in result.rows if "no majority" in str(r[1])]
    assert 0 <= len(empty) <= 3


def test_table9_uses_six_clusters():
    result = ex.table9_k6()
    assert len(result.rows) == 6


def test_table4_shape():
    result = ex.table4_flagging()
    rows = {row[0]: row for row in result.rows}
    all_users = rows["All users"]
    flagged = rows["Flagged (all)"]
    over4 = rows["Flagged, risk factor > 4"]
    # Enrichment: flagged sessions trip all three tags more often.
    assert flagged[1] > all_users[1]
    assert flagged[2] > all_users[2]
    assert flagged[3] > all_users[3]
    # Monotone risk gradient on Untrusted_IP.
    assert over4[1] >= flagged[1]


def test_table5_shape():
    result = ex.table5_fraud_browsers()
    assert len(result.rows) == 4
    by_name = {row[0]: row for row in result.rows}
    # Sphere has the lowest recall (paper: 67% vs 75-84%).
    recalls = {name: int(row[4].rstrip("%")) for name, row in by_name.items()}
    assert recalls["Sphere-1.3"] == min(recalls.values())
    assert all(r >= 30 for r in recalls.values())
    assert max(recalls.values()) >= 70
    # Average risk factors are high for flagged fraud sessions.
    assert all(row[3] > 5 for row in result.rows)


def test_table6_drift_signals():
    result = ex.table6_drift()
    rows = {row[0]: row for row in result.rows}
    assert rows["Firefox 119"][4] == "RETRAIN"
    assert rows["Chrome 119"][3] < 98.0
    stable = [
        rows[k] for k in ("Chrome 116", "Firefox 117", "Edge 116") if k in rows
    ]
    assert all(row[4] == "" for row in stable)


def test_table7_entropy():
    result = ex.table7_entropy()
    assert result.rows[0][0] == "user-agent"


def test_fig5_anonymity():
    result = ex.fig5_anonymity()
    shares = {row[0]: row[1] for row in result.rows}
    assert shares["1"] < 2.0
    assert sum(shares.values()) == pytest.approx(100.0, abs=0.1)


def test_table10_sensitivity():
    result = ex.table10_cluster_sensitivity()
    ks = [row[0] for row in result.rows]
    assert ks == [5, 7, 9, 11, 13, 15, 17, 19]
    assert all(row[1] > 97.0 for row in result.rows)


def test_table12_feature_sensitivity():
    result = ex.table12_feature_sensitivity(n_candidate_sessions=6000)
    counts = [row[0] for row in result.rows]
    assert counts == [28, 32, 36, 42]


def test_table13_windows():
    result = ex.table13_finegrained_windows()
    accuracy = {row[0]: row[5] for row in result.rows}
    assert accuracy["Browser Polygraph"] >= accuracy["FingerprintJS"]
    assert accuracy["Browser Polygraph"] >= accuracy["ClientJS"] + 2.0
    assert accuracy["Browser Polygraph"] > 99.0


def test_table14_macos():
    result = ex.table14_finegrained_macos()
    accuracy = {row[0]: row[5] for row in result.rows}
    assert accuracy["Browser Polygraph"] >= accuracy["ClientJS"]


def test_paper_report_generates_and_claims_hold():
    from repro.analysis.paper_report import generate_report, run_comparisons

    comparisons = run_comparisons(only=["Table 3", "Figure 5", "Table 9"])
    assert len(comparisons) == 3
    assert all(c.all_hold for c in comparisons)
    text = generate_report(only=["Table 3"])
    assert "paper vs. measured" in text
    assert "| Quantity | Paper | Measured | Reproduces |" in text
