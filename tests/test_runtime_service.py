"""RuntimeScoringService: parity, concurrency, retraining, lifecycle."""

import io
import json
import threading

import pytest

from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor, format_user_agent, parse_user_agent
from repro.core.config import PipelineConfig
from repro.core.pipeline import BrowserPolygraph
from repro.fingerprint.script import MAX_PAYLOAD_BYTES, CollectionScript
from repro.runtime.pool import Overloaded
from repro.runtime.service import RuntimeConfig, RuntimeScoringService
from repro.service.api import CollectionApp
from repro.service.api import _MAX_BODY as API_MAX_BODY
from repro.service.ingest import PayloadValidator
from repro.service.scoring import ScoringService
from repro.traffic.replay import iter_payloads


def _wires(dataset, limit):
    return [p.to_wire() for p in iter_payloads(dataset, limit)]


def _wire(session_id="rt-1", vendor=Vendor.CHROME, version=112):
    profile = BrowserProfile(vendor, version)
    return CollectionScript().run(
        profile.environment(), profile.user_agent(), session_id
    ).to_wire()


def _fields(verdict):
    return (
        verdict.session_id,
        verdict.accepted,
        verdict.flagged,
        verdict.risk_factor,
        verdict.reject_reason,
    )


@pytest.fixture()
def runtime(trained):
    service = RuntimeScoringService(trained).start()
    yield service
    service.shutdown()


class TestRuntimeConfig:
    def test_defaults_valid(self):
        config = RuntimeConfig()
        assert config.max_batch_size == 64
        assert config.cache_entries > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"queue_capacity": 0},
            {"cache_entries": -1},
            {"latency_sample_every": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RuntimeConfig(**kwargs)


class TestVerdictParity:
    """Batching and caching are pure optimizations: same verdicts."""

    def test_replay_matches_baseline(self, trained, small_dataset, runtime):
        wires = _wires(small_dataset, 1200)
        baseline = ScoringService(trained)
        expected = [_fields(baseline.score_wire(w)) for w in wires]
        actual = [_fields(runtime.score_wire(w)) for w in wires]
        assert actual == expected
        assert runtime.scored_count == baseline.scored_count
        assert runtime.flagged_count == baseline.flagged_count

    def test_reject_parity_on_hostile_wires(self, trained):
        good = json.loads(_wire("p-good").decode())
        ua = good["ua"]

        def dumps(obj):
            # Compact separators so the wires start with {"sid":" and
            # genuinely exercise the runtime's fast-path guards.
            return json.dumps(obj, separators=(",", ":")).encode()

        hostile = [
            b"x" * 2000,                                   # oversized
            b"not json",                                   # malformed
            b'{"sid":"a"',                                 # truncated json
            dumps({"sid": "a", "ua": ua}),                 # missing features
            dumps({"sid": "a", "ua": ua, "f": [1, 2]}),    # wrong arity
            dumps({"sid": "", "ua": ua, "f": good["f"]}),
            dumps({"sid": "x" * 99, "ua": ua, "f": good["f"]}),
            dumps({"sid": "a", "ua": ua, "f": [-5] + good["f"][1:]}),
            dumps({"sid": "a", "ua": ua, "f": good["f"], "g": ["g"] * 40}),
            dumps({"sid": "a", "ua": "Not A Browser", "f": good["f"]}),
            dumps({"sid": "a", "ua": ua, "f": good["f"], "g": None}),
            dumps({"sid": 123, "ua": ua, "f": good["f"]}),
            # key order the fast path cannot slice — must still parse
            dumps({"ua": ua, "f": good["f"], "sid": "reordered"}),
            # escaped quote in the sid — fast path must bail to the parser
            dumps({"sid": 'a"b', "ua": ua, "f": good["f"]}),
            # duplicate "sid" key — json.loads keeps the later one
            b'{"sid":"first","sid":"second","ua":"%s","f":%s}'
            % (ua.encode(), dumps(good["f"])),
            _wire("dup-1"),
            _wire("dup-1"),                                # duplicate session
        ]
        baseline = ScoringService(trained, validator=PayloadValidator())
        service = RuntimeScoringService(trained, validator=PayloadValidator())
        try:
            expected = [_fields(baseline.score_wire(w)) for w in hostile]
            actual = [_fields(service.score_wire(w)) for w in hostile]
        finally:
            service.shutdown()
        assert actual == expected
        assert (
            service.validator.quarantine.counts()
            == baseline.validator.quarantine.counts()
        )

    def test_wire_memo_fast_path_matches(self, trained, runtime):
        baseline = ScoringService(trained)
        first = _wire("memo-1")
        second = _wire("memo-2")  # same fingerprint bytes, new sid
        assert _fields(runtime.score_wire(first)) == _fields(
            baseline.score_wire(first)
        )
        # second request takes the parsed-wire memo + verdict cache path
        assert _fields(runtime.score_wire(second)) == _fields(
            baseline.score_wire(second)
        )
        assert runtime.cache_hit_rate > 0.0


class TestConcurrentProducers:
    def test_many_threads_share_the_batcher(self, trained, small_dataset):
        wires = _wires(small_dataset, 800)
        baseline = ScoringService(trained)
        expected = sorted(_fields(baseline.score_wire(w)) for w in wires)

        service = RuntimeScoringService(
            trained, config=RuntimeConfig(n_workers=2, max_batch_size=16)
        ).start()
        results = []
        results_lock = threading.Lock()

        def producer(chunk):
            verdicts = [service.score_wire(w) for w in chunk]
            with results_lock:
                results.extend(verdicts)

        try:
            n = 8
            threads = [
                threading.Thread(target=producer, args=(wires[i::n],))
                for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            service.shutdown()
        assert sorted(_fields(v) for v in results) == expected
        assert service.scored_count == len(wires)
        assert service.requests_total == len(wires)


class TestRetraining:
    @pytest.fixture()
    def own_pipeline(self, small_dataset):
        """A privately-fitted pipeline tests may retrain freely."""
        return BrowserPolygraph().fit(small_dataset)

    def test_retrain_invalidates_cache(self, own_pipeline, small_dataset):
        service = RuntimeScoringService(own_pipeline).start()
        try:
            for wire in _wires(small_dataset, 50):
                service.score_wire(wire)
            assert len(service.cache) > 0
            generation = own_pipeline.model_generation
            service.retrain(small_dataset)
            assert own_pipeline.model_generation == generation + 1
            assert len(service.cache) == 0
            assert service.cache.model_generation == generation + 1
            assert service.runtime_stats.counter("model_swaps") == 1
        finally:
            service.shutdown()

    def test_stale_batch_cannot_poison_cache(self, own_pipeline, small_dataset):
        """Regression: a batch scored against a pre-retrain snapshot must
        never write into the post-retrain cache (the half-batch hazard)."""
        service = RuntimeScoringService(own_pipeline).start()
        try:
            old_generation, old_detector = own_pipeline.detection_snapshot()
            service.retrain(small_dataset)
            # The in-flight batch would put() with its snapshot generation:
            refused = not service.cache.put(
                ("chrome-112", (1,) * 28), "stale", generation=old_generation
            )
            assert refused
            assert len(service.cache) == 0
            # The snapshot detector itself stays usable for that batch.
            payload = next(iter_payloads(small_dataset, 1))
            result = old_detector.evaluate_vectors(
                payload.vector().reshape(1, -1), [payload.user_agent]
            )[0]
            assert result.predicted_cluster >= 0
        finally:
            service.shutdown()

    def test_whole_batch_scored_on_one_snapshot(self, own_pipeline, small_dataset):
        """A retrain landing mid-batch must not split it across models."""
        service = RuntimeScoringService(
            own_pipeline, config=RuntimeConfig(cache_entries=0)
        )
        generations = []
        original = service._score_batch

        def observing(requests):
            generations.append(own_pipeline.detection_snapshot()[0])
            original(requests)

        service.batcher.score_batch = observing
        service.start()
        try:
            for wire in _wires(small_dataset, 40):
                service.score_wire(wire)
            service.retrain(small_dataset)
            for payload in iter_payloads(small_dataset, 80):
                service.score_wire(
                    payload.to_wire().replace(
                        payload.session_id.encode(),
                        f"post-{payload.session_id}".encode(),
                    )
                )
        finally:
            service.shutdown()
        assert set(generations) == {1, 2}

    def test_scoring_service_retrain_delegates(self, own_pipeline, small_dataset):
        service = ScoringService(own_pipeline)
        generation = own_pipeline.model_generation
        service.retrain(small_dataset)
        assert own_pipeline.model_generation == generation + 1


class TestNamespaceProbeEscalation:
    @pytest.fixture(scope="class")
    def probing(self, small_dataset):
        config = PipelineConfig(enable_namespace_probe=True)
        return BrowserPolygraph(config=config).fit(small_dataset)

    def test_cache_hit_still_escalates(self, probing):
        service = RuntimeScoringService(probing).start()
        try:
            plain = _wire("esc-1")
            body = json.loads(plain.decode())
            body["sid"] = "esc-2"
            body["g"] = ["antBrowserInjected"]
            probed = json.dumps(body, separators=(",", ":")).encode()
            first = service.score_wire(plain)
            second = service.score_wire(probed)
        finally:
            service.shutdown()
        assert first.accepted and not first.flagged
        # Same fingerprint, served from the cache — but the namespace
        # probe escalation is applied per-request, after the cache.
        assert second.accepted and second.flagged
        assert second.risk_factor == probing.config.vendor_mismatch_risk


class TestLifecycle:
    def test_requires_fitted_pipeline(self):
        with pytest.raises(ValueError):
            RuntimeScoringService(BrowserPolygraph())

    def test_shutdown_drains_all_pending(self, trained, small_dataset):
        wires = _wires(small_dataset, 300)
        service = RuntimeScoringService(
            trained,
            config=RuntimeConfig(n_workers=2, cache_entries=0, max_batch_size=32),
        ).start()
        handles = [service.submit_wire(w) for w in wires]
        service.shutdown(drain=True)
        assert all(h.done() for h in handles)
        assert all(h.result(timeout=0).accepted for h in handles)

    def test_overload_sheds_typed_verdict(self, trained, small_dataset):
        entered = threading.Event()
        release = threading.Event()
        service = RuntimeScoringService(
            trained,
            config=RuntimeConfig(
                n_workers=1, queue_capacity=1, cache_entries=0
            ),
        )
        original = service.batcher.score_batch

        def blocking(batch):
            entered.set()
            release.wait(timeout=10.0)
            original(batch)

        service.batcher.score_batch = blocking
        service.start()
        wires = _wires(small_dataset, 8)
        try:
            service.submit_wire(wires[0])
            assert entered.wait(timeout=10.0)  # worker blocked in a flush
            verdicts = [service.submit_wire(w) for w in wires[1:]]
            shed = [
                v.result(timeout=0)
                for v in verdicts
                if v.done() and not v.result(timeout=0).accepted
            ]
            assert any(isinstance(v, Overloaded) for v in shed)
            assert all(v.reject_reason == "overloaded" for v in shed)
            assert service.runtime_stats.counter("requests_shed") >= 1
        finally:
            release.set()
            service.shutdown()

    def test_context_manager(self, trained):
        with RuntimeScoringService(trained) as service:
            verdict = service.score_wire(_wire("ctx-1"))
            assert verdict.accepted
        assert not service.pool.is_running

    def test_internal_error_resolves_handle(self, trained):
        service = RuntimeScoringService(
            trained, config=RuntimeConfig(cache_entries=0)
        )

        def boom(batch):
            raise RuntimeError("model exploded")

        service.batcher.score_batch = boom
        service.start()
        try:
            verdict = service.score_wire(_wire("err-1"))
        finally:
            service.shutdown()
        assert not verdict.accepted
        assert "internal_error" in verdict.reject_reason


class TestMetricsExposure:
    def test_api_body_cap_is_wire_contract_cap(self):
        assert API_MAX_BODY == MAX_PAYLOAD_BYTES

    def test_metrics_endpoint_includes_runtime(self, trained):
        service = RuntimeScoringService(trained).start()
        app = CollectionApp(service)
        try:
            wire = _wire("metrics-1")
            for sid in ("metrics-1", "metrics-2", "metrics-3"):
                app_wire = wire.replace(b"metrics-1", sid.encode())
                status, _, _ = _wsgi(app, "POST", "/collect", app_wire)
                assert status == "202 Accepted"
            status, _, body = _wsgi(app, "GET", "/metrics")
        finally:
            service.shutdown()
        assert status == "200 OK"
        text = body.decode()
        assert "polygraph_runtime_requests_total 3" in text
        assert "polygraph_runtime_cache_hit_rate" in text
        assert "polygraph_runtime_queue_depth" in text
        assert "polygraph_sessions_scored 3" in text

    def test_per_request_service_has_no_runtime_lines(self, trained):
        app = CollectionApp(ScoringService(trained))
        status, _, body = _wsgi(app, "GET", "/metrics")
        assert status == "200 OK"
        assert "polygraph_runtime_" not in body.decode()


def _wsgi(app, method, path, body=b""):
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    from wsgiref.util import setup_testing_defaults

    environ = {}
    setup_testing_defaults(environ)
    environ.update(
        {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "CONTENT_LENGTH": str(len(body)),
            "wsgi.input": io.BytesIO(body),
        }
    )
    chunks = app(environ, start_response)
    return captured["status"], captured["headers"], b"".join(chunks)
