"""Traffic time-series tests."""

import numpy as np
import pytest

from repro.traffic.timeseries import adoption_curve, daily_flag_rate, daily_volume


class TestDailyVolume:
    def test_totals_match_dataset(self, small_dataset):
        volume = daily_volume(small_dataset)
        assert sum(count for _, count in volume) == len(small_dataset)

    def test_days_sorted(self, small_dataset):
        days = [day for day, _ in daily_volume(small_dataset)]
        assert days == sorted(days)

    def test_window_covered(self, small_dataset):
        volume = daily_volume(small_dataset)
        assert volume[0][0].startswith("2023-03")
        assert volume[-1][0].startswith("2023-06")


class TestDailyFlagRate:
    def test_rates_bounded_and_aligned(self, trained, small_dataset):
        report = trained.detect(small_dataset)
        series = daily_flag_rate(small_dataset, report)
        assert sum(total for _, _, total in series) == len(small_dataset)
        assert all(0.0 <= rate <= 1.0 for _, rate, _ in series)

    def test_overall_rate_recovered(self, trained, small_dataset):
        report = trained.detect(small_dataset)
        series = daily_flag_rate(small_dataset, report)
        weighted = sum(rate * total for _, rate, total in series)
        assert weighted == pytest.approx(report.n_flagged)

    def test_mismatched_report_rejected(self, trained, small_dataset):
        report = trained.detect(small_dataset.subset(np.arange(100)))
        with pytest.raises(ValueError):
            daily_flag_rate(small_dataset, report)


class TestAdoptionCurve:
    def test_new_release_ramps_up(self, small_dataset):
        # Chrome 112 shipped inside the window: its share starts near
        # zero and ramps to dominance.
        curve = adoption_curve(small_dataset, "chrome-112")
        assert len(curve) > 10
        early = np.mean([share for _, share in curve[:5]])
        late = np.mean([share for _, share in curve[-5:]])
        assert late < early  # superseded by 113/114 late in the window
        peak = max(share for _, share in curve)
        assert peak > 0.10

    def test_window_days_limits_curve(self, small_dataset):
        curve = adoption_curve(small_dataset, "chrome-113", window_days=10)
        assert len(curve) <= 10

    def test_unknown_release_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            adoption_curve(small_dataset, "chrome-999")
