"""KMeans unit tests."""

import numpy as np
import pytest

from repro.ml.kmeans import KMeans


def _blobs(rng, centers, n_per=100, scale=0.1):
    parts = [
        center + rng.normal(0.0, scale, size=(n_per, len(center)))
        for center in centers
    ]
    return np.vstack(parts)


def test_recovers_well_separated_blobs(rng):
    centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]
    data = _blobs(rng, centers)
    model = KMeans(n_clusters=3, random_state=0).fit(data)
    found = sorted(tuple(np.round(c).astype(int)) for c in model.cluster_centers_)
    assert found == [(0, 0), (0, 10), (10, 0)]


def test_labels_partition_all_points(rng):
    data = _blobs(rng, [(0.0, 0.0), (5.0, 5.0)])
    model = KMeans(n_clusters=2, random_state=0).fit(data)
    assert model.labels_.shape == (data.shape[0],)
    assert set(model.labels_) == {0, 1}


def test_inertia_decreases_with_more_clusters(rng):
    data = _blobs(rng, [(0, 0), (4, 0), (0, 4), (4, 4)], scale=0.5)
    inertias = [
        KMeans(n_clusters=k, n_init=3, random_state=1).fit(data).inertia_
        for k in (1, 2, 4, 8)
    ]
    assert all(a > b for a, b in zip(inertias, inertias[1:]))


def test_predict_assigns_nearest_centroid(rng):
    data = _blobs(rng, [(0.0, 0.0), (10.0, 10.0)])
    model = KMeans(n_clusters=2, random_state=0).fit(data)
    near_origin = model.predict(np.array([[0.2, -0.1]]))[0]
    near_far = model.predict(np.array([[9.8, 10.4]]))[0]
    assert near_origin != near_far
    assert near_origin == model.predict(np.array([0.0, 0.0]))[0]


def test_predict_on_training_data_matches_labels(rng):
    data = _blobs(rng, [(0, 0), (8, 8)])
    model = KMeans(n_clusters=2, random_state=0).fit(data)
    assert np.array_equal(model.predict(data), model.labels_)


def test_deterministic_given_seed(rng):
    data = _blobs(rng, [(0, 0), (6, 0), (3, 5)])
    a = KMeans(n_clusters=3, random_state=42).fit(data)
    b = KMeans(n_clusters=3, random_state=42).fit(data)
    assert np.allclose(a.cluster_centers_, b.cluster_centers_)
    assert a.inertia_ == b.inertia_


def test_duplicate_heavy_data(rng):
    # Web traffic shape: a few distinct points with huge multiplicity.
    base = np.array([[0.0, 0.0], [5.0, 5.0], [9.0, 1.0]])
    data = np.repeat(base, 400, axis=0)
    model = KMeans(n_clusters=3, n_init=4, random_state=0).fit(data)
    assert model.inertia_ == pytest.approx(0.0, abs=1e-9)


def test_more_clusters_than_distinct_points_reseeds_empties(rng):
    base = np.array([[0.0, 0.0], [5.0, 5.0]])
    data = np.repeat(base, 50, axis=0)
    model = KMeans(n_clusters=4, n_init=2, random_state=0).fit(data)
    # All points still assigned, inertia zero (centroids sit on points).
    assert model.inertia_ == pytest.approx(0.0, abs=1e-9)
    assert model.labels_.shape == (100,)


def test_transform_returns_distances(rng):
    data = _blobs(rng, [(0.0, 0.0), (10.0, 0.0)])
    model = KMeans(n_clusters=2, random_state=0).fit(data)
    distances = model.transform(np.array([[0.0, 0.0]]))
    assert distances.shape == (1, 2)
    assert abs(distances.min() - 0.0) < 0.5
    assert abs(distances.max() - 10.0) < 0.5


def test_score_is_negative_wcss(rng):
    data = _blobs(rng, [(0, 0), (5, 5)])
    model = KMeans(n_clusters=2, random_state=0).fit(data)
    assert model.score(data) == pytest.approx(-model.inertia_, rel=1e-6)


def test_n_samples_below_k_rejected():
    with pytest.raises(ValueError, match="n_samples"):
        KMeans(n_clusters=5).fit(np.zeros((3, 2)))


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        KMeans(n_clusters=0)
    with pytest.raises(ValueError):
        KMeans(n_clusters=2, n_init=0)
    with pytest.raises(ValueError):
        KMeans(n_clusters=2, max_iter=0)


def test_predict_before_fit_rejected():
    with pytest.raises(RuntimeError, match="not fitted"):
        KMeans(n_clusters=2).predict(np.zeros((1, 2)))


def test_predict_wrong_width_rejected(rng):
    model = KMeans(n_clusters=2, random_state=0).fit(rng.normal(size=(20, 3)))
    with pytest.raises(ValueError, match="features"):
        model.predict(np.zeros((1, 5)))


def test_single_cluster(rng):
    data = rng.normal(size=(50, 2))
    model = KMeans(n_clusters=1, random_state=0).fit(data)
    assert np.allclose(model.cluster_centers_[0], data.mean(axis=0))
