"""Section 6.3 feature-selection tests (513 candidates -> 28 features)."""

import numpy as np
import pytest

from repro.core.feature_selection import config_sensitivity, select_features
from repro.fingerprint.candidates import generate_candidates
from repro.fingerprint.features import FEATURE_SPECS
from repro.jsengine.evolution import (
    CANONICAL_TIME_PROPERTIES,
    CONFIG_SENSITIVE_INTERFACES,
    PRIMARY_INTERFACES,
)
from repro.traffic.generator import TrafficConfig, TrafficSimulator


@pytest.fixture(scope="module")
def candidates():
    return generate_candidates()


@pytest.fixture(scope="module")
def candidate_traffic(candidates):
    config = TrafficConfig(seed=5).scaled(8_000)
    return TrafficSimulator(config, specs=candidates.all_specs).generate()


@pytest.fixture(scope="module")
def report(candidates, candidate_traffic):
    return select_features(candidate_traffic.matrix(), candidates.all_specs)


class TestConfigSensitivity:
    def test_service_worker_family_fully_zeroable(self, candidates):
        sensitivity = config_sensitivity(candidates.all_specs)
        assert sensitivity["dev:ServiceWorkerContainer"] == pytest.approx(1.0)
        assert sensitivity["dev:RTCPeerConnection"] == pytest.approx(1.0)

    def test_element_only_marginally_affected(self, candidates):
        sensitivity = config_sensitivity(candidates.all_specs)
        assert sensitivity["dev:Element"] < 0.1

    def test_always_present_time_features_unaffected(self, candidates):
        # Time-based properties that every engine ships from version 1
        # cannot be disturbed by configuration downgrades.
        sensitivity = config_sensitivity(candidates.all_specs)
        model_props = {
            f"time:{p.key()}": p
            for p in __import__("repro.jsengine.evolution", fromlist=["x"]).default_model().time_properties
        }
        checked = 0
        for key, named in model_props.items():
            if named.chromium_from == 1 and named.gecko_from == 1:
                assert sensitivity.get(key, 0.0) == 0.0
                checked += 1
        assert checked > 50


class TestSelection:
    def test_recovers_exactly_28_features(self, report):
        assert report.n_selected == 28

    def test_recovers_the_table8_deviation_set(self, report):
        deviation = {s.interface for s in report.selected if s.kind == "deviation"}
        assert deviation == set(PRIMARY_INTERFACES)

    def test_recovers_the_six_canonical_time_features(self, report):
        time_keys = {
            f"{s.interface}.{s.prop}" for s in report.selected if s.kind == "time"
        }
        assert time_keys == {p.key() for p in CANONICAL_TIME_PROPERTIES}

    def test_config_sensitive_candidates_excluded(self, report):
        dropped = set(report.dropped_config_sensitive)
        for iface in ("ServiceWorker", "RTCPeerConnection", "Navigator"):
            if f"dev:{iface}" in dropped:
                continue
            # Navigator may instead fall out by low deviation; it must
            # not be selected either way.
            assert iface not in {s.interface for s in report.selected}

    def test_constant_features_dropped(self, report):
        # Most of the BrowserPrint time-based set is constant in modern
        # traffic (the paper's 186 single-value observation).
        assert len(report.dropped_constant) > 100

    def test_ranking_covers_beyond_the_selection(self, report):
        assert len(report.deviation_ranking) > 22
        stds = [std for _, std in report.deviation_ranking]
        assert stds == sorted(stds, reverse=True)

    def test_selected_indices_align_with_specs(self, candidates, report):
        for spec, idx in zip(report.selected, report.selected_indices):
            assert candidates.all_specs[idx].key() == spec.key()

    def test_selected_order_matches_canonical_28(self, report):
        # Deviation features first, then time-based — same shape as the
        # canonical FEATURE_SPECS ordering.
        kinds = [s.kind for s in report.selected]
        assert kinds == ["deviation"] * 22 + ["time"] * 6

    def test_misaligned_matrix_rejected(self, candidates):
        with pytest.raises(ValueError):
            select_features(np.zeros((10, 5)), candidates.all_specs)


class TestEndToEndEquivalence:
    def test_selected_columns_reproduce_final_features(
        self, candidates, candidate_traffic, report
    ):
        """Projecting the candidate matrix onto the selected columns must
        equal collecting the canonical 28 features directly."""
        canonical_keys = [s.key() for s in FEATURE_SPECS]
        selected_keys = [s.key() for s in report.selected]
        assert set(selected_keys) == set(canonical_keys)

        reorder = [selected_keys.index(k) for k in canonical_keys]
        projected = candidate_traffic.features[:, report.selected_indices][:, reorder]

        final = TrafficSimulator(
            TrafficConfig(seed=5).scaled(8_000)
        ).generate()
        assert np.array_equal(projected, final.features)
