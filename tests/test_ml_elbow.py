"""Elbow analysis unit tests."""

import numpy as np
import pytest

from repro.ml.elbow import ElbowResult, elbow_analysis, relative_wcss_gain, select_k_elbow


def _grid_blobs(rng, n_centers=6, n_per=80):
    centers = [(10.0 * (i % 3), 10.0 * (i // 3)) for i in range(n_centers)]
    return np.vstack(
        [c + rng.normal(0.0, 0.3, size=(n_per, 2)) for c in centers]
    )


def test_wcss_curve_is_nonincreasing(rng):
    data = _grid_blobs(rng)
    result = elbow_analysis(data, range(2, 10), random_state=0)
    assert all(a >= b - 1e-6 for a, b in zip(result.wcss, result.wcss[1:]))


def test_relative_gain_first_entry_zero():
    assert relative_wcss_gain([100.0, 50.0])[0] == 0.0


def test_relative_gain_values():
    gains = relative_wcss_gain([100.0, 50.0, 45.0])
    assert gains[1] == pytest.approx(0.5)
    assert gains[2] == pytest.approx(0.1)


def test_relative_gain_handles_zero_wcss():
    gains = relative_wcss_gain([10.0, 0.0, 0.0])
    assert gains == [0.0, 1.0, 0.0]


def test_elbow_found_at_true_center_count(rng):
    data = _grid_blobs(rng, n_centers=6)
    result = elbow_analysis(data, range(2, 12), n_init=4, random_state=3)
    chosen = select_k_elbow(result, min_k=3)
    assert chosen == 6


def test_ks_are_sorted_and_deduplicated(rng):
    data = _grid_blobs(rng)
    result = elbow_analysis(data, [5, 3, 3, 7], random_state=0)
    assert result.ks == [3, 5, 7]


def test_as_rows_zips_all_series(rng):
    data = _grid_blobs(rng)
    result = elbow_analysis(data, [2, 3], random_state=0)
    rows = result.as_rows()
    assert len(rows) == 2
    assert rows[0][0] == 2 and len(rows[0]) == 3


def test_empty_ks_rejected(rng):
    with pytest.raises(ValueError):
        elbow_analysis(_grid_blobs(rng), [])


def test_invalid_k_rejected(rng):
    with pytest.raises(ValueError):
        elbow_analysis(_grid_blobs(rng), [0, 2])


def test_select_k_requires_candidates():
    result = ElbowResult(ks=[2], wcss=[10.0], relative_gain=[0.0])
    with pytest.raises(ValueError, match="no candidate"):
        select_k_elbow(result, min_k=5)
