"""Shared fixtures.

Heavy artifacts (traffic datasets, trained pipelines) are session-scoped
so the whole suite trains once per size.  Sizes are chosen for test
speed; the benchmarks exercise paper-scale data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import BrowserPolygraph
from repro.traffic.generator import TrafficConfig, TrafficSimulator


@pytest.fixture(scope="session")
def small_dataset():
    """A 15k-session training window with the default fraud mix."""
    return TrafficSimulator(TrafficConfig(seed=7).scaled(15_000)).generate()


@pytest.fixture(scope="session")
def trained(small_dataset):
    """Browser Polygraph fitted on :func:`small_dataset`."""
    return BrowserPolygraph().fit(small_dataset)


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)
