"""Privacy analysis, sensitivity sweeps, and table rendering."""

import numpy as np
import pytest

from repro.analysis.privacy import (
    anonymity_figure,
    feature_entropy_table,
    unique_fingerprint_share,
)
from repro.analysis.reporting import render_table
from repro.analysis.sensitivity import (
    clustering_protocol,
    sweep_clusters,
    sweep_features,
    sweep_pca,
)


class TestPrivacy:
    def test_anonymity_shares_sum_to_100(self, small_dataset):
        survey = anonymity_figure(small_dataset)
        assert sum(survey.values()) == pytest.approx(100.0)

    def test_most_fingerprints_hide_in_large_sets(self, small_dataset):
        survey = anonymity_figure(small_dataset)
        large = survey.get("51-500", 0.0) + survey.get("501-+", 0.0)
        assert large > 80.0  # paper: 95.6% in sets larger than 50

    def test_unique_share_is_small(self, small_dataset):
        # Paper: 0.3% unique.  Uniques come from Category-1 fraud and
        # rare perturbation combos.
        share = unique_fingerprint_share(small_dataset)
        assert 0.0 < share < 0.02

    def test_unique_fingerprints_are_mostly_fraud(self, small_dataset):
        from collections import Counter

        fingerprints = [tuple(r) for r in small_dataset.features.tolist()]
        counts = Counter(fingerprints)
        unique_rows = [i for i, fp in enumerate(fingerprints) if counts[fp] == 1]
        kinds = Counter(small_dataset.truth_kind[unique_rows].tolist())
        assert kinds.get("fraud", 0) >= 0.6 * len(unique_rows)

    def test_user_agent_tops_entropy_table(self, small_dataset):
        rows = feature_entropy_table(small_dataset)
        assert rows[0][0] == "user-agent"
        # Normalized entropies are sorted descending.
        normalized = [r[2] for r in rows]
        assert normalized == sorted(normalized, reverse=True)

    def test_element_family_among_most_diverse_features(self, small_dataset):
        rows = feature_entropy_table(small_dataset, top_n=8)
        names = " ".join(name for name, _, _ in rows[1:])
        assert "Element" in names  # matches the paper's Table 7 shape

    def test_entropy_table_respects_top_n(self, small_dataset):
        assert len(feature_entropy_table(small_dataset, top_n=5)) == 5


class TestSensitivitySweeps:
    def test_sweep_clusters_accuracy_band(self, small_dataset):
        rows = sweep_clusters(
            small_dataset.matrix(), list(small_dataset.ua_keys), ks=(5, 11, 15)
        )
        ks = [k for k, _ in rows]
        accuracies = {k: acc for k, acc in rows}
        assert ks == [5, 11, 15]
        assert all(acc > 0.97 for acc in accuracies.values())
        # Fewer clusters never hurt the majority metric (paper Table 10).
        assert accuracies[5] >= accuracies[15] - 0.005

    def test_sweep_pca_band(self, small_dataset):
        rows = sweep_pca(
            small_dataset.matrix(), list(small_dataset.ua_keys), components=(6, 7)
        )
        assert [r[0] for r in rows] == [6, 7]
        assert all(acc > 0.97 for _, _, acc in rows)

    def test_sweep_features_grows_columns(self, small_dataset):
        base = list(range(28))
        rows = sweep_features(
            small_dataset.matrix(),
            list(small_dataset.ua_keys),
            feature_steps=[base, base[:20]],
        )
        assert rows[0][0] == 28 and rows[1][0] == 20

    def test_protocol_on_separable_blobs(self, rng):
        centers = np.array(
            [
                [0.0, 0.0, 0.0],
                [10.0, 0.0, 0.0],
                [0.0, 10.0, 0.0],
                [10.0, 10.0, 0.0],
                [5.0, 5.0, 10.0],
            ]
        )
        data = np.repeat(centers, 40, axis=0) + rng.normal(0, 0.05, (200, 3))
        labels = [f"g{i}" for i in range(5) for _ in range(40)]
        outcome = clustering_protocol(data, labels)
        assert outcome.accuracy > 0.99
        assert outcome.k == 5

    def test_protocol_rejects_misaligned_labels(self, rng):
        with pytest.raises(ValueError):
            clustering_protocol(rng.normal(size=(10, 3)), ["x"] * 4)


class TestReporting:
    def test_renders_header_and_rows(self):
        text = render_table(["A", "Bee"], [(1, 2.5), ("xx", 3.25)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("A")
        assert "2.50" in text and "3.25" in text

    def test_alignment_width(self):
        text = render_table(["col"], [("longvalue",), ("s",)])
        lines = text.splitlines()
        assert len(lines[2]) == len("longvalue")

    def test_bool_formatting(self):
        text = render_table(["x"], [(True,), (False,)])
        assert "yes" in text and "no" in text

    def test_float_digits(self):
        text = render_table(["x"], [(1.23456,)], float_digits=4)
        assert "1.2346" in text
