"""Weak-tag boundary tripwire.

The three risk-engine tag columns (``untrusted_ip``, ``untrusted_cookie``,
``ato``) must never feed the fingerprinting model: they are proxies of
the detection target, and a pipeline that reads them trains on its own
answer key.  These tests replace the raw columns with guards that raise
on *any* read and run the full model-facing paths over the guarded
dataset — if fit/detect/serve ever consumes a tag, the guard detonates
with the offending column's name.

The fusion trainer is the one sanctioned consumer, and only through
:func:`repro.fusion.labels.weak_labels`.
"""

import numpy as np
import pytest

from repro.core.pipeline import BrowserPolygraph
from repro.fusion.labels import (
    WEAK_TAG_COLUMNS,
    WeakLabelLeak,
    WeakLabels,
    weak_labels,
    with_guarded_tags,
)
from repro.fusion.model import FusionModel
from repro.service.scoring import ScoringService
from repro.traffic.replay import iter_wire_payloads


class TestGuardMechanics:
    def test_guard_trips_on_every_read_surface(self, small_dataset):
        guarded = with_guarded_tags(small_dataset)
        for name in WEAK_TAG_COLUMNS:
            column = getattr(guarded, name)
            with pytest.raises(WeakLabelLeak, match=name):
                column[0]
            with pytest.raises(WeakLabelLeak, match=name):
                np.asarray(column)
            with pytest.raises(WeakLabelLeak, match=name):
                column.sum()
            with pytest.raises(WeakLabelLeak, match=name):
                list(column)

    def test_guard_preserves_alignment_check(self, small_dataset):
        # Construction must survive: the dataset's own __post_init__
        # validates column lengths via .shape, which the guard exposes.
        guarded = with_guarded_tags(small_dataset)
        assert len(guarded) == len(small_dataset)

    def test_sanctioned_accessor_detonates_on_guarded_dataset(
        self, small_dataset
    ):
        # Proof that even the accessor reads through the guarded
        # columns — there is no side channel.
        with pytest.raises(WeakLabelLeak):
            weak_labels(with_guarded_tags(small_dataset))


class TestModelFacingPathsNeverReadTags:
    def test_fit_and_detect_on_guarded_dataset(self, small_dataset):
        guarded = with_guarded_tags(small_dataset.rows(0, 4_000))
        pipeline = BrowserPolygraph().fit(guarded)
        report = pipeline.detect(guarded)
        assert report.flagged.shape[0] == 4_000

    def test_serving_path_on_guarded_dataset(self, trained, small_dataset):
        guarded = with_guarded_tags(small_dataset.rows(0, 64))
        service = ScoringService(trained)
        for wire in iter_wire_payloads(guarded):
            assert service.score_wire(wire).accepted

    def test_fusion_training_requires_the_tags(self, trained, small_dataset):
        # The trainer is the sanctioned consumer: on a guarded dataset
        # it must detonate (it genuinely reads the tags), and on the
        # raw dataset it must succeed.
        guarded = with_guarded_tags(small_dataset.rows(0, 2_000))
        with pytest.raises(WeakLabelLeak):
            FusionModel.train(guarded, trained.cluster_model)
        model = FusionModel.train(
            small_dataset.rows(0, 2_000), trained.cluster_model
        )
        assert model.n_nodes > 0


class TestWeakLabelsAccessor:
    def test_returns_detached_boolean_copies(self, small_dataset):
        labels = weak_labels(small_dataset)
        assert labels.untrusted_ip.dtype == bool
        assert labels.untrusted_cookie.dtype == bool
        assert labels.ato.dtype == bool
        assert len(labels) == len(small_dataset)
        before = bool(small_dataset.ato[0])
        labels.ato[0] = not before
        assert bool(small_dataset.ato[0]) == before  # copy, not a view

    def test_ato_rate_is_the_sparse_seed_rate(self, small_dataset):
        labels = weak_labels(small_dataset)
        assert 0.0 < labels.ato_rate < 0.05

    def test_misaligned_columns_rejected(self):
        with pytest.raises(ValueError):
            WeakLabels(
                untrusted_ip=np.zeros(3, dtype=bool),
                untrusted_cookie=np.zeros(3, dtype=bool),
                ato=np.zeros(2, dtype=bool),
            )
