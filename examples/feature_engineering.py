#!/usr/bin/env python3
"""How the 28 features were born (paper Sections 6.1-6.3).

Replays the paper's full feature-engineering story:

1. **Candidate fingerprint generation** — probe all 1006 MDN prototype
   names on the lab browser matrix, rank by standard deviation, keep
   the top 200 deviation candidates + 313 BrowserPrint existence
   features;
2. **Real-world data collection** — gather candidate-space traffic
   (513 integers per session) from the simulated FinOrg deployment;
3. **Data pre-processing** — drop constants, probe configuration
   sensitivity in the lab, rank the survivors, and keep the
   22 + 6 = 28 features of paper Table 8.

Run:  python examples/feature_engineering.py
"""

from repro.core.feature_selection import config_sensitivity, select_features
from repro.fingerprint.candidates import generate_candidates
from repro.fingerprint.features import FEATURE_SPECS
from repro.traffic.generator import TrafficConfig, TrafficSimulator


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Candidate fingerprint generation (Section 6.1)
    print("probing the lab browser matrix (Chrome 59-119, Firefox 46-119, Edge) ...")
    candidates = generate_candidates()
    print(
        f"  {len(candidates.deviation)} deviation-based + "
        f"{len(candidates.time_based)} time-based = "
        f"{len(candidates.all_specs)} candidates"
    )
    stds = sorted(candidates.deviation_std.values())
    print(
        f"  normalized std of selected deviation features: "
        f"{stds[0]:.4f} .. {stds[-1]:.4f} (paper: 0.0012 .. 1.3853)"
    )
    print("  top five by deviation:",
          ", ".join(s.interface for s in candidates.deviation[:5]))

    # ------------------------------------------------------------------
    # 2. Real-world data collection (Section 6.2)
    print("\ncollecting candidate-space traffic (513 integers per session) ...")
    traffic = TrafficSimulator(
        TrafficConfig(seed=5).scaled(10_000), specs=candidates.all_specs
    ).generate()
    print(f"  {len(traffic)} sessions x {traffic.n_features} candidate features")

    # ------------------------------------------------------------------
    # 3. Data pre-processing (Section 6.3)
    print("\nprobing configuration sensitivity in the lab ...")
    sensitivity = config_sensitivity(candidates.all_specs)
    zeroable = [k for k, v in sensitivity.items() if v >= 0.99]
    print(f"  {len(zeroable)} candidates can be zeroed by user settings, e.g.:")
    for key in sorted(zeroable)[:4]:
        print(f"    {key}")

    print("\nrunning the full reduction ...")
    report = select_features(traffic.matrix(), candidates.all_specs)
    print(f"  constant in traffic          : {len(report.dropped_constant)} dropped")
    print(f"  configuration-sensitive      : {len(report.dropped_config_sensitive)} dropped")
    print(f"  weak time-based features     : {len(report.dropped_low_support_time)} dropped")
    print(f"  low-deviation features       : {len(report.dropped_low_deviation)} dropped")
    print(f"  SELECTED                     : {report.n_selected} features")

    canonical = {spec.key() for spec in FEATURE_SPECS}
    recovered = {spec.key() for spec in report.selected}
    print(
        "\nselection matches paper Table 8:",
        "YES" if canonical == recovered else f"NO ({canonical ^ recovered})",
    )
    print("\nthe 28 features:")
    for spec in report.selected:
        print(f"  {spec.name}")


if __name__ == "__main__":
    main()
