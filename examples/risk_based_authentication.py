#!/usr/bin/env python3
"""Risk-based authentication gateway (the paper's deployment scenario).

FinOrg's motivation: a fraudster buys a victim's stolen profile (cookies
+ user-agent + fingerprint data) from a marketplace, loads it into an
anti-detect browser, and logs in.  IP reputation alone misses most of
these.  This example builds a miniature risk engine that combines
Browser Polygraph's risk factor with the session's Untrusted_IP /
Untrusted_Cookie signals into an authentication decision, then measures
how the decisions distribute over genuine and fraudulent sessions.

Run:  python examples/risk_based_authentication.py
"""

from collections import Counter

import numpy as np

from repro import BrowserPolygraph, TrafficConfig, TrafficSimulator


def decide(flagged: bool, risk_factor: int, untrusted_ip: bool, untrusted_cookie: bool) -> str:
    """A simple three-way policy on top of the Polygraph verdict.

    * ``deny``      — fingerprint contradicts the claimed browser badly
      (vendor mismatch or far-away release) and the session context is
      also untrusted;
    * ``challenge`` — something is off: step-up authentication (2FA);
    * ``allow``     — fingerprint matches the claimed user-agent.
    """
    if not flagged:
        return "allow"
    if risk_factor > 4 and (untrusted_ip or untrusted_cookie):
        return "deny"
    if risk_factor > 1 or (untrusted_ip and untrusted_cookie):
        return "challenge"
    return "challenge" if untrusted_cookie else "allow"


def main() -> None:
    print("simulating a deployment window ...")
    dataset = TrafficSimulator(TrafficConfig(seed=21).scaled(60_000)).generate()
    polygraph = BrowserPolygraph().fit(dataset)
    print(f"trained; accuracy {polygraph.accuracy:.4f}")

    report = polygraph.detect(dataset)
    decisions = []
    for idx in range(len(dataset)):
        decisions.append(
            decide(
                bool(report.flagged[idx]),
                int(report.risk_factors[idx]),
                bool(dataset.untrusted_ip[idx]),
                bool(dataset.untrusted_cookie[idx]),
            )
        )
    decisions = np.array(decisions)

    fraud = dataset.is_detectable_fraud()
    genuine = ~dataset.is_fraud()
    print("\ndecision mix over all sessions:", dict(Counter(decisions.tolist())))

    for label, mask in (("genuine sessions", genuine), ("cat-1/2 fraud sessions", fraud)):
        mix = Counter(decisions[mask].tolist())
        total = max(1, int(mask.sum()))
        shares = {k: f"{100 * v / total:.2f}%" for k, v in sorted(mix.items())}
        print(f"{label:>24}: {shares}")

    denied_fraud = int(((decisions == "deny") & fraud).sum())
    challenged_fraud = int(((decisions == "challenge") & fraud).sum())
    blocked_share = (denied_fraud + challenged_fraud) / max(1, int(fraud.sum()))
    denied_genuine = int(((decisions == "deny") & genuine).sum())
    print(
        f"\nfraud stopped or challenged: {100 * blocked_share:.1f}% "
        f"({denied_fraud} denied, {challenged_fraud} challenged); "
        f"genuine sessions denied: {denied_genuine} "
        f"of {int(genuine.sum())}"
    )


if __name__ == "__main__":
    main()
