#!/usr/bin/env python3
"""An account-takeover campaign, end to end (the paper's threat model).

Plays out the full supply chain the paper's introduction describes:

1. infostealers harvest victim browser profiles from legitimate
   traffic (the Genesis Market pipeline);
2. a fraudster buys a batch and loads it into GoLogin (Category 2) and
   Linken Sphere (Category 1);
3. the attack sessions hit the FinOrg scoring endpoint;
4. Browser Polygraph's verdicts — and per-session explanations — show
   which attempts are caught and why.

Run:  python examples/ato_campaign.py
"""

from datetime import date

from repro import BrowserPolygraph, TrafficConfig, TrafficSimulator
from repro.core.explain import explain_detection
from repro.fraudbrowsers import fraud_browser
from repro.fraudbrowsers.marketplace import AttackCampaign, Marketplace
from repro.service.ingest import PayloadValidator
from repro.service.scoring import ScoringService


def main() -> None:
    print("training Browser Polygraph on the clean window ...")
    traffic = TrafficSimulator(TrafficConfig(seed=7).scaled(40_000)).generate()
    polygraph = BrowserPolygraph().fit(traffic)
    service = ScoringService(polygraph, validator=PayloadValidator(dedup_window=0))
    print(f"  accuracy {polygraph.accuracy:.4f}\n")

    # --- the underground supply chain ---------------------------------
    market = Marketplace(seed=13)
    listings = market.harvest_from_traffic(traffic, infection_rate=0.005)
    today = date(2023, 7, 10)
    print(
        f"marketplace: {listings} profiles harvested, "
        f"average shelf age {market.average_age_days(today):.0f} days, "
        f"cheapest stock first"
    )

    # --- two campaigns with different tooling -------------------------
    for product_name, n_attacks in (("GoLogin-3.3.23", 60), ("Linken Sphere-8.93", 40)):
        product = fraud_browser(product_name)
        campaign = AttackCampaign(product, market, seed=len(product_name))
        sessions = campaign.run(n_attacks, today=today)

        caught, missed = [], []
        for attack in sessions:
            verdict = service.score_wire(attack.payload.to_wire())
            (caught if verdict.flagged else missed).append((attack, verdict))

        recall = 100.0 * len(caught) / max(1, len(sessions))
        print(
            f"\n{product.full_name} (category {int(product.category)}): "
            f"{len(caught)}/{len(sessions)} attacks flagged ({recall:.0f}% recall)"
        )

        if caught:
            attack, verdict = caught[0]
            explanation = explain_detection(
                polygraph.cluster_model,
                attack.payload.vector(),
                attack.victim.user_agent.key(),
            )
            print(f"  example catch (risk {verdict.risk_factor}):")
            print(f"    {explanation.summary(top=2)}")
        if missed:
            claimed = sorted({a.victim.user_agent.key() for a, _ in missed})
            print(
                f"  missed while claiming {', '.join(claimed[:5])} — "
                "user-agents in the engine's own cluster evade the "
                "coarse-grained check (the paper's Sphere effect)"
            )

    print(
        f"\nmarketplace after the campaigns: {market.stock} profiles left, "
        f"{market.sold_count} sold"
    )


if __name__ == "__main__":
    main()
