#!/usr/bin/env python3
"""Fraud-browser lab: the paper's Section 7.2 experiment, interactive.

Installs every Category-1/2 product from paper Table 1 on a simulated
Windows machine, builds profiles spoofing user-agents from every learned
cluster, visits a private test site running the collection script, and
feeds the payloads to a trained Browser Polygraph — reporting recall and
risk factors per product, plus *why* each miss happened.

Run:  python examples/fraud_browser_lab.py
"""

from repro import BrowserPolygraph, CollectionScript, TrafficConfig, TrafficSimulator
from repro.fraudbrowsers import (
    Category,
    FRAUD_BROWSERS,
    build_experiment_profiles,
)


def main() -> None:
    print("training Browser Polygraph ...")
    dataset = TrafficSimulator(TrafficConfig(seed=7).scaled(60_000)).generate()
    polygraph = BrowserPolygraph().fit(dataset)
    print(f"accuracy {polygraph.accuracy:.4f}\n")

    script = CollectionScript()
    table = polygraph.cluster_table

    for product in FRAUD_BROWSERS:
        if product.category not in (
            Category.IMPOSSIBLE_FINGERPRINT,
            Category.FIXED_ENGINE,
        ):
            continue  # Categories 3/4 are out of coarse-grained scope
        profiles = build_experiment_profiles(product, table)
        flagged, risks, misses = 0, [], []
        for profile in profiles:
            environment = product.environment(profile)
            payload = script.run(
                environment, profile.claimed.raw, session_id=profile.browser_name
            )
            result = polygraph.detect_payload(payload)
            if result.flagged:
                flagged += 1
                risks.append(result.risk_factor)
            else:
                misses.append(profile.claimed.key())
        total = len(profiles)
        recall = 100.0 * flagged / total if total else 0.0
        avg_risk = sum(risks) / len(risks) if risks else 0.0
        print(
            f"{product.full_name:>22} (category {int(product.category)}, "
            f"engine Chromium {product.engine_version}): "
            f"{flagged}/{total} flagged, recall {recall:.0f}%, "
            f"avg risk {avg_risk:.2f}"
        )
        if misses:
            # Misses happen when the spoofed user-agent belongs to the
            # same cluster as the product's bundled engine (the paper's
            # Sphere explanation).
            print(f"{'':>24} missed while claiming: {', '.join(misses)}")

    print(
        "\nCategory-3/4 products (engine follows the claimed user-agent) "
        "produce genuine fingerprints and are invisible to coarse-grained "
        "detection — the paper's stated scope boundary."
    )


if __name__ == "__main__":
    main()
