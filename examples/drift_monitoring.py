#!/usr/bin/env python3
"""Drift monitoring and automatic retraining (paper Sections 6.6 / 7.3).

Plays the paper's calendar forward: train on the March-July window,
then run the scheduled drift checks as new browser releases ship
through autumn 2023.  Firefox 119's Element-prototype refactor and the
Chrome 119 field-trial rollback trip the retraining signal in late
October — at which point the pipeline retrains on the extended window
and the new releases cluster cleanly again.

Run:  python examples/drift_monitoring.py
"""

from datetime import date

from repro import BrowserPolygraph, TrafficConfig, TrafficSimulator
from repro.browsers.useragent import parse_ua_key


def window(start: date, end: date, n: int, seed: int):
    """Generate one deployment window."""
    return TrafficSimulator(
        TrafficConfig(start=start, end=end, seed=seed).scaled(n)
    ).generate()


def print_records(records, threshold: float) -> None:
    for record in records:
        if record.n_sessions < 20:
            continue  # too few sessions for a meaningful check
        marker = "<-- RETRAIN" if record.retrain_needed(threshold) else ""
        moved = (
            f"moved {record.baseline_cluster} -> {record.cluster}"
            if record.cluster_changed
            else f"cluster {record.cluster}"
        )
        print(
            f"  {parse_ua_key(record.ua_key).display():>12}: {moved}, "
            f"accuracy {100 * record.accuracy:.2f}% "
            f"({record.n_sessions} sessions) {marker}"
        )


def main() -> None:
    print("training on March - July 2023 ...")
    training = window(date(2023, 3, 1), date(2023, 7, 1), 60_000, seed=7)
    polygraph = BrowserPolygraph().fit(training)
    threshold = polygraph.config.drift_accuracy_threshold
    print(f"accuracy {polygraph.accuracy:.4f}; drift threshold {threshold:.0%}")

    # Scheduled checks: a few days after each Firefox release.
    checkpoints = [
        ("07/25", date(2023, 7, 20), date(2023, 8, 10)),
        ("08/25", date(2023, 8, 10), date(2023, 9, 5)),
        ("09/25", date(2023, 9, 5), date(2023, 10, 5)),
        ("10/23", date(2023, 10, 5), date(2023, 10, 28)),
        ("10/31", date(2023, 10, 28), date(2023, 11, 12)),
    ]
    from repro.browsers.releases import default_calendar
    from repro.browsers.useragent import Vendor

    calendar = default_calendar()

    def shipped_in(ua_key: str, start: date, end: date) -> bool:
        parsed = parse_ua_key(ua_key)
        released = calendar.release(parsed.vendor, parsed.version).released
        return start <= released < end

    retrain_at = None
    checked_through = date(2023, 7, 1)
    for label, start, end in checkpoints:
        print(f"\ndrift check {label}:")
        live = window(start, end, 30_000, seed=int(start.strftime("%m%d")))
        # Each checkpoint evaluates only the releases shipped since the
        # previous one — the paper's "a few days after the latest
        # Firefox release" schedule.
        records = [
            r
            for r in polygraph.drift_report(live)
            if shipped_in(r.ua_key, checked_through, end)
        ]
        checked_through = end
        print_records(records, threshold)
        if polygraph.retrain_needed(records):
            retrain_at = (label, live)
            print(f"  => retraining signal raised at checkpoint {label}")
            break

    if retrain_at is None:
        print("\nno drift detected in the simulated window")
        return

    label, live = retrain_at
    print(f"\nretraining on the extended window (training + {label} data) ...")
    from repro.traffic.dataset import Dataset

    extended = Dataset.concatenate([training, live])
    polygraph.retrain(extended)
    print(f"retrained; accuracy {polygraph.accuracy:.4f}")

    records = polygraph.drift_report(live)
    fresh = [r for r in records if r.n_sessions >= 20]
    if not fresh:
        print("all current releases are inside the new cluster table — recovered.")
    else:
        print("releases still outside the table after retraining:")
        print_records(fresh, threshold)


if __name__ == "__main__":
    main()
