#!/usr/bin/env python3
"""Quickstart: train Browser Polygraph and catch a lying browser.

Walks the full paper pipeline at laptop scale:

1. simulate a FinOrg-shaped traffic window (50k sessions);
2. train the clustering model (scale -> outlier filter -> PCA -> k-means);
3. inspect the learned cluster-to-user-agent table (paper Table 3);
4. evaluate one genuine session and one fraud-browser session;
5. persist and reload the trained model.

Run:  python examples/quickstart.py
"""

from repro import BrowserPolygraph, CollectionScript, TrafficConfig, TrafficSimulator
from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor, format_user_agent
from repro.fraudbrowsers import fraud_browser
from repro.fraudbrowsers.base import FraudProfile
from repro.browsers.useragent import parse_user_agent


def main() -> None:
    # 1. Simulated FinOrg traffic: version mix, benign config quirks,
    #    and a realistic trickle of fraud-browser sessions.
    print("generating traffic ...")
    dataset = TrafficSimulator(TrafficConfig(seed=7).scaled(50_000)).generate()
    print(f"  {len(dataset)} sessions, {len(dataset.distinct_releases())} releases")

    # 2. Train.
    print("training Browser Polygraph ...")
    polygraph = BrowserPolygraph().fit(dataset)
    print(f"  clustering accuracy: {polygraph.accuracy:.4f} (paper: 0.996)")

    # 3. The artifact fraud detection consumes: cluster -> user-agents.
    print("cluster table (paper Table 3):")
    for cluster, uas in sorted(polygraph.cluster_table.items()):
        label = ", ".join(uas[:4]) + (" ..." if len(uas) > 4 else "")
        print(f"  cluster {cluster:>2}: {label or '(no majority user-agent)'}")

    # 4a. A genuine Chrome 112 session: the in-page script collects 28
    #     integers (under 1KB) and the backend verdict is clean.
    script = CollectionScript()
    genuine = BrowserProfile(Vendor.CHROME, 112)
    payload = script.run(genuine.environment(), genuine.user_agent(), "demo-1")
    result = polygraph.detect_payload(payload)
    print(
        f"genuine Chrome 112: flagged={result.flagged} "
        f"(payload {payload.size_bytes} bytes, "
        f"{payload.service_time_ms:.2f} ms)"
    )

    # 4b. A GoLogin profile claiming to be the victim's Firefox 110:
    #     its bundled Chromium engine betrays it.
    gologin = fraud_browser("GoLogin-3.3.23")
    victim_ua = format_user_agent(Vendor.FIREFOX, 110)
    profile = FraudProfile(gologin.full_name, parse_user_agent(victim_ua))
    payload = script.run(gologin.environment(profile), victim_ua, "demo-2")
    result = polygraph.detect_payload(payload)
    print(
        f"GoLogin claiming Firefox 110: flagged={result.flagged}, "
        f"risk factor={result.risk_factor} (vendor mismatch -> 20)"
    )

    # 5. The deployable model is one small JSON document.
    polygraph.save("/tmp/browser_polygraph_model.json")
    reloaded = BrowserPolygraph.load("/tmp/browser_polygraph_model.json")
    again = reloaded.detect_payload(payload)
    assert again.flagged == result.flagged and again.risk_factor == result.risk_factor
    print("model saved, reloaded, and verdicts agree — done.")


if __name__ == "__main__":
    main()
