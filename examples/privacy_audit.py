#!/usr/bin/env python3
"""Privacy audit of the coarse-grained feature set (paper Section 7.4).

The paper's privacy claim: the 28 features are useless for tracking —
almost every fingerprint hides in a large anonymity set, and no feature
adds identifiability beyond the user-agent string itself.  This example
reproduces both measurements and contrasts them against a fine-grained
collector run over the same population, where per-install device noise
makes most fingerprints unique.

Run:  python examples/privacy_audit.py
"""

from collections import Counter

from repro import TrafficConfig, TrafficSimulator
from repro.analysis.privacy import anonymity_figure, feature_entropy_table
from repro.baselines import FingerprintJSTool, flatten_json
from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor


def main() -> None:
    print("generating traffic ...")
    dataset = TrafficSimulator(TrafficConfig(seed=3).scaled(60_000)).generate()

    print("\nanonymity-set distribution of coarse fingerprints (Figure 5):")
    for bucket, share in anonymity_figure(dataset).items():
        bar = "#" * int(share / 2)
        print(f"  sets of size {bucket:>7}: {share:6.2f}%  {bar}")

    print("\nmost diverse attributes (Table 7):")
    for name, entropy, normalized in feature_entropy_table(dataset):
        print(f"  {normalized:5.2f} normalized / {entropy:5.2f} bits  {name}")
    print("  (the user-agent leads, so the features add no tracking power)")

    # Contrast: a fine-grained collector over a much smaller population
    # already produces near-unique fingerprints.
    print("\ncontrast: FingerprintJS-style fingerprints over 300 installs:")
    tool = FingerprintJSTool()
    hashes = []
    for install in range(300):
        profile = BrowserProfile(Vendor.CHROME, 110 + install % 5)
        document = tool.run(profile, install_seed=install).fingerprint
        flat = flatten_json(document)
        hashes.append(hash(tuple(sorted(flat.items()))))
    counts = Counter(hashes)
    unique = sum(1 for h in hashes if counts[h] == 1)
    print(
        f"  {unique}/{len(hashes)} fingerprints unique "
        f"({100 * unique / len(hashes):.1f}%) — fine-grained data tracks "
        "users; coarse-grained data cannot"
    )


if __name__ == "__main__":
    main()
