#!/usr/bin/env python3
"""Full deployment walkthrough: the FinOrg production shell.

Runs the whole operational loop the paper describes around the model:

1. train Browser Polygraph offline;
2. stand up the scoring service (validation -> persistence -> verdict);
3. replay a day of live traffic as wire payloads, including garbage
   requests and fraud-browser sessions;
4. watch the flag-rate monitor and the quarantine log;
5. consult the drift scheduler for the next check date;
6. export the session store as the next training window.

Run:  python examples/deployment_service.py
"""

import tempfile
from datetime import date

from repro import BrowserPolygraph, CollectionScript, TrafficConfig, TrafficSimulator
from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor, parse_user_agent
from repro.fingerprint.script import FingerprintPayload
from repro.fraudbrowsers import fraud_browser
from repro.fraudbrowsers.base import FraudProfile
from repro.service import (
    DriftScheduler,
    FlagRateMonitor,
    PayloadValidator,
    ScoringService,
    SessionStore,
)


def main() -> None:
    print("training Browser Polygraph ...")
    training = TrafficSimulator(TrafficConfig(seed=7).scaled(40_000)).generate()
    polygraph = BrowserPolygraph().fit(training)
    print(f"  accuracy {polygraph.accuracy:.4f}")

    store = SessionStore(tempfile.mkdtemp(prefix="polygraph-store-"))
    validator = PayloadValidator()
    service = ScoringService(polygraph, validator=validator, store=store)
    monitor = FlagRateMonitor(window=5_000, min_observations=500)
    script = CollectionScript()

    # --- replay a day of traffic -------------------------------------
    print("\nreplaying live traffic ...")
    day = date(2023, 6, 15)
    live = TrafficSimulator(TrafficConfig(seed=99).scaled(4_000)).generate()
    flagged_sessions = []
    for idx in range(len(live)):
        payload = FingerprintPayload(
            session_id=str(live.session_ids[idx]),
            user_agent=str(live.user_agents[idx]),
            values=tuple(int(v) for v in live.features[idx]),
            service_time_ms=0.0,
        )
        verdict = service.score_wire(payload.to_wire(), day=day)
        if verdict.accepted:
            monitor.observe(verdict.flagged)
        if verdict.actionable:
            flagged_sessions.append((verdict.session_id, verdict.risk_factor))

    # A hostile client fuzzes the endpoint; nothing reaches the model.
    for garbage in (b"", b"null", b'{"sid": "x"}', b"\xff" * 64, b"a" * 5000):
        service.score_wire(garbage)

    # A GoLogin operator replays a stolen Firefox profile.
    gologin = fraud_browser("GoLogin-3.3.23")
    victim_ua = BrowserProfile(Vendor.FIREFOX, 110).user_agent()
    profile = FraudProfile(gologin.full_name, parse_user_agent(victim_ua))
    payload = script.run(gologin.environment(profile), victim_ua, "attacker-001")
    verdict = service.score_wire(payload.to_wire(), day=day)
    print(
        f"  attacker session: flagged={verdict.flagged} "
        f"risk={verdict.risk_factor} latency={verdict.latency_ms:.2f}ms"
    )

    # --- operations dashboard ----------------------------------------
    print("\noperations dashboard:")
    print(f"  scored sessions : {service.scored_count}")
    print(f"  flagged         : {service.flagged_count} ({100 * service.flag_rate:.2f}%)")
    print(f"  monitor         : {monitor.describe()}")
    print(f"  quarantine      : {validator.quarantine.total_rejects} rejects "
          f"{validator.quarantine.counts()}")
    top = sorted(flagged_sessions, key=lambda item: -item[1])[:5]
    print("  top flagged     :", top)

    # --- what is next -------------------------------------------------
    scheduler = DriftScheduler()
    plan = scheduler.next_check(day)
    print(f"\nnext scheduled drift check: {plan.check_date} covering {plan.releases}")

    exported = store.export_dataset()
    print(
        f"session store holds {len(store)} rows across "
        f"{len(store.segments())} segment(s); exported dataset: "
        f"{len(exported)} rows x {exported.n_features} features "
        "(the next retraining window)"
    )


if __name__ == "__main__":
    main()
