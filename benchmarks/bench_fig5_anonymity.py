"""Regenerates paper Figure 5: anonymity-set size distribution."""

from conftest import run_and_print
from repro.analysis.experiments import fig5_anonymity


def test_fig5_anonymity(benchmark):
    result = run_and_print(benchmark, fig5_anonymity)
    shares = {row[0]: row[1] for row in result.rows}
    assert shares["1"] < 2.0  # paper: 0.3% unique
    assert shares.get("51-500", 0) + shares.get("501-+", 0) > 80.0
