"""Session streams vs single-shot: throughput, revision latency, parity.

Three questions, each a gate:

1. **Parity** — the session layer's first-event verdicts must be
   *identical* (session id, accepted, flagged, risk factor, reject
   reason) to the stateless single-vector path scoring the same bytes.
2. **Detection** — engine-swap streams (Category-3 browsers whose
   clean spoof leaks its real engine mid-session) are invisible to the
   single-shot path by construction; the session path must flag them
   through cluster-flip revisions.
3. **Cost** — per-event session scoring (state tracking, revision
   classification, the detect memo) must stay within 2x of single-shot
   throughput: ``session events/s >= 0.5 x single-shot wires/s``
   (full runs only; CI's ``--smoke`` skips the timing gate).

The engine-swap donors are chosen with the trained model's cluster
table (``donor_ok``), guaranteeing the mid-session vector lands in a
*different* cluster — the benchmark tests the revision machinery, not
the donor lottery.  Results land in ``BENCH_sessions.json``::

    PYTHONPATH=src python benchmarks/bench_session_stream.py
"""

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.benchio import write_bench_json  # noqa: E402
from repro.core.pipeline import BrowserPolygraph  # noqa: E402
from repro.service.scoring import ScoringService  # noqa: E402
from repro.sessions import SessionScoringService  # noqa: E402
from repro.traffic.events import (  # noqa: E402
    EventStreamConfig,
    StreamScenario,
    build_event_streams,
    interleave_events,
)
from repro.traffic.generator import TrafficConfig, TrafficSimulator  # noqa: E402

THROUGHPUT_GATE = 0.5  # session events/s vs single-shot wires/s


def _essence(verdict) -> tuple:
    return (
        verdict.session_id,
        verdict.accepted,
        verdict.flagged,
        verdict.risk_factor,
        verdict.reject_reason,
    )


def run_benchmark(
    n_sessions: int,
    seed: int,
    engine_swaps: int,
    benign_fraction: float,
) -> dict:
    dataset = TrafficSimulator(
        TrafficConfig(seed=seed).scaled(n_sessions)
    ).generate()
    polygraph = BrowserPolygraph().fit(dataset)

    # Donor filter: the swapped-in surface must belong to a different
    # trained cluster than the victim's claimed UA, so every engine swap
    # is detectable by definition (see module docstring).
    table = polygraph.cluster_model.ua_to_cluster

    def donor_ok(victim_key: str, donor_key: str) -> bool:
        victim = table.get(victim_key)
        donor = table.get(donor_key)
        return victim is not None and donor is not None and victim != donor

    streams = build_event_streams(
        dataset,
        EventStreamConfig(
            seed=seed,
            engine_swap_sessions=engine_swaps,
            benign_multi_fraction=benign_fraction,
        ),
        donor_ok=donor_ok,
    )
    events = interleave_events(streams)
    first_events = [s.first for s in streams]

    # --- cell 1: single-shot baseline (first events only) -------------
    single = ScoringService(polygraph)
    single_wires = [e.core_wire() for e in first_events]
    started = time.perf_counter()
    single_verdicts = [single.score_wire(w) for w in single_wires]
    single_elapsed = time.perf_counter() - started
    single_eps = len(single_wires) / single_elapsed

    # --- cell 2: full event stream through the session layer ----------
    sessions = SessionScoringService(ScoringService(polygraph))
    first_by_sid = {}
    revision_latencies: List[float] = []
    swap_flagged = {
        s.session_id: False
        for s in streams
        if s.scenario is StreamScenario.ENGINE_SWAP
    }
    started = time.perf_counter()
    for event in events:
        t0 = time.perf_counter()
        observation = sessions.observe_event(event)
        if observation.revision is not None:
            revision_latencies.append((time.perf_counter() - t0) * 1000.0)
        if event.seq == 0:
            first_by_sid[event.session_id] = observation.verdict
        if (
            event.session_id in swap_flagged
            and observation.session_flagged
        ):
            swap_flagged[event.session_id] = True
    session_elapsed = time.perf_counter() - started
    session_eps = len(events) / session_elapsed

    # --- gate 1: first-event parity -----------------------------------
    parity_checked = 0
    parity_mismatches = 0
    for verdict, stream in zip(single_verdicts, streams):
        observed = first_by_sid.get(stream.session_id)
        if observed is None:
            continue
        parity_checked += 1
        if _essence(verdict) != _essence(observed):
            parity_mismatches += 1

    # --- gate 2: engine-swap detection --------------------------------
    swap_streams = [
        s for s in streams if s.scenario is StreamScenario.ENGINE_SWAP
    ]
    swaps_effective = [s for s in swap_streams if s.surface_changes() > 0]
    single_missed = sum(
        1
        for s in swaps_effective
        if not polygraph.detect_payload(s.first.payload()).flagged
    )
    session_caught = sum(
        1 for s in swaps_effective if swap_flagged[s.session_id]
    )

    status = sessions.status_dict()
    mean_revision_ms = (
        sum(revision_latencies) / len(revision_latencies)
        if revision_latencies
        else 0.0
    )
    cells = [
        {
            "cell": "single_shot",
            "requests": len(single_wires),
            "elapsed_s": round(single_elapsed, 4),
            "events_per_s": round(single_eps, 1),
        },
        {
            "cell": "session_stream",
            "requests": len(events),
            "elapsed_s": round(session_elapsed, 4),
            "events_per_s": round(session_eps, 1),
            "revisions": status["revisions_total"],
            "escalations": status["escalations_total"],
            "mean_revision_latency_ms": round(mean_revision_ms, 3),
        },
    ]
    return {
        "config": {
            "n_sessions": n_sessions,
            "seed": seed,
            "engine_swaps": engine_swaps,
            "benign_fraction": benign_fraction,
            "n_streams": len(streams),
            "n_events": len(events),
        },
        "cells": cells,
        "throughput_ratio": round(session_eps / single_eps, 3),
        "first_event_parity": {
            "checked": parity_checked,
            "mismatches": parity_mismatches,
        },
        "engine_swap": {
            "streams": len(swap_streams),
            "effective": len(swaps_effective),
            "single_shot_missed": single_missed,
            "session_caught": session_caught,
        },
        "revision_reasons": status["revision_reasons"],
    }


def _main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--engine-swaps", type=int, default=12)
    parser.add_argument("--benign-fraction", type=float, default=0.2)
    parser.add_argument("--output", default="BENCH_sessions.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, no timing gate (CI runners are too noisy)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.sessions = min(args.sessions, 4_000)
        args.engine_swaps = min(args.engine_swaps, 6)

    result = run_benchmark(
        n_sessions=args.sessions,
        seed=args.seed,
        engine_swaps=args.engine_swaps,
        benign_fraction=args.benign_fraction,
    )

    single, stream = result["cells"]
    parity = result["first_event_parity"]
    swap = result["engine_swap"]
    print(
        f"single-shot: {single['events_per_s']:.0f} wires/s "
        f"({single['requests']} requests)"
    )
    print(
        f"session stream: {stream['events_per_s']:.0f} events/s "
        f"({stream['requests']} events, {stream['revisions']} revisions, "
        f"mean revision latency {stream['mean_revision_latency_ms']:.2f}ms)"
    )
    print(
        f"throughput ratio: {result['throughput_ratio']:.2f}x "
        f"(gate: >= {THROUGHPUT_GATE}x)"
    )
    print(
        f"first-event parity: {parity['checked']} checked, "
        f"{parity['mismatches']} mismatches"
    )
    print(
        f"engine swaps: {swap['effective']} effective, single-shot missed "
        f"{swap['single_shot_missed']}, session path caught "
        f"{swap['session_caught']}"
    )

    write_bench_json(
        args.output,
        benchmark="session_stream",
        config=result["config"],
        cells=result["cells"],
        extra={
            "throughput_ratio": result["throughput_ratio"],
            "first_event_parity": parity,
            "engine_swap": swap,
            "revision_reasons": result["revision_reasons"],
        },
    )
    print(f"wrote {args.output}")

    failures = []
    if parity["checked"] == 0 or parity["mismatches"] != 0:
        failures.append(
            f"first-event parity broken "
            f"({parity['mismatches']}/{parity['checked']} mismatched)"
        )
    if swap["effective"] == 0:
        failures.append("no effective engine-swap streams generated")
    if swap["single_shot_missed"] == 0:
        failures.append(
            "every engine swap was already visible to the single-shot "
            "path (scenario construction broken)"
        )
    if swap["session_caught"] != swap["effective"]:
        failures.append(
            f"session path caught {swap['session_caught']}/"
            f"{swap['effective']} engine swaps"
        )
    if not args.smoke and result["throughput_ratio"] < THROUGHPUT_GATE:
        failures.append(
            f"session throughput {result['throughput_ratio']:.2f}x below "
            f"{THROUGHPUT_GATE}x gate"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(_main())
