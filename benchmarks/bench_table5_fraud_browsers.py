"""Regenerates paper Table 5: fraud browser detection recall."""

from conftest import run_and_print
from repro.analysis.experiments import table5_fraud_browsers


def test_table5_fraud_browsers(benchmark):
    result = run_and_print(benchmark, table5_fraud_browsers)
    recalls = {row[0]: int(row[4].rstrip("%")) for row in result.rows}
    assert recalls["Sphere-1.3"] == min(recalls.values())  # paper: 67%
    assert max(recalls.values()) >= 70  # paper: 75-84%
