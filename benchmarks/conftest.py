"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure through the shared
drivers in :mod:`repro.analysis.experiments` and prints the resulting
rows, so ``pytest benchmarks/ --benchmark-only`` reproduces the paper's
entire evaluation section.

Sizing: benchmarks default to the paper's full deployment scale (205k
training sessions; the experiment drivers cache the trained pipeline
across benchmarks, so the suite trains once).  Set a smaller
``REPRO_SESSIONS`` (e.g. 40000) for a quick pass.
"""

import os

os.environ.setdefault("REPRO_SESSIONS", "205000")

import pytest  # noqa: E402


@pytest.fixture(scope="session", autouse=True)
def _warm_pipeline():
    """Train the shared pipeline once so benchmarks measure their own
    experiment, not the common setup."""
    from repro.analysis import experiments

    experiments.trained_pipeline()
    yield


def run_and_print(benchmark, driver, *args, **kwargs):
    """Benchmark a driver once and print its rendered table."""
    result = benchmark.pedantic(
        driver, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result
