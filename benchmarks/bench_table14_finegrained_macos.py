"""Regenerates paper Table 14: coarse vs fine-grained clustering (macOS)."""

from conftest import run_and_print
from repro.analysis.experiments import table14_finegrained_macos


def test_table14_finegrained_macos(benchmark):
    result = run_and_print(benchmark, table14_finegrained_macos)
    accuracy = {row[0]: row[5] for row in result.rows}
    assert accuracy["Browser Polygraph"] >= accuracy["ClientJS"]
