"""Regenerates paper Table 13: coarse vs fine-grained clustering (Windows)."""

from conftest import run_and_print
from repro.analysis.experiments import table13_finegrained_windows


def test_table13_finegrained_windows(benchmark):
    result = run_and_print(benchmark, table13_finegrained_windows)
    accuracy = {row[0]: row[5] for row in result.rows}
    assert accuracy["Browser Polygraph"] >= accuracy["FingerprintJS"]
    assert accuracy["Browser Polygraph"] > accuracy["ClientJS"]
