"""Regenerates paper Table 3: the k=11 cluster-to-user-agent table."""

from conftest import run_and_print
from repro.analysis.experiments import table3_cluster_table, trained_pipeline


def test_table3_cluster_table(benchmark):
    result = run_and_print(benchmark, table3_cluster_table)
    assert len(result.rows) == 11
    pipeline = trained_pipeline()
    assert pipeline.accuracy > 0.985  # paper: 99.6%
    populated = [r for r in result.rows if "no majority" not in str(r[1])]
    assert 8 <= len(populated) <= 11  # paper: 9 populated, 2 empty
