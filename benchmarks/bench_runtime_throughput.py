"""Throughput of the high-throughput scoring runtime vs the baseline.

Replays a synthetic FinOrg traffic window through the per-request
:class:`ScoringService`, the micro-batched runtime, and the full
batched+cached runtime, asserting the deployment claims:

* batching and caching are *pure* optimizations — all three executions
  produce identical ``(session_id, flagged, risk_factor)`` triples;
* the verdict cache absorbs most of a production-shaped replay (the
  paper's low-cardinality fingerprint argument, Section 7);
* the batched+cached runtime clears >=5x the baseline's sessions/sec.

Also runnable directly for a quick smoke pass (CI uses this mode);
results are persisted through the shared ``BENCH_*.json`` writer::

    PYTHONPATH=src python benchmarks/bench_runtime_throughput.py --sessions 2000
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REPLAY = int(os.environ.get("REPRO_RUNTIME_REPLAY", "12000"))


def test_runtime_throughput(benchmark):
    from conftest import run_and_print
    from repro.analysis.experiments import trained_pipeline, training_dataset
    from repro.runtime.bench import run_throughput_benchmark

    report = run_and_print(
        benchmark,
        run_throughput_benchmark,
        n_sessions=REPLAY,
        polygraph=trained_pipeline(),
        dataset=training_dataset(),
    )
    assert report.identical_verdicts, "batching/caching changed a verdict"
    assert report.shed_requests == 0
    assert report.cache_hit_rate > 0.5
    if REPLAY >= 10_000:
        assert report.speedup_cached >= 5.0, (
            f"batched+cached speedup {report.speedup_cached:.2f}x < 5x"
        )


def _write_report(report, output, args) -> None:
    from repro.analysis.benchio import write_bench_json

    write_bench_json(
        output,
        benchmark="runtime_throughput",
        config={
            "n_sessions": args.sessions,
            "seed": args.seed,
            "concurrency": args.concurrency,
        },
        cells=[
            {
                "cell": mode.mode,
                "sessions": mode.n_sessions,
                "wall_s": round(mode.wall_seconds, 4),
                "sessions_per_s": round(mode.sessions_per_second, 1),
                "p50_ms": round(mode.p50_ms, 3),
                "p99_ms": round(mode.p99_ms, 3),
            }
            for mode in report.modes
        ],
        extra={
            "speedup_batched": round(report.speedup_batched, 3),
            "speedup_cached": round(report.speedup_cached, 3),
            "cache_hit_rate": round(report.cache_hit_rate, 4),
            "mean_batch_size": round(report.mean_batch_size, 2),
            "identical_verdicts": report.identical_verdicts,
            "shed_requests": report.shed_requests,
        },
    )


def _main(argv):
    import argparse

    from repro.runtime.bench import run_throughput_benchmark

    parser = argparse.ArgumentParser(
        description="Smoke-run the runtime throughput benchmark"
    )
    parser.add_argument("--sessions", type=int, default=REPLAY)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail below this batched+cached speedup (0 = report only)",
    )
    parser.add_argument("--output", default="BENCH_runtime.json")
    args = parser.parse_args(argv)
    report = run_throughput_benchmark(
        n_sessions=args.sessions, seed=args.seed, concurrency=args.concurrency
    )
    print(report.render())
    _write_report(report, args.output, args)
    print(f"wrote {args.output}")
    if not report.identical_verdicts:
        print("FAIL: verdict triples differ between modes")
        return 1
    if report.speedup_cached < args.min_speedup:
        print(
            f"FAIL: speedup {report.speedup_cached:.2f}x "
            f"< required {args.min_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
