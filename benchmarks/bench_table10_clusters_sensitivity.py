"""Regenerates paper Table 10: accuracy vs number of clusters."""

from conftest import run_and_print
from repro.analysis.experiments import table10_cluster_sensitivity


def test_table10_cluster_sensitivity(benchmark):
    result = run_and_print(benchmark, table10_cluster_sensitivity)
    accuracy = {row[0]: row[1] for row in result.rows}
    assert all(v > 97.0 for v in accuracy.values())
    assert accuracy[5] >= accuracy[19] - 0.5  # gentle degradation
