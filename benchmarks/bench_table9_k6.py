"""Regenerates paper Table 9: the less-optimal k=6 cluster table."""

from conftest import run_and_print
from repro.analysis.experiments import table9_k6


def test_table9_k6(benchmark):
    result = run_and_print(benchmark, table9_k6)
    assert len(result.rows) == 6
