"""Regenerates paper Table 4: tag enrichment among flagged sessions."""

from conftest import run_and_print
from repro.analysis.experiments import table4_flagging


def test_table4_flagging(benchmark):
    result = run_and_print(benchmark, table4_flagging)
    rows = {row[0]: row for row in result.rows}
    base, flagged = rows["All users"], rows["Flagged (all)"]
    # Enrichment in every tag, with a monotone risk-factor gradient.
    assert flagged[1] > base[1] + 10
    assert flagged[2] > base[2] + 10
    assert flagged[3] > 3 * base[3]
    assert rows["Flagged, risk factor > 4"][1] >= flagged[1]
    assert rows["Flagged, risk factor > 4"][3] >= flagged[3]
