"""An accelerated production year against the live serving stack.

Replays ~6 months of virtual days (185 by default — the May-to-November
2023 window whose tail contains the Firefox/Chrome 119 drift episode)
through the full gauntlet: day-granular traffic with releases landing
on their calendar dates, a co-evolving marketplace adversary, the
sharded cluster scoring every session, drift-triggered retraining
flowing shadow -> canary -> promote automatically, and a scheduled
chaos drill whose misconfigured candidate must be rolled back by the
day-boundary guardrails while a shard is down.

Acceptance gates (full run):

* the replay covers every configured day (>= 180);
* at least one drift-triggered retrain was staged AND promoted through
  the rollout ramp without manual intervention;
* at least one guardrail rollback fired (the chaos drill);
* per-category detection floors hold (cat1 >= 0.60, cat2 >= 0.40 —
  year-long averages under a co-evolving adversary sit below the
  paper's static-window rates) and the false-positive rate stays
  under 2%;
* p99 latency on the churn day (shard killed mid-ramp) stays under
  250 ms;
* with coverage intelligence on (the default), the unknown-UA blind
  window is measurably closed: unknown-UA detection rate and mean
  release-to-retrain lag must clear their floors/ceilings (the
  ``--coverage off`` baseline replays PR 8's reactive behaviour, where
  unknown-UA detection is ~0 and the lag is whatever the alarm path
  happens to deliver);
* **bit-determinism**: a shorter window replayed twice with identical
  seeds produces identical ledger digests.

``--smoke`` (CI) replays a 30-day window twice with tightened sizes:
the determinism, retrain and rollback gates still apply; the
promotion-completed, detection-floor and blind-window gates are
full-run-only.

Results land in ``BENCH_gauntlet.json``::

    PYTHONPATH=src python benchmarks/bench_production_year.py
    PYTHONPATH=src python benchmarks/bench_production_year.py --smoke
    PYTHONPATH=src python benchmarks/bench_production_year.py \
        --smoke --coverage off --output BENCH_gauntlet_baseline.json
"""

import argparse
import sys
import time
from dataclasses import replace
from datetime import date
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.gauntlet import GauntletConfig, run_gauntlet  # noqa: E402
from repro.gauntlet.report import (  # noqa: E402
    render_report,
    render_timeline,
    write_gauntlet_json,
)

# Detection floors, full runs only (the smoke window is too small for
# stable per-category rates).  These are year-long averages under a
# co-evolving adversary, not the paper's static-window Table 5 rates:
# the marketplace's buy-freshest adaptation exploits the unknown-UA
# blind window between a release shipping and the next (alarm-forced)
# retrain, which drags cat1/cat2 below their frozen-adversary levels
# (observed: cat1 ~0.68, cat2 ~0.51 at seed 7).
CAT1_FLOOR = 0.60
CAT2_FLOOR = 0.40
FP_CEILING = 0.02
P99_CHURN_GATE_MS = 250.0

# Blind-window gates, full coverage-on runs only.  The ``--coverage
# off`` baseline leaves unknown-UA detection near zero and the mean
# release-to-retrain lag near double digits; with the planner plus the
# "infer" interim policy both must clear these bars (observed at
# seed 7: detection 0.216, mean lag 2.6 days).
UNKNOWN_DETECTION_FLOOR = 0.15
RETRAIN_LAG_CEILING_DAYS = 5.0


def apply_coverage_mode(config: GauntletConfig, coverage: bool) -> GauntletConfig:
    """Flip a config between coverage-on and the PR 8 reactive baseline."""
    if coverage:
        return config
    return replace(config, coverage=False, unknown_ua_policy="ignore")


def full_config(seed: int) -> GauntletConfig:
    return GauntletConfig(seed=seed)


def smoke_config(seed: int) -> GauntletConfig:
    """30 virtual days across the Chrome 118 ship date, tightened sizes.

    The drill lands on day 8 (2023-10-13), three days after chrome-118
    ships — the stale drill candidate flags all of its traffic, so the
    disagreement guardrail has a deterministic breach to catch.
    """
    return GauntletConfig(
        start=date(2023, 10, 5),
        days=30,
        seed=seed,
        sessions_per_day=200,
        brave_per_day=1,
        bootstrap_days=100,
        bootstrap_sessions=6_000,
        max_window_sessions=12_000,
        monitor_window=1_500,
        monitor_min_observations=600,
        min_comparisons=30,
        min_stage_verdicts=10,
        drill_day=8,
        drill_stale_rows=1_500,
        attacks_per_day=8,
    )


def churn_day_p99(ledger) -> float:
    """p99 of the day(s) a shard restarted (the drill's churn)."""
    restarts = ledger.column("shard_restarts")
    p99s = ledger.column("p99_ms")
    churn = [p99s[i] for i in range(len(restarts)) if restarts[i]]
    return max(churn) if churn else 0.0


def _main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--coverage",
        choices=("on", "off"),
        default="on",
        help="'off' replays the reactive baseline (no tracker/planner, "
        "unknown_ua_policy='ignore') for blind-window A/B diffs",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_gauntlet.json"),
    )
    args = parser.parse_args()

    failures: List[str] = []
    coverage = args.coverage == "on"

    # -- determinism proof: replay the short window twice --------------
    det_config = apply_coverage_mode(smoke_config(args.seed), coverage)
    started = time.perf_counter()
    first = run_gauntlet(det_config)
    first_elapsed = time.perf_counter() - started
    second = run_gauntlet(det_config)
    digest_a = first.ledger.digest()
    digest_b = second.ledger.digest()
    deterministic = digest_a == digest_b
    print(
        f"determinism: {det_config.days}-day window replayed twice in "
        f"~{first_elapsed:.0f}s each -> digests "
        f"{digest_a[:12]}... / {digest_b[:12]}... "
        f"({'MATCH' if deterministic else 'MISMATCH'})"
    )
    if not deterministic:
        failures.append("identical seeds produced different ledger digests")

    # -- the headline replay -------------------------------------------
    if args.smoke:
        result, elapsed = first, first_elapsed
    else:
        config = apply_coverage_mode(full_config(args.seed), coverage)
        started = time.perf_counter()
        result = run_gauntlet(config)
        elapsed = time.perf_counter() - started

    summary = result.summary
    print()
    print(render_report(result.ledger, result.adversary))
    print()
    print(render_timeline(result.ledger, limit=60))
    print(f"\nreplay wall time {elapsed:.1f}s")

    # -- gates ---------------------------------------------------------
    if summary["days"] != result.config.days:
        failures.append(
            f"replay covered {summary['days']} of {result.config.days} days"
        )
    if summary["retrains"] < 1:
        failures.append("no drift-triggered retrain was staged")
    if summary["rollbacks"] < 1:
        failures.append("no guardrail rollback was exercised")
    churn_p99 = churn_day_p99(result.ledger)
    if churn_p99 > P99_CHURN_GATE_MS:
        failures.append(
            f"churn-day p99 {churn_p99:.1f} ms exceeds {P99_CHURN_GATE_MS} ms"
        )
    if not args.smoke:
        if summary["days"] < 180:
            failures.append("full replay must cover >= 180 virtual days")
        if summary["promotions"] < 1:
            failures.append("no candidate was promoted through the ramp")
        cat1 = summary["per_category"]["cat1"]["detection_rate"] or 0.0
        cat2 = summary["per_category"]["cat2"]["detection_rate"] or 0.0
        if cat1 < CAT1_FLOOR:
            failures.append(f"cat1 detection {cat1:.2f} below {CAT1_FLOOR}")
        if cat2 < CAT2_FLOOR:
            failures.append(f"cat2 detection {cat2:.2f} below {CAT2_FLOOR}")
        fp = summary["false_positive_rate"] or 0.0
        if fp > FP_CEILING:
            failures.append(f"false-positive rate {fp:.3f} above {FP_CEILING}")
        if coverage:
            unknown_rate = summary["unknown_ua_detection_rate"] or 0.0
            if unknown_rate < UNKNOWN_DETECTION_FLOOR:
                failures.append(
                    f"unknown-UA detection {unknown_rate:.2f} below "
                    f"{UNKNOWN_DETECTION_FLOOR} (blind window still open)"
                )
            lag = summary["mean_retrain_lag_days"]
            if lag is None or lag > RETRAIN_LAG_CEILING_DAYS:
                failures.append(
                    f"mean retrain lag {lag} days above "
                    f"{RETRAIN_LAG_CEILING_DAYS} (planner not closing the "
                    "release gap)"
                )

    write_gauntlet_json(
        result,
        args.output,
        extra={
            "smoke": args.smoke,
            "coverage": coverage,
            "elapsed_s": round(elapsed, 2),
            "determinism": {
                "window_days": det_config.days,
                "digest_first": digest_a,
                "digest_second": digest_b,
                "identical": deterministic,
            },
            "churn_day_p99_ms": round(churn_p99, 3),
            "gates_failed": failures,
        },
    )
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(_main())
