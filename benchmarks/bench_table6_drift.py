"""Regenerates paper Table 6: drift analysis of the autumn releases."""

from conftest import run_and_print
from repro.analysis.experiments import table6_drift


def test_table6_drift(benchmark):
    result = run_and_print(benchmark, table6_drift)
    rows = {row[0]: row for row in result.rows}
    assert rows["Firefox 119"][4] == "RETRAIN"  # cluster change
    assert rows["Chrome 119"][3] < 98.0  # accuracy drop
    for key in ("Chrome 116", "Firefox 117", "Edge 117"):
        if key in rows:
            assert rows[key][4] == ""
