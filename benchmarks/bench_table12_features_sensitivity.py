"""Regenerates paper Table 12: accuracy vs feature count."""

from conftest import run_and_print
from repro.analysis.experiments import table12_feature_sensitivity


def test_table12_feature_sensitivity(benchmark):
    result = run_and_print(benchmark, table12_feature_sensitivity)
    assert [row[0] for row in result.rows] == [28, 32, 36, 42]
