"""Cluster scaling: throughput at 1/2/4/8 shards, verdict identity, failover.

The cluster's single-host win is not CPU parallelism (this benchmark
runs wherever CI puts it, including one-core containers) but **cache
capacity scaling**: with fingerprint affinity, the consistent-hash ring
partitions the verdict cache's key space, so N shards hold N× the
distinct fingerprints.  The paper's coarse-grained fingerprints are
deliberately low-cardinality (Section 7's anonymity sets), which makes
the verdict cache the dominant term in serving cost — PR 1 measured the
cached path at >6x the uncached one.

The workload is sized to make that effect visible and honest: ``D``
distinct fingerprints replayed cyclically (LRU's worst case) against a
per-shard cache of ``C`` entries, with ``D ~ 2.5x C``.  One shard
thrashes — every probe misses, every verdict pays the model.  Four
shards hold their ~D/4 arcs entirely — every probe hits after warmup.
Same requests, same verdicts (asserted element-wise across every cell
and against the per-request reference service), very different cost.

The failover section boots two shards, kills one mid-load, and requires
every request answered with verdicts identical to the one-shard cell —
the "no requests lost" acceptance gate.

Results land in ``BENCH_cluster.json``.  Direct run (CI uses
``--smoke``, which shrinks the workload and skips the timing gate)::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py
"""

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.benchio import write_bench_json  # noqa: E402
from repro.cluster import (  # noqa: E402
    ClusterConfig,
    ClusterRouter,
    RouterConfig,
    ShardSupervisor,
)
from repro.core.pipeline import BrowserPolygraph  # noqa: E402
from repro.runtime.pool import OVERLOADED_REASON  # noqa: E402
from repro.runtime.service import RuntimeConfig  # noqa: E402
from repro.service.ingest import MAX_FEATURE_VALUE  # noqa: E402
from repro.service.scoring import ScoringService  # noqa: E402
from repro.traffic.generator import TrafficConfig, TrafficSimulator  # noqa: E402
from repro.traffic.replay import iter_wire_payloads  # noqa: E402

SHARD_COUNTS = (1, 2, 4, 8)
SPEEDUP_GATE = 2.5  # 4-shard vs 1-shard throughput, full runs only


# ----------------------------------------------------------------------
# workload


def _base_fingerprints(dataset, limit: int) -> List[Tuple[str, List[int]]]:
    """Distinct ``(ua, feature-vector)`` pairs from simulated traffic."""
    seen = {}
    for wire in iter_wire_payloads(dataset):
        doc = json.loads(wire)
        key = (doc["ua"], tuple(doc["f"]))
        if key not in seen:
            seen[key] = (doc["ua"], list(doc["f"]))
            if len(seen) >= limit:
                break
    return list(seen.values())


def synthesize_workload(
    dataset, n_distinct: int, passes: int
) -> Tuple[List[bytes], List[bytes]]:
    """A warmup pass plus ``passes`` cyclic replays of D fingerprints.

    Simulated traffic only yields a few hundred distinct fingerprints
    (coarse granularity is the paper's point), so variants are
    synthesized by shifting one feature value deterministically — each
    variant is a distinct verdict-cache entry with the same routing
    behavior as real traffic.  Every wire carries a unique session id:
    the dedup window must never fire, only the cache.
    """
    bases = _base_fingerprints(dataset, limit=n_distinct)
    fingerprints: List[bytes] = []
    for variant in range(n_distinct):
        ua, values = bases[variant % len(bases)]
        shift = variant // len(bases)
        if shift:
            values = list(values)
            values[0] = (values[0] + shift) % (MAX_FEATURE_VALUE + 1)
        # Everything after the sid, pre-serialized: identical bytes for
        # the same variant in every pass, which is exactly what the
        # fingerprint-affinity routing key hashes.
        fingerprints.append(
            f'","ua":"{ua}","f":{json.dumps(values, separators=(",", ":"))}}}'.encode()
        )

    def wire(tag: str, index: int, variant: int) -> bytes:
        return b'{"sid":"' + f"bb-{tag}-{index:07d}".encode() + fingerprints[variant]

    warmup = [wire("w", v, v) for v in range(n_distinct)]
    timed = []
    index = 0
    for _ in range(passes):
        for variant in range(n_distinct):
            timed.append(wire("t", index, variant))
            index += 1
    return warmup, timed


def _essence(verdict) -> tuple:
    """Verdict fields that must match across cells (latency excluded)."""
    return (
        verdict.session_id,
        verdict.accepted,
        verdict.flagged,
        verdict.risk_factor,
        verdict.reject_reason,
    )


# ----------------------------------------------------------------------
# cells


@dataclass
class CellResult:
    shards: int
    elapsed_s: float
    throughput_wps: float
    scored: int
    flagged: int
    rejected: int
    cache_entries_total: int

    def to_dict(self) -> dict:
        return {
            "cell": f"shards-{self.shards}",
            "shards": self.shards,
            "elapsed_s": round(self.elapsed_s, 4),
            "throughput_wps": round(self.throughput_wps, 1),
            "scored": self.scored,
            "flagged": self.flagged,
            "rejected": self.rejected,
            "cache_entries_total": self.cache_entries_total,
        }


def _runtime_config(cache_entries: int) -> RuntimeConfig:
    return RuntimeConfig(
        n_workers=1,
        queue_capacity=4096,
        max_batch_size=64,
        max_linger_ms=1.0,
        cache_entries=cache_entries,
    )


def run_cell(
    polygraph: BrowserPolygraph,
    n_shards: int,
    cache_entries: int,
    warmup: List[bytes],
    timed: List[bytes],
) -> Tuple[CellResult, List[tuple]]:
    supervisor = ShardSupervisor.from_polygraph(
        polygraph,
        config=ClusterConfig(n_shards=n_shards, heartbeat_interval_s=1.0),
        runtime_config=_runtime_config(cache_entries),
    )
    router = ClusterRouter(
        supervisor, RouterConfig(affinity="fingerprint")
    ).start()
    try:
        router.score_many(warmup)
        started = time.perf_counter()
        verdicts = router.score_many(timed)
        elapsed = time.perf_counter() - started
        cached = sum(
            len(shard.service.cache)
            for shard in supervisor.shards.values()
            if shard.service is not None and shard.service.cache is not None
        )
        cell = CellResult(
            shards=n_shards,
            elapsed_s=elapsed,
            throughput_wps=len(timed) / elapsed,
            scored=router.scored_count - len(warmup),
            flagged=router.flagged_count,
            rejected=router.validator.quarantine.total_rejects,
            cache_entries_total=cached,
        )
        return cell, [_essence(v) for v in verdicts]
    finally:
        router.shutdown(drain=True)


def run_failover(
    polygraph: BrowserPolygraph,
    cache_entries: int,
    timed: List[bytes],
) -> dict:
    """Kill one of two shards mid-load; nothing may be lost or change."""
    supervisor = ShardSupervisor.from_polygraph(
        polygraph,
        config=ClusterConfig(n_shards=2, heartbeat_interval_s=0.1),
        runtime_config=_runtime_config(cache_entries),
    )
    router = ClusterRouter(
        supervisor, RouterConfig(affinity="fingerprint")
    ).start()
    try:
        half = len(timed) // 2
        first = router.score_many(timed[:half])
        supervisor.kill("s0")
        second = router.score_many(timed[half:])
        verdicts = first + second
        lost = sum(
            1
            for v in verdicts
            if v is None or v.reject_reason == OVERLOADED_REASON
        )
        deadline = time.time() + 10.0
        while time.time() < deadline and supervisor.healthy_count < 2:
            time.sleep(0.05)
        return {
            "requests": len(timed),
            "answered": len(verdicts),
            "lost": lost,
            "failovers": router.failovers_total,
            "killed_shard_restarts": supervisor.restarts("s0"),
            "healthy_after_recovery": supervisor.healthy_count,
            "essences": [_essence(v) for v in verdicts],
        }
    finally:
        router.shutdown(drain=True)


# ----------------------------------------------------------------------
# report


@dataclass
class Report:
    config: dict
    cells: List[CellResult] = field(default_factory=list)
    speedup_4v1: float = 0.0
    identical_across_cells: bool = False
    reference_checked: int = 0
    failover: Optional[dict] = None

    def extra_json(self) -> dict:
        """Derived summaries merged on top of the shared bench schema."""
        return {
            "speedup_4v1": round(self.speedup_4v1, 2),
            "identical_across_cells": self.identical_across_cells,
            "reference_checked": self.reference_checked,
            "failover": self.failover,
        }

    def render(self) -> str:
        lines = [
            "cluster scaling "
            f"(D={self.config['n_distinct']} distinct fingerprints, "
            f"C={self.config['cache_entries']} cache entries/shard, "
            f"{self.config['passes']} cyclic passes)",
            f"{'shards':>6}  {'throughput':>12}  {'elapsed':>9}  "
            f"{'cache entries':>13}",
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.shards:>6}  {cell.throughput_wps:>10.0f}/s  "
                f"{cell.elapsed_s:>8.2f}s  {cell.cache_entries_total:>13}"
            )
        lines.append(
            f"4-shard vs 1-shard speedup: {self.speedup_4v1:.2f}x "
            f"(identical verdicts: {self.identical_across_cells}, "
            f"{self.reference_checked} checked against the per-request "
            f"reference)"
        )
        failover = self.failover
        if failover:
            lines.append(
                f"failover: {failover['answered']}/{failover['requests']} "
                f"answered after killing a shard mid-load "
                f"({failover['lost']} lost, {failover['failovers']} "
                f"re-routed, shard restarted "
                f"{failover['killed_shard_restarts']}x, identical: "
                f"{failover['identical']})"
            )
        return "\n".join(lines)


def run_benchmark(
    n_sessions: int,
    n_distinct: int,
    cache_entries: int,
    passes: int,
    seed: int = 7,
    shard_counts: Tuple[int, ...] = SHARD_COUNTS,
) -> Report:
    dataset = TrafficSimulator(TrafficConfig(seed=seed).scaled(n_sessions)).generate()
    polygraph = BrowserPolygraph().fit(dataset)
    warmup, timed = synthesize_workload(dataset, n_distinct, passes)
    report = Report(
        config={
            "n_sessions": n_sessions,
            "n_distinct": n_distinct,
            "cache_entries": cache_entries,
            "passes": passes,
            "seed": seed,
            "affinity": "fingerprint",
            "shard_counts": list(shard_counts),
        }
    )

    essences: Dict[int, List[tuple]] = {}
    for n_shards in shard_counts:
        cell, cell_essences = run_cell(
            polygraph, n_shards, cache_entries, warmup, timed
        )
        essences[n_shards] = cell_essences
        report.cells.append(cell)
        print(
            f"  {n_shards} shard(s): {cell.throughput_wps:.0f} wires/s "
            f"({cell.elapsed_s:.2f}s)",
            flush=True,
        )

    baseline = essences[shard_counts[0]]
    report.identical_across_cells = all(
        essences[n] == baseline for n in shard_counts
    )

    # Anchor against the per-request reference service: the cluster must
    # not just agree with itself, it must agree with Algorithm 1.
    reference = ScoringService(polygraph)
    sample = timed[: min(1000, len(timed))]
    report.reference_checked = len(sample)
    for wire, essence in zip(sample, baseline):
        if _essence(reference.score_wire(wire)) != essence:
            report.identical_across_cells = False
            break

    by_shards = {cell.shards: cell for cell in report.cells}
    if 1 in by_shards and 4 in by_shards:
        report.speedup_4v1 = (
            by_shards[4].throughput_wps / by_shards[1].throughput_wps
        )

    failover = run_failover(polygraph, cache_entries, timed)
    failover["identical"] = failover.pop("essences") == baseline
    report.failover = failover
    return report


# ----------------------------------------------------------------------


def _main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=20_000)
    parser.add_argument("--distinct", type=int, default=1280)
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=512,
        help="per-shard verdict-cache capacity (D/C ~ 2.5 by default)",
    )
    parser.add_argument("--passes", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_cluster.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, no timing gate (CI runners are too noisy)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.sessions = min(args.sessions, 4_000)
        args.distinct = min(args.distinct, 240)
        args.cache_entries = min(args.cache_entries, 96)
        args.passes = min(args.passes, 2)

    report = run_benchmark(
        n_sessions=args.sessions,
        n_distinct=args.distinct,
        cache_entries=args.cache_entries,
        passes=args.passes,
        seed=args.seed,
    )
    print(report.render())

    write_bench_json(
        args.output,
        benchmark="cluster_scaling",
        config=report.config,
        cells=[cell.to_dict() for cell in report.cells],
        extra=report.extra_json(),
    )
    print(f"wrote {args.output}")

    failures = []
    if not report.identical_across_cells:
        failures.append("verdicts diverged across shard counts")
    if report.failover is None or report.failover["lost"] != 0:
        failures.append("failover lost requests")
    if not (report.failover or {}).get("identical", False):
        failures.append("failover changed verdicts")
    if (report.failover or {}).get("healthy_after_recovery") != 2:
        failures.append("killed shard did not recover")
    if not args.smoke and report.speedup_4v1 < SPEEDUP_GATE:
        failures.append(
            f"4-shard speedup {report.speedup_4v1:.2f}x below "
            f"{SPEEDUP_GATE}x gate"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(_main())
