"""Cluster scaling: throughput by shard count and transport, verdict identity.

The cluster's single-host win is not CPU parallelism alone but **cache
capacity scaling**: with fingerprint affinity, the consistent-hash ring
partitions the verdict cache's key space, so N shards hold N× the
distinct fingerprints.  The paper's coarse-grained fingerprints are
deliberately low-cardinality (Section 7's anonymity sets), which makes
the verdict cache the dominant term in serving cost.

This benchmark measures that effect across three deployment shapes:

* ``shards-N`` — the headline: process shards behind the zero-copy
  shared-memory transport.  Ingest and the verdict cache live on the
  router side of the ring; only cache misses cross to the child as
  float rows in the shard's slab, and model evaluation runs without
  the router's GIL.
* ``shards-N-thread`` — in-process thread shards (the previous
  headline); cache scaling works, model evaluation contends.
* ``shards-N-pickle`` — process shards over the legacy pickled-wire
  pipe; every wire pays serialization both ways.

The workload is sized to make the cache effect visible and honest:
``D`` distinct fingerprints replayed cyclically (LRU's worst case)
against a per-shard cache of ``C`` entries, with ``D ~ 2.5x C``.  One
shard thrashes — every probe misses, every verdict pays the model and
(for process shards) the transport.  Eight shards hold their ~D/8 arcs
entirely.  Same requests, same verdicts — asserted element-wise across
*every* cell, every transport, and against the per-request reference
service.

The failover section boots two shm-transport process shards, kills one
mid-load, and requires every request answered with verdicts identical
to the baseline cell — the "no requests lost" acceptance gate, now
covering slab re-attachment by the restarted child.

Results land in ``BENCH_cluster.json``.  Direct run (CI uses
``--smoke``, which shrinks the workload and skips the timing gates)::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py

CI additionally A/B-gates the shm transport against pickle with two
``--ab`` runs (neutral cell names) compared by ``benchio diff``.
"""

import argparse
import gc
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.benchio import write_bench_json  # noqa: E402
from repro.cluster import (  # noqa: E402
    ClusterConfig,
    ClusterRouter,
    RouterConfig,
    ShardSupervisor,
)
from repro.core.pipeline import BrowserPolygraph  # noqa: E402
from repro.runtime.pool import OVERLOADED_REASON  # noqa: E402
from repro.runtime.service import RuntimeConfig  # noqa: E402
from repro.runtime.stats import percentile  # noqa: E402
from repro.service.ingest import MAX_FEATURE_VALUE  # noqa: E402
from repro.service.scoring import ScoringService  # noqa: E402
from repro.traffic.generator import TrafficConfig, TrafficSimulator  # noqa: E402
from repro.traffic.replay import iter_wire_payloads  # noqa: E402

SHARD_COUNTS = (1, 2, 4, 8)
# 4-shard vs 1-shard, per transport, full runs only.  The thread gate
# carries over from the pre-transport headline.  The shm/pickle ratios
# compress because the shm work *raised their 1-shard baselines* (the
# router-side ingest+cache rewrite speeds up every deployment shape);
# shm's absolute level is held by THROUGHPUT_GATE_WPS instead.
SPEEDUP_GATES = {"shm": 1.8, "thread": 2.5, "pickle": 1.5}
# The tentpole acceptance gate: 8 shm shards must clear this on a full
# run.  The pre-transport headline (thread shards) plateaued at ~117k.
THROUGHPUT_GATE_WPS = 187_000.0

# variant -> (backend, transport); "shm" is the headline and its cells
# carry the bare ``shards-N`` names the committed artifact is diffed on.
VARIANTS = {
    "shm": ("process", "shm"),
    "thread": ("thread", "shm"),
    "pickle": ("process", "pickle"),
}


# ----------------------------------------------------------------------
# workload


def _base_fingerprints(dataset, limit: int) -> List[Tuple[str, List[int]]]:
    """Distinct ``(ua, feature-vector)`` pairs from simulated traffic."""
    seen = {}
    for wire in iter_wire_payloads(dataset):
        doc = json.loads(wire)
        key = (doc["ua"], tuple(doc["f"]))
        if key not in seen:
            seen[key] = (doc["ua"], list(doc["f"]))
            if len(seen) >= limit:
                break
    return list(seen.values())


def synthesize_workload(
    dataset, n_distinct: int, passes: int
) -> Tuple[List[bytes], List[bytes]]:
    """A warmup pass plus ``passes`` cyclic replays of D fingerprints.

    Simulated traffic only yields a few hundred distinct fingerprints
    (coarse granularity is the paper's point), so variants are
    synthesized by shifting one feature value deterministically — each
    variant is a distinct verdict-cache entry with the same routing
    behavior as real traffic.  Every wire carries a unique session id:
    the dedup window must never fire, only the cache.
    """
    bases = _base_fingerprints(dataset, limit=n_distinct)
    fingerprints: List[bytes] = []
    for variant in range(n_distinct):
        ua, values = bases[variant % len(bases)]
        shift = variant // len(bases)
        if shift:
            values = list(values)
            values[0] = (values[0] + shift) % (MAX_FEATURE_VALUE + 1)
        # Everything after the sid, pre-serialized: identical bytes for
        # the same variant in every pass, which is exactly what the
        # fingerprint-affinity routing key hashes.
        fingerprints.append(
            f'","ua":"{ua}","f":{json.dumps(values, separators=(",", ":"))}}}'.encode()
        )

    def wire(tag: str, index: int, variant: int) -> bytes:
        return b'{"sid":"' + f"bb-{tag}-{index:07d}".encode() + fingerprints[variant]

    warmup = [wire("w", v, v) for v in range(n_distinct)]
    timed = []
    index = 0
    for _ in range(passes):
        for variant in range(n_distinct):
            timed.append(wire("t", index, variant))
            index += 1
    return warmup, timed


def _essence(verdict) -> tuple:
    """Verdict fields that must match across cells (latency excluded)."""
    return (
        verdict.session_id,
        verdict.accepted,
        verdict.flagged,
        verdict.risk_factor,
        verdict.reject_reason,
    )


# ----------------------------------------------------------------------
# cells


@dataclass
class CellResult:
    name: str
    shards: int
    backend: str
    transport: str
    elapsed_s: float
    throughput_wps: float
    scored: int
    flagged: int
    rejected: int
    cache_entries_total: int
    latency_p50_ms: float
    latency_p99_ms: float
    queue_depth_peaks: Dict[str, int]
    zero_copy_rows: int
    pickle_fallbacks: int
    backpressure_waits: int

    def to_dict(self) -> dict:
        return {
            "cell": self.name,
            "shards": self.shards,
            "backend": self.backend,
            "transport": self.transport,
            "elapsed_s": round(self.elapsed_s, 4),
            "throughput_wps": round(self.throughput_wps, 1),
            "scored": self.scored,
            "flagged": self.flagged,
            "rejected": self.rejected,
            "cache_entries_total": self.cache_entries_total,
            "latency_p50_ms": round(self.latency_p50_ms, 4),
            "latency_p99_ms": round(self.latency_p99_ms, 4),
            "queue_depth_peak_max": max(
                self.queue_depth_peaks.values(), default=0
            ),
            "queue_depth_peaks": dict(self.queue_depth_peaks),
            "zero_copy_rows": self.zero_copy_rows,
            "pickle_fallbacks": self.pickle_fallbacks,
            "backpressure_waits": self.backpressure_waits,
        }


def _runtime_config(cache_entries: int) -> RuntimeConfig:
    return RuntimeConfig(
        n_workers=1,
        queue_capacity=4096,
        max_batch_size=64,
        max_linger_ms=1.0,
        cache_entries=cache_entries,
    )


def _cell_name(n_shards: int, variant: str, neutral: bool) -> str:
    if neutral or variant == "shm":
        return f"shards-{n_shards}"
    return f"shards-{n_shards}-{variant}"


def run_cell(
    polygraph: BrowserPolygraph,
    n_shards: int,
    cache_entries: int,
    warmup: List[bytes],
    rounds: List[List[bytes]],
    variant: str = "shm",
    neutral_name: bool = False,
) -> Tuple[CellResult, List[tuple]]:
    backend, transport = VARIANTS[variant]
    supervisor = ShardSupervisor.from_polygraph(
        polygraph,
        config=ClusterConfig(
            n_shards=n_shards,
            backend=backend,
            transport=transport,
            heartbeat_interval_s=1.0,
        ),
        runtime_config=_runtime_config(cache_entries),
    )
    router = ClusterRouter(
        supervisor, RouterConfig(affinity="fingerprint")
    ).start()
    timed = rounds[0]
    try:
        router.score_many(warmup)
        # Steady-state timing: collect the post-boot garbage before
        # measuring (gc stays ON during the rounds — a serving process
        # pays incremental gc, not a gen2 scan of the model heap), and
        # take the best of the rounds — on a shared single-CPU host the
        # worst rounds measure the neighbors, not the transport.
        verdicts: Optional[List] = None
        elapsed = float("inf")
        for round_wires in rounds:
            # The serving process freezes its boot heap (``serve`` calls
            # gc.freeze()), so a gen2 scan of the model graph is not a
            # production cost either — keep it out of the timed window.
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                round_verdicts = router.score_many(round_wires)
                round_elapsed = time.perf_counter() - started
            finally:
                gc.enable()
            if verdicts is None:
                verdicts = round_verdicts  # identity + latency source
            elapsed = min(elapsed, round_elapsed)

        latencies = [v.latency_ms for v in verdicts]
        # Per-shard queue-depth peaks: ring occupancy for shm shards,
        # pool queue depth for thread/pickle shards — either way, the
        # high-water mark of work waiting behind that shard.
        depth_peaks: Dict[str, int] = {}
        for shard_id, shard in sorted(supervisor.shards.items()):
            try:
                depth_peaks[shard_id] = int(shard.ping().queue_depth_peak)
            except Exception:
                depth_peaks[shard_id] = -1
        transport_stats = supervisor.transport_stats()
        zero_copy_rows = sum(
            s.get("zero_copy_rows", 0) for s in transport_stats.values()
        )
        pickle_fallbacks = sum(
            s.get("pickle_fallbacks", 0) for s in transport_stats.values()
        )
        backpressure = sum(
            s.get("backpressure_waits", 0) for s in transport_stats.values()
        )
        if backend == "thread":
            cached = sum(
                len(shard.service.cache)
                for shard in supervisor.shards.values()
                if shard.service is not None and shard.service.cache is not None
            )
        else:
            cached = sum(
                s.get("cache_entries", 0) for s in transport_stats.values()
            )
        cell = CellResult(
            name=_cell_name(n_shards, variant, neutral_name),
            shards=n_shards,
            backend=backend,
            transport=transport,
            elapsed_s=elapsed,
            throughput_wps=len(timed) / elapsed,
            scored=sum(1 for v in verdicts if v.accepted),
            flagged=sum(1 for v in verdicts if v.flagged),
            rejected=sum(1 for v in verdicts if not v.accepted),
            cache_entries_total=cached,
            latency_p50_ms=percentile(latencies, 50.0),
            latency_p99_ms=percentile(latencies, 99.0),
            queue_depth_peaks=depth_peaks,
            zero_copy_rows=zero_copy_rows,
            pickle_fallbacks=pickle_fallbacks,
            backpressure_waits=backpressure,
        )
        return cell, [_essence(v) for v in verdicts]
    finally:
        router.shutdown(drain=True)


def run_failover(
    polygraph: BrowserPolygraph,
    cache_entries: int,
    timed: List[bytes],
) -> dict:
    """Kill one of two shm shards mid-load; nothing may be lost or change.

    The restarted child re-attaches the surviving slab by name — this
    section is the end-to-end proof that a crash mid-batch neither
    loses requests (the router re-routes the failed chunk) nor corrupts
    the transport for the shard's second life.
    """
    supervisor = ShardSupervisor.from_polygraph(
        polygraph,
        config=ClusterConfig(
            n_shards=2,
            backend="process",
            transport="shm",
            heartbeat_interval_s=0.1,
        ),
        runtime_config=_runtime_config(cache_entries),
    )
    router = ClusterRouter(
        supervisor, RouterConfig(affinity="fingerprint")
    ).start()
    try:
        half = len(timed) // 2
        first = router.score_many(timed[:half])
        supervisor.kill("s0")
        second = router.score_many(timed[half:])
        verdicts = first + second
        lost = sum(
            1
            for v in verdicts
            if v is None or v.reject_reason == OVERLOADED_REASON
        )
        deadline = time.time() + 10.0
        while time.time() < deadline and supervisor.healthy_count < 2:
            time.sleep(0.05)
        return {
            "transport": "shm",
            "requests": len(timed),
            "answered": len(verdicts),
            "lost": lost,
            "failovers": router.failovers_total,
            "killed_shard_restarts": supervisor.restarts("s0"),
            "healthy_after_recovery": supervisor.healthy_count,
            "essences": [_essence(v) for v in verdicts],
        }
    finally:
        router.shutdown(drain=True)


# ----------------------------------------------------------------------
# report


@dataclass
class Report:
    config: dict
    cells: List[CellResult] = field(default_factory=list)
    speedup_4v1: Dict[str, float] = field(default_factory=dict)
    shm_8shard_wps: float = 0.0
    identical_across_cells: bool = False
    reference_checked: int = 0
    failover: Optional[dict] = None

    def extra_json(self) -> dict:
        """Derived summaries merged on top of the shared bench schema."""
        return {
            "speedup_4v1": {
                variant: round(value, 2)
                for variant, value in self.speedup_4v1.items()
            },
            "shm_8shard_wps": round(self.shm_8shard_wps, 1),
            "identical_across_cells": self.identical_across_cells,
            "reference_checked": self.reference_checked,
            "failover": self.failover,
        }

    def render(self) -> str:
        lines = [
            "cluster scaling "
            f"(D={self.config['n_distinct']} distinct fingerprints, "
            f"C={self.config['cache_entries']} cache entries/shard, "
            f"{self.config['passes']} cyclic passes)",
            f"{'cell':>16}  {'throughput':>12}  {'elapsed':>9}  "
            f"{'p50':>8}  {'p99':>8}  {'cache':>6}  {'depth^':>6}",
        ]
        for cell in self.cells:
            depth = max(cell.queue_depth_peaks.values(), default=0)
            lines.append(
                f"{cell.name:>16}  {cell.throughput_wps:>10.0f}/s  "
                f"{cell.elapsed_s:>8.2f}s  {cell.latency_p50_ms:>6.2f}ms  "
                f"{cell.latency_p99_ms:>6.2f}ms  "
                f"{cell.cache_entries_total:>6}  {depth:>6}"
            )
        for variant, speedup in sorted(self.speedup_4v1.items()):
            lines.append(f"4-shard vs 1-shard speedup [{variant}]: {speedup:.2f}x")
        lines.append(
            f"identical verdicts across all cells: "
            f"{self.identical_across_cells} ({self.reference_checked} "
            f"checked against the per-request reference)"
        )
        failover = self.failover
        if failover:
            lines.append(
                f"failover (shm): {failover['answered']}/"
                f"{failover['requests']} answered after killing a shard "
                f"mid-load ({failover['lost']} lost, "
                f"{failover['failovers']} re-routed, shard restarted "
                f"{failover['killed_shard_restarts']}x, identical: "
                f"{failover['identical']})"
            )
        return "\n".join(lines)


def run_benchmark(
    n_sessions: int,
    n_distinct: int,
    cache_entries: int,
    passes: int,
    seed: int = 7,
    shard_counts: Tuple[int, ...] = SHARD_COUNTS,
    transports: Tuple[str, ...] = ("shm", "thread", "pickle"),
    neutral_names: bool = False,
    with_failover: bool = True,
    repeats: int = 2,
) -> Report:
    dataset = TrafficSimulator(TrafficConfig(seed=seed).scaled(n_sessions)).generate()
    polygraph = BrowserPolygraph().fit(dataset)
    warmup, timed = synthesize_workload(dataset, n_distinct, passes)
    # Extra timed rounds differ only in their session-id prefix: same
    # routing keys, same cache keys, fresh sids (the dedup window must
    # stay silent).  Every cell times the same rounds and keeps the
    # best one; essences always come from round 0.
    rounds = [timed] + [
        [
            w.replace(b'{"sid":"bb-', b'{"sid":"b' + bytes([98 + r]) + b"-", 1)
            for w in timed
        ]
        for r in range(1, max(1, repeats))
    ]
    report = Report(
        config={
            "n_sessions": n_sessions,
            "n_distinct": n_distinct,
            "cache_entries": cache_entries,
            "passes": passes,
            "repeats": max(1, repeats),
            "seed": seed,
            "affinity": "fingerprint",
            "shard_counts": list(shard_counts),
            "transports": list(transports),
        }
    )

    essences: Dict[str, List[tuple]] = {}
    for variant in transports:
        for n_shards in shard_counts:
            cell, cell_essences = run_cell(
                polygraph,
                n_shards,
                cache_entries,
                warmup,
                rounds,
                variant=variant,
                neutral_name=neutral_names,
            )
            essences[cell.name + f"/{variant}"] = cell_essences
            report.cells.append(cell)
            print(
                f"  {cell.name} [{variant}]: "
                f"{cell.throughput_wps:.0f} wires/s "
                f"({cell.elapsed_s:.2f}s, p99 {cell.latency_p99_ms:.2f}ms)",
                flush=True,
            )

    baseline = next(iter(essences.values()))
    report.identical_across_cells = all(
        cell_essences == baseline for cell_essences in essences.values()
    )

    # Anchor against the per-request reference service: the cluster must
    # not just agree with itself, it must agree with Algorithm 1.
    reference = ScoringService(polygraph)
    sample = timed[: min(1000, len(timed))]
    report.reference_checked = len(sample)
    for wire, essence in zip(sample, baseline):
        if _essence(reference.score_wire(wire)) != essence:
            report.identical_across_cells = False
            break

    for variant in transports:
        by_shards = {
            cell.shards: cell
            for cell in report.cells
            if (cell.backend, cell.transport) == VARIANTS[variant]
        }
        if 1 in by_shards and 4 in by_shards:
            report.speedup_4v1[variant] = (
                by_shards[4].throughput_wps / by_shards[1].throughput_wps
            )
        if variant == "shm" and 8 in by_shards:
            report.shm_8shard_wps = by_shards[8].throughput_wps

    if with_failover:
        failover = run_failover(polygraph, cache_entries, timed)
        failover["identical"] = failover.pop("essences") == baseline
        report.failover = failover
    return report


# ----------------------------------------------------------------------


def _main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=20_000)
    parser.add_argument("--distinct", type=int, default=1280)
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=512,
        help="per-shard verdict-cache capacity (D/C ~ 2.5 by default)",
    )
    parser.add_argument("--passes", type=int, default=10)
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="timed rounds per cell; the best round is reported "
        "(shields the gates from noisy-neighbor CPU time)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_cluster.json")
    parser.add_argument(
        "--transports",
        default="shm,thread,pickle",
        help="comma-separated deployment variants to measure "
        "(shm, thread, pickle)",
    )
    parser.add_argument(
        "--ab",
        action="store_true",
        help="A/B mode: neutral cell names (shards-N regardless of "
        "transport) and no failover section, so two runs with "
        "different --transports can be compared by `benchio diff`",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, no timing gates (CI runners are too noisy)",
    )
    args = parser.parse_args(argv)

    transports = tuple(
        t.strip() for t in args.transports.split(",") if t.strip()
    )
    for t in transports:
        if t not in VARIANTS:
            parser.error(f"unknown transport variant: {t}")
    if args.ab and len(transports) != 1:
        parser.error("--ab requires exactly one --transports variant")

    if args.smoke:
        args.sessions = min(args.sessions, 4_000)
        args.distinct = min(args.distinct, 240)
        args.cache_entries = min(args.cache_entries, 96)
        args.passes = min(args.passes, 2)

    report = run_benchmark(
        n_sessions=args.sessions,
        n_distinct=args.distinct,
        cache_entries=args.cache_entries,
        passes=args.passes,
        repeats=max(1, args.repeats),
        seed=args.seed,
        transports=transports,
        neutral_names=args.ab,
        with_failover=not args.ab,
    )
    print(report.render())

    write_bench_json(
        args.output,
        benchmark="cluster_scaling",
        config=report.config,
        cells=[cell.to_dict() for cell in report.cells],
        extra=report.extra_json(),
    )
    print(f"wrote {args.output}")

    failures = []
    if not report.identical_across_cells:
        failures.append("verdicts diverged across cells")
    if not args.ab:
        if report.failover is None or report.failover["lost"] != 0:
            failures.append("failover lost requests")
        if not (report.failover or {}).get("identical", False):
            failures.append("failover changed verdicts")
        if (report.failover or {}).get("healthy_after_recovery") != 2:
            failures.append("killed shard did not recover")
    if not args.smoke and not args.ab:
        for variant, speedup in report.speedup_4v1.items():
            gate = SPEEDUP_GATES[variant]
            if speedup < gate:
                failures.append(
                    f"4-shard speedup [{variant}] {speedup:.2f}x below "
                    f"{gate}x gate"
                )
        if "shm" in transports and report.shm_8shard_wps < THROUGHPUT_GATE_WPS:
            failures.append(
                f"8-shard shm throughput {report.shm_8shard_wps:.0f} wps "
                f"below {THROUGHPUT_GATE_WPS:.0f} gate"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(_main())
