"""Regenerates paper Table 2: collection cost per fingerprinting tool."""

from conftest import run_and_print
from repro.analysis.experiments import table2_performance


def test_table2_performance(benchmark):
    result = run_and_print(benchmark, table2_performance)
    costs = {row[0]: row for row in result.rows}
    polygraph = costs["Browser Polygraph"]
    assert polygraph[2] <= 1024  # FinOrg payload budget
    assert polygraph[1] <= 100.0  # FinOrg latency budget
    for name in ("AmIUnique", "FingerprintJS", "ClientJS"):
        assert costs[name][2] > polygraph[2]
