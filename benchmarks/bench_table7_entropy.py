"""Regenerates paper Table 7: attribute entropy."""

from conftest import run_and_print
from repro.analysis.experiments import table7_entropy


def test_table7_entropy(benchmark):
    result = run_and_print(benchmark, table7_entropy)
    assert result.rows[0][0] == "user-agent"  # most diverse attribute
