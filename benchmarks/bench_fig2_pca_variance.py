"""Regenerates paper Figure 2: cumulative PCA variance per component."""

from conftest import run_and_print
from repro.analysis.experiments import fig2_pca_variance


def test_fig2_pca_variance(benchmark):
    result = run_and_print(benchmark, fig2_pca_variance)
    cumulative = [row[1] for row in result.rows]
    assert cumulative[6] > 0.985  # paper: 7 components reach 98.5%
