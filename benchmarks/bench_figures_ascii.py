"""Renders paper Figures 2-5 as ASCII charts from the live pipeline."""

from repro.analysis.experiments import (
    fig3_fig4_elbow,
    fig5_anonymity,
    fig2_pca_variance,
)
from repro.analysis.figures import render_figures


def test_render_figures_ascii(benchmark):
    def run():
        pca = [row[1] for row in fig2_pca_variance().rows]
        elbow = [tuple(row) for row in fig3_fig4_elbow().rows]
        anonymity = {row[0]: row[1] for row in fig5_anonymity().rows}
        return render_figures(pca, elbow, anonymity)

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(text)
    for needle in ("Figure 2", "Figure 3", "Figure 4", "Figure 5"):
        assert needle in text
