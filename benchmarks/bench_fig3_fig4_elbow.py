"""Regenerates paper Figures 3 and 4: the elbow analysis over k."""

from conftest import run_and_print
from repro.analysis.experiments import fig3_fig4_elbow


def test_fig3_fig4_elbow(benchmark):
    result = run_and_print(benchmark, fig3_fig4_elbow)
    wcss = [row[1] for row in result.rows]
    assert wcss[-1] < wcss[0] * 0.2  # curve flattens after the elbows
