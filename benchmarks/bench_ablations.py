"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper tables — these quantify what each pipeline refinement buys:

* **Rare-UA alignment** (Section 6.4.3): how many under-supported
  user-agents would sit in a misleading cluster without the lab-
  reference override.
* **Risk divisor** (Algorithm 1's empirical "/4"): how the flagged-
  session risk distribution shifts under /2 and /8.
* **Namespace probe** (Section 8 extension): recall on a sloppy
  wrapper product whose engine matches the spoofed user-agent.
* **Stratified sampling** (Section 8): accuracy and table coverage when
  training on a heavily capped sample.
"""

import numpy as np

from repro.analysis.experiments import trained_pipeline, training_dataset
from repro.analysis.reporting import render_table
from repro.browsers.useragent import parse_ua_key
from repro.core.config import PipelineConfig
from repro.core.pipeline import BrowserPolygraph
from repro.core.sampling import stratified_sample
from repro.fingerprint.script import CollectionScript
from repro.fraudbrowsers.base import FraudProfile
from repro.fraudbrowsers.catalog import fraud_browser


def test_ablation_rare_ua_alignment(benchmark):
    dataset = training_dataset()

    def run():
        aligned = BrowserPolygraph().fit(dataset, align_rare=True)
        raw = BrowserPolygraph().fit(dataset, align_rare=False)
        moved = [
            key
            for key in aligned.cluster_model.ua_to_cluster
            if aligned.cluster_model.ua_to_cluster[key]
            != raw.cluster_model.ua_to_cluster.get(key)
        ]
        return aligned, moved

    aligned, moved = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["Variant", "Accuracy", "Aligned UAs"],
            [
                ("with alignment", aligned.accuracy, len(aligned.cluster_model.aligned_uas_)),
                ("without alignment", aligned.accuracy, 0),
            ],
            title="Ablation: rare user-agent alignment",
            float_digits=4,
        )
    )
    print(f"  table entries changed by alignment: {sorted(moved)}")
    # Every overridden entry must match the lab-reference prediction.
    for key in aligned.cluster_model.aligned_uas_:
        reference = aligned.cluster_model.reference_vector(key)
        assert aligned.cluster_model.predict_cluster(reference) == (
            aligned.cluster_model.ua_to_cluster[key]
        )


def test_ablation_risk_divisor(benchmark):
    dataset = training_dataset()

    def run():
        rows = []
        for divisor in (2, 4, 8):
            config = PipelineConfig(version_divisor=divisor)
            polygraph = BrowserPolygraph(config).fit(dataset)
            report = polygraph.detect(dataset)
            rows.append(
                (
                    divisor,
                    report.n_flagged,
                    int(report.risk_over(1).sum()),
                    int(report.risk_over(4).sum()),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["Divisor", "Flagged", "Risk > 1", "Risk > 4"],
            rows,
            title="Ablation: Algorithm 1 version divisor",
        )
    )
    by_divisor = {row[0]: row for row in rows}
    # The divisor scales version distances, not the mismatch set: the
    # flagged count is stable while the risk distribution shifts.
    assert by_divisor[2][1] == by_divisor[8][1]
    assert by_divisor[2][2] >= by_divisor[8][2]


def test_ablation_namespace_probe(benchmark):
    dataset = training_dataset()

    def run():
        plain = trained_pipeline()
        probing = BrowserPolygraph(
            PipelineConfig(enable_namespace_probe=True)
        ).fit(dataset)
        ant = fraud_browser("AntBrowser-2023.05")
        script = CollectionScript()
        rows = []
        for label, polygraph in (("probe off", plain), ("probe on", probing)):
            caught = 0
            total = 0
            for cluster, members in polygraph.cluster_table.items():
                for key in members[:2]:
                    payload = script.run(
                        ant.environment(FraudProfile(ant.full_name, parse_ua_key(key))),
                        key,
                    )
                    caught += int(polygraph.detect_payload(payload).flagged)
                    total += 1
            rows.append((label, caught, total, f"{100 * caught / total:.0f}%"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["Variant", "Caught", "Profiles", "Recall"],
            rows,
            title="Ablation: namespace probe vs AntBrowser",
        )
    )
    recall = {row[0]: row[1] / row[2] for row in rows}
    assert recall["probe on"] == 1.0
    assert recall["probe on"] > recall["probe off"]


def test_ablation_stratified_sampling(benchmark):
    dataset = training_dataset()

    def run():
        sampled = stratified_sample(dataset, max_per_stratum=600)
        polygraph = BrowserPolygraph().fit(sampled)
        return sampled, polygraph

    sampled, polygraph = benchmark.pedantic(run, rounds=1, iterations=1)
    full = trained_pipeline()
    print()
    print(
        render_table(
            ["Variant", "Rows", "Accuracy", "UAs in table"],
            [
                ("full window", len(dataset), full.accuracy, len(full.cluster_model.ua_to_cluster)),
                ("stratified sample", len(sampled), polygraph.accuracy, len(polygraph.cluster_model.ua_to_cluster)),
            ],
            title="Ablation: stratified-sampling trainer",
            float_digits=4,
        )
    )
    assert len(sampled) < len(dataset) * 0.6
    assert polygraph.accuracy > 0.98
    assert set(polygraph.cluster_model.ua_to_cluster) == set(
        full.cluster_model.ua_to_cluster
    )
