"""Overhead of shadow scoring on the live serving path.

Replays a FinOrg-shaped traffic window through the high-throughput
runtime twice — once bare, once with a rollout in shadow stage
mirroring half the live traffic to a candidate model — and asserts the
deployment claims of the rollout subsystem:

* shadow scoring is off the latency-critical path: the live replay
  keeps most of its bare throughput while every mirrored comparison is
  scored asynchronously;
* an identical candidate produces **zero** disagreements (the report is
  a faithful comparator, not a noise source).

Also runnable directly for a quick smoke pass (CI uses this mode);
results are persisted through the shared ``BENCH_*.json`` writer::

    PYTHONPATH=src python benchmarks/bench_rollout.py --sessions 1500
"""

import json
import os
import sys
import time
from dataclasses import dataclass
from datetime import date
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REPLAY = int(os.environ.get("REPRO_ROLLOUT_REPLAY", "12000"))

# Shadow throughput must stay within this factor of the bare runtime.
# The bound is deliberately loose: CI boxes are noisy, and the claim
# under test is "same order of magnitude", not a precise ratio.
MAX_SLOWDOWN = 3.0


@dataclass
class RolloutOverheadReport:
    sessions: int
    bare_rate: float
    shadow_rate: float
    comparisons: int
    shed: int
    disagreement_rate: float

    @property
    def slowdown(self) -> float:
        return self.bare_rate / self.shadow_rate if self.shadow_rate else 0.0

    def render(self) -> str:
        return "\n".join(
            [
                "Shadow-scoring overhead on the live path",
                f"  sessions replayed      {self.sessions}",
                f"  bare runtime           {self.bare_rate:,.0f} sessions/s",
                f"  with shadow attached   {self.shadow_rate:,.0f} sessions/s",
                f"  slowdown               {self.slowdown:.2f}x",
                f"  shadow comparisons     {self.comparisons} "
                f"({self.shed} shed)",
                f"  disagreement rate      {self.disagreement_rate:.4f}",
            ]
        )


def _fresh_wires(dataset, prefix, limit):
    from repro.traffic.replay import iter_payloads

    wires = []
    for idx, payload in enumerate(iter_payloads(dataset, limit)):
        body = json.loads(payload.to_wire().decode())
        body["sid"] = f"{prefix}-{idx}"
        wires.append(json.dumps(body, separators=(",", ":")).encode())
    return wires


def run_rollout_overhead_benchmark(
    n_sessions: int,
    seed: int = 7,
    polygraph=None,
    dataset=None,
    shadow_sample_rate: float = 0.5,
) -> RolloutOverheadReport:
    import tempfile

    from repro.core.pipeline import BrowserPolygraph
    from repro.core.retraining import ModelRegistry
    from repro.rollout import GuardrailConfig, RolloutConfig, RolloutManager
    from repro.runtime.service import RuntimeScoringService
    from repro.traffic.generator import TrafficConfig, TrafficSimulator

    if dataset is None:
        dataset = TrafficSimulator(
            TrafficConfig(seed=seed).scaled(n_sessions)
        ).generate()
    if polygraph is None:
        polygraph = BrowserPolygraph().fit(dataset)

    with tempfile.TemporaryDirectory(prefix="bench-rollout-") as root:
        registry = ModelRegistry(root)
        registry.promote(polygraph, date(2023, 7, 1), "bootstrap")
        registry.stage_candidate(polygraph, date(2023, 8, 1), "candidate")

        runtime = RuntimeScoringService(registry.load(1)).start()
        try:
            bare = _fresh_wires(dataset, "bare", n_sessions)
            started = time.perf_counter()
            for wire in bare:
                runtime.score_wire(wire)
            bare_rate = len(bare) / (time.perf_counter() - started)

            manager = RolloutManager(
                registry,
                runtime=runtime,
                config=RolloutConfig(
                    stages=(1.0,), shadow_sample_rate=shadow_sample_rate
                ),
                guardrails=GuardrailConfig(min_comparisons=10_000_000),
            )
            manager.start(2, salt="bench-rollout")
            try:
                shadowed = _fresh_wires(dataset, "shadow", n_sessions)
                started = time.perf_counter()
                for wire in shadowed:
                    runtime.score_wire(wire)
                shadow_rate = len(shadowed) / (time.perf_counter() - started)
                manager.drain_shadow(timeout=60.0)
            finally:
                manager.close()
            report = manager.report
            return RolloutOverheadReport(
                sessions=n_sessions,
                bare_rate=bare_rate,
                shadow_rate=shadow_rate,
                comparisons=report.comparisons,
                shed=report.shed,
                disagreement_rate=report.disagreement_rate,
            )
        finally:
            runtime.shutdown()


def test_shadow_overhead(benchmark):
    from conftest import run_and_print
    from repro.analysis.experiments import trained_pipeline, training_dataset

    report = run_and_print(
        benchmark,
        run_rollout_overhead_benchmark,
        REPLAY,
        polygraph=trained_pipeline(),
        dataset=training_dataset(),
    )
    assert report.comparisons > 0
    assert report.disagreement_rate == 0.0, "identical candidate disagreed"
    assert report.slowdown <= MAX_SLOWDOWN, (
        f"shadow scoring slowed the live path {report.slowdown:.2f}x "
        f"(> {MAX_SLOWDOWN}x)"
    )


def _write_report(report, output, args) -> None:
    from repro.analysis.benchio import write_bench_json

    write_bench_json(
        output,
        benchmark="rollout_overhead",
        config={
            "n_sessions": args.sessions,
            "seed": args.seed,
            "shadow_sample_rate": args.shadow_sample,
        },
        cells=[
            {
                "cell": "bare",
                "sessions": report.sessions,
                "sessions_per_s": round(report.bare_rate, 1),
            },
            {
                "cell": "shadow",
                "sessions": report.sessions,
                "sessions_per_s": round(report.shadow_rate, 1),
                "comparisons": report.comparisons,
                "shed": report.shed,
            },
        ],
        extra={
            "slowdown": round(report.slowdown, 3),
            "disagreement_rate": report.disagreement_rate,
        },
    )


def _main(argv):
    import argparse

    parser = argparse.ArgumentParser(
        description="Smoke-run the shadow-scoring overhead benchmark"
    )
    parser.add_argument("--sessions", type=int, default=REPLAY)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shadow-sample", type=float, default=0.5)
    parser.add_argument("--output", default="BENCH_rollout.json")
    args = parser.parse_args(argv)
    report = run_rollout_overhead_benchmark(
        args.sessions, seed=args.seed, shadow_sample_rate=args.shadow_sample
    )
    print(report.render())
    _write_report(report, args.output, args)
    print(f"wrote {args.output}")
    if report.disagreement_rate != 0.0:
        print("FAIL: identical candidate produced disagreements")
        return 1
    if report.comparisons == 0:
        print("FAIL: shadow scorer never ran")
        return 1
    if report.slowdown > MAX_SLOWDOWN:
        print(f"FAIL: slowdown {report.slowdown:.2f}x > {MAX_SLOWDOWN}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
