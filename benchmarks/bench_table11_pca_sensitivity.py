"""Regenerates paper Table 11: accuracy vs PCA component count."""

from conftest import run_and_print
from repro.analysis.experiments import table11_pca_sensitivity


def test_table11_pca_sensitivity(benchmark):
    result = run_and_print(benchmark, table11_pca_sensitivity)
    assert [row[0] for row in result.rows] == [6, 7, 8, 9, 10]
    assert all(row[2] > 97.0 for row in result.rows)
