"""End-to-end retraining throughput: storage format x worker count.

The paper's deployment retrains on a ~205k-session window after every
major browser release (Section 6.6).  This benchmark measures that
offline path — export from the session store, preprocessing (scaling +
Isolation Forest outlier removal), PCA, the elbow k-sweep, and the
final k-means fit — across a matrix of configurations:

* ``(jsonl, jobs=1)``   — the legacy path: line-by-line JSON parsing
  and a fully serial k-search;
* ``(columnar, jobs=1)`` — memory-mapped columnar export, serial fit;
* ``(columnar, jobs=N)`` — memory-mapped export plus the process-pool
  k-search.

Every cell must produce the **same model**: identical selected k,
bit-identical centroids, equal labels/inertia, and an equal
cluster-to-user-agent table — the determinism contract of
``repro.ml.parallel`` asserted here on the real pipeline, not just in
unit tests.  Results are written to ``BENCH_training.json`` so future
PRs have a trajectory.

Direct run (CI uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_training_throughput.py --sessions 60000
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from dataclasses import dataclass, field
from datetime import date
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.preprocessing import Preprocessor
from repro.fingerprint.script import FingerprintPayload
from repro.ml import kmeans as kmeans_mod
from repro.ml.elbow import elbow_analysis, elbow_seed, select_k_elbow
from repro.ml.kmeans import KMeans
from repro.ml.metrics import majority_cluster_map
from repro.ml.pca import PCA
from repro.service.storage import SessionStore
from repro.traffic.generator import TrafficConfig, TrafficSimulator

SESSIONS = int(os.environ.get("REPRO_TRAIN_BENCH_SESSIONS", "60000"))
ELBOW_KS = tuple(range(2, 13))

# Acceptance bounds (full runs only; --smoke skips the ratio checks
# because sub-second cells are all setup noise).
MIN_RETRAIN_SPEEDUP = 2.0
MIN_EXPORT_SPEEDUP = 3.0


@dataclass
class CellResult:
    """One (storage, jobs) configuration's timings and model."""

    storage: str
    jobs: int
    times: Dict[str, float]
    selected_k: int
    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    table: Dict[str, int]

    @property
    def total(self) -> float:
        return sum(self.times.values())


@dataclass
class TrainingBenchReport:
    sessions: int
    jobs: int
    cells: List[CellResult] = field(default_factory=list)

    def cell(self, storage: str, jobs: int) -> CellResult:
        for cell in self.cells:
            if cell.storage == storage and cell.jobs == jobs:
                return cell
        raise KeyError((storage, jobs))

    @property
    def export_speedup(self) -> float:
        jsonl = self.cell("jsonl", 1).times["export"]
        columnar = self.cell("columnar", 1).times["export"]
        return jsonl / columnar if columnar > 0 else float("inf")

    @property
    def retrain_speedup(self) -> float:
        baseline = self.cell("jsonl", 1).total
        fast = self.cell("columnar", self.jobs).total
        return baseline / fast if fast > 0 else float("inf")

    def cell_dicts(self) -> List[dict]:
        return [
            {
                "cell": f"{cell.storage}/jobs={cell.jobs}",
                "storage": cell.storage,
                "jobs": cell.jobs,
                "times_s": {k: round(v, 6) for k, v in cell.times.items()},
                "total_s": round(cell.total, 6),
                "inertia": cell.inertia,
            }
            for cell in self.cells
        ]

    def render(self) -> str:
        lines = [
            "Training throughput (export -> preprocess -> elbow -> fit)",
            f"  sessions             {self.sessions}",
            f"  selected k           {self.cells[0].selected_k}",
        ]
        for cell in self.cells:
            stages = "  ".join(
                f"{name}={seconds:.3f}s" for name, seconds in cell.times.items()
            )
            lines.append(
                f"  [{cell.storage:>8} jobs={cell.jobs}]  "
                f"total={cell.total:.3f}s  ({stages})"
            )
        lines.append(f"  export speedup       {self.export_speedup:.2f}x")
        lines.append(
            f"  end-to-end speedup   {self.retrain_speedup:.2f}x "
            f"(jsonl/1 vs columnar/{self.jobs})"
        )
        return "\n".join(lines)


def _build_stores(
    root: Path, n_sessions: int, seed: int
) -> Tuple[Path, Path]:
    """Simulate a traffic window and persist it twice: JSONL + columnar."""
    config = TrafficConfig(seed=seed).scaled(n_sessions)
    dataset = TrafficSimulator(config).generate()

    jsonl_root = root / "store-jsonl"
    store = SessionStore(jsonl_root)
    days = dataset.days.astype("datetime64[D]").astype(object)
    store.append_many(
        (
            FingerprintPayload(
                session_id=str(dataset.session_ids[idx]),
                user_agent=str(dataset.user_agents[idx]),
                values=tuple(int(v) for v in dataset.features[idx]),
                service_time_ms=0.0,
            ),
            days[idx],
        )
        for idx in range(len(dataset))
    )
    store.flush()

    columnar_root = root / "store-columnar"
    shutil.copytree(jsonl_root, columnar_root)
    SessionStore(columnar_root).migrate()
    return jsonl_root, columnar_root


def run_retrain(store_root: Path, storage: str, jobs: int) -> CellResult:
    """One full retrain pass over a store, with per-stage timings."""
    config = PipelineConfig()
    times: Dict[str, float] = {}

    start = time.perf_counter()
    dataset = SessionStore(store_root).export_dataset()
    matrix = dataset.matrix()
    times["export"] = time.perf_counter() - start

    start = time.perf_counter()
    scaled, inliers = Preprocessor(config).fit(matrix)
    train = scaled[inliers]
    train_keys = [
        k for k, keep in zip(dataset.ua_keys.tolist(), inliers) if keep
    ]
    pca = PCA(n_components=config.n_pca_components).fit(train)
    projected = pca.transform(train)
    times["preprocess"] = time.perf_counter() - start

    start = time.perf_counter()
    curve = elbow_analysis(
        projected,
        ELBOW_KS,
        n_init=3,
        random_state=config.random_state,
        jobs=jobs,
    )
    selected_k = select_k_elbow(curve)
    times["elbow"] = time.perf_counter() - start

    start = time.perf_counter()
    model = KMeans(
        n_clusters=selected_k,
        n_init=config.kmeans_n_init,
        random_state=elbow_seed(config.random_state, selected_k),
        jobs=jobs,
    ).fit(projected)
    table = majority_cluster_map(train_keys, model.labels_)
    times["fit"] = time.perf_counter() - start

    return CellResult(
        storage=storage,
        jobs=jobs,
        times=times,
        selected_k=selected_k,
        centers=model.cluster_centers_,
        labels=model.labels_,
        inertia=float(model.inertia_),
        table=dict(table),
    )


def _assert_identical(cells: List[CellResult]) -> None:
    """Every cell must have produced the same model, bit for bit."""
    reference = cells[0]
    for cell in cells[1:]:
        tag = f"({cell.storage}, jobs={cell.jobs})"
        assert cell.selected_k == reference.selected_k, (
            f"{tag} selected k={cell.selected_k}, "
            f"expected {reference.selected_k}"
        )
        assert np.array_equal(cell.centers, reference.centers), (
            f"{tag} centroids differ from the reference run"
        )
        assert np.array_equal(cell.labels, reference.labels), (
            f"{tag} labels differ from the reference run"
        )
        assert cell.inertia == reference.inertia, (
            f"{tag} inertia {cell.inertia} != {reference.inertia}"
        )
        assert cell.table == reference.table, (
            f"{tag} cluster->UA table differs from the reference run"
        )


def _assert_pool_parity() -> None:
    """Force real pool execution on a small matrix and compare exactly.

    The work-size gate normally keeps tiny fits inline; dropping it to
    zero makes the parallel run actually cross process boundaries, so
    this catches seed-plumbing or result-ordering regressions even on
    hosts where the benchmark matrices stay under the gate.
    """
    rng = np.random.default_rng(11)
    matrix = np.repeat(rng.normal(size=(60, 6)), 5, axis=0)
    saved = kmeans_mod._MIN_PARALLEL_WORK
    kmeans_mod._MIN_PARALLEL_WORK = 0
    try:
        serial = KMeans(n_clusters=5, n_init=4, random_state=29, jobs=1).fit(
            matrix
        )
        pooled = KMeans(n_clusters=5, n_init=4, random_state=29, jobs=4).fit(
            matrix
        )
    finally:
        kmeans_mod._MIN_PARALLEL_WORK = saved
    assert np.array_equal(serial.cluster_centers_, pooled.cluster_centers_)
    assert np.array_equal(serial.labels_, pooled.labels_)
    assert serial.inertia_ == pooled.inertia_


def run_training_benchmark(
    n_sessions: int = SESSIONS, jobs: int = 4, seed: int = 7
) -> TrainingBenchReport:
    root = Path(tempfile.mkdtemp(prefix="polygraph-train-bench-"))
    try:
        jsonl_root, columnar_root = _build_stores(root, n_sessions, seed)
        report = TrainingBenchReport(sessions=n_sessions, jobs=jobs)
        report.cells.append(run_retrain(jsonl_root, "jsonl", 1))
        report.cells.append(run_retrain(columnar_root, "columnar", 1))
        report.cells.append(run_retrain(columnar_root, "columnar", jobs))
        _assert_identical(report.cells)
        _assert_pool_parity()
        return report
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _write_report(report: TrainingBenchReport, output: Path) -> None:
    from repro.analysis.benchio import write_bench_json

    write_bench_json(
        output,
        benchmark="training_throughput",
        config={
            "sessions": report.sessions,
            "jobs": report.jobs,
            "elbow_ks": list(ELBOW_KS),
        },
        cells=report.cell_dicts(),
        extra={
            "selected_k": report.cells[0].selected_k,
            "export_speedup": report.export_speedup,
            "retrain_speedup": report.retrain_speedup,
        },
    )
    # Validate the artifact the way CI consumes it.
    parsed = json.loads(output.read_text())
    assert parsed["benchmark"] == "training_throughput"
    assert len(parsed["cells"]) == 3


def test_training_throughput():
    """Pytest entry: a small but real run with all parity assertions."""
    report = run_training_benchmark(
        n_sessions=int(os.environ.get("REPRO_TRAIN_BENCH_SESSIONS", "4000")),
        jobs=2,
    )
    assert report.cell("jsonl", 1).selected_k >= 2
    assert report.export_speedup > 0


def _main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the offline retraining path"
    )
    parser.add_argument("--sessions", type=int, default=SESSIONS)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run: keep the parity assertions, skip the ratio checks",
    )
    parser.add_argument("--output", default="BENCH_training.json")
    args = parser.parse_args(argv)

    sessions = min(args.sessions, 1500) if args.smoke else args.sessions
    report = run_training_benchmark(
        n_sessions=sessions, jobs=args.jobs, seed=args.seed
    )
    print(report.render())
    _write_report(report, Path(args.output))
    print(f"wrote {args.output}")

    if not args.smoke:
        if report.export_speedup < MIN_EXPORT_SPEEDUP:
            print(
                f"FAIL: columnar export speedup {report.export_speedup:.2f}x "
                f"< {MIN_EXPORT_SPEEDUP}x"
            )
            return 1
        if report.retrain_speedup < MIN_RETRAIN_SPEEDUP:
            print(
                f"FAIL: end-to-end speedup {report.retrain_speedup:.2f}x "
                f"< {MIN_RETRAIN_SPEEDUP}x"
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
