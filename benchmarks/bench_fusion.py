"""Verdict fusion vs cluster-only: parity, Cat-4 catch, cost.

Three questions, each a gate:

1. **Parity** — the fusion arm is additive-only: with it attached, the
   cluster verdict fields ``(session id, accepted, flagged, risk
   factor, reject reason)`` must be *bit-identical* to the plain
   :class:`ScoringService` scoring the same wires, and with fusion off
   every provenance field must stay ``None``.
2. **Catch** — Category-3/4 fraud (stolen-profile replay on a real or
   matched engine) is invisible to the cluster-mismatch verdict by
   construction; the second-opinion arm must flag a fixed minimum of
   Cat-4 sessions through the ``second_opinion_only`` agreement cell.
3. **Cost** — the fused path (node lookup + calibration + policy on
   top of the cluster verdict) must keep at least half the cluster-only
   throughput (full runs only; CI's ``--smoke`` skips the timing gate).

Ground-truth ``truth_category`` is consumed here for *evaluation
accounting only* — the serve path sees fingerprints, user-agents, days,
and the infrastructure tags the risk engine would supply.  Results land
in ``BENCH_fusion.json``::

    PYTHONPATH=src python benchmarks/bench_fusion.py
"""

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.benchio import write_bench_json  # noqa: E402
from repro.core.pipeline import BrowserPolygraph  # noqa: E402
from repro.fusion import FusionArm, FusionModel  # noqa: E402
from repro.fusion.labels import weak_labels  # noqa: E402
from repro.fusion.policy import AgreementCell, FusionGuardrailConfig  # noqa: E402
from repro.service.scoring import ScoringService  # noqa: E402
from repro.traffic.generator import TrafficConfig, TrafficSimulator  # noqa: E402
from repro.traffic.replay import iter_wire_payloads  # noqa: E402

THROUGHPUT_GATE = 0.5  # fused wires/s vs cluster-only wires/s
MIN_CAT4_CAUGHT = 5  # second-opinion-only catches at the default scale
FRAUD_CATEGORIES = (1, 2, 3, 4)


def _essence(verdict) -> tuple:
    return (
        verdict.session_id,
        verdict.accepted,
        verdict.flagged,
        verdict.risk_factor,
        verdict.reject_reason,
    )


def run_benchmark(n_sessions: int, seed: int, smoke: bool = False) -> dict:
    dataset = TrafficSimulator(
        TrafficConfig(seed=seed).scaled(n_sessions)
    ).generate()
    polygraph = BrowserPolygraph().fit(dataset)
    fusion_model = FusionModel.train(dataset, polygraph.cluster_model)

    # Full runs serve behind the *default* guardrails — part of the
    # claim is that they do not trip at deployment scale.  Smoke-sized
    # models are legitimately noisy (few nodes, higher flag rate), and
    # the guardrail disabling the arm there is it working as designed;
    # smoke only asserts parity, so it lifts the rate limits.
    guardrails = (
        FusionGuardrailConfig(min_verdicts=n_sessions + 1) if smoke else None
    )

    # Serve-side inputs: the wire bytes, the session day, and the risk
    # engine's infrastructure tags (via the sanctioned accessor).  The
    # ato tag is the training target and is never passed to scoring.
    labels = weak_labels(dataset)
    days = dataset.days.astype("datetime64[D]").astype(object)
    wires = list(iter_wire_payloads(dataset))

    # --- cell 1: cluster-only baseline ---------------------------------
    cluster_only = ScoringService(polygraph)
    started = time.perf_counter()
    base_verdicts = [cluster_only.score_wire(w) for w in wires]
    cluster_elapsed = time.perf_counter() - started
    cluster_eps = len(wires) / cluster_elapsed

    provenance_clean = all(
        v.fused_flagged is None
        and v.fusion_cell is None
        and v.second_probability is None
        and v.second_lift is None
        for v in base_verdicts
    )

    # --- cell 2: cluster + fusion arm ----------------------------------
    fused_service = ScoringService(
        polygraph, fusion=FusionArm(fusion_model, guardrails=guardrails)
    )
    started = time.perf_counter()
    fused_verdicts = [
        fused_service.score_wire(
            wire,
            day=days[idx],
            tags=(
                bool(labels.untrusted_ip[idx]),
                bool(labels.untrusted_cookie[idx]),
            ),
        )
        for idx, wire in enumerate(wires)
    ]
    fused_elapsed = time.perf_counter() - started
    fused_eps = len(wires) / fused_elapsed
    arm_status = fused_service.fusion.status_dict()

    # --- gate 1: bit-identical cluster verdicts ------------------------
    mismatches = sum(
        1
        for base, fused in zip(base_verdicts, fused_verdicts)
        if _essence(base) != _essence(fused)
    )

    # --- gate 2: second-opinion-only catch vs ground truth -------------
    second_only = AgreementCell.SECOND_ONLY.value
    categories = dataset.truth_category
    cluster_by_cat = {int(c): 0 for c in range(5)}
    catch_by_cat = {int(c): 0 for c in range(5)}
    for idx, verdict in enumerate(fused_verdicts):
        category = int(categories[idx])
        if verdict.flagged:
            cluster_by_cat[category] += 1
        if (
            verdict.fused_flagged
            and not verdict.flagged
            and verdict.fusion_cell == second_only
        ):
            catch_by_cat[category] += 1

    fused_flag_count = sum(1 for v in fused_verdicts if v.fused_flagged)
    cells = [
        {
            "cell": "cluster_only",
            "requests": len(wires),
            "elapsed_s": round(cluster_elapsed, 4),
            "wires_per_s": round(cluster_eps, 1),
            "flagged": sum(1 for v in base_verdicts if v.flagged),
        },
        {
            "cell": "fusion_on",
            "requests": len(wires),
            "elapsed_s": round(fused_elapsed, 4),
            "wires_per_s": round(fused_eps, 1),
            "flagged": sum(1 for v in fused_verdicts if v.flagged),
            "fused_flagged": fused_flag_count,
            "cells": arm_status["cells"],
            "arm_enabled": arm_status["enabled"],
        },
    ]
    return {
        "config": {
            "n_sessions": n_sessions,
            "seed": seed,
            "n_nodes": fusion_model.n_nodes,
            "base_rate": fusion_model.base_rate,
            "converged": fusion_model.converged,
        },
        "cells": cells,
        "throughput_ratio": round(fused_eps / cluster_eps, 3),
        "cluster_parity": {
            "checked": len(wires),
            "mismatches": mismatches,
            "bit_identical": mismatches == 0,
            "fusion_off_provenance_clean": provenance_clean,
        },
        "second_opinion_catch": {
            "cluster_flagged_by_category": cluster_by_cat,
            "second_only_by_category": catch_by_cat,
            "cat4_caught": catch_by_cat[4],
            "cat3_caught": catch_by_cat[3],
            "fraud_caught": sum(
                catch_by_cat[c] for c in FRAUD_CATEGORIES
            ),
        },
    }


def _main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_fusion.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, no catch-count or timing gates (parity "
        "gates always apply)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.sessions = min(args.sessions, 6_000)

    result = run_benchmark(
        n_sessions=args.sessions, seed=args.seed, smoke=args.smoke
    )

    cluster_cell, fusion_cell = result["cells"]
    parity = result["cluster_parity"]
    catch = result["second_opinion_catch"]
    print(
        f"cluster-only: {cluster_cell['wires_per_s']:.0f} wires/s "
        f"({cluster_cell['flagged']} flagged)"
    )
    print(
        f"fusion on: {fusion_cell['wires_per_s']:.0f} wires/s "
        f"({fusion_cell['fused_flagged']} fused-flagged, "
        f"arm enabled={fusion_cell['arm_enabled']})"
    )
    print(
        f"throughput ratio: {result['throughput_ratio']:.2f}x "
        f"(gate: >= {THROUGHPUT_GATE}x)"
    )
    print(
        f"cluster parity: {parity['checked']} checked, "
        f"{parity['mismatches']} mismatches; fusion-off provenance "
        f"clean={parity['fusion_off_provenance_clean']}"
    )
    print(
        "second-opinion-only catch by category: "
        + ", ".join(
            f"cat{c}={catch['second_only_by_category'][c]}"
            for c in range(5)
        )
    )
    print(
        "cluster flags by category: "
        + ", ".join(
            f"cat{c}={catch['cluster_flagged_by_category'][c]}"
            for c in range(5)
        )
    )

    write_bench_json(
        args.output,
        benchmark="fusion",
        config=result["config"],
        cells=result["cells"],
        extra={
            "throughput_ratio": result["throughput_ratio"],
            "cluster_parity": parity,
            "second_opinion_catch": catch,
        },
    )
    print(f"wrote {args.output}")

    failures = []
    if not parity["bit_identical"]:
        failures.append(
            f"fusion arm changed {parity['mismatches']} cluster verdicts"
        )
    if not parity["fusion_off_provenance_clean"]:
        failures.append(
            "fusion-off verdicts carried non-None provenance fields"
        )
    if not args.smoke:
        if not fusion_cell["arm_enabled"]:
            failures.append(
                "fusion arm disabled itself during the replay "
                "(default guardrails tripped at full scale)"
            )
        if catch["cat4_caught"] < MIN_CAT4_CAUGHT:
            failures.append(
                f"second opinion caught {catch['cat4_caught']} Cat-4 "
                f"sessions (< {MIN_CAT4_CAUGHT})"
            )
        if result["throughput_ratio"] < THROUGHPUT_GATE:
            failures.append(
                f"fused throughput {result['throughput_ratio']:.2f}x "
                f"below {THROUGHPUT_GATE}x gate"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(_main())
