"""Browser-version market shares over calendar time.

The FinOrg traffic the paper trains on contains 113 distinct browser
releases: a fast-moving auto-updated majority (Chrome/Edge users sit on
the newest two or three versions), a straggler tail of months-old
releases (enterprise pinning, disabled updates), and a relic stratum of
ancient browsers (kiosks, unsupported OS installs) — the Edge 17-19 and
Firefox 46-50 sessions that give Table 3 its cluster 6.

:class:`PopularityModel` turns the release calendar into sampling
weights for any given day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, List, Tuple

import numpy as np

from repro.browsers.releases import ReleaseCalendar, default_calendar
from repro.browsers.useragent import Vendor

__all__ = ["PopularityModel", "VersionShare"]

# Firefox 92 never shows up in the paper's Table 3; we keep it out of the
# simulated traffic so the cluster table can match row for row.
_EXCLUDED = {(Vendor.FIREFOX, 92)}

_MODERN_WINDOW_DAYS = 180
_MODERN_DECAY_DAYS = 35.0

_VENDOR_SHARES: Tuple[Tuple[Vendor, float], ...] = (
    (Vendor.CHROME, 0.655),
    (Vendor.EDGE, 0.145),
    (Vendor.FIREFOX, 0.200),
)

_STRATA = (("modern", 0.9650), ("straggler", 0.0300), ("ancient", 0.0050))
_STRAGGLER_DECAY = 0.90

_ANCIENT_VERSIONS: Tuple[Tuple[Vendor, int], ...] = tuple(
    [(Vendor.EDGE, v) for v in (17, 18, 19)]
    + [(Vendor.CHROME, v) for v in range(59, 69)]
    + [(Vendor.FIREFOX, v) for v in range(46, 51)]
)


@dataclass(frozen=True)
class VersionShare:
    """One (vendor, version) with its sampling probability."""

    vendor: Vendor
    version: int
    share: float


@dataclass
class PopularityModel:
    """Sampling distribution over (vendor, version) for a given day."""

    calendar: ReleaseCalendar = field(default_factory=default_calendar)

    def shares_on(self, day: date) -> List[VersionShare]:
        """Normalized version shares for sessions observed on ``day``."""
        weights: Dict[Tuple[Vendor, int], float] = {}
        strata = dict(_STRATA)

        for vendor, vendor_share in _VENDOR_SHARES:
            releases = self.calendar.released_before(vendor, day)
            if vendor is Vendor.EDGE:
                releases = [r for r in releases if r.version >= 79]
            modern = [
                r for r in releases if (day - r.released).days <= _MODERN_WINDOW_DAYS
            ]
            straggler = [
                r for r in releases if (day - r.released).days > _MODERN_WINDOW_DAYS
            ]

            modern_w = {
                (r.vendor, r.version): float(
                    np.exp(-(day - r.released).days / _MODERN_DECAY_DAYS)
                )
                for r in modern
                if (r.vendor, r.version) not in _EXCLUDED
            }
            # Stragglers: geometric decay with age rank (most recent old
            # release is most common among the pinned population).
            straggler_w = {
                (r.vendor, r.version): _STRAGGLER_DECAY**rank
                for rank, r in enumerate(reversed(straggler))
                if (r.vendor, r.version) not in _EXCLUDED
            }
            _accumulate(weights, modern_w, strata["modern"] * vendor_share)
            _accumulate(weights, straggler_w, strata["straggler"] * vendor_share)

        ancient_w = {
            key: 1.0
            for key in _ANCIENT_VERSIONS
            if key not in _EXCLUDED and self.calendar.has_release(*key)
        }
        _accumulate(weights, ancient_w, strata["ancient"])

        total = sum(weights.values())
        return [
            VersionShare(vendor, version, weight / total)
            for (vendor, version), weight in sorted(
                weights.items(), key=lambda kv: (kv[0][0].value, kv[0][1])
            )
        ]

    def sample(
        self, day: date, count: int, rng: np.random.Generator
    ) -> List[Tuple[Vendor, int]]:
        """Draw ``count`` (vendor, version) pairs for sessions on ``day``."""
        if count <= 0:
            return []
        shares = self.shares_on(day)
        probs = np.array([s.share for s in shares])
        picks = rng.choice(len(shares), size=count, p=probs)
        return [(shares[i].vendor, shares[i].version) for i in picks]


def _accumulate(
    target: Dict[Tuple[Vendor, int], float],
    source: Dict[Tuple[Vendor, int], float],
    mass: float,
) -> None:
    """Add ``source`` weights to ``target``, scaled to total ``mass``."""
    total = sum(source.values())
    if total <= 0.0:
        return
    for key, weight in source.items():
        target[key] = target.get(key, 0.0) + mass * weight / total
