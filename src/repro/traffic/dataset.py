"""Columnar dataset container.

Everything downstream — training, detection, drift, privacy analysis —
consumes data through this class.  Columns mirror what FinOrg shipped to
the authors (features, user-agent, opaque session id, tags) plus the
simulator's ground-truth columns, which models must never read (they are
for scoring only and carry a ``truth_`` prefix as a reminder).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.traffic.sessions import GroundTruth, Session, SessionKind

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """A batch of sessions in structure-of-arrays form.

    Attributes
    ----------
    features:
        ``(n, n_features)`` int32 matrix in Table 8 column order.
    ua_keys:
        Canonical ``vendor-version`` labels per row.
    user_agents:
        Full user-agent strings per row.
    session_ids:
        Opaque ids.
    days:
        Session dates (``datetime64[D]``).
    untrusted_ip, untrusted_cookie, ato:
        FinOrg tag columns.
    truth_kind, truth_browser, truth_category, truth_perturbation:
        Ground truth (scoring only).
    timestamps:
        Optional absolute epoch-second instants (float64) of each
        session's first collection; ``None`` for datasets produced
        before the event-stream layer existed.
    """

    features: np.ndarray
    ua_keys: np.ndarray
    user_agents: np.ndarray
    session_ids: np.ndarray
    days: np.ndarray
    untrusted_ip: np.ndarray
    untrusted_cookie: np.ndarray
    ato: np.ndarray
    truth_kind: np.ndarray
    truth_browser: np.ndarray
    truth_category: np.ndarray
    truth_perturbation: np.ndarray
    feature_names: List[str] = field(default_factory=list)
    timestamps: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = self.features.shape[0]
        columns = (
            self.ua_keys, self.user_agents, self.session_ids, self.days,
            self.untrusted_ip, self.untrusted_cookie, self.ato,
            self.truth_kind, self.truth_browser, self.truth_category,
            self.truth_perturbation,
        )
        for column in columns:
            if column.shape[0] != n:
                raise ValueError("dataset columns are misaligned")
        if self.timestamps is not None and self.timestamps.shape[0] != n:
            raise ValueError("dataset columns are misaligned")

    # ------------------------------------------------------------------
    # views

    def __len__(self) -> int:
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return int(self.features.shape[1])

    def matrix(self) -> np.ndarray:
        """Float view of the feature matrix (training input)."""
        return self.features.astype(float)

    def rows(self, start: int, stop: int) -> "Dataset":
        """Contiguous row range as a zero-copy view.

        Unlike :meth:`subset` (which fancy-indexes and therefore
        copies), slicing returns views over the parent's columns — the
        sliding-window path can trim a memory-mapped export without
        materializing it.
        """
        sl = slice(start, stop)
        return Dataset(
            features=self.features[sl],
            ua_keys=self.ua_keys[sl],
            user_agents=self.user_agents[sl],
            session_ids=self.session_ids[sl],
            days=self.days[sl],
            untrusted_ip=self.untrusted_ip[sl],
            untrusted_cookie=self.untrusted_cookie[sl],
            ato=self.ato[sl],
            truth_kind=self.truth_kind[sl],
            truth_browser=self.truth_browser[sl],
            truth_category=self.truth_category[sl],
            truth_perturbation=self.truth_perturbation[sl],
            feature_names=list(self.feature_names),
            timestamps=(
                None if self.timestamps is None else self.timestamps[sl]
            ),
        )

    def subset(self, mask: np.ndarray) -> "Dataset":
        """Row subset selected by a boolean mask or index array."""
        return Dataset(
            features=self.features[mask],
            ua_keys=self.ua_keys[mask],
            user_agents=self.user_agents[mask],
            session_ids=self.session_ids[mask],
            days=self.days[mask],
            untrusted_ip=self.untrusted_ip[mask],
            untrusted_cookie=self.untrusted_cookie[mask],
            ato=self.ato[mask],
            truth_kind=self.truth_kind[mask],
            truth_browser=self.truth_browser[mask],
            truth_category=self.truth_category[mask],
            truth_perturbation=self.truth_perturbation[mask],
            feature_names=list(self.feature_names),
            timestamps=(
                None if self.timestamps is None else self.timestamps[mask]
            ),
        )

    def is_fraud(self) -> np.ndarray:
        """Ground-truth fraud mask (scoring only)."""
        return self.truth_kind == SessionKind.FRAUD.value

    def is_detectable_fraud(self) -> np.ndarray:
        """Ground-truth Category-1/2 fraud mask (scoring only)."""
        return self.is_fraud() & np.isin(self.truth_category, (1, 2))

    def distinct_releases(self) -> List[str]:
        """Sorted distinct ``vendor-version`` labels present."""
        return sorted(set(self.ua_keys.tolist()))

    def tag_rates(self) -> dict:
        """Marginal rates of the three FinOrg tags."""
        n = max(1, len(self))
        return {
            "untrusted_ip": float(self.untrusted_ip.sum()) / n,
            "untrusted_cookie": float(self.untrusted_cookie.sum()) / n,
            "ato": float(self.ato.sum()) / n,
        }

    def sessions(self) -> Iterator[Session]:
        """Iterate rows as :class:`Session` objects (small batches only)."""
        for idx in range(len(self)):
            yield self.row(idx)

    def row(self, idx: int) -> Session:
        """Materialize one row as a :class:`Session`."""
        truth = GroundTruth(
            kind=SessionKind(self.truth_kind[idx]),
            browser=str(self.truth_browser[idx]),
            category=int(self.truth_category[idx]),
            perturbation=str(self.truth_perturbation[idx]),
        )
        return Session(
            session_id=str(self.session_ids[idx]),
            day=self.days[idx].astype("datetime64[D]").astype(object),
            user_agent=str(self.user_agents[idx]),
            features=tuple(int(v) for v in self.features[idx]),
            untrusted_ip=bool(self.untrusted_ip[idx]),
            untrusted_cookie=bool(self.untrusted_cookie[idx]),
            ato=bool(self.ato[idx]),
            truth=truth,
            timestamp=(
                0.0 if self.timestamps is None else float(self.timestamps[idx])
            ),
        )

    # ------------------------------------------------------------------
    # assembly / persistence

    @classmethod
    def concatenate(cls, parts: Sequence["Dataset"]) -> "Dataset":
        """Stack several datasets (column orders must agree)."""
        if not parts:
            raise ValueError("nothing to concatenate")
        names = parts[0].feature_names
        for part in parts[1:]:
            if part.feature_names != names:
                raise ValueError("feature column orders differ")
        if len(parts) == 1:
            # Zero-copy fast path: a single part (e.g. a store exported
            # from one memory-mapped columnar segment) passes through
            # without touching any column bytes.
            return parts[0]
        timestamps = None
        if all(p.timestamps is not None for p in parts):
            timestamps = np.concatenate([p.timestamps for p in parts])
        return cls(
            features=np.concatenate([p.features for p in parts]),
            ua_keys=np.concatenate([p.ua_keys for p in parts]),
            user_agents=np.concatenate([p.user_agents for p in parts]),
            session_ids=np.concatenate([p.session_ids for p in parts]),
            days=np.concatenate([p.days for p in parts]),
            untrusted_ip=np.concatenate([p.untrusted_ip for p in parts]),
            untrusted_cookie=np.concatenate([p.untrusted_cookie for p in parts]),
            ato=np.concatenate([p.ato for p in parts]),
            truth_kind=np.concatenate([p.truth_kind for p in parts]),
            truth_browser=np.concatenate([p.truth_browser for p in parts]),
            truth_category=np.concatenate([p.truth_category for p in parts]),
            truth_perturbation=np.concatenate([p.truth_perturbation for p in parts]),
            feature_names=list(names),
            timestamps=timestamps,
        )

    def save(self, path: str) -> None:
        """Persist to a ``.npz`` archive."""
        columns = dict(
            features=self.features,
            ua_keys=self.ua_keys.astype("U"),
            user_agents=self.user_agents.astype("U"),
            session_ids=self.session_ids.astype("U"),
            days=self.days.astype("datetime64[D]").astype("int64"),
            untrusted_ip=self.untrusted_ip,
            untrusted_cookie=self.untrusted_cookie,
            ato=self.ato,
            truth_kind=self.truth_kind.astype("U"),
            truth_browser=self.truth_browser.astype("U"),
            truth_category=self.truth_category,
            truth_perturbation=self.truth_perturbation.astype("U"),
            feature_names=np.array(self.feature_names, dtype="U"),
        )
        if self.timestamps is not None:
            columns["timestamps"] = self.timestamps.astype(np.float64)
        np.savez_compressed(path, **columns)

    @classmethod
    def load(cls, path: str) -> "Dataset":
        """Load a dataset saved with :meth:`save`."""
        with np.load(path, allow_pickle=False) as archive:
            return cls(
                features=archive["features"],
                ua_keys=archive["ua_keys"].astype(object),
                user_agents=archive["user_agents"].astype(object),
                session_ids=archive["session_ids"].astype(object),
                days=archive["days"].astype("datetime64[D]"),
                untrusted_ip=archive["untrusted_ip"],
                untrusted_cookie=archive["untrusted_cookie"],
                ato=archive["ato"],
                truth_kind=archive["truth_kind"].astype(object),
                truth_browser=archive["truth_browser"].astype(object),
                truth_category=archive["truth_category"],
                truth_perturbation=archive["truth_perturbation"].astype(object),
                feature_names=[str(n) for n in archive["feature_names"]],
                timestamps=(
                    archive["timestamps"]
                    if "timestamps" in archive.files
                    else None
                ),
            )
