"""Session records.

A session is one row of the FinOrg dataset: the coarse-grained feature
vector, the claimed user-agent, an opaque session id, the three internal
tags — plus, in the simulator only, the generative ground truth (which
real deployments never see; it exists to score the pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from enum import Enum
from typing import Optional, Tuple

import numpy as np

__all__ = ["GroundTruth", "Session", "SessionKind"]


class SessionKind(str, Enum):
    """Generative origin of a session."""

    LEGIT = "legit"
    DERIVATIVE = "derivative"  # Brave / Tor: legitimate but UA-ambiguous
    FRAUD = "fraud"


@dataclass(frozen=True)
class GroundTruth:
    """What the simulator knows about a session (never shown to models).

    ``actual_version`` records the engine release whose surface the
    session really exposes; for Category-1 fraud it is the bundled
    engine before tampering.
    """

    kind: SessionKind
    browser: str  # product label, e.g. "chrome", "brave", "GoLogin-3.3.23"
    category: int = 0  # fraud category 1-4; 0 for non-fraud
    perturbation: str = ""  # benign perturbation name, "" if none
    actual_version: int = 0

    @property
    def is_fraud(self) -> bool:
        """Whether the session originates from an attacker."""
        return self.kind is SessionKind.FRAUD

    @property
    def detectable_fraud(self) -> bool:
        """Category 1/2 fraud — what coarse-grained detection targets."""
        return self.is_fraud and self.category in (1, 2)


@dataclass(frozen=True)
class Session:
    """One observed session, as the pipeline sees it.

    ``timestamp`` is the absolute epoch-second instant of the session's
    *first* fingerprint collection.  ``day`` remains the coarse calendar
    grain the paper's training windows use; the timestamp is what the
    event-stream layer (:mod:`repro.traffic.events`) anchors per-event
    monotonic clocks to.  It defaults to ``0.0`` so constructors that
    predate it are unaffected.
    """

    session_id: str
    day: date
    user_agent: str
    features: Tuple[int, ...]
    untrusted_ip: bool
    untrusted_cookie: bool
    ato: bool
    truth: Optional[GroundTruth] = None
    timestamp: float = 0.0

    def vector(self) -> np.ndarray:
        """Feature values as an int vector."""
        return np.asarray(self.features, dtype=np.int32)
