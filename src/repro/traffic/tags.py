"""Generative model of FinOrg's internal session tags.

FinOrg tags sessions with ``Untrusted_IP`` (login from an IP the account
has no history with), ``Untrusted_Cookie`` (newly established cookie),
and ``ATO`` (the account was involved in a confirmed takeover within 72
hours).  The paper reports the marginal rates — 51% / 49% / 0.43% across
all traffic — and strong enrichment among flagged sessions (Table 4).

We encode the *conditional* structure as ground truth.  Every session
gets a :class:`Persona`:

* ``ORDINARY`` — the bulk of users; base rates.
* ``PRIVACY`` — privacy-conscious users (Brave, hardened Firefox,
  feature-stripped enterprise builds).  They trip IP/cookie heuristics
  more often (VPNs, cookie clearing) but are *less* associated with ATO
  than the base population — matching the paper's observation that
  low-risk-factor flags are usually benign.
* ``FRAUDSTER`` — Category 1/2 fraud-browser operators: stolen cookies
  replayed from unfamiliar infrastructure, with a material probability
  of a confirmed ATO inside 72 hours.
* ``STEALTH_FRAUDSTER`` — Category 3/4 attackers whose fingerprints are
  clean; they contribute to the all-traffic ATO rate but are invisible
  to coarse-grained detection (the paper's explanation for the 2%
  flagged-ATO rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

import numpy as np

__all__ = ["Persona", "TagModel", "TagRates"]


class Persona(str, Enum):
    """Latent user type driving the tag distribution."""

    ORDINARY = "ordinary"
    PRIVACY = "privacy"
    FRAUDSTER = "fraudster"
    STEALTH_FRAUDSTER = "stealth_fraudster"


@dataclass(frozen=True)
class TagRates:
    """Bernoulli rates of the three tags for one persona."""

    untrusted_ip: float
    untrusted_cookie: float
    ato: float

    def __post_init__(self) -> None:
        for name in ("untrusted_ip", "untrusted_cookie", "ato"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} rate must be a probability, got {value}")


_DEFAULT_RATES = {
    Persona.ORDINARY: TagRates(0.505, 0.485, 0.0039),
    Persona.PRIVACY: TagRates(0.670, 0.650, 0.0010),
    Persona.FRAUDSTER: TagRates(0.950, 0.920, 0.0700),
    Persona.STEALTH_FRAUDSTER: TagRates(0.900, 0.870, 0.0500),
}


class TagModel:
    """Samples (Untrusted_IP, Untrusted_Cookie, ATO) per persona."""

    def __init__(self, rates: dict = None) -> None:
        self.rates = dict(_DEFAULT_RATES)
        if rates:
            self.rates.update(rates)
        missing = set(Persona) - set(self.rates)
        if missing:
            raise ValueError(f"missing tag rates for personas: {missing}")

    def rates_for(self, persona: Persona) -> TagRates:
        """The Bernoulli rates of one persona."""
        return self.rates[Persona(persona)]

    def sample(
        self, persona: Persona, rng: np.random.Generator
    ) -> Tuple[bool, bool, bool]:
        """Draw one session's tag triple."""
        rates = self.rates_for(persona)
        return (
            bool(rng.random() < rates.untrusted_ip),
            bool(rng.random() < rates.untrusted_cookie),
            bool(rng.random() < rates.ato),
        )

    def sample_many(
        self, personas: Tuple[Persona, ...], rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized draw for a batch of personas."""
        n = len(personas)
        ip_rate = np.array([self.rates_for(p).untrusted_ip for p in personas])
        cookie_rate = np.array([self.rates_for(p).untrusted_cookie for p in personas])
        ato_rate = np.array([self.rates_for(p).ato for p in personas])
        draws = rng.random((3, n))
        return draws[0] < ip_rate, draws[1] < cookie_rate, draws[2] < ato_rate
