"""Per-day time series over a traffic window.

Operational views of a deployment window: daily session volume, daily
flag rate, and per-release adoption curves (how a new version's share
grows after launch).  These feed the monitoring example and give the
drift analysis calendar context — the paper's checks are meaningful
precisely because new releases ramp to dominant share within weeks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.detection import DetectionReport
from repro.traffic.dataset import Dataset

__all__ = ["adoption_curve", "daily_flag_rate", "daily_volume"]


def _days(dataset: Dataset) -> np.ndarray:
    return dataset.days.astype("datetime64[D]")


def daily_volume(dataset: Dataset) -> List[Tuple[str, int]]:
    """Sessions per calendar day, sorted by day."""
    days = _days(dataset)
    unique, counts = np.unique(days, return_counts=True)
    return [(str(day), int(count)) for day, count in zip(unique, counts)]


def daily_flag_rate(
    dataset: Dataset, report: DetectionReport
) -> List[Tuple[str, float, int]]:
    """(day, flag rate, sessions) per calendar day.

    ``report`` must come from evaluating exactly ``dataset``.
    """
    if len(report) != len(dataset):
        raise ValueError("report does not match the dataset")
    days = _days(dataset)
    flagged_by_day: Dict[np.datetime64, int] = defaultdict(int)
    total_by_day: Dict[np.datetime64, int] = defaultdict(int)
    for day, flagged in zip(days, report.flagged):
        total_by_day[day] += 1
        if flagged:
            flagged_by_day[day] += 1
    return [
        (str(day), flagged_by_day[day] / total, total)
        for day, total in sorted(total_by_day.items())
    ]


def adoption_curve(
    dataset: Dataset, ua_key: str, window_days: Optional[int] = None
) -> List[Tuple[str, float]]:
    """Daily traffic share of one release (its adoption ramp).

    Returns ``(day, share)`` for each day the dataset covers; restrict
    with ``window_days`` to the first N days after the release first
    appears.
    """
    days = _days(dataset)
    matches = dataset.ua_keys == ua_key
    if not matches.any():
        raise ValueError(f"no sessions for {ua_key!r}")
    unique_days = np.unique(days)
    first_seen = days[matches].min()
    curve = []
    for day in unique_days:
        if day < first_seen:
            continue
        if window_days is not None and (day - first_seen).astype(int) >= window_days:
            break
        day_mask = days == day
        share = float(matches[day_mask].sum()) / float(day_mask.sum())
        curve.append((str(day), share))
    return curve
