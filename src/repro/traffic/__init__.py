"""Synthetic FinOrg traffic.

The paper trains on 205k logged-in sessions collected at a financial
company, each carrying the 28 coarse-grained feature values, the
``navigator.userAgent`` string, an opaque session id, and three internal
tags (``Untrusted_IP``, ``Untrusted_Cookie``, ``ATO``).  That data is
proprietary; this subpackage generates a calibrated synthetic
equivalent:

* :mod:`repro.traffic.popularity` — browser-version market shares over
  calendar time (auto-updating majority, straggler tail, ancient relics);
* :mod:`repro.traffic.tags` — a generative model of the three session
  tags, conditioned on the session's persona (ordinary user, privacy
  enthusiast, fraudster), calibrated to the paper's Table 4 base rates;
* :mod:`repro.traffic.generator` — the simulator mixing legitimate
  sessions (with benign configuration perturbations), derivative
  browsers, and fraud-browser sessions of all four categories;
* :mod:`repro.traffic.dataset` — a columnar container with matrix
  views, splits, and (de)serialization.
"""

from repro.traffic.dataset import Dataset
from repro.traffic.generator import TrafficConfig, TrafficSimulator
from repro.traffic.popularity import PopularityModel
from repro.traffic.sessions import GroundTruth, Session, SessionKind
from repro.traffic.tags import Persona, TagModel

__all__ = [
    "Dataset",
    "GroundTruth",
    "Persona",
    "PopularityModel",
    "Session",
    "SessionKind",
    "TagModel",
    "TrafficConfig",
    "TrafficSimulator",
]
