"""Multi-event session streams.

"Beyond the Crawl" shows fingerprinting scripts fire on real user
interactions — page load, focus, form fill, navigation — not just once
at load time.  This module turns the simulator's one-row-per-session
datasets into *event streams*: ordered sequences of
:class:`SessionEvent` with monotonic per-event timestamps, each
carrying the fingerprint vector the collection script would have
observed at that instant.

Scenario families:

* ``BENIGN_RECOLLECT`` — the same genuine browser re-collected on
  interaction; every event carries the identical vector (the common
  case, and the one the verdict cache makes nearly free).
* ``ENGINE_SWAP`` — a Category-3 fraud browser whose spoof is *clean*
  at page load but whose real engine leaks into a later collection:
  the API surface flips mid-session.  The single-vector path scores
  only the first event and misses this entirely.
* ``SPOOF_UPDATE`` — the operator updates the spoof profile
  mid-session; the surface changes while the claimed user-agent stays.
* ``HIJACK_HANDOFF`` — a session token replayed from a different
  browser mid-stream: both the user-agent and the vector change.

Wire format: an event envelope is the fingerprint wire payload plus
``ev`` (event type), ``seq`` (0-based position) and ``ts`` (epoch
seconds).  ``core_wire()`` strips the envelope back to the *exact*
single-vector payload bytes, which is what lets the session layer
guarantee bit-identical first-event verdicts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fingerprint.script import FingerprintPayload
from repro.traffic.dataset import Dataset

__all__ = [
    "EventStreamConfig",
    "EventType",
    "SessionEvent",
    "SessionStream",
    "StreamScenario",
    "build_event_streams",
    "interleave_events",
]

try:  # pragma: no cover - enum import kept local to avoid cycles
    from enum import Enum
except ImportError:  # pragma: no cover
    raise


class EventType(str, Enum):
    """What user interaction triggered a fingerprint collection."""

    PAGE_LOAD = "page_load"
    FOCUS = "focus"
    FORM_FILL = "form_fill"
    NAVIGATION = "navigation"
    RE_COLLECTION = "re_collection"


class StreamScenario(str, Enum):
    """Generative shape of one session's event stream."""

    SINGLE_SHOT = "single_shot"
    BENIGN_RECOLLECT = "benign_recollect"
    ENGINE_SWAP = "engine_swap"
    SPOOF_UPDATE = "spoof_update"
    HIJACK_HANDOFF = "hijack_handoff"


# Interaction types cycled through after the mandatory first page load.
_FOLLOWUP_CYCLE: Tuple[EventType, ...] = (
    EventType.FOCUS,
    EventType.FORM_FILL,
    EventType.NAVIGATION,
    EventType.RE_COLLECTION,
)

# Scenarios whose mid-session surface change the single-vector path
# cannot observe.
FRAUD_SCENARIOS = (
    StreamScenario.ENGINE_SWAP,
    StreamScenario.SPOOF_UPDATE,
    StreamScenario.HIJACK_HANDOFF,
)


@dataclass(frozen=True)
class SessionEvent:
    """One interaction-triggered fingerprint collection."""

    session_id: str
    event_type: EventType
    seq: int
    timestamp: float
    user_agent: str
    values: Tuple[int, ...]
    suspicious_globals: Tuple[str, ...] = ()

    def payload(self) -> FingerprintPayload:
        """The event's fingerprint as a plain collection payload."""
        return FingerprintPayload(
            session_id=self.session_id,
            user_agent=self.user_agent,
            values=tuple(self.values),
            service_time_ms=0.0,
            suspicious_globals=tuple(self.suspicious_globals),
        )

    def core_wire(self) -> bytes:
        """The exact single-vector wire bytes for this event.

        Byte-for-byte what :meth:`FingerprintPayload.to_wire` produces,
        which is the parity anchor: scoring a first event through
        ``core_wire()`` traverses the very same ingest bytes as the
        one-shot path.
        """
        return self.payload().to_wire()

    def to_wire(self) -> bytes:
        """Serialize the full event envelope."""
        body = {
            "sid": self.session_id,
            "ev": self.event_type.value,
            "seq": self.seq,
            "ts": round(float(self.timestamp), 3),
            "ua": self.user_agent,
            "f": list(self.values),
        }
        if self.suspicious_globals:
            body["g"] = list(self.suspicious_globals)
        return json.dumps(body, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_wire(cls, wire: bytes) -> "SessionEvent":
        """Parse an event envelope (raises ``ValueError`` if malformed)."""
        try:
            body = json.loads(wire.decode("utf-8"))
            return cls(
                session_id=str(body["sid"]),
                event_type=EventType(str(body["ev"])),
                seq=int(body["seq"]),
                timestamp=float(body.get("ts", 0.0)),
                user_agent=str(body["ua"]),
                values=tuple(int(v) for v in body["f"]),
                suspicious_globals=tuple(
                    str(g) for g in body.get("g", ())
                ),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"malformed session event: {exc}") from exc


@dataclass(frozen=True)
class SessionStream:
    """All events of one session, in seq order."""

    session_id: str
    scenario: StreamScenario
    events: Tuple[SessionEvent, ...]
    row_index: int  # dataset row this stream was derived from

    @property
    def first(self) -> SessionEvent:
        return self.events[0]

    def surface_changes(self) -> int:
        """Number of events whose vector differs from its predecessor."""
        changes = 0
        for prev, cur in zip(self.events, self.events[1:]):
            if prev.values != cur.values:
                changes += 1
        return changes


@dataclass(frozen=True)
class EventStreamConfig:
    """Knobs of the stream generator.

    ``benign_multi_fraction`` of eligible legit rows become multi-event
    ``BENIGN_RECOLLECT`` streams; the fraud scenario counts pick victim
    rows deterministically.  Everything else stays ``SINGLE_SHOT``.
    """

    benign_multi_fraction: float = 0.2
    engine_swap_sessions: int = 8
    spoof_update_sessions: int = 4
    hijack_sessions: int = 4
    min_events: int = 3
    max_events: int = 6
    mean_gap_seconds: float = 20.0
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 <= self.benign_multi_fraction <= 1.0:
            raise ValueError("benign_multi_fraction must be in [0, 1]")
        if self.min_events < 2 or self.max_events < self.min_events:
            raise ValueError("need max_events >= min_events >= 2")
        if self.mean_gap_seconds <= 0:
            raise ValueError("mean_gap_seconds must be positive")


def _event_types(n_events: int) -> List[EventType]:
    types = [EventType.PAGE_LOAD]
    for i in range(n_events - 1):
        types.append(_FOLLOWUP_CYCLE[i % len(_FOLLOWUP_CYCLE)])
    return types


def _base_timestamp(dataset: Dataset, idx: int) -> float:
    if dataset.timestamps is not None:
        return float(dataset.timestamps[idx])
    day = dataset.days[idx].astype("datetime64[s]").astype(np.int64)
    return float(day)


def _row_events(
    dataset: Dataset,
    idx: int,
    n_events: int,
    rng: np.random.Generator,
    vectors: Sequence[Tuple[int, ...]],
    user_agents: Sequence[str],
) -> Tuple[SessionEvent, ...]:
    """Assemble one stream's events with a monotonic per-event clock."""
    session_id = str(dataset.session_ids[idx])
    base = _base_timestamp(dataset, idx)
    gaps = rng.exponential(scale=1.0, size=n_events - 1) + 0.5
    types = _event_types(n_events)
    events = []
    ts = base
    for seq in range(n_events):
        if seq:
            ts += float(gaps[seq - 1])
        events.append(
            SessionEvent(
                session_id=session_id,
                event_type=types[seq],
                seq=seq,
                timestamp=ts,
                user_agent=user_agents[seq],
                values=vectors[seq],
            )
        )
    return tuple(events)


def build_event_streams(
    dataset: Dataset,
    config: EventStreamConfig = EventStreamConfig(),
    donor_ok: Optional[Callable[[str, str], bool]] = None,
) -> List[SessionStream]:
    """Expand a one-row-per-session dataset into event streams.

    Fraud scenarios need a *donor* vector — the surface that leaks or
    takes over mid-session — which is drawn from another dataset row
    with a different ``vendor-version`` key (a different API-surface
    era by construction).  ``donor_ok(victim_ua_key, donor_ua_key)``
    optionally narrows donor choice further; benchmarks use it to pick
    donors from a different *cluster* so detectability is guaranteed
    rather than probable.

    Rows with ground truth prefer Category-3 victims for the fraud
    scenarios (their page-load surface matches the claimed user-agent,
    so the single-vector path scores them clean — the blind spot this
    subsystem exists to close); datasets without ground truth fall back
    to arbitrary rows.  Returns one :class:`SessionStream` per dataset
    row, in row order.
    """
    mean_gap = config.mean_gap_seconds
    rng = np.random.default_rng(config.seed)
    n = len(dataset)
    if n < 2:
        raise ValueError("need at least two rows to build event streams")

    ua_keys = [str(k) for k in dataset.ua_keys]
    rows_values: Dict[int, Tuple[int, ...]] = {}

    def values_of(idx: int) -> Tuple[int, ...]:
        cached = rows_values.get(idx)
        if cached is None:
            cached = tuple(int(v) for v in dataset.features[idx])
            rows_values[idx] = cached
        return cached

    # --- scenario assignment -----------------------------------------
    has_truth = bool((dataset.truth_kind != "").any())
    cat3 = (
        np.flatnonzero(dataset.truth_category == 3) if has_truth else
        np.array([], dtype=int)
    )
    legit = (
        np.flatnonzero(dataset.truth_kind == "legit") if has_truth else
        np.arange(n)
    )
    n_fraud = (
        config.engine_swap_sessions
        + config.spoof_update_sessions
        + config.hijack_sessions
    )
    victim_pool = cat3 if len(cat3) >= n_fraud else np.arange(n)
    victims = rng.permutation(victim_pool)[:n_fraud]
    scenario_by_row: Dict[int, StreamScenario] = {}
    cursor = 0
    for scenario, count in (
        (StreamScenario.ENGINE_SWAP, config.engine_swap_sessions),
        (StreamScenario.SPOOF_UPDATE, config.spoof_update_sessions),
        (StreamScenario.HIJACK_HANDOFF, config.hijack_sessions),
    ):
        for idx in victims[cursor : cursor + count]:
            scenario_by_row[int(idx)] = scenario
        cursor += count

    benign_candidates = np.array(
        [i for i in legit if int(i) not in scenario_by_row], dtype=int
    )
    n_benign = int(round(config.benign_multi_fraction * len(benign_candidates)))
    for idx in rng.permutation(benign_candidates)[:n_benign]:
        scenario_by_row[int(idx)] = StreamScenario.BENIGN_RECOLLECT

    # --- donor lookup -------------------------------------------------
    def pick_donor(idx: int, same_vendor: bool) -> Optional[int]:
        """A row with a different surface era (and optional constraints)."""
        key = ua_keys[idx]
        vendor = key.rsplit("-", 1)[0]
        order = rng.permutation(n)
        fallback = None
        for cand in order:
            cand = int(cand)
            dk = ua_keys[cand]
            if dk == key or values_of(cand) == values_of(idx):
                continue
            if donor_ok is not None and not donor_ok(key, dk):
                continue
            if same_vendor and not dk.startswith(vendor + "-"):
                if fallback is None:
                    fallback = cand
                continue
            return cand
        return fallback

    # --- assembly -----------------------------------------------------
    streams: List[SessionStream] = []
    for idx in range(n):
        scenario = scenario_by_row.get(idx, StreamScenario.SINGLE_SHOT)
        own = values_of(idx)
        ua = str(dataset.user_agents[idx])
        if scenario is StreamScenario.SINGLE_SHOT:
            events = _row_events(
                dataset, idx, 1, rng, [own], [ua]
            )
            streams.append(SessionStream(str(dataset.session_ids[idx]),
                                         scenario, events, idx))
            continue
        n_events = int(rng.integers(config.min_events, config.max_events + 1))
        vectors: List[Tuple[int, ...]] = [own] * n_events
        agents: List[str] = [ua] * n_events
        if scenario is not StreamScenario.BENIGN_RECOLLECT:
            donor = pick_donor(
                idx, same_vendor=scenario is StreamScenario.SPOOF_UPDATE
            )
            if donor is None:
                scenario = StreamScenario.BENIGN_RECOLLECT
            else:
                swap_at = int(rng.integers(1, n_events))
                for seq in range(swap_at, n_events):
                    vectors[seq] = values_of(donor)
                    if scenario is StreamScenario.HIJACK_HANDOFF:
                        agents[seq] = str(dataset.user_agents[donor])
        events = _row_events(dataset, idx, n_events, rng, vectors, agents)
        # Scale the unit-exponential gaps up to the configured mean.
        if mean_gap != 1.0:
            base = events[0].timestamp
            events = tuple(
                SessionEvent(
                    session_id=e.session_id,
                    event_type=e.event_type,
                    seq=e.seq,
                    timestamp=base + (e.timestamp - base) * mean_gap,
                    user_agent=e.user_agent,
                    values=e.values,
                    suspicious_globals=e.suspicious_globals,
                )
                for e in events
            )
        streams.append(
            SessionStream(str(dataset.session_ids[idx]), scenario, events, idx)
        )
    return streams


def interleave_events(streams: Sequence[SessionStream]) -> List[SessionEvent]:
    """All events of all streams in global timestamp order.

    Ties (possible when timestamps default to day precision) break by
    ``(session_id, seq)``, so per-session seq order — the ordering
    guarantee the tracker relies on — is always preserved.
    """
    events = [event for stream in streams for event in stream.events]
    events.sort(key=lambda e: (e.timestamp, e.session_id, e.seq))
    return events
