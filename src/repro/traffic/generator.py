"""The FinOrg traffic simulator.

Generates datasets shaped like the paper's deployment data: 205k
logged-in sessions over a calendar window, a realistic version mix
(:mod:`repro.traffic.popularity`), benign configuration perturbations
(:mod:`repro.browsers.configs`), derivative browsers (Brave), and
injected fraud-browser sessions of all four Section 2.3 categories.

The generator works at two speeds: feature vectors for each distinct
``(vendor, version, perturbation)`` combination are collected once from
a real simulated :class:`JSEnvironment` and then broadcast to all
matching rows, so a 205k-row dataset builds in a couple of seconds while
still exercising the same collection code path as a single session.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import date, timedelta
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.browsers.configs import BENIGN_PERTURBATIONS, Perturbation
from repro.browsers.derivatives import brave_environment
from repro.browsers.profiles import BrowserProfile
from repro.browsers.releases import (
    ReleaseCalendar,
    default_calendar,
    engine_for_vendor,
)
from repro.browsers.useragent import Vendor, format_user_agent
from repro.fingerprint.collector import FingerprintCollector
from repro.fingerprint.features import FEATURE_SPECS, FeatureSpec
from repro.fraudbrowsers.base import Category, FraudProfile
from repro.fraudbrowsers.catalog import FRAUD_BROWSERS, fraud_browser
from repro.jsengine.evolution import EvolutionModel, default_model
from repro.traffic.dataset import Dataset
from repro.traffic.popularity import PopularityModel
from repro.traffic.sessions import SessionKind
from repro.traffic.tags import Persona, TagModel

__all__ = [
    "TrafficConfig",
    "TrafficSimulator",
    "VectorFactory",
    "choose_perturbation",
]

_WEEK = timedelta(days=7)

# Product mix of fraud-browser sessions observed in traffic.  Weights are
# arbitrary but fixed; Category-2 engines span Chromium 61-114 so fixed
# fingerprints land in several legitimate clusters.
_CAT1_MIX: Tuple[Tuple[str, float], ...] = (
    ("Linken Sphere-8.93", 0.5),
    ("ClonBrowser-4.6.6", 0.5),
)
_CAT2_MIX: Tuple[Tuple[str, float], ...] = (
    ("GoLogin-3.2.19", 0.22),
    ("Incogniton-3.2.7.7", 0.18),
    ("CheBrowser-0.3.38", 0.14),
    ("VMLogin-1.3.8.5", 0.14),
    ("AntBrowser-2023.05", 0.12),
    ("Octo Browser-1.10", 0.10),
    ("Sphere-1.3", 0.10),
)


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of the simulated deployment window.

    Defaults reproduce the paper's training window: 205k sessions from
    March 1 to July 1, 2023, with a fraud prevalence calibrated to the
    Table 4 outcomes (897 flagged sessions, ~0.43% ATO overall).
    """

    n_sessions: int = 205_000
    start: date = date(2023, 3, 1)
    end: date = date(2023, 7, 1)
    seed: int = 7
    cat1_sessions: int = 200
    cat2_sessions: int = 320
    cat3_sessions: int = 100
    cat4_sessions: int = 150
    brave_sessions: int = 40

    def fraud_total(self) -> int:
        """Number of injected fraud sessions."""
        return (
            self.cat1_sessions
            + self.cat2_sessions
            + self.cat3_sessions
            + self.cat4_sessions
        )

    def scaled(self, n_sessions: int) -> "TrafficConfig":
        """Same mix at a different size (fraud counts scale linearly)."""
        ratio = n_sessions / self.n_sessions
        return replace(
            self,
            n_sessions=n_sessions,
            cat1_sessions=max(1, int(round(self.cat1_sessions * ratio))),
            cat2_sessions=max(1, int(round(self.cat2_sessions * ratio))),
            cat3_sessions=max(0, int(round(self.cat3_sessions * ratio))),
            cat4_sessions=max(0, int(round(self.cat4_sessions * ratio))),
            brave_sessions=max(0, int(round(self.brave_sessions * ratio))),
        )


class VectorFactory:
    """Feature vectors per (vendor, version, perturbation), cached.

    Shared by the one-shot simulator and the gauntlet's per-day
    generator: every distinct combination is collected once from a real
    simulated :class:`JSEnvironment` and broadcast to matching rows, so
    a multi-month replay pays collection cost only when the universe
    actually changes (a new release, a new spoof target).
    """

    def __init__(
        self, specs: Sequence[FeatureSpec], model: EvolutionModel
    ) -> None:
        self._collector = FingerprintCollector(specs)
        self._model = model
        self._cache: Dict[Tuple, np.ndarray] = {}

    def legit(
        self, vendor: Vendor, version: int, perturbation: Optional[Perturbation]
    ) -> np.ndarray:
        """Vector for a genuine installation (optionally perturbed)."""
        key = ("legit", vendor, version, perturbation.name if perturbation else "")
        vector = self._cache.get(key)
        if vector is None:
            profile = BrowserProfile(
                vendor, version, (perturbation,) if perturbation else ()
            )
            vector = self._collector.collect(profile.environment(self._model))
            self._cache[key] = vector
        return vector

    def brave(self, version: int) -> np.ndarray:
        """Vector for a Brave build tracking ``chrome-version``."""
        key = ("brave", version)
        vector = self._cache.get(key)
        if vector is None:
            env = brave_environment(version)
            env.model = self._model
            vector = self._collector.collect(env)
            self._cache[key] = vector
        return vector

    def fraud(self, product_name: str, profile: FraudProfile) -> np.ndarray:
        """Vector for a fraud-browser session (Category 1 is per-profile)."""
        product = fraud_browser(product_name)
        if product.category is Category.IMPOSSIBLE_FINGERPRINT:
            return self._collector.collect(
                product.environment(profile, self._model)
            )
        key = ("fraud", product.full_name, product.category, profile.claimed.key())
        vector = self._cache.get(key)
        if vector is None:
            vector = self._collector.collect(
                product.environment(profile, self._model)
            )
            self._cache[key] = vector
        return vector


# Back-compat alias (pre-gauntlet name).
_VectorFactory = VectorFactory


def choose_perturbation(
    rng: np.random.Generator,
    vendor: Vendor,
    version: int,
    perturbations: Sequence[Perturbation] = BENIGN_PERTURBATIONS,
) -> Optional[Perturbation]:
    """Draw one benign perturbation (or none) for a legit session."""
    engine = engine_for_vendor(vendor, version)
    draw = float(rng.random())
    threshold = 0.0
    for perturbation in perturbations:
        if not perturbation.applies_to(engine, version, vendor):
            continue
        threshold += perturbation.probability
        if draw < threshold:
            return perturbation
    return None


class TrafficSimulator:
    """Generates FinOrg-shaped datasets from the simulated universe."""

    def __init__(
        self,
        config: TrafficConfig = TrafficConfig(),
        specs: Sequence[FeatureSpec] = FEATURE_SPECS,
        model: Optional[EvolutionModel] = None,
        calendar: Optional[ReleaseCalendar] = None,
        tag_model: Optional[TagModel] = None,
        perturbations: Sequence[Perturbation] = BENIGN_PERTURBATIONS,
    ) -> None:
        if config.n_sessions <= config.fraud_total() + config.brave_sessions:
            raise ValueError("n_sessions too small for the configured fraud mix")
        self.config = config
        self.specs = tuple(specs)
        self.model = model if model is not None else default_model()
        self.calendar = calendar if calendar is not None else default_calendar()
        self.popularity = PopularityModel(self.calendar)
        self.tag_model = tag_model if tag_model is not None else TagModel()
        self.perturbations = tuple(perturbations)
        self._factory = VectorFactory(self.specs, self.model)

    # ------------------------------------------------------------------

    def generate(self) -> Dataset:
        """Build the full dataset (legit + derivative + fraud, shuffled)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        n_legit = cfg.n_sessions - cfg.fraud_total() - cfg.brave_sessions

        days = self._sample_days(rng, cfg.n_sessions)
        rows: List[dict] = []
        rows.extend(self._legit_rows(rng, days[:n_legit]))
        cursor = n_legit
        rows.extend(
            self._brave_rows(rng, days[cursor : cursor + cfg.brave_sessions])
        )
        cursor += cfg.brave_sessions
        for category, count in (
            (1, cfg.cat1_sessions),
            (2, cfg.cat2_sessions),
            (3, cfg.cat3_sessions),
            (4, cfg.cat4_sessions),
        ):
            rows.extend(
                self._fraud_rows(rng, days[cursor : cursor + count], category)
            )
            cursor += count

        order = rng.permutation(len(rows))
        return self._assemble([rows[i] for i in order], rng)

    # ------------------------------------------------------------------
    # row builders

    def _sample_days(self, rng: np.random.Generator, count: int) -> List[date]:
        span = (self.config.end - self.config.start).days
        if span <= 0:
            raise ValueError("config.end must be after config.start")
        offsets = rng.integers(0, span, size=count)
        return [self.config.start + timedelta(days=int(o)) for o in offsets]

    def _sample_versions(
        self, rng: np.random.Generator, days: Sequence[date]
    ) -> List[Tuple[Vendor, int]]:
        """Sample (vendor, version) per day, bucketing days by week."""
        buckets: Dict[date, List[int]] = {}
        for idx, day in enumerate(days):
            anchor = self.config.start + _WEEK * (
                (day - self.config.start) // _WEEK
            )
            buckets.setdefault(anchor, []).append(idx)
        result: List[Optional[Tuple[Vendor, int]]] = [None] * len(days)
        for anchor, indices in sorted(buckets.items()):
            midpoint = anchor + timedelta(days=3)
            picks = self.popularity.sample(midpoint, len(indices), rng)
            for idx, pick in zip(indices, picks):
                result[idx] = pick
        return result  # type: ignore[return-value]

    def _choose_perturbation(
        self, rng: np.random.Generator, vendor: Vendor, version: int
    ) -> Optional[Perturbation]:
        return choose_perturbation(rng, vendor, version, self.perturbations)

    def _legit_rows(
        self, rng: np.random.Generator, days: Sequence[date]
    ) -> List[dict]:
        versions = self._sample_versions(rng, days)
        rows = []
        for day, (vendor, version) in zip(days, versions):
            perturbation = self._choose_perturbation(rng, vendor, version)
            persona = (
                Persona.PRIVACY if perturbation is not None else Persona.ORDINARY
            )
            rows.append(
                {
                    "day": day,
                    "vendor": vendor,
                    "version": version,
                    "vector": self._factory.legit(vendor, version, perturbation),
                    "persona": persona,
                    "kind": SessionKind.LEGIT,
                    "browser": vendor.value,
                    "category": 0,
                    "perturbation": perturbation.name if perturbation else "",
                }
            )
        return rows

    def _brave_rows(
        self, rng: np.random.Generator, days: Sequence[date]
    ) -> List[dict]:
        rows = []
        for day in days:
            chrome = self.calendar.latest_before(Vendor.CHROME, day)
            # Brave users sit on the latest or previous Chrome train.
            version = chrome.version - int(rng.random() < 0.3)
            rows.append(
                {
                    "day": day,
                    "vendor": Vendor.CHROME,
                    "version": version,
                    "vector": self._factory.brave(version),
                    "persona": Persona.PRIVACY,
                    "kind": SessionKind.DERIVATIVE,
                    "browser": "brave",
                    "category": 0,
                    "perturbation": "brave-shields",
                }
            )
        return rows

    def _fraud_rows(
        self, rng: np.random.Generator, days: Sequence[date], category: int
    ) -> List[dict]:
        # Stolen profiles circulate on marketplaces for months before
        # use, so the victim's browser skews older than live traffic:
        # sample victim user-agents from the popularity mix of ~3 months
        # before the session date.
        victim_days = [day - timedelta(days=90) for day in days]
        victims = self._sample_versions(rng, victim_days)
        if category == 1:
            mix = _CAT1_MIX
        elif category == 2:
            mix = _CAT2_MIX
        else:
            mix = ()
        rows = []
        for idx, (day, (vendor, version)) in enumerate(zip(days, victims)):
            claimed_key = f"{vendor.value}-{version}"
            if category in (1, 2):
                product = self._pick_product(rng, mix)
                profile = FraudProfile(
                    product,
                    _claimed(vendor, version),
                    profile_seed=int(rng.integers(2**31)),
                )
                vector = self._factory.fraud(product, profile)
                browser = product
                persona = Persona.FRAUDSTER
            elif category == 3:
                product = "AdsPower-5.4.20"
                profile = FraudProfile(product, _claimed(vendor, version), idx)
                vector = self._factory.fraud(product, profile)
                browser = product
                persona = Persona.STEALTH_FRAUDSTER
            else:
                # Category 4: a genuine browser replaying stolen state.
                vector = self._factory.legit(vendor, version, None)
                browser = "stolen-profile-replay"
                persona = Persona.STEALTH_FRAUDSTER
            rows.append(
                {
                    "day": day,
                    "vendor": vendor,
                    "version": version,
                    "vector": vector,
                    "persona": persona,
                    "kind": SessionKind.FRAUD,
                    "browser": browser,
                    "category": category,
                    "perturbation": "",
                    "claimed_key": claimed_key,
                }
            )
        return rows

    @staticmethod
    def _pick_product(
        rng: np.random.Generator, mix: Tuple[Tuple[str, float], ...]
    ) -> str:
        draw = float(rng.random())
        threshold = 0.0
        for name, weight in mix:
            threshold += weight
            if draw < threshold:
                return name
        return mix[-1][0]

    # ------------------------------------------------------------------

    def _assemble(self, rows: List[dict], rng: np.random.Generator) -> Dataset:
        n = len(rows)
        features = np.vstack([row["vector"] for row in rows]).astype(np.int32)
        ua_keys = np.array(
            [f"{row['vendor'].value}-{row['version']}" for row in rows],
            dtype=object,
        )
        user_agents = np.array(
            [format_user_agent(row["vendor"], row["version"]) for row in rows],
            dtype=object,
        )
        session_ids = np.array(
            [f"sess-{self.config.seed:02d}-{i:07d}" for i in range(n)], dtype=object
        )
        days = np.array([row["day"] for row in rows], dtype="datetime64[D]")
        personas = tuple(row["persona"] for row in rows)
        ip, cookie, ato = self.tag_model.sample_many(personas, rng)
        # Per-session collection instants: a uniform second-of-day offset
        # on top of each row's epoch day.  Drawn *after* the tag model so
        # every pre-timestamp column keeps its historical byte-exact
        # values for a given seed.  The event-stream layer derives its
        # monotonic per-event clocks from these anchors.
        epoch_seconds = days.astype("datetime64[s]").astype(np.int64)
        timestamps = epoch_seconds.astype(np.float64) + rng.uniform(
            0.0, 86_400.0, size=n
        )
        return Dataset(
            features=features,
            ua_keys=ua_keys,
            user_agents=user_agents,
            session_ids=session_ids,
            days=days,
            untrusted_ip=ip,
            untrusted_cookie=cookie,
            ato=ato,
            truth_kind=np.array([row["kind"].value for row in rows], dtype=object),
            truth_browser=np.array([row["browser"] for row in rows], dtype=object),
            truth_category=np.array(
                [row["category"] for row in rows], dtype=np.int8
            ),
            truth_perturbation=np.array(
                [row["perturbation"] for row in rows], dtype=object
            ),
            feature_names=[spec.name for spec in self.specs],
            timestamps=timestamps,
        )


def _claimed(vendor: Vendor, version: int):
    from repro.browsers.useragent import parse_ua_key

    return parse_ua_key(f"{vendor.value}-{version}")
