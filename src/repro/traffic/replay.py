"""Dataset-to-wire replay.

Turns a :class:`~repro.traffic.dataset.Dataset` back into the wire
payloads its sessions would have posted — the bridge between the
offline simulator and the online service layer, used for load tests,
service demos, and end-to-end verification that offline and online
verdicts agree.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.fingerprint.script import FingerprintPayload
from repro.traffic.dataset import Dataset

__all__ = ["iter_payloads", "iter_wire_payloads"]


def iter_payloads(
    dataset: Dataset, limit: Optional[int] = None
) -> Iterator[FingerprintPayload]:
    """Yield each session as a :class:`FingerprintPayload`."""
    n = len(dataset) if limit is None else min(limit, len(dataset))
    for idx in range(n):
        yield FingerprintPayload(
            session_id=str(dataset.session_ids[idx]),
            user_agent=str(dataset.user_agents[idx]),
            values=tuple(int(v) for v in dataset.features[idx]),
            service_time_ms=0.0,
        )


def iter_wire_payloads(
    dataset: Dataset, limit: Optional[int] = None
) -> Iterator[bytes]:
    """Yield each session as serialized wire bytes."""
    for payload in iter_payloads(dataset, limit):
        yield payload.to_wire()
