"""The gauntlet's per-day columnar event ledger.

One row per virtual day, stored column-wise; serialized through the
shared bench envelope (:mod:`repro.analysis.benchio`) so ``gauntlet
run`` output, ``BENCH_gauntlet.json`` and every other bench artifact
share one schema and one diff tool (``benchio diff``).

Determinism contract: :meth:`DayLedger.digest` hashes only the columns
in :data:`DIGEST_COLUMNS` — the event history that must be a pure
function of the seed.  Latency percentiles, failover counts and shard
restarts are recorded but excluded: they depend on wall-clock
scheduling, and two identical-seed runs legitimately differ there.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Sequence

__all__ = ["DayLedger", "DIGEST_COLUMNS", "TIMING_COLUMNS"]

# Deterministic event columns: hashed into the ledger digest.
DIGEST_COLUMNS: Sequence[str] = (
    "day",
    "new_releases",
    "new_release_keys",
    "n_sessions",
    "n_legit",
    "n_fraud",
    "fraud_cat1",
    "fraud_cat2",
    "fraud_cat3",
    "fraud_cat4",
    "flagged_legit",
    "flagged_cat1",
    "flagged_cat2",
    "flagged_cat3",
    "flagged_cat4",
    "monitor_alarm",
    "drift_checked",
    "drift_detected",
    "retrained",
    "staged_version",
    "promotions",
    "rollbacks",
    "rollout_status",
    "rollout_stage",
    "serving_version",
    "marketplace_stock",
    "stock_age_days",
    "adaptations",
    # Blind-window accounting: sessions whose claimed UA was absent
    # from the serving model's table at the start of the day, split by
    # ground truth, plus the coverage planner's per-day decision.
    "unknown_sessions",
    "unknown_fraud",
    "unknown_fraud_flagged",
    "unknown_legit",
    "unknown_legit_flagged",
    "coverage_trigger",
    "coverage_reason",
)

# Wall-clock-dependent columns: recorded for operators, never hashed.
TIMING_COLUMNS: Sequence[str] = (
    "p50_ms",
    "p99_ms",
    "failovers",
    "shard_restarts",
    "breach",
)

_ALL_COLUMNS = tuple(DIGEST_COLUMNS) + tuple(TIMING_COLUMNS)


class DayLedger:
    """Columnar store of per-day gauntlet events."""

    def __init__(self) -> None:
        self._columns: Dict[str, list] = {name: [] for name in _ALL_COLUMNS}

    # ------------------------------------------------------------------

    def record(self, **fields) -> None:
        """Append one day; every known column must be present."""
        missing = [name for name in _ALL_COLUMNS if name not in fields]
        if missing:
            raise ValueError(f"ledger row missing columns: {missing}")
        unknown = [name for name in fields if name not in self._columns]
        if unknown:
            raise ValueError(f"ledger row has unknown columns: {unknown}")
        for name in _ALL_COLUMNS:
            self._columns[name].append(fields[name])

    def __len__(self) -> int:
        return len(self._columns["day"])

    def column(self, name: str) -> list:
        """One column, oldest day first."""
        return list(self._columns[name])

    # ------------------------------------------------------------------

    def digest(self) -> str:
        """sha256 over the deterministic columns (canonical JSON)."""
        canon = {name: self._columns[name] for name in DIGEST_COLUMNS}
        blob = json.dumps(canon, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_cells(self) -> List[dict]:
        """Bench-envelope cells: one dict per day, ``cell`` = the date."""
        cells = []
        for i in range(len(self)):
            cell = {"cell": self._columns["day"][i]}
            for name in _ALL_COLUMNS:
                if name != "day":
                    cell[name] = self._columns[name][i]
            cells.append(cell)
        return cells

    @classmethod
    def from_cells(cls, cells: Sequence[dict]) -> "DayLedger":
        """Rebuild a ledger from envelope cells (``gauntlet report``).

        Columns a cell does not carry (artifacts written before those
        columns existed, e.g. the blind-window tallies) come back as
        ``None``; :meth:`summary` treats ``None`` as absent.  Cells that
        are not day rows (the ``aggregate`` summary cell the bench
        appends) are skipped.
        """
        ledger = cls()
        for cell in cells:
            if cell.get("cell") == "aggregate":
                continue
            fields = {"day": cell["cell"]}
            for name in _ALL_COLUMNS:
                if name != "day":
                    fields[name] = cell.get(name)
            ledger.record(**fields)
        return ledger

    # ------------------------------------------------------------------

    def _sum(self, name: str) -> int:
        """Column sum that tolerates ``None`` entries (older artifacts)."""
        return sum(v for v in self._columns[name] if v is not None)

    def retrain_lags(self) -> List[int]:
        """Days from each release day to the next retrain (blind window).

        For every day that shipped at least one release, the lag is the
        distance to the first same-or-later day whose check retrained;
        a release never followed by a retrain counts the remaining run
        length (right-censored).  Lower is better — this is the metric
        the coverage planner exists to shrink.
        """
        releases = self._columns["new_releases"]
        retrained = self._columns["retrained"]
        n = len(self)
        lags: List[int] = []
        for i in range(n):
            if not releases[i]:
                continue
            for j in range(i, n):
                if retrained[j]:
                    lags.append(j - i)
                    break
            else:
                lags.append(n - i)
        return lags

    def summary(self) -> dict:
        """Whole-run aggregates (detection per category, event counts)."""
        per_category = {}
        for cat in (1, 2, 3, 4):
            total = self._sum(f"fraud_cat{cat}")
            flagged = self._sum(f"flagged_cat{cat}")
            per_category[f"cat{cat}"] = {
                "sessions": total,
                "flagged": flagged,
                "detection_rate": round(flagged / total, 4) if total else None,
            }
        n_legit = self._sum("n_legit")
        fp = self._sum("flagged_legit")
        n_fraud = self._sum("n_fraud")
        fraud_flagged = sum(
            self._sum(f"flagged_cat{c}") for c in (1, 2, 3, 4)
        )
        unknown_fraud = self._sum("unknown_fraud")
        unknown_fraud_flagged = self._sum("unknown_fraud_flagged")
        unknown_legit = self._sum("unknown_legit")
        unknown_legit_flagged = self._sum("unknown_legit_flagged")
        lags = self.retrain_lags()
        p99s = [v for v in self._columns["p99_ms"] if v is not None]
        return {
            "days": len(self),
            "sessions": self._sum("n_sessions"),
            "legit_sessions": n_legit,
            "fraud_sessions": n_fraud,
            "false_positive_rate": round(fp / n_legit, 5) if n_legit else None,
            "overall_detection_rate": (
                round(fraud_flagged / n_fraud, 4) if n_fraud else None
            ),
            "per_category": per_category,
            "drift_checks": self._sum("drift_checked"),
            "drift_detections": self._sum("drift_detected"),
            "retrains": self._sum("retrained"),
            "promotions": self._sum("promotions"),
            "rollbacks": self._sum("rollbacks"),
            "final_serving_version": (
                self._columns["serving_version"][-1] if len(self) else None
            ),
            "monitor_alarm_days": sum(
                1 for v in self._columns["monitor_alarm"] if v
            ),
            "adaptations": self._sum("adaptations"),
            # Blind-window metrics (the coverage subsystem's scoreboard).
            "unknown_ua_sessions": self._sum("unknown_sessions"),
            "unknown_ua_fraud_sessions": unknown_fraud,
            "unknown_ua_detection_rate": (
                round(unknown_fraud_flagged / unknown_fraud, 4)
                if unknown_fraud
                else None
            ),
            "unknown_ua_false_positive_rate": (
                round(unknown_legit_flagged / unknown_legit, 5)
                if unknown_legit
                else None
            ),
            "coverage_retrain_triggers": self._sum("coverage_trigger"),
            "mean_retrain_lag_days": (
                round(sum(lags) / len(lags), 3) if lags else None
            ),
            "max_retrain_lag_days": max(lags) if lags else None,
            "p99_ms_max": round(max(p99s), 3) if p99s else None,
            "ledger_digest": self.digest(),
        }
