"""ASCII rendering of a gauntlet run (``gauntlet report``).

Works from either a live :class:`~repro.gauntlet.orchestrator.GauntletResult`
or a ``BENCH_gauntlet.json`` document (the bench envelope's ``cells``
are the ledger rows), so operators can inspect a committed artifact
without re-running the replay.
"""

from __future__ import annotations

from dataclasses import asdict
from datetime import date
from typing import List, Optional, Union

from repro.analysis.benchio import write_bench_json
from repro.gauntlet.ledger import DayLedger

__all__ = ["render_report", "render_timeline", "write_gauntlet_json"]


def write_gauntlet_json(result, path: Union[str, "Path"], extra: Optional[dict] = None) -> dict:
    """Persist a :class:`GauntletResult` as a bench-envelope document.

    The ledger rows become the envelope's ``cells`` (one per day), so
    ``benchio diff`` and ``gauntlet report`` both read the artifact.
    """
    config = {
        key: value.isoformat() if isinstance(value, date) else value
        for key, value in asdict(result.config).items()
    }
    merged = {
        "summary": result.summary,
        "adversary": result.adversary,
        "rollout_events": [list(event) for event in result.rollout_events],
        "retraining": result.retraining,
        "registry_versions": result.registry_versions,
    }
    if extra:
        merged.update(extra)
    # Whole-run scalars ride along as one extra ``aggregate`` cell so
    # ``benchio diff`` can gate run-level metrics (unknown-UA detection
    # rate, retrain lag) across artifacts; ``DayLedger.from_cells``
    # skips it when rebuilding day rows.
    aggregate = {"cell": "aggregate"}
    aggregate.update(
        {
            key: value
            for key, value in result.summary.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
    )
    return write_bench_json(
        path,
        benchmark="gauntlet",
        config=config,
        cells=result.ledger.to_cells() + [aggregate],
        extra=merged,
    )


def _fmt_rate(value: Optional[float]) -> str:
    return "-" if value is None else f"{100 * value:.1f}%"


def render_report(ledger: DayLedger, adversary: Optional[dict] = None) -> str:
    """The whole-run summary: detection by category, ops events."""
    summary = ledger.summary()
    lines: List[str] = []
    lines.append("gauntlet replay: %(days)d days, %(sessions)d sessions" % summary)
    lines.append("")
    lines.append("  category                    sessions  flagged  detection")
    labels = {
        "cat1": "1 impossible fingerprint",
        "cat2": "2 fixed engine",
        "cat3": "3 engine follows ua",
        "cat4": "4 genuine browser",
    }
    for key, label in labels.items():
        row = summary["per_category"][key]
        lines.append(
            f"  {label:<26}  {row['sessions']:>8}  {row['flagged']:>7}  "
            f"{_fmt_rate(row['detection_rate']):>9}"
        )
    lines.append(
        f"  {'legit (false positives)':<26}  {summary['legit_sessions']:>8}  "
        f"{sum(ledger.column('flagged_legit')):>7}  "
        f"{_fmt_rate(summary['false_positive_rate']):>9}"
    )
    lines.append("")
    lines.append(
        "  drift checks %d (%d detections) | retrains %d | promotions %d | "
        "rollbacks %d"
        % (
            summary["drift_checks"],
            summary["drift_detections"],
            summary["retrains"],
            summary["promotions"],
            summary["rollbacks"],
        )
    )
    lines.append(
        "  monitor alarm days %d | adversary adaptations %d | "
        "final serving version v%s"
        % (
            summary["monitor_alarm_days"],
            summary["adaptations"],
            summary["final_serving_version"],
        )
    )
    if summary["unknown_ua_sessions"]:
        lines.append(
            "  unknown-ua blind window: %d sessions (%d fraud) | "
            "detection %s | fp %s"
            % (
                summary["unknown_ua_sessions"],
                summary["unknown_ua_fraud_sessions"],
                _fmt_rate(summary["unknown_ua_detection_rate"]),
                _fmt_rate(summary["unknown_ua_false_positive_rate"]),
            )
        )
        lag = summary["mean_retrain_lag_days"]
        lines.append(
            "  coverage triggers %d | retrain lag mean %s / max %s days"
            % (
                summary["coverage_retrain_triggers"],
                "-" if lag is None else f"{lag:.1f}",
                summary["max_retrain_lag_days"],
            )
        )
    if summary["p99_ms_max"] is not None:
        lines.append(f"  worst day p99 {summary['p99_ms_max']:.3f} ms")
    lines.append(f"  ledger digest {summary['ledger_digest'][:16]}...")
    if adversary:
        lines.append("")
        lines.append(
            "  adversary end state: weights "
            + " ".join(
                f"cat{c}={w}" for c, w in sorted(adversary["weights"].items())
            )
        )
        lines.append(
            f"  cat2 spoof target {adversary['cat2_target']} | "
            f"buying freshest: {adversary['buy_freshest']}"
        )
    return "\n".join(lines)


def render_timeline(ledger: DayLedger, limit: Optional[int] = None) -> str:
    """Day-by-day event log, quiet days elided."""
    days = ledger.column("day")
    interesting: List[str] = []
    for i in range(len(ledger)):
        events: List[str] = []
        keys = ledger.column("new_release_keys")[i]
        if keys:
            events.append("ships " + ", ".join(keys))
        reason = ledger.column("coverage_reason")[i]
        if reason:
            events.append(f"coverage trigger: {reason}")
        if ledger.column("drift_checked")[i]:
            detected = ledger.column("drift_detected")[i]
            events.append("drift check" + (": DRIFT" if detected else ": clean"))
        if ledger.column("retrained")[i]:
            events.append(f"retrained -> v{ledger.column('staged_version')[i]}")
        if ledger.column("promotions")[i]:
            events.append("PROMOTED")
        if ledger.column("rollbacks")[i]:
            breach = ledger.column("breach")[i]
            events.append(f"ROLLBACK ({breach})")
        if ledger.column("shard_restarts")[i]:
            events.append(f"{ledger.column('shard_restarts')[i]} shard restart(s)")
        if ledger.column("monitor_alarm")[i]:
            events.append("monitor ALARM")
        if ledger.column("adaptations")[i]:
            events.append(
                f"adversary adapts x{ledger.column('adaptations')[i]}"
            )
        if events:
            interesting.append(f"  {days[i]}  " + "; ".join(events))
    if limit is not None and len(interesting) > limit:
        skipped = len(interesting) - limit
        interesting = interesting[:limit] + [f"  ... {skipped} more event days"]
    if not interesting:
        return "  (no notable events)"
    return "\n".join(interesting)
