"""Cluster-wide rollout driving under the virtual clock.

The PR-2 :class:`~repro.rollout.manager.RolloutManager` evaluates its
guardrails continuously, on every piece of shadow evidence — correct in
production, where evidence arrives on the same clock as everything
else.  Under an accelerated replay that coupling breaks determinism:
shadow workers drain on *wall* time, so the instant a breach fires
would vary between identical-seed runs, and with it the set of sessions
the candidate served.  The gauntlet therefore runs the rollout the way
it runs everything else — on day boundaries:

* one **primary** manager (shard ``s0``) owns the state machine, with
  a deterministic per-candidate salt and the virtual clock stamping
  every transition;
* every other shard gets a **follower** manager resumed from the same
  persisted state after each transition, so arm routing (sticky salted
  buckets) agrees on every shard and failover never flips a session's
  arm;
* the managers' *continuous* guardrails are disabled; instead
  :meth:`ClusterRolloutBinding.day_step` drains all shadow scorers at
  the end of each virtual day and evaluates the real guardrails over
  the aggregated evidence — breach means rollback, a complete stage
  means advance, the last stage promotes and the quorum distributor
  pushes the new generation to every shard.

The binding exposes the ``begin``/``in_flight`` surface the
:class:`~repro.core.retraining.RetrainingOrchestrator` expects from a
rollout manager, so drift-triggered candidates flow through it
unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.pipeline import BrowserPolygraph
from repro.rollout.canary import GuardrailBreach, session_bucket
from repro.rollout.config import GuardrailConfig, RolloutConfig
from repro.rollout.manager import RolloutManager
from repro.rollout.state import CANARY, LIVE, SHADOW

__all__ = ["ClusterRolloutBinding", "RolloutEvent"]

# Continuous guardrails are turned off (limits at their maxima, the
# comparison floor unreachable): the day-boundary evaluation below is
# the only judge, which is what makes identical seeds produce identical
# rollout histories.
_DISABLED_GUARDRAILS = GuardrailConfig(
    max_disagreement_rate=1.0,
    max_flag_rate_delta=1.0,
    max_latency_p99_ms=1e9,
    min_comparisons=10**9,
)


class RolloutEvent:
    """What one day-step did (for the ledger)."""

    __slots__ = ("action", "breach", "version")

    def __init__(
        self,
        action: str,
        version: int,
        breach: Optional[GuardrailBreach] = None,
    ) -> None:
        self.action = action  # "advance" | "promote" | "rollback" | "hold"
        self.version = version
        self.breach = breach


class ClusterRolloutBinding:
    """Primary + follower rollout managers over a thread-shard cluster."""

    def __init__(
        self,
        registry,
        supervisor,
        clock: Callable[[], float],
        config: RolloutConfig,
        guardrails: GuardrailConfig,
        seed: int = 0,
        distributor=None,
    ) -> None:
        if supervisor.config.backend != "thread":
            raise NotImplementedError(
                "the gauntlet rollout binding requires the thread backend"
            )
        self.registry = registry
        self.supervisor = supervisor
        self.config = config
        self.guardrails = guardrails
        self.seed = seed
        self.distributor = distributor
        self._clock = clock
        shards = list(supervisor.shards.items())
        primary_id, primary_shard = shards[0]
        self.primary = RolloutManager(
            registry,
            runtime=primary_shard.service,
            config=config,
            guardrails=_DISABLED_GUARDRAILS,
            clock=clock,
        )
        self.followers: Dict[str, RolloutManager] = {
            shard_id: RolloutManager(
                registry,
                runtime=shard.service,
                config=config,
                guardrails=_DISABLED_GUARDRAILS,
                clock=clock,
            )
            for shard_id, shard in shards[1:]
        }
        # Aggregation baselines: a follower's restored report re-counts
        # the primary's snapshot; subtract it so evidence is never
        # double-counted.
        self._follower_base: Dict[str, Tuple[int, int, int, int]] = {}
        self._stage_candidate_verdicts = 0
        self.events: List[Tuple[str, int, str]] = []  # (action, version, detail)

    # ------------------------------------------------------------------
    # orchestrator-facing surface

    @property
    def in_flight(self) -> bool:
        return self.primary.in_flight

    @property
    def state(self):
        return self.primary.state

    def begin(
        self,
        candidate: BrowserPolygraph,
        candidate_version: int,
        on_complete: Optional[Callable[[], None]] = None,
        **kwargs,
    ):
        """Enter shadow with a deterministic salt; sync every shard."""
        kwargs.setdefault("salt", f"gauntlet-{self.seed}-v{candidate_version}")
        state = self.primary.begin(
            candidate, candidate_version, on_complete=on_complete, **kwargs
        )
        self._stage_candidate_verdicts = 0
        self._sync_followers()
        self.events.append(("begin", candidate_version, "shadow"))
        return state

    # ------------------------------------------------------------------
    # the day boundary

    def note_traffic(self, session_ids) -> int:
        """Count today's candidate-arm sessions toward stage progress.

        Uses the same salted bucket function the runtime routes with, so
        the count is exact and deterministic regardless of which shard
        served each session.
        """
        state = self.primary.state
        if state is None or not state.in_flight or state.status != CANARY:
            return 0
        fraction = state.stage_fraction
        count = sum(
            1
            for sid in session_ids
            if session_bucket(state.salt, str(sid)) < fraction
        )
        self._stage_candidate_verdicts += count
        return count

    def day_step(self) -> RolloutEvent:
        """End-of-day rollout transition: rollback, advance, or hold."""
        state = self.primary.state
        if state is None or not state.in_flight:
            return RolloutEvent("hold", 0)
        version = state.candidate_version
        self._drain_all()
        comparisons, mismatches, live_flags, cand_flags = self._aggregate()
        breach = self._evaluate(comparisons, mismatches, live_flags, cand_flags)
        if breach is not None:
            self.primary.rollback(breach)
            self._sync_followers()
            self.events.append(("rollback", version, breach.name))
            return RolloutEvent("rollback", version, breach)
        if not self._stage_complete(comparisons):
            return RolloutEvent("hold", version)
        self.primary.advance(force=True)
        self._stage_candidate_verdicts = 0
        if self.primary.state.status == LIVE:
            # Promotion installed the candidate on the primary shard;
            # push the new live generation to the rest of the fleet and
            # flip the serving version at quorum.
            self._sync_followers()
            if self.distributor is not None:
                self.distributor.publish()
            self.events.append(("promote", version, "live"))
            return RolloutEvent("promote", version)
        self._sync_followers()
        self.events.append(
            ("advance", version, f"stage {self.primary.state.stage_index}")
        )
        return RolloutEvent("advance", version)

    def force_advance(self) -> None:
        """Skip stage completeness (chaos drills); sync every shard."""
        self.primary.advance(force=True)
        self._stage_candidate_verdicts = 0
        self._sync_followers()
        state = self.primary.state
        self.events.append(
            ("advance", state.candidate_version, f"forced stage {state.stage_index}")
        )

    def rebind(self) -> None:
        """Re-attach followers whose shard restarted with a new runtime.

        A crashed-and-restarted thread shard comes back with a fresh
        :class:`~repro.runtime.service.RuntimeScoringService`; the old
        follower manager still points at the dead one.  Replace it and
        resume the persisted rollout state so arm routing on the revived
        shard matches the rest of the fleet before it serves again.
        """
        for shard_id, follower in list(self.followers.items()):
            shard = self.supervisor.shards[shard_id]
            if shard.service is None or follower.runtime is shard.service:
                continue
            follower.close()
            fresh = RolloutManager(
                self.registry,
                runtime=shard.service,
                config=self.config,
                guardrails=_DISABLED_GUARDRAILS,
                clock=self._clock,
            )
            self.followers[shard_id] = fresh
            if self.primary.in_flight:
                fresh.resume()
                self._follower_base[shard_id] = self._report_counts(fresh)

    def close(self) -> None:
        """Join every manager's shadow workers."""
        self.primary.close()
        for follower in self.followers.values():
            follower.close()

    # ------------------------------------------------------------------
    # internals

    def _drain_all(self, timeout: float = 30.0) -> None:
        self.primary.drain_shadow(timeout)
        for follower in self.followers.values():
            follower.drain_shadow(timeout)

    def _report_counts(self, manager) -> Tuple[int, int, int, int]:
        report = manager.report
        if report is None:
            return (0, 0, 0, 0)
        return (
            report.comparisons,
            report.mismatches,
            report.live_flagged,
            report.candidate_flagged,
        )

    def _aggregate(self) -> Tuple[int, int, int, int]:
        total = list(self._report_counts(self.primary))
        for shard_id, follower in self.followers.items():
            counts = self._report_counts(follower)
            base = self._follower_base.get(shard_id, (0, 0, 0, 0))
            for i in range(4):
                total[i] += max(0, counts[i] - base[i])
        return tuple(total)  # type: ignore[return-value]

    def _evaluate(
        self, comparisons: int, mismatches: int, live_flags: int, cand_flags: int
    ) -> Optional[GuardrailBreach]:
        g = self.guardrails
        if comparisons < g.min_comparisons:
            return None
        rate = mismatches / comparisons
        if rate > g.max_disagreement_rate:
            return GuardrailBreach(
                name="disagreement_rate",
                observed=rate,
                limit=g.max_disagreement_rate,
                detail=f"{mismatches}/{comparisons} cluster-wide comparisons",
            )
        delta = abs(cand_flags - live_flags) / comparisons
        if delta > g.max_flag_rate_delta:
            return GuardrailBreach(
                name="flag_rate_delta",
                observed=delta,
                limit=g.max_flag_rate_delta,
                detail=f"candidate {cand_flags} vs live {live_flags} flags",
            )
        return None

    def _stage_complete(self, comparisons: int) -> bool:
        state = self.primary.state
        if state.status == SHADOW:
            return comparisons >= self.guardrails.min_comparisons
        if state.status == CANARY:
            return self._stage_candidate_verdicts >= self.config.min_stage_verdicts
        return False

    def _sync_followers(self) -> None:
        """Propagate the primary's persisted state to every follower."""
        in_flight = self.primary.in_flight
        for shard_id, follower in self.followers.items():
            if in_flight:
                follower.resume()
                self._follower_base[shard_id] = self._report_counts(follower)
            else:
                # Outcome reached: detach arm routing and drop candidate
                # cache entries on this shard.
                runtime = follower.runtime
                follower.close()
                runtime.detach_rollout()
                if runtime.cache is not None:
                    runtime.cache.invalidate(runtime.polygraph.model_generation)
                follower.state = None
                follower.report = None
