"""Per-day traffic generation for the gauntlet.

The one-shot :class:`~repro.traffic.generator.TrafficSimulator` builds
a whole window at once; the gauntlet needs one day at a time so that
releases land in the mix the day they ship and the adversary can react
to yesterday's verdicts.  :class:`DayTrafficFactory` samples the
popularity mix *at the day itself* (no weekly bucketing — a release is
visible in traffic the day after :meth:`ReleaseCalendar.release` says
it shipped) and shares one :class:`VectorFactory` cache across the
whole replay, so a 185-day run pays fingerprint-collection cost only
when the simulated universe changes.
"""

from __future__ import annotations

from datetime import date
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.browsers.configs import BENIGN_PERTURBATIONS, Perturbation
from repro.browsers.releases import ReleaseCalendar, default_calendar
from repro.browsers.useragent import Vendor, format_user_agent
from repro.fingerprint.features import FEATURE_SPECS, FeatureSpec
from repro.jsengine.evolution import EvolutionModel, default_model
from repro.traffic.dataset import Dataset
from repro.traffic.generator import VectorFactory, choose_perturbation
from repro.traffic.popularity import PopularityModel
from repro.traffic.sessions import SessionKind
from repro.traffic.tags import Persona, TagModel

__all__ = ["DayTrafficFactory", "assemble_rows"]


def assemble_rows(
    rows: List[dict],
    rng: np.random.Generator,
    specs: Sequence[FeatureSpec],
    tag_model: TagModel,
    sid_prefix: str,
) -> Dataset:
    """Materialize row dicts (simulator shape) into a :class:`Dataset`.

    Mirrors ``TrafficSimulator._assemble`` but with caller-controlled
    session-id prefixes so a replay never collides across days.
    """
    n = len(rows)
    features = np.vstack([row["vector"] for row in rows]).astype(np.int32)
    ua_keys = np.array(
        [f"{row['vendor'].value}-{row['version']}" for row in rows],
        dtype=object,
    )
    user_agents = np.array(
        [format_user_agent(row["vendor"], row["version"]) for row in rows],
        dtype=object,
    )
    session_ids = np.array(
        [f"{sid_prefix}-{i:06d}" for i in range(n)], dtype=object
    )
    days = np.array([row["day"] for row in rows], dtype="datetime64[D]")
    personas = tuple(row["persona"] for row in rows)
    ip, cookie, ato = tag_model.sample_many(personas, rng)
    epoch_seconds = days.astype("datetime64[s]").astype(np.int64)
    timestamps = epoch_seconds.astype(np.float64) + rng.uniform(
        0.0, 86_400.0, size=n
    )
    return Dataset(
        features=features,
        ua_keys=ua_keys,
        user_agents=user_agents,
        session_ids=session_ids,
        days=days,
        untrusted_ip=ip,
        untrusted_cookie=cookie,
        ato=ato,
        truth_kind=np.array([row["kind"].value for row in rows], dtype=object),
        truth_browser=np.array([row["browser"] for row in rows], dtype=object),
        truth_category=np.array(
            [row["category"] for row in rows], dtype=np.int8
        ),
        truth_perturbation=np.array(
            [row["perturbation"] for row in rows], dtype=object
        ),
        feature_names=[spec.name for spec in specs],
        timestamps=timestamps,
    )


class DayTrafficFactory:
    """Generates one virtual day of benign traffic at a time."""

    def __init__(
        self,
        calendar: Optional[ReleaseCalendar] = None,
        specs: Sequence[FeatureSpec] = FEATURE_SPECS,
        model: Optional[EvolutionModel] = None,
        tag_model: Optional[TagModel] = None,
        perturbations: Sequence[Perturbation] = BENIGN_PERTURBATIONS,
    ) -> None:
        self.calendar = calendar if calendar is not None else default_calendar()
        self.specs = tuple(specs)
        self.model = model if model is not None else default_model()
        self.tag_model = tag_model if tag_model is not None else TagModel()
        self.perturbations = tuple(perturbations)
        self.popularity = PopularityModel(self.calendar)
        # One shared cache for the whole replay — the adversary reuses
        # it too, so spoofed and genuine vectors come from the same
        # collection path.
        self.factory = VectorFactory(self.specs, self.model)

    # ------------------------------------------------------------------

    def legit_rows(
        self,
        day: date,
        count: int,
        rng: np.random.Generator,
        brave: int = 0,
    ) -> List[dict]:
        """``count`` genuine sessions (plus ``brave`` derivative ones)."""
        picks = self.popularity.sample(day, count, rng)
        rows: List[dict] = []
        for vendor, version in picks:
            perturbation = choose_perturbation(
                rng, vendor, version, self.perturbations
            )
            persona = (
                Persona.PRIVACY if perturbation is not None else Persona.ORDINARY
            )
            rows.append(
                {
                    "day": day,
                    "vendor": vendor,
                    "version": version,
                    "vector": self.factory.legit(vendor, version, perturbation),
                    "persona": persona,
                    "kind": SessionKind.LEGIT,
                    "browser": vendor.value,
                    "category": 0,
                    "perturbation": perturbation.name if perturbation else "",
                }
            )
        for _ in range(brave):
            chrome = self.calendar.latest_before(Vendor.CHROME, day)
            version = chrome.version - int(rng.random() < 0.3)
            rows.append(
                {
                    "day": day,
                    "vendor": Vendor.CHROME,
                    "version": version,
                    "vector": self.factory.brave(version),
                    "persona": Persona.PRIVACY,
                    "kind": SessionKind.DERIVATIVE,
                    "browser": "brave",
                    "category": 0,
                    "perturbation": "brave-shields",
                }
            )
        return rows

    def assemble(
        self, rows: List[dict], rng: np.random.Generator, sid_prefix: str
    ) -> Dataset:
        """Shuffle and materialize one day's rows."""
        order = rng.permutation(len(rows))
        return assemble_rows(
            [rows[i] for i in order], rng, self.specs, self.tag_model, sid_prefix
        )

    def new_release_keys(self, since: date, until: date) -> List[str]:
        """ua_keys of releases shipping in ``[since, until)``."""
        return sorted(
            release.key()
            for release in self.calendar.new_releases_between(since, until)
        )
