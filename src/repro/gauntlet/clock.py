"""The gauntlet's deterministic clock.

Every component the gauntlet drives — rollout stage timestamps, drift
check dates, marketplace shelf aging — takes its time from one
:class:`VirtualClock` instead of the machine's clock.  Two runs with
the same seed therefore see byte-identical timelines, which is what
makes the day ledger bit-deterministic (the acceptance bar for
``bench_production_year.py``).

This module is the repo's *sanctioned wrapper* for calendar time (see
``tests/test_clock_discipline.py``): it never reads the wall clock
either — a virtual clock is constructed from an explicit start date and
advances only when told to.
"""

from __future__ import annotations

from datetime import date, timedelta

__all__ = ["VirtualClock"]

_EPOCH = date(1970, 1, 1)


class VirtualClock:
    """A day-granular clock that only moves when advanced.

    :meth:`time` returns float epoch seconds (midnight of the current
    virtual day plus a tiny monotonic increment per call), which is the
    shape :class:`~repro.rollout.manager.RolloutManager` expects from
    its injectable ``clock`` — rollout state transitions recorded under
    a virtual clock carry virtual timestamps, so a replayed year's
    rollout history reads like a year, not like the few wall-clock
    minutes it took.
    """

    def __init__(self, start: date) -> None:
        self._today = start
        self._calls = 0

    @property
    def today(self) -> date:
        """The current virtual day."""
        return self._today

    def advance(self, days: int = 1) -> date:
        """Move the clock forward; returns the new day."""
        if days < 1:
            raise ValueError("days must be >= 1")
        self._today = self._today + timedelta(days=days)
        return self._today

    def time(self) -> float:
        """Float epoch seconds of the current virtual day (monotonic)."""
        self._calls += 1
        midnight = (self._today - _EPOCH).days * 86_400.0
        # Microsecond ticks keep successive reads strictly increasing
        # within a day without ever crossing into the next one.
        return midnight + min(self._calls * 1e-6, 1.0)
