"""The co-evolving adversary.

A frozen fraud mix would let any detector look immortal; real
marketplaces react.  :class:`AdversaryDirector` runs the
Genesis-style supply chain day by day — infostealers harvest a slice of
each day's genuine traffic into the :class:`Marketplace`, campaigns buy
stock and attack — and *adapts to the defender*:

* every day it observes the flagged rate per fraud category (the same
  feedback a fraud crew gets from failed logins);
* when a category's detection EMA crosses the adapt threshold, the
  director reacts the way the underground does — rotate Category-2
  campaigns onto **newer spoof targets** (products bundling fresher
  engines), switch purchasing to the **freshest stolen profiles**
  (smaller UA gap to live traffic), and shift the category mix toward
  whatever the defender currently misses.

Everything is driven by one seeded RNG, so the whole co-evolution is a
deterministic function of the gauntlet seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fraudbrowsers.base import Category, FraudProfile
from repro.fraudbrowsers.catalog import FRAUD_BROWSERS
from repro.fraudbrowsers.marketplace import Marketplace, StolenProfile
from repro.traffic.dataset import Dataset
from repro.traffic.generator import VectorFactory
from repro.traffic.sessions import SessionKind
from repro.traffic.tags import Persona

__all__ = ["AdversaryConfig", "AdversaryDirector"]

# Category-1 products (impossible fingerprints) in circulation.
_CAT1_PRODUCTS = ("Linken Sphere-8.93", "ClonBrowser-4.6.6")
_CAT3_PRODUCT = "AdsPower-5.4.20"


@dataclass(frozen=True)
class AdversaryConfig:
    """Knobs of the adversary's behaviour and adaptation."""

    attacks_per_day: int = 12
    infection_rate: float = 0.025
    # Flagged-rate EMA above which a category is considered "burned".
    adapt_threshold: float = 0.6
    ema_alpha: float = 0.25
    # Verdicts a category needs before its EMA is trusted.
    min_feedback: int = 10
    # Days between adaptations (a crew does not re-tool nightly).
    cooldown_days: int = 14
    category_weights: Tuple[Tuple[int, float], ...] = (
        (1, 0.25),
        (2, 0.40),
        (3, 0.20),
        (4, 0.15),
    )


@dataclass
class Adaptation:
    """One recorded change of adversary behaviour."""

    day: date
    category: int
    action: str


class AdversaryDirector:
    """Evolves marketplace fraud behaviour against detection feedback."""

    def __init__(
        self,
        config: AdversaryConfig,
        marketplace: Marketplace,
        factory: VectorFactory,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.marketplace = marketplace
        self.factory = factory
        self.rng = np.random.default_rng(seed)
        self.weights: Dict[int, float] = dict(config.category_weights)
        self.detection_ema: Dict[int, float] = {c: 0.0 for c, _ in config.category_weights}
        self.feedback_seen: Dict[int, int] = {c: 0 for c, _ in config.category_weights}
        # Category-2 spoof targets, oldest bundled engine first: the
        # crew starts on cheap old builds and buys newer ones only when
        # detection forces the upgrade.
        self.cat2_targets: List[str] = [
            b.full_name
            for b in sorted(
                (
                    b
                    for b in FRAUD_BROWSERS
                    if b.category is Category.FIXED_ENGINE
                ),
                key=lambda b: (b.engine_version, b.full_name),
            )
        ]
        self.cat2_index = 0
        self.buy_freshest = False
        self.adaptations: List[Adaptation] = []
        self._last_adaptation: Optional[date] = None
        self._attack_counter = 0

    # ------------------------------------------------------------------
    # supply chain

    def harvest(self, day_traffic: Dataset) -> int:
        """Infostealers skim today's genuine sessions into inventory."""
        return self.marketplace.harvest_from_traffic(
            day_traffic, infection_rate=self.config.infection_rate
        )

    def attack_rows(self, day: date) -> List[dict]:
        """Today's attack sessions as simulator-shaped rows.

        Buys up to ``attacks_per_day`` profiles (oldest stock first
        unless detection pushed the crew to fresher loot) and loads each
        into a fraud browser chosen by the current category mix.
        """
        n = min(self.config.attacks_per_day, self.marketplace.stock)
        if n < 1:
            return []
        purchases = self.marketplace.buy(
            n, freshest=self.buy_freshest, today=day
        )
        rows = []
        for stolen in purchases:
            rows.append(self._attack_row(day, stolen))
        return rows

    def _attack_row(self, day: date, stolen: StolenProfile) -> dict:
        category = self._pick_category()
        claimed = stolen.user_agent
        self._attack_counter += 1
        profile_seed = int(self.rng.integers(2**31))
        if category == 1:
            product = _CAT1_PRODUCTS[
                int(self.rng.integers(len(_CAT1_PRODUCTS)))
            ]
            vector = self.factory.fraud(
                product, FraudProfile(product, claimed, profile_seed)
            )
            browser, persona = product, Persona.FRAUDSTER
        elif category == 2:
            product = self.cat2_targets[self.cat2_index]
            vector = self.factory.fraud(
                product, FraudProfile(product, claimed, profile_seed)
            )
            browser, persona = product, Persona.FRAUDSTER
        elif category == 3:
            product = _CAT3_PRODUCT
            vector = self.factory.fraud(
                product, FraudProfile(product, claimed, profile_seed)
            )
            browser, persona = product, Persona.STEALTH_FRAUDSTER
        else:
            # Category 4: a genuine browser replaying the stolen state.
            vector = self.factory.legit(claimed.vendor, claimed.version, None)
            browser, persona = "stolen-profile-replay", Persona.STEALTH_FRAUDSTER
        return {
            "day": day,
            "vendor": claimed.vendor,
            "version": claimed.version,
            "vector": vector,
            "persona": persona,
            "kind": SessionKind.FRAUD,
            "browser": browser,
            "category": category,
            "perturbation": "",
        }

    def _pick_category(self) -> int:
        categories = sorted(self.weights)
        total = sum(self.weights[c] for c in categories)
        draw = float(self.rng.random()) * total
        threshold = 0.0
        for category in categories:
            threshold += self.weights[category]
            if draw < threshold:
                return category
        return categories[-1]

    # ------------------------------------------------------------------
    # feedback loop

    def observe(
        self, day: date, flagged_by_category: Dict[int, Tuple[int, int]]
    ) -> List[Adaptation]:
        """Fold one day of verdict feedback; maybe adapt.

        ``flagged_by_category`` maps category -> (flagged, total) for
        today's attack sessions.  Returns the adaptations made today.
        """
        alpha = self.config.ema_alpha
        for category, (flagged, total) in flagged_by_category.items():
            if total == 0 or category not in self.detection_ema:
                continue
            rate = flagged / total
            seen = self.feedback_seen[category]
            if seen == 0:
                self.detection_ema[category] = rate
            else:
                self.detection_ema[category] = (
                    alpha * rate + (1 - alpha) * self.detection_ema[category]
                )
            self.feedback_seen[category] = seen + total
        if not self._cooldown_over(day):
            return []
        made: List[Adaptation] = []
        hot = [
            c
            for c in sorted(self.detection_ema)
            if self.feedback_seen[c] >= self.config.min_feedback
            and self.detection_ema[c] >= self.config.adapt_threshold
        ]
        if not hot:
            return []
        # React to the most-detected category only; one re-tool per
        # cooldown window.
        category = max(hot, key=lambda c: self.detection_ema[c])
        if category == 2 and self.cat2_index + 1 < len(self.cat2_targets):
            self.cat2_index += 1
            made.append(
                Adaptation(
                    day,
                    2,
                    f"rotate spoof target -> {self.cat2_targets[self.cat2_index]}",
                )
            )
        if not self.buy_freshest:
            self.buy_freshest = True
            made.append(Adaptation(day, category, "buy freshest stolen profiles"))
        made.append(self._shift_weight(day, category))
        self.adaptations.extend(made)
        self._last_adaptation = day
        return made

    def _shift_weight(self, day: date, category: int) -> Adaptation:
        """Move a third of a burned category's share to the safest one."""
        safest = min(
            sorted(self.detection_ema),
            key=lambda c: (self.detection_ema[c], c),
        )
        moved = self.weights[category] / 3.0
        self.weights[category] -= moved
        self.weights[safest] += moved
        return Adaptation(
            day,
            category,
            f"shift {moved:.2f} weight cat{category} -> cat{safest}",
        )

    def _cooldown_over(self, day: date) -> bool:
        if self._last_adaptation is None:
            return True
        return (day - self._last_adaptation).days >= self.config.cooldown_days

    # ------------------------------------------------------------------

    def state_summary(self) -> dict:
        """JSON-friendly snapshot for the ledger and reports."""
        return {
            "weights": {str(c): round(w, 4) for c, w in sorted(self.weights.items())},
            "detection_ema": {
                str(c): round(r, 4) for c, r in sorted(self.detection_ema.items())
            },
            "cat2_target": self.cat2_targets[self.cat2_index],
            "buy_freshest": self.buy_freshest,
            "adaptations": [
                {"day": a.day.isoformat(), "category": a.category, "action": a.action}
                for a in self.adaptations
            ],
        }
