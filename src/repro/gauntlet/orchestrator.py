"""The adversarial co-evolution gauntlet.

An accelerated "production year": a :class:`VirtualClock` advances
day by day through the release calendar while the *live serving stack*
— sharded cluster, router, flag-rate monitor, drift scheduler,
retraining orchestrator, shadow/canary rollout — runs exactly the code
it runs everywhere else.  Each virtual day:

1. releases due that day land in the traffic mix (the popularity model
   samples *at the day*, so a release is served the day it ships);
2. the :class:`~repro.gauntlet.adversary.AdversaryDirector` harvests
   yesterday's genuine sessions, buys stolen profiles and attacks,
   adapting its category mix and spoof targets to what the defender
   flagged;
3. every session is scored through the real
   :class:`~repro.cluster.router.ClusterRouter`;
4. the monitor and the Section 6.6 drift schedule decide whether the
   :class:`~repro.core.retraining.RetrainingOrchestrator` runs, and any
   staged candidate walks the shadow -> canary -> promote ramp through
   the cluster-wide rollout binding (guardrail breaches roll back);
5. one row lands in the :class:`~repro.gauntlet.ledger.DayLedger`.

A scheduled **chaos drill** stages a deliberately broken candidate (a
stale training window with the unknown-UA policy misflipped to
``"flag"`` — the classic bad-config push) straight into canary and
kills a shard the same day; the day-boundary guardrails must roll it
back under churn.  The drill is part of the replay, so the acceptance
bench proves the rollback path on every run.

Everything here is a deterministic function of
:class:`GauntletConfig` — identical configs produce bit-identical
ledger digests (see ``benchmarks/bench_production_year.py``).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, replace
from datetime import date, timedelta
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.distribution import ModelDistributor
from repro.cluster.router import ClusterRouter, RouterConfig
from repro.cluster.supervisor import ClusterConfig, ShardSupervisor
from repro.core.config import PipelineConfig
from repro.core.pipeline import BrowserPolygraph
from repro.core.retraining import ModelRegistry, RetrainingOrchestrator
from repro.coverage import CoverageConfig, CoverageTracker, RefreshPlanner
from repro.fraudbrowsers.marketplace import Marketplace
from repro.gauntlet.adversary import AdversaryConfig, AdversaryDirector
from repro.gauntlet.clock import VirtualClock
from repro.gauntlet.ledger import DayLedger
from repro.gauntlet.rollout import ClusterRolloutBinding
from repro.gauntlet.traffic import DayTrafficFactory
from repro.rollout.config import GuardrailConfig, RolloutConfig
from repro.runtime.stats import percentile
from repro.service.monitoring import DriftScheduler, FlagRateMonitor
from repro.traffic.dataset import Dataset
from repro.traffic.generator import TrafficConfig, TrafficSimulator
from repro.traffic.replay import iter_wire_payloads

__all__ = ["GauntletConfig", "GauntletOrchestrator", "GauntletResult", "run_gauntlet"]


@dataclass(frozen=True)
class GauntletConfig:
    """Everything the replay is a function of."""

    # -- timeline ------------------------------------------------------
    start: date = date(2023, 5, 5)
    days: int = 185
    seed: int = 7

    # -- traffic -------------------------------------------------------
    sessions_per_day: int = 420
    brave_per_day: int = 2

    # -- bootstrap window (trains model v1) ----------------------------
    bootstrap_days: int = 120
    bootstrap_sessions: int = 18_000
    bootstrap_infection_rate: float = 0.01

    # -- serving cluster -----------------------------------------------
    n_shards: int = 2

    # -- retraining ----------------------------------------------------
    max_window_sessions: int = 30_000
    # The gauntlet's live window carries a fraud prevalence several
    # times the paper's training mix; majority-cluster accuracy prices
    # those sessions in, so the floor sits below the clean-window 0.985.
    accuracy_floor: float = 0.97
    jobs: int = 1
    drift_lag_days: int = 4

    # -- flag-rate monitor ---------------------------------------------
    monitor_window: int = 4_000
    monitor_expected_rate: float = 0.02
    monitor_tolerance: float = 4.0
    monitor_min_observations: int = 1_500
    alarm_cooldown_days: int = 7

    # -- rollout ramp (sized for gauntlet traffic volumes) -------------
    canary_stages: Tuple[float, ...] = (0.05, 0.25, 1.0)
    shadow_sample_rate: float = 0.25
    min_stage_verdicts: int = 25
    min_comparisons: int = 80
    max_disagreement_rate: float = 0.05
    max_flag_rate_delta: float = 0.03

    # -- chaos drill ---------------------------------------------------
    drill_day: Optional[int] = 40  # day index; None disables the drill
    drill_stale_rows: int = 2_000
    drill_kill_shard: bool = True

    # -- adversary -----------------------------------------------------
    attacks_per_day: int = 12
    infection_rate: float = 0.025

    # -- coverage intelligence -----------------------------------------
    # The release-coverage subsystem (repro.coverage): serve-time
    # unknown-UA tracking with calendar bands plus the proactive
    # RefreshPlanner.  ``coverage=False`` replays PR 8's reactive
    # behaviour (the blind-window baseline the bench diffs against).
    coverage: bool = True
    # Policy every gauntlet-trained model serves with.  "infer" scores
    # unknown releases against their nearest known neighbour — the
    # interim verdict that closes the detection half of the blind
    # window.  (The library-wide PipelineConfig default stays "ignore".)
    unknown_ua_policy: str = "infer"
    coverage_window: int = 4_000
    coverage_min_observations: int = 400
    coverage_baseline_rate: float = 0.02
    coverage_adoption_allowance: float = 0.25
    coverage_adoption_days: int = 7
    coverage_cooldown_days: int = 4

    # -- storage -------------------------------------------------------
    workdir: Optional[str] = None  # model registry root; tempdir if None

    def end(self) -> date:
        """First day *after* the replay window."""
        return self.start + timedelta(days=self.days)


@dataclass
class GauntletResult:
    """Everything a run produced."""

    config: GauntletConfig
    ledger: DayLedger
    summary: dict
    adversary: dict
    rollout_events: List[Tuple[str, int, str]]
    retraining: List[dict]
    registry_versions: List[dict]


def run_gauntlet(config: GauntletConfig) -> GauntletResult:
    """Convenience entry: build an orchestrator and run it to the end."""
    return GauntletOrchestrator(config).run()


class GauntletOrchestrator:
    """Owns the replay loop and every subsystem it drives."""

    def __init__(self, config: GauntletConfig) -> None:
        self.config = config
        self.clock = VirtualClock(config.start)
        self.factory = DayTrafficFactory()
        self.marketplace = Marketplace(seed=config.seed)
        self.adversary = AdversaryDirector(
            AdversaryConfig(
                attacks_per_day=config.attacks_per_day,
                infection_rate=config.infection_rate,
            ),
            self.marketplace,
            self.factory.factory,
            seed=config.seed,
        )
        self.monitor = FlagRateMonitor(
            window=config.monitor_window,
            expected_rate=config.monitor_expected_rate,
            tolerance_factor=config.monitor_tolerance,
            min_observations=config.monitor_min_observations,
        )
        self.scheduler = DriftScheduler(
            calendar=self.factory.calendar, lag_days=config.drift_lag_days
        )
        self.ledger = DayLedger()

        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        self.registry: Optional[ModelRegistry] = None
        self.retrainer: Optional[RetrainingOrchestrator] = None
        self.supervisor: Optional[ShardSupervisor] = None
        self.router: Optional[ClusterRouter] = None
        self.binding: Optional[ClusterRolloutBinding] = None
        self._bootstrap_train: Optional[Dataset] = None
        self.coverage_tracker: Optional[CoverageTracker] = None
        self.planner: Optional[RefreshPlanner] = None
        self._since_check: List[Dataset] = []
        self._deferred_check = False
        self._deferred_force = False
        self._last_alarm_check: Optional[date] = None
        self._drill_done = False
        self._prev_failovers = 0
        self._prev_restarts = 0

    # ------------------------------------------------------------------
    # setup

    def _workdir(self) -> Path:
        if self.config.workdir is not None:
            path = Path(self.config.workdir)
            path.mkdir(parents=True, exist_ok=True)
            return path
        self._tmp = tempfile.TemporaryDirectory(prefix="gauntlet-")
        return Path(self._tmp.name)

    def bootstrap(self) -> None:
        """Train v1 on the pre-replay window and raise the cluster."""
        cfg = self.config
        window = TrafficConfig().scaled(cfg.bootstrap_sessions)
        window = replace(
            window,
            start=cfg.start - timedelta(days=cfg.bootstrap_days),
            end=cfg.start,
            seed=cfg.seed,
        )
        simulator = TrafficSimulator(
            window,
            model=self.factory.model,
            calendar=self.factory.calendar,
            tag_model=self.factory.tag_model,
        )
        train = simulator.generate()
        self._bootstrap_train = train

        self.registry = ModelRegistry(self._workdir())
        pipeline_config = (
            PipelineConfig(unknown_ua_policy=cfg.unknown_ua_policy)
            if cfg.unknown_ua_policy != "ignore"
            else None
        )
        self.retrainer = RetrainingOrchestrator(
            self.registry,
            accuracy_floor=cfg.accuracy_floor,
            max_window_sessions=cfg.max_window_sessions,
            jobs=cfg.jobs,
            pipeline_config=pipeline_config,
        )
        self.retrainer.bootstrap(train, on=cfg.start)

        if cfg.coverage:
            # The tracker is fed centrally from each day's dataset (in
            # row order) rather than from inside the concurrent scoring
            # path: its state feeds the planner, which feeds the ledger
            # digest, so it must be a pure function of the seed.
            self.coverage_tracker = CoverageTracker(
                calendar=self.factory.calendar,
                config=CoverageConfig(
                    window=cfg.coverage_window,
                    min_observations=cfg.coverage_min_observations,
                    baseline_rate=cfg.coverage_baseline_rate,
                    adoption_allowance=cfg.coverage_adoption_allowance,
                    adoption_days=cfg.coverage_adoption_days,
                ),
            )
            self.planner = RefreshPlanner(
                self.coverage_tracker,
                calendar=self.factory.calendar,
                cooldown_days=cfg.coverage_cooldown_days,
            )

        # The heartbeat interval is pushed out past any single day's
        # scoring: shard recovery runs synchronously at day boundaries
        # (`_recover`), never mid-day — a restart racing the scoring
        # loop would make the served-arm session set timing-dependent.
        self.supervisor = ShardSupervisor.from_registry(
            self.registry,
            config=ClusterConfig(
                n_shards=cfg.n_shards,
                backend="thread",
                heartbeat_interval_s=3600.0,
            ),
        )
        self.router = ClusterRouter(
            self.supervisor, RouterConfig(affinity="session")
        ).start()
        distributor = ModelDistributor(self.supervisor, self.registry)
        self.binding = ClusterRolloutBinding(
            self.registry,
            self.supervisor,
            clock=self.clock.time,
            config=RolloutConfig(
                stages=cfg.canary_stages,
                shadow_sample_rate=cfg.shadow_sample_rate,
                min_stage_verdicts=cfg.min_stage_verdicts,
            ),
            guardrails=GuardrailConfig(
                max_disagreement_rate=cfg.max_disagreement_rate,
                max_flag_rate_delta=cfg.max_flag_rate_delta,
                min_comparisons=cfg.min_comparisons,
            ),
            seed=cfg.seed,
            distributor=distributor,
        )
        self.retrainer.rollout = self.binding

        # Pre-replay infections: the marketplace opens with aged stock
        # harvested from the bootstrap window, so shelf age matters from
        # day one.
        legit = train.subset(~train.is_fraud())
        self.marketplace.harvest_from_traffic(
            legit, infection_rate=self.config.bootstrap_infection_rate
        )

    # ------------------------------------------------------------------
    # the day loop

    def run(self) -> GauntletResult:
        """Replay every configured day; always tears the cluster down."""
        self.bootstrap()
        planned = {
            plan.check_date: plan
            for plan in self.scheduler.plan(self.config.start, self.config.end())
        }
        try:
            for index in range(self.config.days):
                self._run_day(index, planned)
                self.clock.advance()
        finally:
            self.shutdown()
        return GauntletResult(
            config=self.config,
            ledger=self.ledger,
            summary=self.ledger.summary(),
            adversary=self.adversary.state_summary(),
            rollout_events=list(self.binding.events),
            retraining=[
                {
                    "check_date": o.check_date.isoformat(),
                    "drift_detected": o.drift_detected,
                    "retrained": o.retrained,
                    "promoted": o.promoted,
                    "staged_version": o.staged_version,
                    "detail": o.detail,
                }
                for o in self.retrainer.history
            ],
            registry_versions=self.registry.versions(),
        )

    def _run_day(self, index: int, planned: Dict[date, object]) -> None:
        cfg = self.config
        day = self.clock.today
        rng = np.random.default_rng([cfg.seed, index])
        new_keys = self.factory.new_release_keys(day, day + timedelta(days=1))

        drilled = self._maybe_drill(index, day)

        # -- traffic ---------------------------------------------------
        rows = self.factory.legit_rows(
            day, cfg.sessions_per_day, rng, brave=cfg.brave_per_day
        )
        rows.extend(self.adversary.attack_rows(day))
        dataset = self.factory.assemble(
            rows, rng, sid_prefix=f"g{cfg.seed}-d{index:03d}"
        )

        # -- scoring through the live cluster --------------------------
        wires = list(iter_wire_payloads(dataset))
        verdicts = self.router.score_many(wires)
        flags = np.array(
            [v.accepted and v.flagged for v in verdicts], dtype=bool
        )
        latencies = [v.latency_ms for v in verdicts if v.accepted]
        for flagged in flags:
            self.monitor.observe(bool(flagged))

        # -- detection tallies and adversary feedback ------------------
        categories = dataset.truth_category
        fraud_counts = {c: int((categories == c).sum()) for c in (1, 2, 3, 4)}
        flagged_counts = {
            c: int(flags[categories == c].sum()) for c in (1, 2, 3, 4)
        }
        legit_mask = categories == 0
        self.adversary.observe(
            day,
            {c: (flagged_counts[c], fraud_counts[c]) for c in (1, 2, 3, 4)},
        )
        adaptations_today = sum(
            1 for a in self.adversary.adaptations if a.day == day
        )
        self.adversary.harvest(dataset.subset(legit_mask))

        # -- blind-window accounting and coverage intelligence ---------
        # "Unknown" is judged against the serving model's release table
        # as of the start of the day — the operator's view, not the
        # adversary's.  Tallied even with coverage off so the baseline
        # run measures the same blind window it leaves open.
        table = self.retrainer.current.cluster_model.ua_to_cluster
        known_mask = np.array(
            [str(key) in table for key in dataset.ua_keys], dtype=bool
        )
        unknown_mask = ~known_mask
        unknown_fraud_mask = unknown_mask & ~legit_mask
        unknown_legit_mask = unknown_mask & legit_mask
        decision = None
        if self.coverage_tracker is not None:
            self.coverage_tracker.set_known_keys(
                table, generation=self.supervisor.serving_version
            )
            self.coverage_tracker.observe_many(
                [str(key) for key in dataset.ua_keys], day=day
            )
            decision = self.planner.decide(day)

        # -- drift checks (scheduled, alarm-forced, planner, retry) ----
        self._since_check.append(dataset)
        outcome = self._maybe_check(day, planned, decision)
        if (
            outcome is not None
            and outcome.retrained
            and self.planner is not None
        ):
            # Any retrain (scheduled or planner-driven) restarts the
            # planner cooldown — the window it wanted refreshed is now
            # in flight.
            self.planner.note_retrain(day)

        # -- rollout day boundary --------------------------------------
        self.binding.note_traffic(
            str(sid) for sid in dataset.session_ids
        )
        event = self.binding.day_step()
        self._recover()

        failovers = self.router.failovers_total
        restarts = sum(
            self.supervisor.restarts(sid) for sid in self.supervisor.shards
        )
        state = self.binding.state
        in_flight = state is not None and state.in_flight
        self.ledger.record(
            day=day.isoformat(),
            new_releases=len(new_keys),
            new_release_keys=list(new_keys),
            n_sessions=len(dataset),
            n_legit=int(legit_mask.sum()),
            n_fraud=int((~legit_mask).sum()),
            fraud_cat1=fraud_counts[1],
            fraud_cat2=fraud_counts[2],
            fraud_cat3=fraud_counts[3],
            fraud_cat4=fraud_counts[4],
            flagged_legit=int(flags[legit_mask].sum()),
            flagged_cat1=flagged_counts[1],
            flagged_cat2=flagged_counts[2],
            flagged_cat3=flagged_counts[3],
            flagged_cat4=flagged_counts[4],
            monitor_alarm=bool(self.monitor.alarm),
            drift_checked=int(outcome is not None),
            drift_detected=int(outcome.drift_detected if outcome else 0),
            retrained=int(outcome.retrained if outcome else 0),
            staged_version=(outcome.staged_version if outcome else None)
            or (self._drill_version if drilled else None),
            promotions=int(event.action == "promote"),
            rollbacks=int(event.action == "rollback"),
            rollout_status=state.status if state is not None else None,
            rollout_stage=state.stage_index if in_flight else None,
            serving_version=self.supervisor.serving_version,
            marketplace_stock=self.marketplace.stock,
            stock_age_days=round(self.marketplace.average_age_days(day), 2),
            adaptations=adaptations_today,
            unknown_sessions=int(unknown_mask.sum()),
            unknown_fraud=int(unknown_fraud_mask.sum()),
            unknown_fraud_flagged=int(flags[unknown_fraud_mask].sum()),
            unknown_legit=int(unknown_legit_mask.sum()),
            unknown_legit_flagged=int(flags[unknown_legit_mask].sum()),
            coverage_trigger=int(decision.triggered) if decision else 0,
            coverage_reason=(
                decision.reason if decision and decision.triggered else None
            ),
            p50_ms=round(percentile(latencies, 50), 3),
            p99_ms=round(percentile(latencies, 99), 3),
            failovers=failovers - self._prev_failovers,
            shard_restarts=restarts - self._prev_restarts,
            breach=event.breach.name if event.breach is not None else None,
        )
        self._prev_failovers = failovers
        self._prev_restarts = restarts

    # ------------------------------------------------------------------
    # drift checks

    def _maybe_check(self, day: date, planned: Dict[date, object], decision=None):
        """Run a retraining check if today warrants one."""
        due = day in planned
        alarm = (
            self.monitor.alarm
            and (
                self._last_alarm_check is None
                or (day - self._last_alarm_check).days
                >= self.config.alarm_cooldown_days
            )
        )
        retry = self._deferred_check and not self.binding.in_flight
        coverage = decision is not None and decision.retrain
        if not (due or alarm or retry or coverage):
            return None
        # An alarm with a clean drift report still forces a window
        # refresh: the monitor is the only signal that catches the
        # model's unknown-UA blind spot growing between drift episodes.
        # A coverage-planner trigger (first-day release, band breach)
        # forces one for the same reason, without waiting for the alarm.
        force = (
            alarm
            or (retry and self._deferred_force)
            or (coverage and decision.force)
        )
        live = Dataset.concatenate(self._since_check)
        outcome = self.retrainer.scheduled_check(live, on=day, force=force)
        if alarm:
            self._last_alarm_check = day
        deferred = (
            outcome.drift_detected or force
        ) and not outcome.retrained
        self._deferred_check = deferred
        self._deferred_force = deferred and force
        if not deferred:
            self._since_check = []
        return outcome

    # ------------------------------------------------------------------
    # the chaos drill

    _drill_version: Optional[int] = None

    def _maybe_drill(self, index: int, day: date) -> bool:
        """Stage the bad-config candidate into canary; kill a shard.

        The candidate is trained on a stale slice of the bootstrap
        window with ``unknown_ua_policy="flag"`` — it flags every
        release that shipped since, so the day-boundary disagreement
        guardrail must catch it.  Killing a second shard the same day
        proves the rollback verdicts survive mid-ramp churn.
        """
        cfg = self.config
        if (
            cfg.drill_day is None
            or self._drill_done
            or index < cfg.drill_day
            or self.binding.in_flight
        ):
            return False
        stale = self._bootstrap_train.rows(
            0, min(len(self._bootstrap_train), cfg.drill_stale_rows)
        )
        candidate = BrowserPolygraph(
            config=PipelineConfig(unknown_ua_policy="flag")
        ).fit(stale, jobs=cfg.jobs)
        version = self.registry.stage_candidate(
            candidate, day, "chaos drill: stale window, unknown-ua misconfig"
        )
        self._drill_version = version
        self.binding.begin(candidate, version)
        self.binding.force_advance()  # shadow -> canary stage 0
        if cfg.drill_kill_shard and cfg.n_shards > 1:
            victim = sorted(self.supervisor.shards)[-1]
            self.supervisor.kill(victim)
        self._drill_done = True
        return True

    # ------------------------------------------------------------------
    # recovery and teardown

    def _recover(self, max_sweeps: int = 10) -> None:
        """Synchronously restart dead shards, then re-sync arm routing."""
        def all_up() -> bool:
            return (
                self.supervisor.healthy_count == len(self.supervisor.shards)
                and all(
                    shard.service is not None
                    for shard in self.supervisor.shards.values()
                )
            )

        if all_up():
            return
        for _ in range(max_sweeps):
            self.supervisor.check_once()
            if all_up():
                break
        else:
            raise RuntimeError("cluster failed to recover after chaos drill")
        self.binding.rebind()

    def shutdown(self) -> None:
        """Tear everything down (idempotent)."""
        if self.binding is not None:
            self.binding.close()
        if self.router is not None:
            self.router.shutdown(drain=True)
            self.router = None
        elif self.supervisor is not None:
            self.supervisor.shutdown(drain=True)
        self.supervisor = None
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
