"""Adversarial co-evolution gauntlet.

Replays an accelerated "production year" against the real serving
stack: a virtual clock advances day by day through the release
calendar, an adaptive adversary evolves its fraud mix against the
defender's verdicts, and drift-triggered retrains flow through the
shadow -> canary -> promote rollout automatically — rollbacks included.
See :mod:`repro.gauntlet.orchestrator` for the full loop.
"""

from repro.gauntlet.adversary import AdversaryConfig, AdversaryDirector
from repro.gauntlet.clock import VirtualClock
from repro.gauntlet.ledger import DIGEST_COLUMNS, TIMING_COLUMNS, DayLedger
from repro.gauntlet.orchestrator import (
    GauntletConfig,
    GauntletOrchestrator,
    GauntletResult,
    run_gauntlet,
)
from repro.gauntlet.report import render_report, render_timeline
from repro.gauntlet.rollout import ClusterRolloutBinding, RolloutEvent
from repro.gauntlet.traffic import DayTrafficFactory

__all__ = [
    "AdversaryConfig",
    "AdversaryDirector",
    "ClusterRolloutBinding",
    "DayLedger",
    "DayTrafficFactory",
    "DIGEST_COLUMNS",
    "GauntletConfig",
    "GauntletOrchestrator",
    "GauntletResult",
    "RolloutEvent",
    "TIMING_COLUMNS",
    "VirtualClock",
    "render_report",
    "render_timeline",
    "run_gauntlet",
]
