"""Deployment service layer: the FinOrg integration.

The paper's system runs inside a high-traffic web application: an
in-page script posts sub-kilobyte payloads to a backend, which must
validate them, score them in real time against the trained model,
persist them for the next training window, and keep operational
watch over flag rates and drift.  This subpackage provides that
production shell around the core pipeline:

* :mod:`repro.service.ingest` — payload validation and quarantine
  (malformed wire data never reaches the model);
* :mod:`repro.service.storage` — an append-only JSONL session store
  with size-based rotation, the "periodic datasets" FinOrg handed the
  authors;
* :mod:`repro.service.scoring` — the real-time scoring service:
  payload in, verdict out, with latency accounting against the
  Section 3 budget;
* :mod:`repro.service.monitoring` — rolling flag-rate windows, alert
  thresholds, and the drift-check scheduler that fires "a few days
  after the latest Firefox release".
"""

from repro.service.api import CollectionApp
from repro.service.ingest import IngestResult, PayloadValidator, QuarantineLog
from repro.service.monitoring import DriftScheduler, FlagRateMonitor
from repro.service.scoring import ScoringService, Verdict
from repro.service.storage import SessionStore

__all__ = [
    "CollectionApp",
    "DriftScheduler",
    "FlagRateMonitor",
    "IngestResult",
    "PayloadValidator",
    "QuarantineLog",
    "ScoringService",
    "SessionStore",
    "Verdict",
]
