"""Real-time scoring service.

Glues the pieces into the online path the paper deploys: wire payload →
validation → (optional) persistence → model verdict, with end-to-end
latency accounting against the Section 3 budget of 100ms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from datetime import date
from typing import Optional

from repro.core.pipeline import BrowserPolygraph
from repro.service.ingest import IngestResult, PayloadValidator
from repro.service.storage import SessionStore
from repro.traffic.dataset import Dataset

__all__ = ["ScoringService", "Verdict"]


@dataclass(frozen=True)
class Verdict:
    """The service's answer for one session."""

    session_id: str
    accepted: bool
    flagged: bool
    risk_factor: Optional[int]
    reject_reason: Optional[str]
    latency_ms: float

    @property
    def actionable(self) -> bool:
        """Whether the risk engine should consider this session."""
        return self.accepted and self.flagged


class ScoringService:
    """Validate, persist, and score payloads in real time.

    Parameters
    ----------
    polygraph:
        A fitted :class:`~repro.core.pipeline.BrowserPolygraph`.
    validator:
        Wire-contract enforcement; a default validator is created if
        omitted.
    store:
        Optional durable store; accepted payloads are appended so the
        next training window can be exported later.
    """

    def __init__(
        self,
        polygraph: BrowserPolygraph,
        validator: Optional[PayloadValidator] = None,
        store: Optional[SessionStore] = None,
    ) -> None:
        if not polygraph.is_fitted:
            raise ValueError("ScoringService requires a fitted BrowserPolygraph")
        self.polygraph = polygraph
        self.validator = validator if validator is not None else PayloadValidator()
        self.store = store
        self.scored_count = 0
        self.flagged_count = 0

    def score_wire(self, wire: bytes, day: Optional[date] = None) -> Verdict:
        """The full online path for one request."""
        started = time.perf_counter()
        ingest: IngestResult = self.validator.ingest_wire(wire)
        if not ingest.accepted:
            return Verdict(
                session_id="",
                accepted=False,
                flagged=False,
                risk_factor=None,
                reject_reason=ingest.reason.value if ingest.reason else "unknown",
                latency_ms=(time.perf_counter() - started) * 1000.0,
            )
        payload = ingest.payload
        if self.store is not None:
            self.store.append(payload, day=day)
        result = self.polygraph.detect_payload(payload)
        self.scored_count += 1
        if result.flagged:
            self.flagged_count += 1
        return Verdict(
            session_id=payload.session_id,
            accepted=True,
            flagged=result.flagged,
            risk_factor=result.risk_factor,
            reject_reason=None,
            latency_ms=(time.perf_counter() - started) * 1000.0,
        )

    def retrain(
        self, dataset: Dataset, align_rare: bool = True, jobs: int = 1
    ) -> None:
        """Swap in a freshly trained model without stopping scoring.

        The pipeline installs the new model atomically under its swap
        lock: a request (or a runtime batch) that is mid-flight keeps
        scoring against the snapshot it started with, and every request
        accepted afterwards sees only the new model — never a mix.
        """
        self.polygraph.retrain(dataset, align_rare=align_rare, jobs=jobs)

    @property
    def flag_rate(self) -> float:
        """Share of scored sessions flagged so far."""
        return self.flagged_count / self.scored_count if self.scored_count else 0.0
