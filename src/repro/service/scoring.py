"""Real-time scoring service.

Glues the pieces into the online path the paper deploys: wire payload →
validation → (optional) persistence → model verdict, with end-to-end
latency accounting against the Section 3 budget of 100ms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from datetime import date
from typing import Dict, Optional, Tuple

from repro.core.pipeline import BrowserPolygraph
from repro.coverage.tracker import vendor_of
from repro.service.ingest import IngestResult, PayloadValidator
from repro.service.storage import SessionStore
from repro.traffic.dataset import Dataset

__all__ = ["ScoringService", "Verdict"]


@dataclass(frozen=True)
class Verdict:
    """The service's answer for one session.

    ``flagged`` / ``risk_factor`` are always the cluster-distance
    verdict — the fusion arm is additive-only, so these stay
    bit-identical whether fusion is attached or not.  The ``fused_*`` /
    ``second_*`` provenance fields are populated only when a fusion arm
    scored the session, and stay ``None`` otherwise.  Likewise the
    ``inferred_*`` fields carry nearest-release provenance only under
    ``unknown_ua_policy="infer"`` for sessions whose claimed UA was
    outside the trained table.
    """

    session_id: str
    accepted: bool
    flagged: bool
    risk_factor: Optional[int]
    reject_reason: Optional[str]
    latency_ms: float
    fused_flagged: Optional[bool] = None
    fusion_cell: Optional[str] = None
    second_probability: Optional[float] = None
    second_lift: Optional[float] = None
    inferred_release: Optional[str] = None
    inferred_distance: Optional[int] = None

    @property
    def actionable(self) -> bool:
        """Whether the risk engine should consider this session."""
        return self.accepted and self.flagged


class ScoringService:
    """Validate, persist, and score payloads in real time.

    Parameters
    ----------
    polygraph:
        A fitted :class:`~repro.core.pipeline.BrowserPolygraph`.
    validator:
        Wire-contract enforcement; a default validator is created if
        omitted.
    store:
        Optional durable store; accepted payloads are appended so the
        next training window can be exported later.
    fusion:
        Optional :class:`~repro.fusion.arm.FusionArm`; when attached,
        verdicts carry the fused provenance fields on top of the
        (unchanged) cluster verdict.
    """

    def __init__(
        self,
        polygraph: BrowserPolygraph,
        validator: Optional[PayloadValidator] = None,
        store: Optional[SessionStore] = None,
        fusion=None,
    ) -> None:
        if not polygraph.is_fitted:
            raise ValueError("ScoringService requires a fitted BrowserPolygraph")
        self.polygraph = polygraph
        self.validator = validator if validator is not None else PayloadValidator()
        self.store = store
        self.fusion = None
        self.coverage = None
        self.scored_count = 0
        self.flagged_count = 0
        # Per-vendor unknown-UA volume, observable even without the
        # coverage subsystem attached (polygraph_unknown_ua_total).
        self.unknown_ua_counts: Dict[str, int] = {}
        if fusion is not None:
            self.attach_fusion(fusion)

    def attach_fusion(self, arm) -> "ScoringService":
        """Attach a fusion arm bound to this service's pipeline."""
        self.fusion = arm.bind_pipeline(self.polygraph)
        return self

    def attach_coverage(self, tracker) -> "ScoringService":
        """Attach a :class:`~repro.coverage.tracker.CoverageTracker`.

        The tracker's known-release table is seeded from the current
        model and re-synced on every retrain, so its classification
        always matches the serving generation.
        """
        self.coverage = tracker
        generation, detector = self.polygraph.detection_snapshot()
        tracker.set_known_keys(
            detector.model.ua_to_cluster, generation=generation
        )
        self.polygraph.add_retrain_listener(
            lambda gen: self._sync_coverage(gen)
        )
        return self

    def _sync_coverage(self, generation: int) -> None:
        if self.coverage is None:
            return
        _, detector = self.polygraph.detection_snapshot()
        self.coverage.set_known_keys(
            detector.model.ua_to_cluster, generation=generation
        )

    def score_wire(
        self,
        wire: bytes,
        day: Optional[date] = None,
        tags: Optional[Tuple[bool, bool]] = None,
    ) -> Verdict:
        """The full online path for one request.

        ``tags`` optionally carries the risk engine's
        ``(untrusted_ip, untrusted_cookie)`` signals for the fusion
        arm; it is ignored when no arm is attached.
        """
        started = time.perf_counter()
        ingest: IngestResult = self.validator.ingest_wire(wire)
        if not ingest.accepted:
            return Verdict(
                session_id="",
                accepted=False,
                flagged=False,
                risk_factor=None,
                reject_reason=ingest.reason.value if ingest.reason else "unknown",
                latency_ms=(time.perf_counter() - started) * 1000.0,
            )
        payload = ingest.payload
        if self.store is not None:
            self.store.append(payload, day=day)
        result = self.polygraph.detect_payload(payload)
        self.scored_count += 1
        if result.flagged:
            self.flagged_count += 1
        if not result.known_ua:
            vendor = vendor_of(result.ua_key)
            self.unknown_ua_counts[vendor] = (
                self.unknown_ua_counts.get(vendor, 0) + 1
            )
        if self.coverage is not None:
            self.coverage.observe(result.ua_key, known=result.known_ua, day=day)
        fused_flagged = None
        fusion_cell = None
        second_probability = None
        second_lift = None
        if self.fusion is not None:
            outcome = self.fusion.consider(
                payload.values,
                payload.user_agent,
                result.flagged,
                day=day,
                tags=tags,
            )
            if outcome is not None:
                opinion, fused = outcome
                fused_flagged = fused.fused_flagged
                fusion_cell = fused.cell.value
                second_probability = opinion.probability
                second_lift = opinion.lift
        return Verdict(
            session_id=payload.session_id,
            accepted=True,
            flagged=result.flagged,
            risk_factor=result.risk_factor,
            reject_reason=None,
            latency_ms=(time.perf_counter() - started) * 1000.0,
            fused_flagged=fused_flagged,
            fusion_cell=fusion_cell,
            second_probability=second_probability,
            second_lift=second_lift,
            inferred_release=result.inferred_release,
            inferred_distance=result.inferred_distance,
        )

    def retrain(
        self, dataset: Dataset, align_rare: bool = True, jobs: int = 1
    ) -> None:
        """Swap in a freshly trained model without stopping scoring.

        The pipeline installs the new model atomically under its swap
        lock: a request (or a runtime batch) that is mid-flight keeps
        scoring against the snapshot it started with, and every request
        accepted afterwards sees only the new model — never a mix.
        """
        self.polygraph.retrain(dataset, align_rare=align_rare, jobs=jobs)

    @property
    def flag_rate(self) -> float:
        """Share of scored sessions flagged so far."""
        return self.flagged_count / self.scored_count if self.scored_count else 0.0
