"""Pipelined asyncio ingest front end for the collection endpoint.

The WSGI path (``wsgiref`` + :class:`~repro.service.api.CollectionApp`)
scores one request per server thread: parse, score, respond, repeat.
That serializes the socket on the model call and caps ingest well below
what the sharded scoring tier can absorb.  This module replaces the
front of that pipeline with a single-threaded asyncio server that keeps
many requests in flight per connection:

* **streaming request parsing** — headers via ``readuntil``, bodies via
  ``readexactly``; nothing is buffered beyond the request being read;
* **batch coalescing** — ``POST /collect`` bodies from *all*
  connections land in one coalescing buffer; a batcher slices it into
  chunks and feeds them to the scoring service's widest interface
  (``score_many`` on the cluster router, ``submit_wire`` pipelining on
  the micro-batched runtime, ``score_wire`` otherwise) on a small
  thread pool, several batches in flight at once;
* **read-side backpressure** — when the number of admitted-but-
  unanswered wires crosses the high watermark the server simply *stops
  reading sockets* (TCP flow control propagates to clients) until the
  backlog drains below the low watermark, instead of accepting work
  only to shed it with 503s.  Pause episodes are counted and exported.

Responses stay ordered per connection: each parsed request enqueues a
future into that connection's response lane, and a per-connection
writer drains the lane in arrival order — so HTTP/1.1 pipelining is
safe even though scoring completes out of order across batches.

Endpoints other than ``POST /collect`` are delegated to the existing
:class:`~repro.service.api.CollectionApp` through a minimal in-process
WSGI bridge, so ``/health``, ``/metrics``, ``/cluster`` and the session
endpoints behave identically under either front end.  ``GET /metrics``
responses additionally carry this server's ``polygraph_ingest_*``
counters.
"""

from __future__ import annotations

import asyncio
import io
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Tuple

from repro.fingerprint.script import MAX_PAYLOAD_BYTES

__all__ = ["AsyncIngestServer"]

# Mirrors the WSGI app: the body cap IS the wire-contract cap, plus the
# fixed envelope allowance the /event and /check endpoints enjoy.
_MAX_BODY = MAX_PAYLOAD_BYTES + 128

# Hard parse limits: a request line + headers beyond this is hostile.
_MAX_HEAD = 8192

_RETRY_AFTER_SECONDS = "1"


def _render(status: str, headers: List[Tuple[str, str]], body: bytes,
            keep_alive: bool) -> bytes:
    """One HTTP/1.1 response as bytes; Content-Length always explicit."""
    lines = [f"HTTP/1.1 {status}"]
    has_length = False
    for name, value in headers:
        if name.lower() == "content-length":
            has_length = True
        lines.append(f"{name}: {value}")
    if not has_length:
        lines.append(f"Content-Length: {len(body)}")
    lines.append("Connection: " + ("keep-alive" if keep_alive else "close"))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _error(status: str, message: str, keep_alive: bool) -> bytes:
    body = ('{"error": "%s"}' % message).encode("utf-8")
    return _render(status, [("Content-Type", "application/json")], body,
                   keep_alive)


class AsyncIngestServer:
    """Asyncio front end feeding a scoring service in coalesced batches.

    ``service`` is anything speaking ``score_wire`` — the cluster
    router, the micro-batched runtime, or the per-request service; the
    widest batch interface it offers is used.  ``app`` is the WSGI
    :class:`CollectionApp` wrapping the *same* service, used verbatim
    for every endpoint except ``POST /collect``.

    The server owns one event-loop thread; ``start()``/``close()``
    manage it directly, while ``serve_forever()``/``shutdown()`` match
    the ``wsgiref`` surface the CLI's signal plumbing expects.
    """

    def __init__(
        self,
        service,
        app: Callable,
        *,
        host: str = "127.0.0.1",
        port: int = 8040,
        batch_max: int = 256,
        linger_ms: float = 0.5,
        max_pending: int = 8192,
        score_threads: int = 4,
    ) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if max_pending < batch_max:
            raise ValueError("max_pending must be >= batch_max")
        self.service = service
        self.app = app
        self.host = host
        self.port = port
        self.batch_max = int(batch_max)
        self.linger_s = max(0.0, float(linger_ms)) / 1000.0
        self.max_pending = int(max_pending)
        # Resume reading only once the backlog has properly drained;
        # flapping around a single watermark would pause per-request.
        self.resume_pending = max(1, self.max_pending // 2)
        self._score_threads = max(1, int(score_threads))
        # -- counters (ints: GIL-atomic, read from any thread) --
        self.requests_total = 0
        self.collect_total = 0
        self.batches_total = 0
        self.batch_rows_total = 0
        self.backpressure_pauses = 0
        self.open_connections = 0
        # -- lifecycle --
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: Optional[BaseException] = None
        # -- loop-thread state (created in _main) --
        self._pending = 0
        self._buffer: List[Tuple[bytes, asyncio.Future]] = []
        self._wakeup: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "AsyncIngestServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="polygraph-aingest", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise self._startup_error
        if not self._started.is_set():
            raise RuntimeError("async ingest server failed to start")
        return self

    def close(self) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._request_stop)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._stopped.set()

    # wsgiref-compatible surface for the CLI's signal plumbing.
    def serve_forever(self) -> None:
        self.start()
        self._stopped.wait()

    def shutdown(self) -> None:
        self.close()

    def __enter__(self) -> "AsyncIngestServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request_stop(self) -> None:
        if self._stop_async is not None:
            self._stop_async.set()

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start()
            if not self._started.is_set():
                self._startup_error = exc
                self._started.set()
        finally:
            self._stopped.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._drained = asyncio.Event()
        self._drained.set()
        self._stop_async = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self._score_threads,
            thread_name_prefix="polygraph-score",
        )
        try:
            server = await asyncio.start_server(
                self._handle, self.host, self.port, limit=_MAX_HEAD + _MAX_BODY
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            self._executor.shutdown(wait=False)
            return
        self.port = server.sockets[0].getsockname()[1]
        batcher = asyncio.ensure_future(self._batch_loop())
        self._started.set()
        try:
            await self._stop_async.wait()
        finally:
            server.close()
            await server.wait_closed()
            batcher.cancel()
            for _, fut in self._buffer:
                if not fut.done():
                    fut.cancel()
            self._buffer.clear()
            self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # connection handling

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.open_connections += 1
        lane: asyncio.Queue = asyncio.Queue()
        sender = asyncio.ensure_future(self._write_loop(writer, lane))
        try:
            while True:
                # Read-side backpressure: past the high watermark the
                # socket simply stops being read.  The kernel's receive
                # window fills and the client slows down — no request
                # is parsed only to be shed.
                if self._pending >= self.max_pending:
                    self._drained.clear()
                    self.backpressure_pauses += 1
                    await self._drained.wait()
                request = await self._read_request(reader, lane)
                if request is None:
                    break
                method, path, body, keep_alive = request
                self.requests_total += 1
                if method == "POST" and path == "/collect":
                    await self._enqueue_collect(body, keep_alive, lane)
                else:
                    fut = self._loop.run_in_executor(
                        self._executor, self._wsgi_call, method, path, body
                    )
                    await lane.put((fut, keep_alive))
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            # Loop teardown with the connection still open (keep-alive):
            # exit quietly; the transport is closed by the server.
            pass
        finally:
            try:
                lane.put_nowait(None)
                await sender
            except (Exception, asyncio.CancelledError):
                sender.cancel()
            self.open_connections -= 1

    async def _read_request(
        self, reader: asyncio.StreamReader, lane: asyncio.Queue
    ) -> Optional[Tuple[str, str, bytes, bool]]:
        """Parse one request; ``None`` ends the connection cleanly."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise
            return None  # clean EOF between requests
        if len(head) > _MAX_HEAD:
            await lane.put((None, False))
            return None
        try:
            text = head.decode("latin-1")
            request_line, *header_lines = text.split("\r\n")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            await lane.put((None, False))
            return None
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        path = target.split("?", 1)[0]
        body = b""
        raw_length = headers.get("content-length")
        if raw_length is not None:
            try:
                length = int(raw_length)
            except ValueError:
                await lane.put((None, False))
                return None
            if length < 0 or length > _MAX_BODY:
                # The body can't be skipped without reading it; close.
                await lane.put((None, False))
                return None
            if length:
                body = await reader.readexactly(length)
        elif method == "POST":
            await lane.put(("length-required", False))
            return None
        return method, path, body, keep_alive

    async def _write_loop(self, writer: asyncio.StreamWriter,
                          lane: asyncio.Queue) -> None:
        """Drain one connection's response lane in arrival order."""
        try:
            while True:
                item = await lane.get()
                if item is None:
                    break
                pending, keep_alive = item
                if pending is None:
                    writer.write(_error("400 Bad Request", "malformed request",
                                        False))
                    break
                if pending == "length-required":
                    writer.write(_error("411 Length Required",
                                        "content-length required", False))
                    break
                try:
                    raw = await pending
                except (asyncio.CancelledError, Exception):
                    raw = _error("500 Internal Server Error",
                                 "scoring failed", keep_alive)
                writer.write(raw)
                await writer.drain()
                if not keep_alive:
                    break
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # /collect: coalesce across connections, score in batches

    async def _enqueue_collect(self, body: bytes, keep_alive: bool,
                               lane: asyncio.Queue) -> None:
        if not body:
            fut = self._loop.create_future()
            fut.set_result(_error("400 Bad Request", "bad content length",
                                  keep_alive))
            await lane.put((fut, keep_alive))
            return
        self.collect_total += 1
        self._pending += 1
        fut = self._loop.create_future()
        self._buffer.append((body, fut))
        self._wakeup.set()
        await lane.put((fut, keep_alive))

    async def _batch_loop(self) -> None:
        """Slice the shared buffer into batches; several in flight."""
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._buffer:
                continue
            if len(self._buffer) < self.batch_max and self.linger_s > 0.0:
                # A short linger lets concurrent connections pile on so
                # the scoring tier sees wide batches, not single wires.
                await asyncio.sleep(self.linger_s)
            while self._buffer:
                batch = self._buffer[: self.batch_max]
                del self._buffer[: len(batch)]
                wires = [wire for wire, _ in batch]
                futures = [fut for _, fut in batch]
                self.batches_total += 1
                self.batch_rows_total += len(batch)
                task = self._loop.run_in_executor(
                    self._executor, self._score_batch, wires
                )
                task.add_done_callback(
                    lambda done, futures=futures: self._deliver(done, futures)
                )

    def _score_batch(self, wires: List[bytes]) -> List[bytes]:
        """Runs on the scoring thread pool; returns rendered responses."""
        score_many = getattr(self.service, "score_many", None)
        if score_many is not None:
            verdicts = score_many(wires)
        else:
            submit = getattr(self.service, "submit_wire", None)
            if submit is not None:
                # The micro-batched runtime pipelines: submit everything
                # first, then collect — misses share pool batches.
                verdicts = [p.result() for p in [submit(w) for w in wires]]
            else:
                verdicts = [self.service.score_wire(w) for w in wires]
        return [self._render_verdict(v) for v in verdicts]

    @staticmethod
    def _render_verdict(verdict) -> bytes:
        """Mirror ``CollectionApp._collect`` status + document exactly."""
        import json

        from repro.runtime.pool import OVERLOADED_REASON

        document = {
            "accepted": verdict.accepted,
            "flagged": verdict.flagged,
            "risk_factor": verdict.risk_factor,
            "latency_ms": round(verdict.latency_ms, 3),
        }
        headers = [("Content-Type", "application/json")]
        if not verdict.accepted:
            document["reject_reason"] = verdict.reject_reason
            if verdict.reject_reason == OVERLOADED_REASON:
                headers.append(("Retry-After", _RETRY_AFTER_SECONDS))
                status = "503 Service Unavailable"
            else:
                status = "400 Bad Request"
        else:
            status = "202 Accepted"
        body = json.dumps(document).encode("utf-8")
        return _render(status, headers, body, True)

    def _deliver(self, done, futures: List[asyncio.Future]) -> None:
        """Executor-completion callback; runs on the event loop."""
        try:
            rendered = done.result()
        except Exception:
            rendered = None
        for index, fut in enumerate(futures):
            if fut.done():
                continue
            if rendered is None:
                fut.set_result(_error("500 Internal Server Error",
                                      "scoring failed", True))
            else:
                fut.set_result(rendered[index])
        self._pending -= len(futures)
        if self._pending <= self.resume_pending:
            self._drained.set()

    # ------------------------------------------------------------------
    # WSGI bridge for every other endpoint

    def _wsgi_call(self, method: str, path: str, body: bytes) -> bytes:
        environ = {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "QUERY_STRING": "",
            "CONTENT_LENGTH": str(len(body)),
            "SERVER_PROTOCOL": "HTTP/1.1",
            "wsgi.input": io.BytesIO(body),
        }
        captured: List = []

        def start_response(status, headers, exc_info=None):
            captured[:] = [status, list(headers)]

        chunks = self.app(environ, start_response)
        payload = b"".join(chunks)
        status, headers = captured
        if path == "/metrics" and status.startswith("200"):
            payload += ("\n".join(self.metrics_lines()) + "\n").encode("utf-8")
            headers = [
                (k, v) for k, v in headers if k.lower() != "content-length"
            ]
        return _render(status, headers, payload, True)

    # ------------------------------------------------------------------

    def metrics_lines(self) -> List[str]:
        return [
            "# TYPE polygraph_ingest_requests counter",
            f"polygraph_ingest_requests {self.requests_total}",
            "# TYPE polygraph_ingest_collect_requests counter",
            f"polygraph_ingest_collect_requests {self.collect_total}",
            "# TYPE polygraph_ingest_batches counter",
            f"polygraph_ingest_batches {self.batches_total}",
            "# TYPE polygraph_ingest_batch_rows counter",
            f"polygraph_ingest_batch_rows {self.batch_rows_total}",
            "# TYPE polygraph_ingest_backpressure_pauses counter",
            f"polygraph_ingest_backpressure_pauses {self.backpressure_pauses}",
            "# TYPE polygraph_ingest_open_connections gauge",
            f"polygraph_ingest_open_connections {self.open_connections}",
            "# TYPE polygraph_ingest_pending_wires gauge",
            f"polygraph_ingest_pending_wires {self._pending}",
        ]
