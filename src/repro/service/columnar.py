"""Binary columnar segments for the session store.

A sealed segment holds its records as one uncompressed NumPy ``.npz``
archive with a fixed column set (session ids, user-agent strings,
precomputed ``vendor-version`` keys, the int32 feature matrix, epoch
days, and JSON-encoded suspicious-globals).  Uncompressed matters:
every member of such an archive is a plain ``.npy`` blob at a known
file offset, so :func:`read_segment` can hand back **memory-mapped
views** — an export touches no row bytes until the training code does.

Writes are atomic (temp file + ``os.replace``), so a crash mid-seal
leaves either the old JSONL segment or the finished columnar one,
never a half-written archive.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.browsers.useragent import parse_user_agent

__all__ = [
    "COLUMNS",
    "read_segment",
    "records_to_columns",
    "segment_records",
    "write_segment",
]

# Column name -> whether it is eligible for memory-mapping (fixed-width
# dtypes only; everything NumPy writes is fixed-width, so all are).
COLUMNS = ("sid", "ua", "ua_key", "f", "day", "g")

# The segment mechanics below (atomic write, header-only counting,
# mmap reads) are column-set agnostic: callers with a different schema
# — the session event log stores per-event rows — pass their own
# ``column_set``; the session store keeps the historical default.


def records_to_columns(records: List[dict]) -> Dict[str, np.ndarray]:
    """Convert JSONL-style session records to the columnar column set.

    ``ua_key`` is computed here, once, at seal time — exports from a
    columnar segment never re-parse user-agent strings.
    """
    if not records:
        raise ValueError("cannot build a columnar segment from zero records")
    return {
        "sid": np.array([r["sid"] for r in records], dtype="U"),
        "ua": np.array([r["ua"] for r in records], dtype="U"),
        "ua_key": np.array(
            [parse_user_agent(r["ua"]).key() for r in records], dtype="U"
        ),
        "f": np.array([r["f"] for r in records], dtype=np.int32),
        "day": np.array(
            [r["day"] for r in records], dtype="datetime64[D]"
        ).astype(np.int64),
        "g": np.array(
            [
                json.dumps(r["g"], separators=(",", ":")) if r.get("g") else ""
                for r in records
            ],
            dtype="U",
        ),
    }


def columns_to_records(columns: Dict[str, np.ndarray]) -> List[dict]:
    """Reconstruct JSONL-style records from a column set (round-trip)."""
    days = columns["day"].astype("datetime64[D]")
    records = []
    for idx in range(columns["sid"].shape[0]):
        record = {
            "sid": str(columns["sid"][idx]),
            "ua": str(columns["ua"][idx]),
            "f": [int(v) for v in columns["f"][idx]],
            "day": str(days[idx]),
        }
        globs = str(columns["g"][idx])
        if globs:
            record["g"] = json.loads(globs)
        records.append(record)
    return records


def write_segment(
    path: Union[str, Path],
    columns: Dict[str, np.ndarray],
    column_set: Sequence[str] = COLUMNS,
) -> int:
    """Atomically write a columnar segment; returns its byte size."""
    path = Path(path)
    missing = [name for name in column_set if name not in columns]
    if missing:
        raise ValueError(f"columnar segment missing columns: {missing}")
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("wb") as handle:
            # np.savez (uncompressed) keeps every member ZIP_STORED,
            # which is what makes the mmap read path possible.
            np.savez(handle, **{name: columns[name] for name in column_set})
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path.stat().st_size


def segment_records(
    path: Union[str, Path], count_column: str = "sid"
) -> int:
    """Record count of a columnar segment, reading only one npy header."""
    with zipfile.ZipFile(path, "r") as archive:
        with archive.open(f"{count_column}.npy") as member:
            version = np.lib.format.read_magic(member)
            shape, _, _ = _read_header(member, version)
    return int(shape[0])


def read_segment(
    path: Union[str, Path],
    mmap: bool = True,
    column_set: Sequence[str] = COLUMNS,
) -> Dict[str, np.ndarray]:
    """Load a columnar segment, memory-mapping columns when possible.

    Returned arrays are read-only views over the file for every member
    stored uncompressed and C-contiguous; anything else falls back to a
    normal :func:`numpy.load` read.  Callers must treat them as
    immutable (they are opened copy-on-write, so accidental writes
    cannot corrupt the store).
    """
    path = Path(path)
    columns: Dict[str, np.ndarray] = {}
    pending: List[str] = []
    if mmap:
        try:
            with zipfile.ZipFile(path, "r") as archive:
                for name in column_set:
                    member = f"{name}.npy"
                    info = archive.getinfo(member)
                    array = _mmap_member(path, archive, info)
                    if array is None:
                        pending.append(name)
                    else:
                        columns[name] = array
        except (OSError, KeyError, ValueError, zipfile.BadZipFile):
            columns, pending = {}, list(column_set)
    else:
        pending = list(column_set)
    if pending:
        with np.load(path, allow_pickle=False) as archive:
            for name in pending:
                columns[name] = archive[name]
    return columns


def _read_header(handle, version):
    if version == (1, 0):
        return np.lib.format.read_array_header_1_0(handle)
    if version == (2, 0):
        return np.lib.format.read_array_header_2_0(handle)
    raise ValueError(f"unsupported npy format version {version}")


def _mmap_member(path: Path, archive: zipfile.ZipFile, info) -> "np.ndarray":
    """Memory-map one ``.npy`` member of an uncompressed zip, or None."""
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    with archive.open(info.filename) as member:
        version = np.lib.format.read_magic(member)
        shape, fortran, dtype = _read_header(member, version)
        if fortran or dtype.hasobject:
            return None
        data_offset = member.tell()
    # The zip local header precedes the member payload: fixed 30 bytes
    # plus the (local) name and extra fields, which can differ from the
    # central directory's, so they are read from the file itself.
    with path.open("rb") as raw:
        raw.seek(info.header_offset + 26)
        name_len = int.from_bytes(raw.read(2), "little")
        extra_len = int.from_bytes(raw.read(2), "little")
    payload_start = info.header_offset + 30 + name_len + extra_len
    return np.memmap(
        path,
        dtype=dtype,
        mode="c",
        offset=payload_start + data_offset,
        shape=shape,
        order="C",
    )
