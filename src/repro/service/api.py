"""WSGI application for the collection endpoint.

A dependency-free HTTP surface around :class:`ScoringService`, runnable
under any WSGI server (``wsgiref.simple_server`` works for demos):

* ``POST /collect`` — one wire payload in the body; responds with the
  verdict as JSON (``202`` accepted, ``400`` rejected);
* ``GET  /health``  — liveness + model metadata;
* ``GET  /metrics`` — scored/flagged counters and the quarantine
  breakdown, Prometheus-style plain text;
* ``GET  /rollout`` — status of the in-flight model rollout (stage,
  disagreement report), when the runtime has one attached;
* ``GET  /cluster`` — shard topology and routing counters, when a
  :class:`~repro.cluster.router.ClusterRouter` is serving (404 with a
  JSON body in single-process mode);
* ``POST /event`` — one event-envelope payload; scored through the
  session layer, responds with the per-event verdict plus the sticky
  session verdict and any revision (404 when session streaming is off);
* ``GET  /session/{id}`` — live state of one session;
* ``GET  /sessions`` — session-layer aggregate status;
* ``POST /check`` — the risk engine's fused-verdict endpoint: a wire
  payload plus optional ``untrusted_ip`` / ``untrusted_cookie`` /
  ``day`` context, answered with the cluster verdict *and* the fused
  verdict + agreement cell (404 when no fusion arm is attached);
* ``GET  /fusion`` — fusion-arm status: agreement-cell counters,
  guardrail state, and the model summary;
* ``GET  /coverage`` — release-coverage intelligence: per-vendor
  unknown-UA rates against their calendar-derived expected bands plus
  the top unknown releases (404 when no tracker is attached).

The app never exposes more than the verdict: the cluster table and the
model internals stay server-side, which matters because Algorithm 1's
outputs are inputs to FinOrg's risk engine, not to the client.
"""

from __future__ import annotations

import json
from typing import Callable, Iterable, List, Tuple

from repro.fingerprint.script import MAX_PAYLOAD_BYTES
from repro.service.scoring import ScoringService

__all__ = ["CollectionApp"]

# Shed traffic should come back, just not immediately: the runtime's
# queue drains in milliseconds, so a short client backoff suffices.
_RETRY_AFTER_SECONDS = "1"

# The WSGI body cap IS the wire-contract cap (paper Section 3's 1KB
# budget): anything larger would be quarantined as OVERSIZED by the
# validator anyway, so reading it off the socket only buys an attacker
# free memory.  Deriving it keeps the two caps from silently diverging.
_MAX_BODY = MAX_PAYLOAD_BYTES


class CollectionApp:
    """WSGI callable wrapping a scoring service.

    ``service`` is either the per-request :class:`ScoringService` or the
    high-throughput :class:`~repro.runtime.service.RuntimeScoringService`
    — both speak the same ``score_wire`` contract, and the runtime
    additionally contributes its metrics registry to ``/metrics``.

    ``sessions`` optionally attaches a
    :class:`~repro.sessions.service.SessionScoringService` wrapping the
    same inner service; the event-stream endpoints 404 without it, and
    its ``polygraph_session_*`` registry joins ``/metrics`` with it.

    ``coverage`` optionally attaches a
    :class:`~repro.coverage.tracker.CoverageTracker`; ``GET /coverage``
    404s without it.  (Its ``polygraph_coverage_*`` lines reach
    ``/metrics`` through the scoring service it is attached to.)
    """

    def __init__(
        self, service: ScoringService, sessions=None, coverage=None
    ) -> None:
        self.service = service
        self.sessions = sessions
        self.coverage = coverage

    # ------------------------------------------------------------------

    def __call__(
        self, environ: dict, start_response: Callable
    ) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        if method == "POST" and path == "/collect":
            return self._collect(environ, start_response)
        if method == "GET" and path == "/health":
            return self._health(start_response)
        if method == "GET" and path == "/metrics":
            return self._metrics(start_response)
        if method == "GET" and path == "/rollout":
            return self._rollout(start_response)
        if method == "GET" and path == "/cluster":
            return self._cluster(start_response)
        if method == "POST" and path == "/check":
            return self._check(environ, start_response)
        if method == "GET" and path == "/fusion":
            return self._fusion(start_response)
        if method == "GET" and path == "/coverage":
            return self._coverage(start_response)
        if method == "POST" and path == "/event":
            return self._event(environ, start_response)
        if method == "GET" and path == "/sessions":
            return self._sessions(start_response)
        if method == "GET" and path.startswith("/session/"):
            return self._session(path[len("/session/"):], start_response)
        return self._respond(
            start_response, "404 Not Found", {"error": "unknown endpoint"}
        )

    # ------------------------------------------------------------------

    def _collect(self, environ: dict, start_response: Callable) -> List[bytes]:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length <= 0 or length > _MAX_BODY:
            return self._respond(
                start_response, "400 Bad Request", {"error": "bad content length"}
            )
        body = environ["wsgi.input"].read(length)
        verdict = self.service.score_wire(body)
        document = {
            "accepted": verdict.accepted,
            "flagged": verdict.flagged,
            "risk_factor": verdict.risk_factor,
            "latency_ms": round(verdict.latency_ms, 3),
        }
        if not verdict.accepted:
            # Imported here: repro.runtime imports this package's
            # scoring types, so a module-level import would be circular.
            from repro.runtime.pool import OVERLOADED_REASON

            document["reject_reason"] = verdict.reject_reason
            if verdict.reject_reason == OVERLOADED_REASON:
                # Overload is the server's condition, not the payload's:
                # 503 + Retry-After tells a well-behaved client to back
                # off briefly instead of treating the session as bad.
                return self._respond(
                    start_response,
                    "503 Service Unavailable",
                    document,
                    extra_headers=[("Retry-After", _RETRY_AFTER_SECONDS)],
                )
            return self._respond(start_response, "400 Bad Request", document)
        return self._respond(start_response, "202 Accepted", document)

    def _check(self, environ: dict, start_response: Callable) -> List[bytes]:
        if getattr(self.service, "fusion", None) is None:
            return self._respond(
                start_response,
                "404 Not Found",
                {"error": "fusion not enabled"},
            )
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        # The check envelope adds the risk-engine context fields on top
        # of the wire payload; a fixed allowance covers them.
        if length <= 0 or length > _MAX_BODY + 128:
            return self._respond(
                start_response, "400 Bad Request", {"error": "bad content length"}
            )
        body = environ["wsgi.input"].read(length)
        try:
            envelope = json.loads(body.decode("utf-8"))
            if not isinstance(envelope, dict):
                raise ValueError("not an object")
        except (ValueError, UnicodeDecodeError):
            return self._respond(
                start_response, "400 Bad Request", {"error": "malformed body"}
            )
        day = None
        if envelope.get("day"):
            from datetime import date

            try:
                day = date.fromisoformat(str(envelope["day"]))
            except ValueError:
                return self._respond(
                    start_response, "400 Bad Request", {"error": "bad day"}
                )
        tags = (
            bool(envelope.get("untrusted_ip", False)),
            bool(envelope.get("untrusted_cookie", False)),
        )
        core = {key: envelope[key] for key in ("sid", "ua", "f") if key in envelope}
        if "g" in envelope:
            core["g"] = envelope["g"]
        wire = json.dumps(core, separators=(",", ":")).encode("utf-8")
        verdict = self.service.score_wire(wire, day=day, tags=tags)
        document = {
            "accepted": verdict.accepted,
            "flagged": verdict.flagged,
            "risk_factor": verdict.risk_factor,
            "fused_flagged": verdict.fused_flagged,
            "fusion_cell": verdict.fusion_cell,
            "second_probability": verdict.second_probability,
            "second_lift": verdict.second_lift,
            "latency_ms": round(verdict.latency_ms, 3),
        }
        if not verdict.accepted:
            document["reject_reason"] = verdict.reject_reason
            return self._respond(start_response, "400 Bad Request", document)
        return self._respond(start_response, "200 OK", document)

    def _fusion(self, start_response: Callable) -> List[bytes]:
        arm = getattr(self.service, "fusion", None)
        if arm is None:
            return self._respond(
                start_response,
                "404 Not Found",
                {"error": "fusion not enabled"},
            )
        return self._respond(start_response, "200 OK", arm.status_dict())

    def _coverage(self, start_response: Callable) -> List[bytes]:
        if self.coverage is None:
            return self._respond(
                start_response,
                "404 Not Found",
                {"error": "coverage tracking not enabled"},
            )
        return self._respond(
            start_response, "200 OK", self.coverage.status_dict()
        )

    def _event(self, environ: dict, start_response: Callable) -> List[bytes]:
        if self.sessions is None:
            return self._respond(
                start_response,
                "404 Not Found",
                {"error": "session streaming not enabled"},
            )
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        # The envelope adds ev/seq/ts on top of the wire payload; a
        # fixed allowance covers them without loosening the core cap.
        if length <= 0 or length > _MAX_BODY + 128:
            return self._respond(
                start_response, "400 Bad Request", {"error": "bad content length"}
            )
        body = environ["wsgi.input"].read(length)
        observation = self.sessions.observe_wire(body)
        document = observation.to_dict()
        if not observation.verdict.accepted:
            return self._respond(start_response, "400 Bad Request", document)
        return self._respond(start_response, "202 Accepted", document)

    def _sessions(self, start_response: Callable) -> List[bytes]:
        if self.sessions is None:
            return self._respond(
                start_response,
                "404 Not Found",
                {"error": "session streaming not enabled"},
            )
        return self._respond(start_response, "200 OK", self.sessions.status_dict())

    def _session(self, session_id: str, start_response: Callable) -> List[bytes]:
        if self.sessions is None:
            return self._respond(
                start_response,
                "404 Not Found",
                {"error": "session streaming not enabled"},
            )
        snapshot = self.sessions.session_snapshot(session_id)
        if snapshot is None:
            return self._respond(
                start_response,
                "404 Not Found",
                {"error": "unknown or expired session", "session_id": session_id},
            )
        return self._respond(start_response, "200 OK", snapshot)

    def _health(self, start_response: Callable) -> List[bytes]:
        model = self.service.polygraph.cluster_model
        return self._respond(
            start_response,
            "200 OK",
            {
                "status": "ok",
                "model_accuracy": round(float(model.accuracy_), 4),
                "clusters": model.config.n_clusters,
                "known_user_agents": len(model.ua_to_cluster),
            },
        )

    def _rollout(self, start_response: Callable) -> List[bytes]:
        manager = getattr(self.service, "rollout", None)
        if manager is None:
            return self._respond(
                start_response,
                "404 Not Found",
                {"error": "no rollout in progress"},
            )
        return self._respond(start_response, "200 OK", manager.status_dict())

    def _cluster(self, start_response: Callable) -> List[bytes]:
        status = getattr(self.service, "cluster_status", None)
        if status is None:
            return self._respond(
                start_response,
                "404 Not Found",
                {"error": "not serving as a cluster", "mode": "single-process"},
            )
        return self._respond(start_response, "200 OK", status())

    def _metrics(self, start_response: Callable) -> List[bytes]:
        quarantine = self.service.validator.quarantine
        lines = [
            "# TYPE polygraph_sessions_scored counter",
            f"polygraph_sessions_scored {self.service.scored_count}",
            "# TYPE polygraph_sessions_flagged counter",
            f"polygraph_sessions_flagged {self.service.flagged_count}",
            "# TYPE polygraph_payloads_rejected counter",
            f"polygraph_payloads_rejected {quarantine.total_rejects}",
        ]
        for reason, count in sorted(quarantine.counts().items()):
            lines.append(
                f'polygraph_payloads_rejected_by_reason{{reason="{reason.value}"}} {count}'
            )
        # The high-throughput runtime contributes its own registry
        # (cache hit rate, batch sizes, queue depth, stage latencies).
        runtime_lines = getattr(self.service, "runtime_metrics_lines", None)
        if runtime_lines is not None:
            lines.extend(runtime_lines())
        else:
            # The per-request service has no metrics registry; its
            # unknown-UA counters and coverage lines are emitted here.
            # (The runtime and cluster router emit their own copies
            # inside runtime_metrics_lines.)
            unknown = getattr(self.service, "unknown_ua_counts", None) or {}
            for vendor in sorted(unknown):
                lines.append(
                    f'polygraph_unknown_ua_total{{vendor="{vendor}"}} '
                    f"{unknown[vendor]}"
                )
            coverage = getattr(self.service, "coverage", None)
            if coverage is not None:
                lines.extend(coverage.metrics_lines())
        fusion = getattr(self.service, "fusion", None)
        if fusion is not None:
            lines.extend(fusion.metrics_lines())
        if self.sessions is not None:
            lines.extend(self.sessions.metrics_lines())
        body = ("\n".join(lines) + "\n").encode("utf-8")
        start_response(
            "200 OK",
            [
                ("Content-Type", "text/plain; version=0.0.4"),
                ("Content-Length", str(len(body))),
            ],
        )
        return [body]

    # ------------------------------------------------------------------

    @staticmethod
    def _respond(
        start_response: Callable,
        status: str,
        document: dict,
        extra_headers: Iterable[Tuple[str, str]] = (),
    ) -> List[bytes]:
        body = json.dumps(document).encode("utf-8")
        headers = [
            ("Content-Type", "application/json"),
            ("Content-Length", str(len(body))),
        ]
        headers.extend(extra_headers)
        start_response(status, headers)
        return [body]
