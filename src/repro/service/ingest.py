"""Payload validation and quarantine.

The collection endpoint faces the open internet: truncated bodies,
replayed payloads, fuzzed field types, oversized blobs.  None of that
may reach the scoring model.  :class:`PayloadValidator` enforces the
wire contract — the same constraints the paper's Section 3 budget sets —
and :class:`QuarantineLog` keeps the rejects for offline review
(malformed traffic is itself a weak fraud signal).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from enum import Enum
from typing import Deque, Iterable, List, Optional, Tuple

from repro.browsers.useragent import UserAgentError, parse_user_agent
from repro.fingerprint.features import N_FEATURES
from repro.fingerprint.script import FingerprintPayload, MAX_PAYLOAD_BYTES

__all__ = [
    "IngestResult",
    "MAX_FEATURE_VALUE",
    "MAX_SESSION_ID_LENGTH",
    "MAX_SUSPICIOUS_GLOBALS",
    "PayloadValidator",
    "QuarantineLog",
    "RejectReason",
]

MAX_FEATURE_VALUE = 10_000
MAX_SESSION_ID_LENGTH = 64
MAX_SUSPICIOUS_GLOBALS = 16

# Backwards-compatible aliases (pre-runtime module-private names).
_MAX_FEATURE_VALUE = MAX_FEATURE_VALUE
_MAX_SESSION_ID_LENGTH = MAX_SESSION_ID_LENGTH
_MAX_SUSPICIOUS_GLOBALS = MAX_SUSPICIOUS_GLOBALS


class RejectReason(str, Enum):
    """Why a payload was quarantined."""

    OVERSIZED = "oversized"
    MALFORMED = "malformed"
    WRONG_ARITY = "wrong_arity"
    VALUE_RANGE = "value_range"
    BAD_SESSION_ID = "bad_session_id"
    UNPARSEABLE_UA = "unparseable_ua"
    DUPLICATE = "duplicate"
    GLOBALS_OVERFLOW = "globals_overflow"


@dataclass(frozen=True)
class IngestResult:
    """Outcome of validating one wire payload."""

    accepted: bool
    payload: Optional[FingerprintPayload] = None
    reason: Optional[RejectReason] = None
    detail: str = ""


class QuarantineLog:
    """Bounded in-memory log of rejected payloads."""

    def __init__(self, capacity: int = 1000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: Deque[Tuple[RejectReason, str]] = deque(maxlen=capacity)
        self._counts: Counter = Counter()

    def record(self, reason: RejectReason, detail: str) -> None:
        """Store one reject (oldest entries fall off at capacity)."""
        self._entries.append((reason, detail))
        self._counts[reason] += 1

    def entries(self) -> List[Tuple[RejectReason, str]]:
        """The retained rejects, oldest first."""
        return list(self._entries)

    def counts(self) -> dict:
        """Lifetime reject counts by reason (not capped)."""
        return dict(self._counts)

    @property
    def total_rejects(self) -> int:
        """Lifetime number of rejected payloads."""
        return sum(self._counts.values())


class PayloadValidator:
    """Enforces the wire contract on incoming payloads.

    Parameters
    ----------
    expected_features:
        Required feature-vector arity (28 for the deployed model).
    dedup_window:
        Number of recent session ids remembered for replay rejection;
        0 disables deduplication.
    quarantine:
        Where rejects are recorded; a fresh log is created if omitted.
    """

    def __init__(
        self,
        expected_features: int = N_FEATURES,
        dedup_window: int = 100_000,
        quarantine: Optional[QuarantineLog] = None,
    ) -> None:
        if expected_features < 1:
            raise ValueError("expected_features must be >= 1")
        self.expected_features = expected_features
        self.quarantine = quarantine if quarantine is not None else QuarantineLog()
        self._dedup_window = dedup_window
        self._seen_ids: Deque[str] = deque(maxlen=max(1, dedup_window))
        self._seen_set: set = set()
        self.accepted_count = 0

    # ------------------------------------------------------------------

    def ingest_wire(self, wire: bytes) -> IngestResult:
        """Validate one raw wire payload."""
        if len(wire) > MAX_PAYLOAD_BYTES:
            return self._reject(
                RejectReason.OVERSIZED, f"{len(wire)} bytes > {MAX_PAYLOAD_BYTES}"
            )
        try:
            payload = FingerprintPayload.from_wire(wire)
        except ValueError as exc:
            return self._reject(RejectReason.MALFORMED, str(exc)[:120])
        return self.ingest_payload(payload)

    def ingest_payload(self, payload: FingerprintPayload) -> IngestResult:
        """Validate an already-parsed payload."""
        if not payload.session_id or len(payload.session_id) > _MAX_SESSION_ID_LENGTH:
            return self._reject(RejectReason.BAD_SESSION_ID, payload.session_id[:80])
        if len(payload.values) != self.expected_features:
            return self._reject(
                RejectReason.WRONG_ARITY,
                f"{len(payload.values)} values, expected {self.expected_features}",
            )
        if any(v < 0 or v > _MAX_FEATURE_VALUE for v in payload.values):
            return self._reject(RejectReason.VALUE_RANGE, "feature out of range")
        if len(payload.suspicious_globals) > _MAX_SUSPICIOUS_GLOBALS:
            return self._reject(
                RejectReason.GLOBALS_OVERFLOW,
                f"{len(payload.suspicious_globals)} suspicious globals",
            )
        try:
            parse_user_agent(payload.user_agent)
        except UserAgentError:
            return self._reject(
                RejectReason.UNPARSEABLE_UA, payload.user_agent[:80]
            )
        if self._dedup_window and payload.session_id in self._seen_set:
            return self._reject(RejectReason.DUPLICATE, payload.session_id)
        self._remember(payload.session_id)
        self.accepted_count += 1
        return IngestResult(accepted=True, payload=payload)

    def ingest_batch(self, wires: Iterable[bytes]) -> List[IngestResult]:
        """Validate a batch; order preserved."""
        return [self.ingest_wire(wire) for wire in wires]

    # ------------------------------------------------------------------
    # dedup state, shared with the runtime's fast ingest path

    @property
    def dedup_enabled(self) -> bool:
        """Whether replay rejection is active."""
        return bool(self._dedup_window)

    def is_duplicate(self, session_id: str) -> bool:
        """Whether ``session_id`` is inside the dedup window."""
        return bool(self._dedup_window) and session_id in self._seen_set

    def dedup_state(self) -> tuple:
        """The ``(window, ids_deque, id_set)`` triple, for bulk ingest.

        :class:`~repro.runtime.fastingest.WireIngest` inlines the
        :meth:`is_duplicate`/:meth:`remember` pair across a whole chunk
        under one lock; the containers are shared, not copied.
        """
        return self._dedup_window, self._seen_ids, self._seen_set

    def remember(self, session_id: str) -> None:
        """Record an accepted session id in the dedup window."""
        if not self._dedup_window:
            return
        if len(self._seen_ids) == self._seen_ids.maxlen:
            oldest = self._seen_ids[0]
            self._seen_set.discard(oldest)
        self._seen_ids.append(session_id)
        self._seen_set.add(session_id)

    # Backwards-compatible alias.
    _remember = remember

    def _reject(self, reason: RejectReason, detail: str) -> IngestResult:
        self.quarantine.record(reason, detail)
        return IngestResult(accepted=False, reason=reason, detail=detail)
