"""Append-only session store with rotation and columnar sealing.

FinOrg handed the authors "periodic datasets" collected over eight
months.  :class:`SessionStore` is that mechanism: accepted payloads are
appended to a JSONL segment; when a segment reaches its size cap it is
rotated, and the whole store can be exported as a
:class:`~repro.traffic.dataset.Dataset` for (re)training.

Two formats coexist per segment, tracked by a ``manifest.json``:

* ``jsonl`` — the append format.  One JSON object per line; always the
  active segment, and the only format ever written by :meth:`append`.
* ``columnar`` — the training format (see
  :mod:`repro.service.columnar`).  :meth:`migrate` seals JSONL segments
  into uncompressed ``.npz`` archives whose columns — including the
  precomputed ``vendor-version`` key — are **memory-mapped** straight
  into the exported dataset, so a retrain's export step parses no JSON
  and copies no rows.

The manifest persists per-segment record counts, byte sizes, and day
ranges, so reopening a store costs one small JSON read instead of a
line-by-line rescan; if the process died after appends but before a
manifest flush, only the unaccounted *tail* of the active segment is
scanned to reconcile.
"""

from __future__ import annotations

import json
import os
from datetime import date
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.browsers.useragent import parse_user_agent
from repro.fingerprint.features import FEATURE_NAMES
from repro.fingerprint.script import FingerprintPayload
from repro.service import columnar
from repro.traffic.dataset import Dataset

__all__ = ["SessionStore"]

_SEGMENT_PREFIX = "sessions"
_MANIFEST_NAME = "manifest.json"
# The manifest is also flushed every N appends so a crash rescans at
# most N records' worth of tail bytes.
_MANIFEST_FLUSH_INTERVAL = 256

FORMAT_JSONL = "jsonl"
FORMAT_COLUMNAR = "columnar"


class _Segment:
    """Manifest row for one segment file."""

    __slots__ = ("index", "format", "records", "bytes", "min_day", "max_day")

    def __init__(
        self,
        index: int,
        format: str,
        records: int,
        bytes: int,
        min_day: Optional[str] = None,
        max_day: Optional[str] = None,
    ) -> None:
        self.index = index
        self.format = format
        self.records = records
        self.bytes = bytes
        self.min_day = min_day
        self.max_day = max_day

    @property
    def name(self) -> str:
        suffix = "npz" if self.format == FORMAT_COLUMNAR else "jsonl"
        return f"{_SEGMENT_PREFIX}-{self.index:05d}.{suffix}"

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "format": self.format,
            "records": self.records,
            "bytes": self.bytes,
            "min_day": self.min_day,
            "max_day": self.max_day,
        }

    def observe_day(self, day: str) -> None:
        if self.min_day is None or day < self.min_day:
            self.min_day = day
        if self.max_day is None or day > self.max_day:
            self.max_day = day


class SessionStore:
    """Durable segment storage for accepted payloads.

    Parameters
    ----------
    root:
        Directory holding the segments (created if missing).
    max_records_per_segment:
        Rotation threshold.
    """

    def __init__(
        self, root: Union[str, Path], max_records_per_segment: int = 50_000
    ) -> None:
        if max_records_per_segment < 1:
            raise ValueError("max_records_per_segment must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_records_per_segment = max_records_per_segment
        self._segments: Dict[int, _Segment] = {}
        self._appends_since_flush = 0
        self._load_manifest()
        self._reconcile_with_disk()
        self._active_index = (
            max(self._segments) if self._segments else 0
        )
        active = self._segments.get(self._active_index)
        if active is not None and active.format == FORMAT_COLUMNAR:
            # Columnar segments are sealed; appends start a fresh one.
            self._active_index += 1

    # ------------------------------------------------------------------
    # writes

    def append(self, payload: FingerprintPayload, day: Optional[date] = None) -> None:
        """Append one accepted payload (rotating when the segment fills)."""
        self.append_many([(payload, day)])

    def append_many(
        self,
        payloads: Iterable[Tuple[FingerprintPayload, Optional[date]]],
    ) -> int:
        """Append a batch of ``(payload, day)`` pairs; returns the count.

        The batch shares one file handle per touched segment, which is
        what makes bulk ingestion (simulators, backfills, benchmarks)
        fast; durability semantics are identical to repeated
        :meth:`append` calls.
        """
        appended = 0
        handle = None
        try:
            for payload, day in payloads:
                segment = self._active_segment()
                if segment.records >= self.max_records_per_segment:
                    if handle is not None:
                        handle.close()
                        handle = None
                    self._rotate()
                    segment = self._active_segment()
                if handle is None:
                    handle = (self.root / segment.name).open(
                        "a", encoding="utf-8"
                    )
                record = {
                    "sid": payload.session_id,
                    "ua": payload.user_agent,
                    "f": list(payload.values),
                    "day": (day or date(1970, 1, 1)).isoformat(),
                }
                if payload.suspicious_globals:
                    record["g"] = list(payload.suspicious_globals)
                line = json.dumps(record, separators=(",", ":")) + "\n"
                handle.write(line)
                segment.records += 1
                segment.bytes += len(line.encode("utf-8"))
                segment.observe_day(record["day"])
                appended += 1
                self._appends_since_flush += 1
        finally:
            if handle is not None:
                handle.close()
        if self._appends_since_flush >= _MANIFEST_FLUSH_INTERVAL:
            self.flush()
        return appended

    def flush(self) -> None:
        """Persist the manifest (record counts, day ranges) to disk."""
        entries = [
            self._segments[index].to_json()
            for index in sorted(self._segments)
        ]
        payload = json.dumps({"version": 1, "segments": entries}, indent=2)
        tmp = self.root / (_MANIFEST_NAME + ".tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, self.root / _MANIFEST_NAME)
        self._appends_since_flush = 0

    def migrate(self) -> List[Path]:
        """Seal every JSONL segment into the columnar format, in place.

        Each segment's records are rewritten as an uncompressed ``.npz``
        (with the ``vendor-version`` key precomputed per row) and the
        JSONL file is removed only after the replacement is fully on
        disk.  Returns the paths of the newly columnar segments.
        Subsequent appends open a fresh JSONL segment.
        """
        converted: List[Path] = []
        for index in sorted(self._segments):
            segment = self._segments[index]
            if segment.format != FORMAT_JSONL or segment.records == 0:
                continue
            jsonl_path = self.root / segment.name
            records = list(self._iter_jsonl(jsonl_path))
            columns = columnar.records_to_columns(records)
            segment.format = FORMAT_COLUMNAR
            target = self.root / segment.name
            segment.bytes = columnar.write_segment(target, columns)
            days = columns["day"].astype("datetime64[D]")
            segment.min_day = str(days.min())
            segment.max_day = str(days.max())
            jsonl_path.unlink()
            converted.append(target)
        if converted:
            active = self._segments.get(self._active_index)
            if active is not None and active.format == FORMAT_COLUMNAR:
                self._active_index += 1
            self.flush()
        return converted

    # ------------------------------------------------------------------
    # reads

    def segments(self) -> List[Path]:
        """Existing segment files, oldest first."""
        return [
            self.root / self._segments[index].name
            for index in sorted(self._segments)
            if self._segments[index].records > 0
            or (self.root / self._segments[index].name).exists()
        ]

    def __len__(self) -> int:
        return sum(s.records for s in self._segments.values())

    def iter_records(self) -> Iterator[dict]:
        """Stream every stored record, oldest segment first."""
        for index in sorted(self._segments):
            segment = self._segments[index]
            path = self.root / segment.name
            if segment.format == FORMAT_COLUMNAR:
                yield from columnar.columns_to_records(
                    columnar.read_segment(path)
                )
            elif path.exists():
                yield from self._iter_jsonl(path)

    def export_dataset(self) -> Dataset:
        """Materialize the whole store as a training dataset.

        Columnar segments are memory-mapped straight into the dataset's
        columns (zero parse, zero copy until training touches the
        rows); JSONL segments fall back to line-by-line parsing.
        Ground-truth columns are filled with the placeholders a real
        deployment has ("live" traffic carries no labels); tags default
        to false because FinOrg joins them in from separate systems.

        A store whose sealed history is columnar therefore pays only
        for its (small) JSONL active segment at export time.
        """
        parts: List[Dataset] = []
        for index in sorted(self._segments):
            segment = self._segments[index]
            path = self.root / segment.name
            if segment.records == 0 and not path.exists():
                continue
            if segment.format == FORMAT_COLUMNAR:
                parts.append(self._columnar_part(path))
            else:
                records = list(self._iter_jsonl(path))
                if records:
                    parts.append(self._jsonl_part(records))
        if not parts:
            raise ValueError("the session store is empty")
        return Dataset.concatenate(parts)

    # ------------------------------------------------------------------
    # internals

    def _active_segment(self) -> _Segment:
        segment = self._segments.get(self._active_index)
        if segment is None:
            segment = _Segment(
                index=self._active_index,
                format=FORMAT_JSONL,
                records=0,
                bytes=0,
            )
            self._segments[self._active_index] = segment
        return segment

    def _rotate(self) -> None:
        self._active_index += 1
        self.flush()

    def _load_manifest(self) -> None:
        path = self.root / _MANIFEST_NAME
        if not path.exists():
            return
        data = json.loads(path.read_text(encoding="utf-8"))
        for entry in data.get("segments", []):
            stem, suffix = entry["name"].rsplit(".", 1)
            index = int(stem.rsplit("-", 1)[1])
            self._segments[index] = _Segment(
                index=index,
                format=(
                    FORMAT_COLUMNAR if suffix == "npz" else FORMAT_JSONL
                ),
                records=int(entry["records"]),
                bytes=int(entry["bytes"]),
                min_day=entry.get("min_day"),
                max_day=entry.get("max_day"),
            )

    def _reconcile_with_disk(self) -> None:
        """Sync the manifest with segment files actually present.

        Three cases per file: unknown to the manifest (legacy store or
        lost manifest — full scan once), known but grown (crash between
        append and flush — scan only the tail bytes), or known and
        matching (trust the manifest; no I/O beyond ``stat``).
        """
        on_disk: Dict[int, Path] = {}
        for path in sorted(self.root.glob(f"{_SEGMENT_PREFIX}-*.jsonl")):
            on_disk[int(path.stem.rsplit("-", 1)[1])] = path
        for path in sorted(self.root.glob(f"{_SEGMENT_PREFIX}-*.npz")):
            on_disk[int(path.stem.rsplit("-", 1)[1])] = path

        dirty = False
        for index in list(self._segments):
            if index not in on_disk:
                del self._segments[index]
                dirty = True
        for index, path in on_disk.items():
            size = path.stat().st_size
            segment = self._segments.get(index)
            if path.suffix == ".npz":
                if segment is None or segment.format != FORMAT_COLUMNAR:
                    self._segments[index] = _Segment(
                        index=index,
                        format=FORMAT_COLUMNAR,
                        records=columnar.segment_records(path),
                        bytes=size,
                    )
                    dirty = True
                continue
            if segment is None or segment.format != FORMAT_JSONL:
                records, min_day, max_day = self._scan_jsonl(path, 0)
                self._segments[index] = _Segment(
                    index=index,
                    format=FORMAT_JSONL,
                    records=records,
                    bytes=size,
                    min_day=min_day,
                    max_day=max_day,
                )
                dirty = True
            elif size != segment.bytes:
                if size > segment.bytes:
                    tail, min_day, max_day = self._scan_jsonl(
                        path, segment.bytes
                    )
                    segment.records += tail
                    if min_day is not None:
                        segment.observe_day(min_day)
                    if max_day is not None:
                        segment.observe_day(max_day)
                else:  # truncated behind our back: recount from scratch
                    records, min_day, max_day = self._scan_jsonl(path, 0)
                    segment.records = records
                    segment.min_day = min_day
                    segment.max_day = max_day
                segment.bytes = size
                dirty = True
        if dirty:
            self.flush()

    @staticmethod
    def _scan_jsonl(
        path: Path, offset: int
    ) -> Tuple[int, Optional[str], Optional[str]]:
        """Count records (and day range) from ``offset`` to EOF."""
        records = 0
        min_day: Optional[str] = None
        max_day: Optional[str] = None
        with path.open("r", encoding="utf-8") as handle:
            if offset:
                handle.seek(offset)
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                records += 1
                day = json.loads(line).get("day")
                if day is not None:
                    if min_day is None or day < min_day:
                        min_day = day
                    if max_day is None or day > max_day:
                        max_day = day
        return records, min_day, max_day

    @staticmethod
    def _iter_jsonl(path: Path) -> Iterator[dict]:
        if not path.exists():
            return
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield json.loads(line)

    @staticmethod
    def _jsonl_part(records: List[dict]) -> Dataset:
        n = len(records)
        features = np.array([r["f"] for r in records], dtype=np.int32)
        return _placeholder_dataset(
            features=features,
            ua_keys=np.array(
                [parse_user_agent(r["ua"]).key() for r in records],
                dtype=object,
            ),
            user_agents=np.array([r["ua"] for r in records], dtype=object),
            session_ids=np.array([r["sid"] for r in records], dtype=object),
            days=np.array([r["day"] for r in records], dtype="datetime64[D]"),
            n=n,
        )

    @staticmethod
    def _columnar_part(path: Path) -> Dataset:
        columns = columnar.read_segment(path)
        n = columns["sid"].shape[0]
        return _placeholder_dataset(
            features=columns["f"],
            ua_keys=columns["ua_key"],
            user_agents=columns["ua"],
            session_ids=columns["sid"],
            days=columns["day"].view("datetime64[D]"),
            n=n,
        )


def _placeholder_dataset(
    features: np.ndarray,
    ua_keys: np.ndarray,
    user_agents: np.ndarray,
    session_ids: np.ndarray,
    days: np.ndarray,
    n: int,
) -> Dataset:
    return Dataset(
        features=features,
        ua_keys=ua_keys,
        user_agents=user_agents,
        session_ids=session_ids,
        days=days,
        untrusted_ip=np.zeros(n, dtype=bool),
        untrusted_cookie=np.zeros(n, dtype=bool),
        ato=np.zeros(n, dtype=bool),
        truth_kind=np.full(n, "legit", dtype=object),
        truth_browser=np.full(n, "", dtype=object),
        truth_category=np.zeros(n, dtype=np.int8),
        truth_perturbation=np.full(n, "", dtype=object),
        feature_names=list(FEATURE_NAMES)[: features.shape[1]],
    )
