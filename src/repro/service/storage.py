"""Append-only session store with rotation.

FinOrg handed the authors "periodic datasets" collected over eight
months.  :class:`SessionStore` is that mechanism: accepted payloads are
appended to a JSONL segment; when a segment reaches its size cap it is
rotated, and any range of sealed segments can be exported as a
:class:`~repro.traffic.dataset.Dataset` for (re)training.
"""

from __future__ import annotations

import json
from datetime import date
from pathlib import Path
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.browsers.useragent import parse_user_agent
from repro.fingerprint.features import FEATURE_NAMES
from repro.fingerprint.script import FingerprintPayload
from repro.traffic.dataset import Dataset

__all__ = ["SessionStore"]

_SEGMENT_PREFIX = "sessions"


class SessionStore:
    """Durable JSONL storage for accepted payloads.

    Parameters
    ----------
    root:
        Directory holding the segments (created if missing).
    max_records_per_segment:
        Rotation threshold.
    """

    def __init__(
        self, root: Union[str, Path], max_records_per_segment: int = 50_000
    ) -> None:
        if max_records_per_segment < 1:
            raise ValueError("max_records_per_segment must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_records_per_segment = max_records_per_segment
        self._active_index = self._discover_last_index()
        self._active_count = self._count_records(self._segment_path(self._active_index))

    # ------------------------------------------------------------------
    # writes

    def append(self, payload: FingerprintPayload, day: Optional[date] = None) -> None:
        """Append one accepted payload (rotating when the segment fills)."""
        if self._active_count >= self.max_records_per_segment:
            self._active_index += 1
            self._active_count = 0
        record = {
            "sid": payload.session_id,
            "ua": payload.user_agent,
            "f": list(payload.values),
            "day": (day or date(1970, 1, 1)).isoformat(),
        }
        if payload.suspicious_globals:
            record["g"] = list(payload.suspicious_globals)
        path = self._segment_path(self._active_index)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._active_count += 1

    # ------------------------------------------------------------------
    # reads

    def segments(self) -> List[Path]:
        """Existing segment files, oldest first."""
        return sorted(self.root.glob(f"{_SEGMENT_PREFIX}-*.jsonl"))

    def __len__(self) -> int:
        return sum(self._count_records(path) for path in self.segments())

    def iter_records(self) -> Iterator[dict]:
        """Stream every stored record, oldest segment first."""
        for path in self.segments():
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        yield json.loads(line)

    def export_dataset(self) -> Dataset:
        """Materialize the whole store as a training dataset.

        Ground-truth columns are filled with the placeholders a real
        deployment has ("live" traffic carries no labels); tags default
        to false because FinOrg joins them in from separate systems.
        """
        records = list(self.iter_records())
        if not records:
            raise ValueError("the session store is empty")
        n = len(records)
        features = np.array([r["f"] for r in records], dtype=np.int32)
        user_agents = np.array([r["ua"] for r in records], dtype=object)
        ua_keys = np.array(
            [parse_user_agent(r["ua"]).key() for r in records], dtype=object
        )
        return Dataset(
            features=features,
            ua_keys=ua_keys,
            user_agents=user_agents,
            session_ids=np.array([r["sid"] for r in records], dtype=object),
            days=np.array([r["day"] for r in records], dtype="datetime64[D]"),
            untrusted_ip=np.zeros(n, dtype=bool),
            untrusted_cookie=np.zeros(n, dtype=bool),
            ato=np.zeros(n, dtype=bool),
            truth_kind=np.array(["legit"] * n, dtype=object),
            truth_browser=np.array([""] * n, dtype=object),
            truth_category=np.zeros(n, dtype=np.int8),
            truth_perturbation=np.array([""] * n, dtype=object),
            feature_names=list(FEATURE_NAMES)[: features.shape[1]],
        )

    # ------------------------------------------------------------------

    def _segment_path(self, index: int) -> Path:
        return self.root / f"{_SEGMENT_PREFIX}-{index:05d}.jsonl"

    def _discover_last_index(self) -> int:
        existing = self.segments()
        if not existing:
            return 0
        return int(existing[-1].stem.rsplit("-", 1)[1])

    @staticmethod
    def _count_records(path: Path) -> int:
        if not path.exists():
            return 0
        with path.open("r", encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())
