"""Operational monitoring: flag-rate windows and the drift schedule.

Two watchdogs keep the deployed model honest:

* :class:`FlagRateMonitor` — the paper flags ~0.4% of sessions; a
  sustained departure from that band (either direction) means the model
  or the traffic changed.  The monitor keeps a rolling window of
  verdicts and raises when the windowed rate leaves the band.
* :class:`DriftScheduler` — Section 6.6 runs the drift check "on
  designated dates ... a few days after the latest releases of Firefox,
  Chrome, and Edge".  The scheduler derives those dates from the
  release calendar and tells the operator which releases each check
  should evaluate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from datetime import date, timedelta
from typing import Deque, List, Optional, Tuple

from repro.browsers.releases import ReleaseCalendar, default_calendar
from repro.browsers.useragent import Vendor

__all__ = ["DriftScheduler", "DriftCheckPlan", "FlagRateMonitor"]


class FlagRateMonitor:
    """Rolling-window alarm on the session flag rate.

    Parameters
    ----------
    window:
        Number of recent verdicts considered.
    expected_rate:
        The healthy flag rate (the paper's deployment: 897/205k ~ 0.44%).
    tolerance_factor:
        Alarm when the windowed rate leaves
        ``[expected / factor, expected * factor]``.
    min_observations:
        No alarms until the window has this many verdicts.  A window
        smaller than this warms up at its own capacity instead — a full
        window is always allowed to alarm, no matter how small.
    """

    def __init__(
        self,
        window: int = 20_000,
        expected_rate: float = 0.0044,
        tolerance_factor: float = 4.0,
        min_observations: int = 2_000,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < expected_rate < 1.0:
            raise ValueError("expected_rate must lie in (0, 1)")
        if tolerance_factor <= 1.0:
            raise ValueError("tolerance_factor must exceed 1")
        self.window = window
        self.expected_rate = expected_rate
        self.tolerance_factor = tolerance_factor
        self.min_observations = min_observations
        self._verdicts: Deque[bool] = deque(maxlen=window)
        self._flagged_in_window = 0

    def observe(self, flagged: bool) -> None:
        """Record one verdict."""
        if len(self._verdicts) == self._verdicts.maxlen:
            if self._verdicts[0]:
                self._flagged_in_window -= 1
        self._verdicts.append(bool(flagged))
        if flagged:
            self._flagged_in_window += 1

    @property
    def windowed_rate(self) -> float:
        """Flag rate over the current window."""
        if not self._verdicts:
            return 0.0
        return self._flagged_in_window / len(self._verdicts)

    @property
    def alarm(self) -> bool:
        """Whether the windowed rate left the healthy band."""
        if len(self._verdicts) < min(self.min_observations, self.window):
            return False
        rate = self.windowed_rate
        low = self.expected_rate / self.tolerance_factor
        high = self.expected_rate * self.tolerance_factor
        return rate < low or rate > high

    def describe(self) -> str:
        """One-line operator summary."""
        return (
            f"flag rate {100 * self.windowed_rate:.3f}% over "
            f"{len(self._verdicts)} sessions "
            f"(healthy band {100 * self.expected_rate / self.tolerance_factor:.3f}"
            f"-{100 * self.expected_rate * self.tolerance_factor:.3f}%)"
            + ("  ALARM" if self.alarm else "")
        )


@dataclass(frozen=True)
class DriftCheckPlan:
    """One scheduled drift check."""

    check_date: date
    releases: Tuple[str, ...]  # ua_keys shipped since the previous check

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.check_date.isoformat()}: {', '.join(self.releases)}"


class DriftScheduler:
    """Derives the Section 6.6 drift-check dates from the calendar.

    A check fires ``lag_days`` after each Firefox release (the paper's
    anchor, since Chrome and Edge ship one to two weeks earlier) and
    covers every release shipped since the previous check.
    """

    def __init__(
        self,
        calendar: Optional[ReleaseCalendar] = None,
        lag_days: int = 4,
    ) -> None:
        if lag_days < 0:
            raise ValueError("lag_days must be non-negative")
        self.calendar = calendar if calendar is not None else default_calendar()
        self.lag_days = lag_days

    def plan(self, start: date, end: date) -> List[DriftCheckPlan]:
        """All drift checks due in ``[start, end)``."""
        if end <= start:
            raise ValueError("end must be after start")
        firefox_releases = [
            release
            for release in self.calendar.released_before(Vendor.FIREFOX, end)
            if start <= release.released + timedelta(days=self.lag_days) < end
        ]
        plans: List[DriftCheckPlan] = []
        covered_through = start
        for release in firefox_releases:
            check_date = release.released + timedelta(days=self.lag_days)
            fresh = [
                r.key()
                for r in self.calendar.new_releases_between(
                    covered_through, check_date
                )
            ]
            if fresh:
                plans.append(DriftCheckPlan(check_date, tuple(sorted(fresh))))
            covered_through = check_date
        # Catch-up check: releases shipped after the last Firefox-anchored
        # date (e.g. a Chrome release landing at the end of the window)
        # still need evaluation before the window closes.
        remainder = [
            r.key()
            for r in self.calendar.new_releases_between(covered_through, end)
        ]
        if remainder:
            plans.append(
                DriftCheckPlan(end - timedelta(days=1), tuple(sorted(remainder)))
            )
        return plans

    def next_check(self, today: date) -> Optional[DriftCheckPlan]:
        """The first check due after ``today`` (within a year)."""
        plans = self.plan(today, today + timedelta(days=365))
        return plans[0] if plans else None
