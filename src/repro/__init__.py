"""Browser Polygraph — reproduction of Kalantari et al., IMC 2024.

Coarse-grained, privacy-preserving browser fingerprints for web-scale
detection of fraud (anti-detect) browsers, rebuilt end to end on a
simulated browser universe: a deterministic JavaScript-API evolution
model, a FinOrg-shaped traffic generator, fraud-browser simulators, a
from-scratch ML substrate (scaler / PCA / k-means / Isolation Forest),
and the full train -> detect -> drift -> retrain pipeline.

Quickstart::

    from repro import BrowserPolygraph, TrafficSimulator, TrafficConfig

    dataset = TrafficSimulator(TrafficConfig(n_sessions=50_000)).generate()
    polygraph = BrowserPolygraph().fit(dataset)
    report = polygraph.detect(dataset)
    print(polygraph.accuracy, report.n_flagged)
"""

from repro.core.config import PipelineConfig
from repro.core.detection import DetectionReport, DetectionResult, FraudDetector
from repro.core.drift import DriftDetector, DriftRecord
from repro.core.pipeline import BrowserPolygraph
from repro.core.risk import risk_factor, user_agent_distance
from repro.fingerprint.features import FEATURE_NAMES, FEATURE_SPECS, N_FEATURES
from repro.fingerprint.script import CollectionScript, FingerprintPayload
from repro.traffic.dataset import Dataset
from repro.traffic.generator import TrafficConfig, TrafficSimulator

__version__ = "1.0.0"

__all__ = [
    "BrowserPolygraph",
    "CollectionScript",
    "Dataset",
    "DetectionReport",
    "DetectionResult",
    "DriftDetector",
    "DriftRecord",
    "FEATURE_NAMES",
    "FEATURE_SPECS",
    "FingerprintPayload",
    "FraudDetector",
    "N_FEATURES",
    "PipelineConfig",
    "TrafficConfig",
    "TrafficSimulator",
    "risk_factor",
    "user_agent_distance",
    "__version__",
]
