"""FingerprintJS-style collector.

Models the open-source FingerprintJS library: ~50ms of collection work
(canvas + fonts + WebGL + audio) and a ~23KB nested JSON document whose
components split into three signal classes:

* **engine-era signals** — feature-support booleans and numeric limits
  that change with the browser release (what makes its data clusterable
  in Appendix-5);
* **device noise** — canvas/audio/font hashes unique per install (these
  columns become unique-per-row after flattening and are dropped by the
  Appendix-5 pipeline);
* **environment descriptors** — OS, screen, language, timezone — stable
  per machine but unrelated to the browser version (they survive
  flattening and dilute the version signal, which is why FingerprintJS
  clusters slightly worse than the purpose-built coarse features).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.finegrained import FineGrainedTool
from repro.browsers.profiles import BrowserProfile
from repro.fingerprint.features import FEATURE_SPECS
from repro.fingerprint.collector import FingerprintCollector
from repro.jsengine.evolution import Engine

__all__ = ["FingerprintJSTool"]


class FingerprintJSTool(FineGrainedTool):
    """Simulated FingerprintJS v3 collector."""

    name = "FingerprintJS"
    canvas_edge = 240
    font_probes = 60
    webgl_queries = 24

    def __init__(self) -> None:
        self._collector = FingerprintCollector(FEATURE_SPECS)

    def collect(self, profile: BrowserProfile, device: Dict) -> Dict:
        """Assemble this tool's fingerprint document."""
        engine = self.engine_of(profile)
        version = profile.version
        rng = np.random.default_rng(version * 101 + len(device.get("fonts", ())))
        environment = profile.environment()

        # Engine-era signals: a large block of feature-support flags that
        # flip at release boundaries (derived from the simulated surface,
        # so they genuinely track the engine era).
        era_flags = {}
        for idx, spec in enumerate(FEATURE_SPECS[:12]):
            count = environment.own_property_count(spec.interface)
            era_flags[f"supports_{spec.interface.lower()}_{idx}"] = bool(count % 2)
            era_flags[f"surface_{spec.interface.lower()}"] = int(count)
        math_fingerprint = {
            f"math_{fn}": round(float(np.tan(version * 0.01 + i)), 12)
            for i, fn in enumerate(("acos", "asinh", "atan", "expm1", "log1p"))
        }

        screen = {
            "width": 1920,
            "height": 1080,
            "availWidth": 1920,
            "availHeight": 1040,
            "colorDepth": 24,
            "pixelRatio": float(1 + int(rng.integers(0, 2))),
        }
        # Pure payload bulk: the library ships many verbose component
        # blobs that are identical across installs.  They inflate the
        # wire size (Table 2) but flatten to constant columns and drop
        # out of the Appendix-5 clustering.
        padding = {
            f"component_{i:03d}": "v1-" + "x" * 48 for i in range(180)
        }

        return {
            "userAgent": profile.user_agent(),
            "browser": {
                "vendor": profile.vendor.value,
                "engine": engine.value,
                "isChromium": engine is Engine.CHROMIUM,
            },
            "eraFlags": era_flags,
            "math": math_fingerprint,
            "screen": screen,
            "languages": ["en-US", "en"],
            "timezone": "America/New_York",
            "canvas": {"geometry": device.get("canvas_hash", ""), "winding": True},
            "fonts": device.get("fonts", []),
            "webgl": device.get("webgl", {}),
            "audio": {"hash": device.get("canvas_hash", "")[:24]},
            "plugins": [
                {"name": "PDF Viewer", "mime": "application/pdf"},
                {"name": "Chromium PDF Viewer", "mime": "application/pdf"},
            ],
            "padding": padding,
        }
