"""AmIUnique-style collector.

AmIUnique's browser extension is the heavyweight of Table 2 (~1.5s,
~60KB): it exhaustively probes fonts, media devices, HTTP headers and
runs multiple canvas scenes.  The paper uses it only in the cost
comparison, so fidelity here is about workload and payload size.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.finegrained import FineGrainedTool
from repro.browsers.profiles import BrowserProfile

__all__ = ["AmIUniqueTool"]


class AmIUniqueTool(FineGrainedTool):
    """Simulated AmIUnique extension collector."""

    name = "AmIUnique"
    canvas_edge = 480
    font_probes = 520
    webgl_queries = 64
    extra_iterations = 600

    def collect(self, profile: BrowserProfile, device: Dict) -> Dict:
        """Assemble this tool's fingerprint document."""
        rng = np.random.default_rng(profile.version)
        headers = {
            "Accept": "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8",
            "Accept-Encoding": "gzip, deflate, br",
            "Accept-Language": "en-US,en;q=0.5",
            "Upgrade-Insecure-Requests": "1",
            "User-Agent": profile.user_agent(),
        }
        probes = {
            f"probe_{i:04d}": {
                "name": f"attribute-{i}",
                "value": "z" * 40,
                "present": bool(rng.integers(0, 2)),
            }
            for i in range(600)
        }
        return {
            "headers": headers,
            "canvas": device.get("canvas_hash", ""),
            "fonts": device.get("fonts", []),
            "webgl": device.get("webgl", {}),
            "entropyPool": device.get("entropy_pool", ""),
            "probes": probes,
        }
