"""ClientJS-style collector.

ClientJS is a lighter library (~37ms, ~10KB in Table 2) whose output is
dominated by strings parsed out of the user-agent — exactly the columns
the Appendix-5 pipeline must exclude (they would leak the label).  After
exclusion only a handful of coarse device properties remain (the paper
extracted 7 usable features), which barely track the browser version;
that is why ClientJS clusters worst in Tables 13/14.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.finegrained import FineGrainedTool
from repro.browsers.profiles import BrowserProfile
from repro.jsengine.evolution import Engine

__all__ = ["ClientJSTool"]


class ClientJSTool(FineGrainedTool):
    """Simulated ClientJS collector."""

    name = "ClientJS"
    canvas_edge = 160
    font_probes = 24

    def collect(self, profile: BrowserProfile, device: Dict) -> Dict:
        """Assemble this tool's fingerprint document."""
        engine = self.engine_of(profile)
        version = profile.version
        rng = np.random.default_rng(version * 13 + 7)
        environment = profile.environment()

        # The few non-UA-derived signals ClientJS exposes.  Only
        # ``engineSurface`` and the plugin/mime counts carry any version
        # information, and coarsely at that.
        usable = {
            "colorDepth": 24,
            "screenPrint": "1920x1080x24",
            "deviceMemoryBucket": 8 if engine is Engine.CHROMIUM else 0,
            "hardwareConcurrency": 8,
            "pluginCount": 2 if engine is Engine.CHROMIUM else 0,
            "mimeTypeCount": 2 if engine is Engine.CHROMIUM else 0,
            # The only release-correlated signal ClientJS exposes, and a
            # very coarse one: nearby releases share a bucket, which is
            # why ClientJS merges versions and clusters worst in
            # Tables 13/14.
            "engineSurface": environment.own_property_count("Element") // 8,
            "mathPrecision": round(float(np.tan(1.0 + version // 20)), 6),
        }
        ua_derived = {
            "ua_browser": profile.vendor.value.capitalize(),
            "ua_browserVersion": f"{version}.0",
            "ua_browserMajorVersion": version,
            "ua_engine": "Blink" if engine is Engine.CHROMIUM else "Gecko",
            "ua_os": "Windows",
            "ua_osVersion": "10",
            "ua_device": "desktop",
            "ua_isMobile": False,
        }
        padding = {
            f"detail_{i:03d}": "y" * 64 for i in range(120)
        }
        return {
            "userAgent": profile.user_agent(),
            **ua_derived,
            **usable,
            "canvasPrint": device.get("canvas_hash", ""),
            "fonts": device.get("fonts", []),
            "padding": padding,
        }
