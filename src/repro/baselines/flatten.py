"""The Appendix-5 flattening/encoding pipeline.

To compare fine-grained JSON fingerprints against coarse-grained ones in
a clustering task, the paper flattens nested objects into columns,
converts values to numbers (numerics unchanged, booleans to 0/1, strings
to categorical codes, missing to -1), drops columns that are unique per
row (pure device noise), and — for ClientJS — drops the columns derived
from the user-agent string, since they would leak the clustering label.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["encode_for_clustering", "flatten_json"]


def flatten_json(document: Dict, prefix: str = "") -> Dict[str, object]:
    """Flatten nested dicts/lists into dotted-key scalar columns.

    Lists flatten to their length plus a joined preview, mirroring how
    the paper turned list-valued components into usable columns.
    """
    flat: Dict[str, object] = {}
    for key, value in document.items():
        column = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten_json(value, column))
        elif isinstance(value, (list, tuple)):
            flat[f"{column}.length"] = len(value)
            preview = ",".join(str(v) for v in value[:8])
            flat[f"{column}.preview"] = preview
        else:
            flat[column] = value
    return flat


def encode_for_clustering(
    documents: Sequence[Dict],
    exclude_prefixes: Tuple[str, ...] = ("userAgent", "ua_", "headers.User-Agent"),
) -> Tuple[np.ndarray, List[str]]:
    """Flatten + numerically encode a batch of fingerprints.

    Returns ``(matrix, column_names)`` ready for the Section 6.4
    clustering recipe.  Columns excluded: user-agent-derived ones (they
    would leak the label) and columns unique across all rows (pure
    device noise, useless for grouping).
    """
    if not documents:
        raise ValueError("no documents to encode")
    flats = [flatten_json(doc) for doc in documents]
    columns = sorted({key for flat in flats for key in flat})
    columns = [
        c for c in columns if not any(c.startswith(p) for p in exclude_prefixes)
    ]

    encoded = np.full((len(flats), len(columns)), -1.0)
    for col_idx, column in enumerate(columns):
        codes: Dict[str, int] = {}
        for row_idx, flat in enumerate(flats):
            if column not in flat:
                continue  # missing -> -1
            value = flat[column]
            if isinstance(value, bool):
                encoded[row_idx, col_idx] = 1.0 if value else 0.0
            elif isinstance(value, (int, float)):
                encoded[row_idx, col_idx] = float(value)
            else:
                text = str(value)
                if text not in codes:
                    codes[text] = len(codes)
                encoded[row_idx, col_idx] = float(codes[text])

    keep = []
    n_rows = len(flats)
    for col_idx, column in enumerate(columns):
        values = encoded[:, col_idx]
        distinct = np.unique(values).size
        if distinct <= 1:
            continue  # constant: carries nothing
        if distinct == n_rows and n_rows > 2:
            continue  # unique per row: device noise
        keep.append(col_idx)
    kept_names = [columns[i] for i in keep]
    return encoded[:, keep], kept_names
