"""Base machinery for fine-grained fingerprinting simulators.

Each tool produces a nested-JSON fingerprint from a
:class:`~repro.browsers.profiles.BrowserProfile` plus an *install seed*
(two installs of the same release differ in GPU, fonts, audio stack —
exactly the per-device noise fine-grained tools are built to capture and
coarse-grained fingerprints deliberately ignore).

The cost model is physical, not declared: collection really performs
the expensive steps the original tools perform — rendering a canvas
scene to a pixel buffer and hashing it, probing a font list, querying
WebGL parameters — scaled to each tool's documented workload, so the
Table 2 comparison measures genuine work.
"""

from __future__ import annotations

import hashlib
import json
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.browsers.profiles import BrowserProfile
from repro.browsers.releases import engine_for_vendor
from repro.jsengine.evolution import Engine

__all__ = ["CollectionRun", "FineGrainedTool"]

_COMMON_FONTS = (
    "Arial", "Arial Black", "Calibri", "Cambria", "Candara", "Comic Sans MS",
    "Consolas", "Courier New", "Georgia", "Helvetica", "Impact", "Lucida Console",
    "Palatino Linotype", "Segoe UI", "Tahoma", "Times New Roman", "Trebuchet MS",
    "Verdana", "Gill Sans", "Optima", "Baskerville", "Didot", "Futura",
)


@dataclass(frozen=True)
class CollectionRun:
    """One execution of a tool: payload + measured service time."""

    tool: str
    fingerprint: Dict
    service_time_ms: float

    def payload_bytes(self) -> int:
        """Size of the serialized fingerprint on the wire."""
        return len(json.dumps(self.fingerprint, separators=(",", ":")))


class FineGrainedTool(ABC):
    """A fine-grained fingerprinting library simulator."""

    #: Human-readable tool name (Table 2 row label).
    name: str = "fine-grained"
    #: Canvas workload: square pixel-buffer edge length.
    canvas_edge: int = 0
    #: Number of fonts probed.
    font_probes: int = 0
    #: Number of WebGL parameter queries.
    webgl_queries: int = 0
    #: Extra fixed busy-work iterations (network round-trips, workers).
    extra_iterations: int = 0

    def run(self, profile: BrowserProfile, install_seed: int = 0) -> CollectionRun:
        """Collect a fingerprint, measuring the real work performed."""
        started = time.perf_counter()
        device = self._device_noise(profile, install_seed)
        fingerprint = self.collect(profile, device)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        return CollectionRun(self.name, fingerprint, elapsed_ms)

    @abstractmethod
    def collect(self, profile: BrowserProfile, device: Dict) -> Dict:
        """Assemble the tool-specific fingerprint document."""

    # ------------------------------------------------------------------
    # shared expensive primitives

    def _device_noise(self, profile: BrowserProfile, install_seed: int) -> Dict:
        """Per-install device characteristics, physically derived."""
        os_token = profile.os_token or "windows"
        rng = np.random.default_rng(
            install_seed * 7919
            + profile.version * 31
            + len(profile.vendor.value)
            + sum(ord(c) for c in os_token) * 101
        )
        noise: Dict = {}
        if self.canvas_edge:
            noise["canvas_hash"] = self._render_canvas(rng)
        if self.font_probes:
            noise["fonts"] = self._probe_fonts(rng)
        if self.webgl_queries:
            noise["webgl"] = self._query_webgl(profile, rng)
        if self.extra_iterations:
            noise["entropy_pool"] = self._busy_work(rng)
        return noise

    def _render_canvas(self, rng: np.random.Generator) -> str:
        """Draw a synthetic scene and hash the pixel buffer."""
        edge = self.canvas_edge
        xs, ys = np.meshgrid(np.arange(edge), np.arange(edge))
        scene = np.sin(xs * 0.11) * np.cos(ys * 0.07)
        scene = scene + rng.normal(0.0, 1e-3, scene.shape)  # GPU variance
        pixels = ((scene - scene.min()) * 255.0).astype(np.uint8)
        return hashlib.sha256(pixels.tobytes()).hexdigest()

    def _probe_fonts(self, rng: np.random.Generator) -> list:
        """Measure text with every candidate font; keep the available ones."""
        available = []
        for index in range(self.font_probes):
            font = _COMMON_FONTS[index % len(_COMMON_FONTS)]
            # Rendering probe: measuring a pangram's width in this font.
            widths = [
                len(f"{font}-{glyph}") * (1.0 + 0.01 * (index % 7))
                for glyph in "The quick brown fox"
            ]
            if sum(widths) > 0 and rng.random() > 0.15:
                available.append(font)
        return sorted(set(available))

    def _query_webgl(self, profile: BrowserProfile, rng: np.random.Generator) -> Dict:
        """Query renderer strings and numeric limits."""
        engine = engine_for_vendor(profile.vendor, profile.version)
        gpus = ("ANGLE (Intel UHD 620)", "ANGLE (NVIDIA GTX 1650)", "ANGLE (AMD Vega 8)")
        parameters = {}
        for q in range(self.webgl_queries):
            parameters[f"param_{q:02d}"] = int(
                2 ** (6 + q % 8) * (2 if engine is Engine.CHROMIUM else 1)
            )
        parameters["renderer"] = gpus[int(rng.integers(len(gpus)))]
        return parameters

    def _busy_work(self, rng: np.random.Generator) -> str:
        """Fixed extra workload (e.g. AmIUnique's exhaustive probing)."""
        digest = hashlib.sha256()
        for _ in range(self.extra_iterations):
            digest.update(rng.bytes(512))
        return digest.hexdigest()[:16]

    # ------------------------------------------------------------------

    @staticmethod
    def engine_of(profile: BrowserProfile) -> Engine:
        """Engine family of the profiled browser."""
        return engine_for_vendor(profile.vendor, profile.version)
