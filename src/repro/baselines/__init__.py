"""Fine-grained fingerprinting baselines.

The paper compares Browser Polygraph against three fine-grained tools:
FingerprintJS and ClientJS (Table 2 cost comparison, Appendix-5
clustering comparison) and AmIUnique (Table 2 only).  The real tools
need real browsers; these simulators reproduce the two properties the
comparisons rest on:

* **cost** — each tool's collection performs work and emits payload
  bytes proportional to what the paper measured (canvas rendering, font
  probing, WebGL queries for the fine-grained tools; 28 integer reads
  for Browser Polygraph);
* **information content** — each tool's JSON output carries the same
  *kind* of signal as the original: FingerprintJS mixes engine-era
  signals with per-install device noise, ClientJS exposes only a few
  coarse device properties, so after the Appendix-5 flattening pipeline
  the clustering accuracies order the same way the paper reports.
"""

from repro.baselines.amiunique import AmIUniqueTool
from repro.baselines.clientjs import ClientJSTool
from repro.baselines.finegrained import CollectionRun, FineGrainedTool
from repro.baselines.fingerprintjs import FingerprintJSTool
from repro.baselines.flatten import encode_for_clustering, flatten_json
from repro.baselines.perf import measure_tools

__all__ = [
    "AmIUniqueTool",
    "ClientJSTool",
    "CollectionRun",
    "FineGrainedTool",
    "FingerprintJSTool",
    "encode_for_clustering",
    "flatten_json",
    "measure_tools",
]
