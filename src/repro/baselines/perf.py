"""The Table 2 cost comparison.

Runs every tool — the three fine-grained simulators and Browser
Polygraph's own collection script — over the same browser profiles and
reports measured service time plus payload size.  Absolute milliseconds
depend on the host; the paper's *shape* (Polygraph fastest and smallest
by an order of magnitude, AmIUnique slowest and largest) follows from
the genuine work each collector performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import List, Optional, Sequence

from repro.baselines.amiunique import AmIUniqueTool
from repro.baselines.clientjs import ClientJSTool
from repro.baselines.finegrained import FineGrainedTool
from repro.baselines.fingerprintjs import FingerprintJSTool
from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor
from repro.fingerprint.script import CollectionScript

__all__ = ["ToolCost", "default_profiles", "measure_tools"]


@dataclass(frozen=True)
class ToolCost:
    """One Table 2 row: average service time and payload size."""

    tool: str
    avg_service_time_ms: float
    avg_payload_bytes: int

    def as_row(self) -> tuple:
        """(tool, avg ms, avg bytes) for table rendering."""
        return (self.tool, self.avg_service_time_ms, self.avg_payload_bytes)


def default_profiles() -> List[BrowserProfile]:
    """The five visits the paper averages over (Section 3)."""
    return [
        BrowserProfile(Vendor.CHROME, 112),
        BrowserProfile(Vendor.CHROME, 114),
        BrowserProfile(Vendor.FIREFOX, 113),
        BrowserProfile(Vendor.EDGE, 112),
        BrowserProfile(Vendor.CHROME, 110),
    ]


def measure_tools(
    profiles: Optional[Sequence[BrowserProfile]] = None,
    tools: Optional[Sequence[FineGrainedTool]] = None,
    repeats: int = 5,
) -> List[ToolCost]:
    """Measure every tool over ``profiles``; returns Table 2 rows.

    Browser Polygraph's script is always measured last so the list
    mirrors the paper's table ordering (fine-grained tools first).
    """
    profiles = list(profiles) if profiles is not None else default_profiles()
    tools = (
        list(tools)
        if tools is not None
        else [AmIUniqueTool(), FingerprintJSTool(), ClientJSTool()]
    )
    results: List[ToolCost] = []
    for tool in tools:
        times, sizes = [], []
        for repeat in range(repeats):
            for idx, profile in enumerate(profiles):
                run = tool.run(profile, install_seed=repeat * 100 + idx)
                times.append(run.service_time_ms)
                sizes.append(run.payload_bytes())
        results.append(ToolCost(tool.name, mean(times), int(mean(sizes))))

    script = CollectionScript()
    times, sizes = [], []
    for repeat in range(repeats):
        for profile in profiles:
            payload = script.run(
                profile.environment(), profile.user_agent(), session_id="perf"
            )
            times.append(payload.service_time_ms)
            sizes.append(payload.size_bytes)
    results.append(ToolCost("Browser Polygraph", mean(times), int(mean(sizes))))
    return results
