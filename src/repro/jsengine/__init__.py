"""Simulated JavaScript API surface.

The paper measures ``Object.getOwnPropertyNames(X.prototype).length`` on
real browsers.  Real browsers are not available in this environment, so
this subpackage provides a deterministic stand-in: a catalog of Web API
interfaces (:mod:`repro.jsengine.catalog`), a per-vendor evolution model
describing how each interface's own-property set grows across engine
eras (:mod:`repro.jsengine.evolution`), and a :class:`JSEnvironment`
(:mod:`repro.jsengine.environment`) that exposes the two JavaScript
reflection primitives the paper's collection script uses:

* ``get_own_property_names(interface)`` — the own-property names of a
  prototype (their count is a *deviation-based* feature);
* ``prototype_has_own(interface, prop)`` — property existence (a
  *time-based* feature in the BrowserPrint sense).

The substitution preserves what the paper's features depend on: values
are pure functions of (engine, version, configuration), identical inside
an engine era, with vendor-specific jumps at era boundaries and
configuration/extension perturbations layered on top.
"""

from repro.jsengine.catalog import (
    ALL_INTERFACES,
    CATALOG_SIZE,
    STABLE_INTERFACES,
    VOLATILE_INTERFACES,
    extended_interfaces,
)
from repro.jsengine.environment import JSEnvironment
from repro.jsengine.evolution import Engine, EvolutionModel, default_model

__all__ = [
    "ALL_INTERFACES",
    "CATALOG_SIZE",
    "Engine",
    "EvolutionModel",
    "JSEnvironment",
    "STABLE_INTERFACES",
    "VOLATILE_INTERFACES",
    "default_model",
    "extended_interfaces",
]
