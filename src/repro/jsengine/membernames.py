"""Realistic member-name generation for simulated prototypes.

``Object.getOwnPropertyNames(Element.prototype)`` on a real browser
returns names like ``getAttribute`` or ``scrollIntoView``, not
``Element$prop042``.  Nothing in the pipeline depends on the names —
only their count — but realistic names make collected payloads,
debugging dumps, and the quarantine log read like production data.

Names are composed deterministically from per-domain word stock: the
interface's name picks a domain (element, canvas, audio, ...), and a
seeded permutation of verb-noun combinations yields as many unique
members as the evolution model asks for.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

__all__ = ["member_names"]

_DOMAIN_WORDS = {
    "element": (
        ("get", "set", "has", "remove", "toggle", "query", "closest",
         "matches", "insert", "append", "prepend", "replace", "scroll",
         "attach", "request", "release", "animate", "check", "lookup",
         "assign", "observe", "dispatch", "clone", "normalize"),
        ("Attribute", "AttributeNS", "AttributeNode", "ElementsByTagName",
         "ElementsByClassName", "Selector", "SelectorAll", "Child",
         "Children", "Node", "HTML", "Adjacent", "IntoView", "Pointer",
         "Capture", "Shadow", "Slot", "Fullscreen", "Rect", "Rects",
         "Animations", "Visibility", "Part", "Id"),
    ),
    "graphics": (
        ("draw", "fill", "stroke", "clear", "create", "get", "put",
         "measure", "transform", "translate", "rotate", "scale", "clip",
         "save", "restore", "begin", "close", "move", "line", "arc",
         "rect", "bind", "compile", "link", "attach", "blend", "enable"),
        ("Image", "ImageData", "Rect", "Text", "Path", "Gradient",
         "Pattern", "Style", "Transform", "Matrix", "Buffer", "Shader",
         "Program", "Texture", "Framebuffer", "Uniform", "Attrib",
         "Viewport", "Scissor", "State", "Context", "Layer"),
    ),
    "media": (
        ("play", "pause", "load", "seek", "capture", "request", "set",
         "get", "add", "remove", "fast", "can", "decode", "encode",
         "mute", "connect", "disconnect", "start", "stop", "suspend",
         "resume", "create", "schedule"),
        ("Back", "Track", "Tracks", "Stream", "Source", "Buffer", "Key",
         "Session", "Cue", "Playback", "Rate", "Time", "Ranges", "Media",
         "Type", "PictureInPicture", "RemotePlayback", "Audio", "Node",
         "Gain", "Oscillator", "Analyser", "Worklet"),
    ),
    "generic": (
        ("get", "set", "has", "add", "remove", "delete", "clear", "take",
         "observe", "disconnect", "update", "commit", "abort", "resolve",
         "register", "unregister", "open", "close", "send", "receive",
         "read", "write", "lock", "unlock", "query", "watch"),
        ("Item", "Items", "Entry", "Entries", "Record", "Records", "Key",
         "Keys", "Value", "Values", "State", "Options", "Handler",
         "Listener", "Target", "Range", "Descriptor", "Snapshot",
         "Permission", "Property", "Properties", "Context", "Info"),
    ),
}

_ACCESSORS = (
    "length", "name", "id", "type", "value", "state", "status", "mode",
    "kind", "label", "active", "ready", "pending", "detail", "origin",
    "version", "flags", "size", "count", "index", "parent", "owner",
)


def _domain_for(interface: str) -> str:
    lowered = interface.lower()
    if any(stem in lowered for stem in ("element", "document", "node", "range", "shadow")):
        return "element"
    if any(stem in lowered for stem in ("canvas", "webgl", "svg", "image", "paint")):
        return "graphics"
    if any(stem in lowered for stem in ("media", "audio", "video", "speech", "track")):
        return "media"
    return "generic"


@lru_cache(maxsize=2048)
def member_names(interface: str, count: int) -> Tuple[str, ...]:
    """``count`` unique, realistic member names for ``interface``.

    Deterministic: the same (interface, count) always yields the same
    tuple, and ``member_names(i, n)`` is a prefix of
    ``member_names(i, n + k)`` so growing surfaces only append.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    verbs, nouns = _DOMAIN_WORDS[_domain_for(interface)]
    seed = sum(ord(c) for c in interface)
    names = []
    # Plain accessors first (real prototypes are attribute-heavy).
    for idx in range(min(count, len(_ACCESSORS))):
        names.append(_ACCESSORS[(seed + idx) % len(_ACCESSORS)])
    # Then verb-noun methods, walking a seeded coprime stride so the
    # sequence is a permutation of the full product set.
    product = len(verbs) * len(nouns)
    stride = (seed % product) | 1
    while len(stride_factors := _common_factors(stride, product)) > 1:
        stride += 2
    position = seed % product
    suffix = 0
    seen = set(names)
    while len(names) < count:
        verb = verbs[position % len(verbs)]
        noun = nouns[(position // len(verbs)) % len(nouns)]
        candidate = verb + noun + (str(suffix) if suffix else "")
        if candidate not in seen:
            names.append(candidate)
            seen.add(candidate)
        position = (position + stride) % product
        if position == seed % product:
            suffix += 1  # product exhausted; start a numbered generation
    return tuple(names)


def _common_factors(a: int, b: int) -> set:
    factors = set()
    for candidate in range(1, min(a, b) + 1):
        if a % candidate == 0 and b % candidate == 0:
            factors.add(candidate)
    return factors
