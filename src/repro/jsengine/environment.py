"""Simulated JavaScript global environment.

A :class:`JSEnvironment` is what the paper's collection script runs
against: a set of prototype objects whose own-property names can be
enumerated and probed.  Environments are built from an engine/version
pair via :class:`repro.jsengine.evolution.EvolutionModel` and may carry
*overrides* — the mechanism used by browser configurations, extensions,
derivative browsers (Brave, Tor) and fraud browsers to distort the
surface.

Overrides come in two forms, applied in order:

* ``count_adjustments`` — ``{interface: delta}`` integer shifts of the
  structural property count (an extension injecting two properties into
  ``Element`` is ``{"Element": +2}``);
* ``zeroed_interfaces`` — interfaces removed outright (disabling Service
  Workers zeroes the whole ``ServiceWorker`` family).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.jsengine.evolution import Engine, EvolutionModel, default_model

__all__ = ["JSEnvironment"]


class JSEnvironment:
    """The reflection surface a browser session exposes to the script.

    Parameters
    ----------
    engine, version:
        Engine family and release number the surface derives from.
    model:
        Evolution model to consult; defaults to the shared instance.
    count_adjustments:
        Structural-count deltas per interface (see module docstring).
    zeroed_interfaces:
        Interfaces that report no prototype at all.
    """

    def __init__(
        self,
        engine: Engine,
        version: int,
        model: Optional[EvolutionModel] = None,
        count_adjustments: Optional[Mapping[str, int]] = None,
        zeroed_interfaces: Optional[Iterable[str]] = None,
        global_markers: Optional[Iterable[str]] = None,
    ) -> None:
        self.engine = Engine(engine)
        self.version = int(version)
        self.model = model if model is not None else default_model()
        self.count_adjustments: Dict[str, int] = dict(count_adjustments or {})
        self.zeroed_interfaces: FrozenSet[str] = frozenset(zeroed_interfaces or ())
        # Non-standard names a sloppy browser build leaks onto `window`
        # (Section 8's ANTBROWSER observation).
        self.global_markers: FrozenSet[str] = frozenset(global_markers or ())

    def get_own_property_names(self, interface: str) -> Tuple[str, ...]:
        """``Object.getOwnPropertyNames(interface.prototype)``.

        Missing or zeroed prototypes enumerate as empty, matching the
        paper's convention of recording 0 for absent interfaces.
        """
        if interface in self.zeroed_interfaces:
            return ()
        names = self.model.property_names(interface, self.engine, self.version)
        delta = self.count_adjustments.get(interface, 0)
        if delta == 0 or not names:
            return names
        if delta > 0:
            injected = tuple(
                f"{interface}$injected{i:02d}" for i in range(delta)
            )
            return names + injected
        keep = max(0, len(names) + delta)
        return names[:keep]

    def own_property_count(self, interface: str) -> int:
        """``Object.getOwnPropertyNames(interface.prototype).length``."""
        if interface in self.zeroed_interfaces:
            return 0
        count = self.model.property_count(interface, self.engine, self.version)
        if count <= 0:
            return 0
        return max(0, count + self.count_adjustments.get(interface, 0))

    def prototype_has_own(self, interface: str, prop: str) -> bool:
        """``interface.prototype.hasOwnProperty(prop)``."""
        if interface in self.zeroed_interfaces:
            return False
        # Negative adjustments model properties being trimmed; structural
        # names go first, so named (time-based) properties survive unless
        # the interface is zeroed entirely.
        return self.model.has_property(interface, prop, self.engine, self.version)

    def window_global_names(self) -> Tuple[str, ...]:
        """Non-interface globals visible on ``window``.

        Genuine browsers expose only the standard set; fraud builds may
        leak vendor artifacts (``ANTBROWSER`` and friends), which the
        namespace probe hunts for.
        """
        standard = (
            "window", "self", "document", "location", "navigator",
            "history", "screen", "localStorage", "sessionStorage",
            "fetch", "setTimeout", "setInterval", "requestAnimationFrame",
        )
        return standard + tuple(sorted(self.global_markers))

    def with_overrides(
        self,
        count_adjustments: Optional[Mapping[str, int]] = None,
        zeroed_interfaces: Optional[Iterable[str]] = None,
        global_markers: Optional[Iterable[str]] = None,
    ) -> "JSEnvironment":
        """New environment layering extra overrides onto this one."""
        merged_counts = dict(self.count_adjustments)
        for interface, delta in (count_adjustments or {}).items():
            merged_counts[interface] = merged_counts.get(interface, 0) + int(delta)
        merged_zeroed = set(self.zeroed_interfaces)
        merged_zeroed.update(zeroed_interfaces or ())
        merged_markers = set(self.global_markers)
        merged_markers.update(global_markers or ())
        return JSEnvironment(
            self.engine,
            self.version,
            model=self.model,
            count_adjustments=merged_counts,
            zeroed_interfaces=merged_zeroed,
            global_markers=merged_markers,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JSEnvironment(engine={self.engine.value!r}, version={self.version}, "
            f"adjust={len(self.count_adjustments)}, zeroed={len(self.zeroed_interfaces)})"
        )
