"""Per-vendor evolution model of the Web API surface.

Real browsers change their JavaScript prototype surfaces in discrete
steps: a Chromium release train ships a batch of new ``Element`` methods,
a Gecko refactor reshapes the DOM hierarchy.  The paper's whole detection
signal rests on this structure — property counts are constant inside an
*engine era* and jump at era boundaries, in vendor-specific ways.

:class:`EvolutionModel` encodes that structure deterministically:

* Three engines: ``CHROMIUM`` (Chrome, Edge 79+, Brave), ``GECKO``
  (Firefox, Tor), ``EDGEHTML`` (legacy Edge 17-19).
* Era boundaries chosen so the engine eras correspond to the user-agent
  groups of paper Table 3 (e.g. Chromium eras starting at versions 59,
  69, 90, 102, 110 and 114).
* Per-interface parameters (base property count, per-era increments,
  vendor offsets) drawn once from a seeded generator, with the paper's
  Table 8 interfaces given the largest increments so they dominate the
  variance exactly as their Table 7 entropies suggest.
* The Firefox 119 event from Section 7.3: a Gecko refactor that aligns
  the ``Element``-family surfaces with mid-era Chromium counts, which is
  what pushes Firefox 119 into a Chromium cluster and triggers the
  paper's retraining signal.

Counts are exact functions of ``(interface, engine, version)``;
configuration and extension perturbations are layered on top by
:mod:`repro.browsers.configs`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.jsengine.catalog import STABLE_INTERFACES, VOLATILE_INTERFACES

__all__ = [
    "CHROMIUM_ERA_STARTS",
    "Engine",
    "EvolutionModel",
    "GECKO_119_SHIFT",
    "GECKO_ERA_STARTS",
    "NamedProperty",
    "PRIMARY_INTERFACES",
    "SECONDARY_INTERFACES",
    "CONFIG_SENSITIVE_INTERFACES",
    "default_model",
]


class Engine(str, Enum):
    """Browser engine families distinguished by the simulator."""

    CHROMIUM = "chromium"
    GECKO = "gecko"
    EDGEHTML = "edgehtml"


# Engine-era boundaries.  A version belongs to the era started by the
# largest boundary <= version.  The Chromium eras correspond one-to-one
# with the Chromium rows of paper Table 3; the Gecko eras with its
# Firefox rows.
CHROMIUM_ERA_STARTS: Tuple[int, ...] = (59, 69, 90, 102, 110, 114)
GECKO_ERA_STARTS: Tuple[int, ...] = (46, 51, 92, 101)

# Gecko 119 aligns these interfaces' surfaces with Chromium mid-era
# counts (the Section 7.3 "Element prototype implementation" change).
GECKO_119_SHIFT: Tuple[str, ...] = (
    "Element",
    "Document",
    "HTMLElement",
    "SVGElement",
    "ShadowRoot",
    "Range",
    "Text",
    "DocumentFragment",
    "PointerEvent",
    "HTMLMediaElement",
)
_GECKO_119_REVERT_VERSION = 100  # the era whose surface Gecko 119 reverts to

# The 22 deviation-based interfaces of paper Table 8, with hand-picked
# realistic base property counts.  Their per-era increments are the
# largest in the model, so a standard-deviation ranking of the collected
# data recovers exactly this set — mirroring the paper's feature
# selection outcome.
PRIMARY_INTERFACES: Dict[str, int] = {
    "Element": 300,
    "Document": 250,
    "HTMLElement": 135,
    "SVGElement": 60,
    "SVGFEBlendElement": 10,
    "TextMetrics": 12,
    "Range": 40,
    "StaticRange": 4,
    "AuthenticatorAttestationResponse": 5,
    "HTMLVideoElement": 25,
    "ResizeObserverEntry": 6,
    "ShadowRoot": 20,
    "PointerEvent": 30,
    "IntersectionObserver": 8,
    "CanvasRenderingContext2D": 70,
    "CSSStyleSheet": 15,
    "AudioContext": 12,
    "HTMLLinkElement": 20,
    "HTMLMediaElement": 50,
    "WebGL2RenderingContext": 300,
    "WebGLRenderingContext": 250,
    "CSSRule": 20,
}

# Interfaces whose variance puts them immediately after the Table 8 set
# in the standard-deviation ranking, in exactly the order Appendix-4
# Table 12 adds them (feature counts 32, 36 and 42).  Interfaces flagged
# ``absent_in_gecko`` report a zero count on Firefox, matching the
# paper's note that two of each group of four are Chromium-only.
SECONDARY_INTERFACES: Tuple[Tuple[str, bool], ...] = (
    ("HTMLIFrameElement", False),
    ("SVGAElement", False),
    ("RemotePlayback", True),
    ("StylePropertyMapReadOnly", True),
    ("Screen", False),
    ("Request", False),
    ("TouchEvent", True),
    ("TaskAttributionTiming", True),
    ("PictureInPictureWindow", False),
    ("ReportingObserver", False),
    ("HTMLTemplateElement", True),
    ("MediaSession", True),
)

# Volatile interfaces that user configurations or extensions can zero or
# reshape wholesale (Section 6.3): disabling Service Workers, WebRTC,
# payments, and so on.  These survive candidate generation but are
# excluded during data pre-processing because their real-world values
# are unstable within a single user-agent.
CONFIG_SENSITIVE_INTERFACES: Tuple[str, ...] = (
    "Navigator",
    "ServiceWorker",
    "ServiceWorkerContainer",
    "ServiceWorkerRegistration",
    "StorageManager",
    "RTCIceCandidate",
    "RTCPeerConnection",
    "RTCRtpReceiver",
    "RTCRtpSender",
    "RTCRtpTransceiver",
    "RTCDataChannel",
    "RTCDataChannelEvent",
    "RTCDTMFSender",
    "RTCDTMFToneChangeEvent",
    "RTCCertificate",
    "RTCSessionDescription",
    "RTCStatsReport",
    "RTCTrackEvent",
    "RTCPeerConnectionIceEvent",
    "PaymentRequest",
    "PaymentResponse",
    "PaymentAddress",
    "PushManager",
    "PushSubscription",
    "PushSubscriptionOptions",
    "Presentation",
    "PresentationAvailability",
    "PresentationConnection",
    "PresentationConnectionAvailableEvent",
    "PresentationConnectionCloseEvent",
    "PresentationConnectionList",
    "PresentationReceiver",
    "PresentationRequest",
    "Sensor",
    "SensorErrorEvent",
    "RelativeOrientationSensor",
    "Plugin",
    "PluginArray",
    "Clipboard",
    "MediaDevices",
    "MediaRecorder",
    "MediaKeys",
    "SharedWorker",
    "PublicKeyCredential",
    "SubtleCrypto",
    "Crypto",
    "GamepadButton",
    "SpeechSynthesisUtterance",
    "SpeechSynthesisEvent",
    "SpeechSynthesisErrorEvent",
)


@dataclass(frozen=True)
class NamedProperty:
    """A time-based (existence) feature: one property on one prototype.

    ``chromium_from`` / ``gecko_from`` give the engine version that first
    exposes the property (``None`` = never); ``edgehtml`` says whether
    legacy Edge exposes it at all.
    """

    interface: str
    prop: str
    chromium_from: Optional[int]
    gecko_from: Optional[int]
    edgehtml: bool

    def key(self) -> str:
        """Stable feature identifier, e.g. ``Navigator.deviceMemory``."""
        return f"{self.interface}.{self.prop}"

    def present(self, engine: Engine, version: int) -> bool:
        """Whether the property exists for this engine release."""
        if engine is Engine.EDGEHTML:
            return self.edgehtml
        threshold = (
            self.chromium_from if engine is Engine.CHROMIUM else self.gecko_from
        )
        return threshold is not None and version >= threshold


# The six time-based features the paper retains (Table 8 rows 23-28).
# Their presence splits engine families, so both values enjoy large
# support in real traffic — the property that keeps them through the
# pre-processing filter.
CANONICAL_TIME_PROPERTIES: Tuple[NamedProperty, ...] = (
    NamedProperty("Navigator", "deviceMemory", chromium_from=63, gecko_from=None, edgehtml=False),
    NamedProperty("BaseAudioContext", "currentTime", chromium_from=59, gecko_from=None, edgehtml=False),
    NamedProperty("HTMLVideoElement", "webkitDisplayingFullscreen", chromium_from=59, gecko_from=None, edgehtml=False),
    NamedProperty("Screen", "orientation", chromium_from=59, gecko_from=None, edgehtml=True),
    NamedProperty("Window", "speechSynthesis", chromium_from=None, gecko_from=46, edgehtml=False),
    NamedProperty("CSSStyleDeclaration", "getPropertyValue", chromium_from=59, gecko_from=None, edgehtml=True),
)

_TIME_PROPERTY_COUNT = 313


@dataclass(frozen=True)
class _InterfaceProfile:
    """Evolution parameters of one interface."""

    base: int
    gecko_offset: int
    edgehtml_offset: int
    chromium_deltas: Tuple[int, ...]  # one per boundary after the first era
    gecko_deltas: Tuple[int, ...]
    absent_in_gecko: bool = False
    absent_in_edgehtml: bool = False


class EvolutionModel:
    """Deterministic property-count model for every catalog interface.

    Parameters
    ----------
    seed:
        Seed for the one-off parameter draw.  Two models with equal seeds
        agree on every count forever, which keeps the entire reproduction
        deterministic.
    """

    def __init__(self, seed: int = 20240704) -> None:
        self.seed = seed
        self._profiles = self._draw_profiles(np.random.default_rng(seed))
        self.time_properties = self._draw_time_properties(
            np.random.default_rng(seed + 1)
        )
        self._named_by_interface: Dict[str, List[NamedProperty]] = {}
        for named in self.time_properties:
            self._named_by_interface.setdefault(named.interface, []).append(named)
        self._count_cache: Dict[Tuple[str, Engine, int], int] = {}

    # ------------------------------------------------------------------
    # public queries

    def knows_interface(self, interface: str) -> bool:
        """Whether ``interface`` is part of the modeled catalog."""
        return interface in self._profiles

    def property_count(self, interface: str, engine: Engine, version: int) -> int:
        """Own-property count of ``interface.prototype`` for a release.

        Unknown interfaces count 0 — the paper's collection script reports
        0 for prototypes the browser does not expose.
        """
        key = (interface, engine, int(version))
        cached = self._count_cache.get(key)
        if cached is not None:
            return cached
        count = self._structural_count(interface, engine, int(version))
        if count > 0:
            count += sum(
                1
                for named in self._named_by_interface.get(interface, ())
                if named.present(engine, int(version))
            )
        self._count_cache[key] = count
        return count

    def has_property(
        self, interface: str, prop: str, engine: Engine, version: int
    ) -> bool:
        """Existence of ``interface.prototype[prop]`` for a release."""
        if self._structural_count(interface, engine, int(version)) <= 0:
            return False
        for named in self._named_by_interface.get(interface, ()):
            if named.prop == prop:
                return named.present(engine, int(version))
        return False

    def property_names(
        self, interface: str, engine: Engine, version: int
    ) -> Tuple[str, ...]:
        """Concrete own-property names, consistent with the counts.

        Structural properties carry synthetic names; named (time-based)
        properties appear under their real names.
        """
        structural = self._structural_count(interface, engine, int(version))
        if structural <= 0:
            return ()
        from repro.jsengine.membernames import member_names

        present_named = [
            named.prop
            for named in self._named_by_interface.get(interface, ())
            if named.present(engine, int(version))
        ]
        names = list(member_names(interface, structural))
        # Named (time-based) properties are appended under their real
        # names; on the rare collision the structural name yields.
        collisions = set(names) & set(present_named)
        if collisions:
            names = [
                n if n not in collisions else f"{interface}$alt{i:03d}"
                for i, n in enumerate(names)
            ]
        names.extend(present_named)
        return tuple(names)

    def count_vector(
        self, interfaces: Sequence[str], engine: Engine, version: int
    ) -> np.ndarray:
        """Vector of property counts for ``interfaces`` (fast path)."""
        return np.array(
            [self.property_count(i, engine, version) for i in interfaces],
            dtype=np.int32,
        )

    def chromium_era(self, version: int) -> int:
        """Index of the Chromium era containing ``version``."""
        return _era_index(CHROMIUM_ERA_STARTS, version)

    def gecko_era(self, version: int) -> int:
        """Index of the Gecko era containing ``version``."""
        return _era_index(GECKO_ERA_STARTS, version)

    # ------------------------------------------------------------------
    # internals

    def _structural_count(self, interface: str, engine: Engine, version: int) -> int:
        profile = self._profiles.get(interface)
        if profile is None:
            return 0
        if engine is Engine.EDGEHTML:
            if profile.absent_in_edgehtml:
                return 0
            return max(0, profile.base + profile.edgehtml_offset)
        if engine is Engine.CHROMIUM:
            return self._chromium_count(profile, version)
        if profile.absent_in_gecko:
            return 0
        if version >= 119:
            # Gecko 119 DOM refactor (Section 7.3's Element-prototype
            # change): the re-architected implementation shipped with the
            # post-100 surface batch disabled, so the whole coarse
            # surface reverts to the Firefox 93-100 era — with fresh
            # per-interface skews on the Element family from the new
            # implementation.  The observable effect is the paper's:
            # Firefox 119's feature values change substantially versus
            # 118 and its sessions land in a *different* existing
            # cluster, tripping the retraining signal.
            era = self.gecko_era(_GECKO_119_REVERT_VERSION)
            count = (
                profile.base
                + profile.gecko_offset
                + sum(profile.gecko_deltas[:era])
            )
            if interface in GECKO_119_SHIFT:
                count += _stable_small_int(interface, self.seed, bound=2)
            return max(0, count)
        era = self.gecko_era(version)
        return max(
            0,
            profile.base + profile.gecko_offset + sum(profile.gecko_deltas[:era]),
        )

    def _chromium_count(self, profile: _InterfaceProfile, version: int) -> int:
        era = self.chromium_era(version)
        return max(0, profile.base + sum(profile.chromium_deltas[:era]))

    def _draw_profiles(
        self, rng: np.random.Generator
    ) -> Dict[str, _InterfaceProfile]:
        profiles: Dict[str, _InterfaceProfile] = {}
        n_chromium_boundaries = len(CHROMIUM_ERA_STARTS) - 1
        n_gecko_boundaries = len(GECKO_ERA_STARTS) - 1

        element_family = {"Element", "Document", "HTMLElement", "SVGElement"}
        secondary_order = [name for name, _ in SECONDARY_INTERFACES]
        secondary_absent = {name: absent for name, absent in SECONDARY_INTERFACES}
        config_sensitive = set(CONFIG_SENSITIVE_INTERFACES)

        # Engines evolve largely disjoint parts of the platform: some
        # interfaces grow mainly on Chromium trains, some on Gecko
        # trains, some on both.  This keeps old releases of both vendors
        # near the shared base (Table 3's clusters 2 and 6) while modern
        # releases diverge along orthogonal directions — modern Firefox
        # never drifts through the Chromium era positions.  Classes are
        # assigned round-robin over the Table 8 order so the variance
        # budget of the primary set never depends on generator luck.
        primary_cycle = ("chromium", "gecko", "shared")
        primary_rank = {name: i for i, name in enumerate(PRIMARY_INTERFACES)}

        for interface in VOLATILE_INTERFACES:
            if interface in PRIMARY_INTERFACES:
                base = PRIMARY_INTERFACES[interface]
                if interface in element_family:
                    evolution_class = "shared"
                    c_low, c_high, g_low, g_high = 6, 12, 6, 12
                else:
                    evolution_class = primary_cycle[
                        primary_rank[interface] % len(primary_cycle)
                    ]
                    if evolution_class == "chromium":
                        c_low, c_high, g_low, g_high = 4, 8, 3, 5
                    elif evolution_class == "gecko":
                        c_low, c_high, g_low, g_high = 3, 5, 4, 8
                    else:
                        c_low, c_high, g_low, g_high = 4, 7, 4, 7
                chromium = tuple(
                    int(rng.integers(c_low, c_high + 1))
                    for _ in range(n_chromium_boundaries)
                )
                gecko = tuple(
                    int(rng.integers(g_low, g_high + 1))
                    for _ in range(n_gecko_boundaries)
                )
                profiles[interface] = _InterfaceProfile(
                    base=base,
                    gecko_offset=int(rng.integers(-3, 4)),
                    edgehtml_offset=-int(rng.integers(3, 9)),
                    chromium_deltas=chromium,
                    gecko_deltas=gecko,
                )
            elif interface in secondary_absent:
                # Deltas descend with Table 12 rank so these interfaces
                # fill the standard-deviation ranking immediately below
                # the Table 8 set, in roughly the paper's order.
                rank = secondary_order.index(interface)
                absent = secondary_absent[interface]
                scale = 2 if rank < 4 else 1
                # Chromium-only interfaces carry a pure vendor contrast
                # (present vs absent, the paper's "absent in Firefox"
                # additions); the shared ones also step across eras.
                chromium = tuple(
                    (0 if absent else scale) if b < 2 else (
                        0 if absent else int(rng.integers(0, 2))
                    )
                    for b in range(n_chromium_boundaries)
                )
                gecko = (
                    (0,) * n_gecko_boundaries
                    if absent
                    else tuple(
                        scale if b < 1 else int(rng.integers(0, 2))
                        for b in range(n_gecko_boundaries)
                    )
                )
                # Chromium-only interfaces stay small so their present
                # vs-absent contrast ranks them just below the Table 8
                # set, not inside it.
                base = 3 if absent else int(rng.integers(8, 15))
                profiles[interface] = _InterfaceProfile(
                    base=base,
                    gecko_offset=int(rng.integers(-2, 3)),
                    edgehtml_offset=-int(rng.integers(1, 3)),
                    chromium_deltas=chromium,
                    gecko_deltas=gecko,
                    absent_in_gecko=absent,
                )
            elif interface in config_sensitive:
                profiles[interface] = _InterfaceProfile(
                    base=int(rng.integers(5, 25)),
                    gecko_offset=int(rng.integers(-2, 3)),
                    edgehtml_offset=-int(rng.integers(1, 5)),
                    chromium_deltas=tuple(
                        int(rng.integers(0, 2)) for _ in range(n_chromium_boundaries)
                    ),
                    gecko_deltas=tuple(
                        int(rng.integers(0, 2)) for _ in range(n_gecko_boundaries)
                    ),
                )
            else:
                # Legacy-volatile: changed somewhere in 2017-2022, but only
                # marginally — a single small bump at one boundary.
                bump_at = int(rng.integers(0, n_chromium_boundaries))
                chromium = tuple(
                    1 if b == bump_at else 0 for b in range(n_chromium_boundaries)
                )
                gecko_bump = int(rng.integers(0, n_gecko_boundaries))
                gecko = tuple(
                    1 if b == gecko_bump else 0 for b in range(n_gecko_boundaries)
                )
                profiles[interface] = _InterfaceProfile(
                    base=int(rng.integers(3, 20)),
                    gecko_offset=int(rng.integers(-1, 2)),
                    edgehtml_offset=-int(rng.integers(0, 3)),
                    chromium_deltas=chromium,
                    gecko_deltas=gecko,
                )

        flat = (0,)
        for interface in STABLE_INTERFACES:
            profiles[interface] = _InterfaceProfile(
                base=int(rng.integers(3, 45)),
                gecko_offset=0,
                edgehtml_offset=0,
                chromium_deltas=flat * n_chromium_boundaries,
                gecko_deltas=flat * n_gecko_boundaries,
            )
        return profiles

    def _draw_time_properties(
        self, rng: np.random.Generator
    ) -> Tuple[NamedProperty, ...]:
        """The 313 BrowserPrint-style existence features.

        Six are the canonical Table 8 features; the remainder follow the
        paper's observation that most of BrowserPrint's 2020-era features
        no longer track modern browsers: ~40% are always present, ~30%
        never materialized, and ~30% vary only for ancient releases.
        """
        properties = list(CANONICAL_TIME_PROPERTIES)
        canonical_hosts = {p.interface for p in CANONICAL_TIME_PROPERTIES}
        # Constant (always/never present) properties live on stable
        # interfaces; properties that appeared mid-window live on
        # already-volatile interfaces so the stable set keeps exactly
        # zero count variance.
        stable_hosts = [
            name for name in STABLE_INTERFACES if name not in canonical_hosts
        ]
        absent_in_gecko = {name for name, flag in SECONDARY_INTERFACES if flag}
        volatile_hosts = [
            name
            for name in VOLATILE_INTERFACES
            if name not in canonical_hosts and name not in absent_in_gecko
        ]
        verbs = (
            "webkitRequest", "mozGet", "msMatch", "attach", "observe",
            "create", "legacy", "unstable", "queued", "vendor",
        )
        nouns = (
            "FullScreen", "Pointer", "Stream", "Battery", "Gesture",
            "Orientation", "Persist", "Profile", "Snapshot", "Channel",
        )
        index = 0
        while len(properties) < _TIME_PROPERTY_COUNT:
            prop = (
                verbs[index % len(verbs)]
                + nouns[(index // len(verbs)) % len(nouns)]
                + (str(index // (len(verbs) * len(nouns))) or "")
            )
            kind = rng.random()
            if kind < 0.4:  # always present in the studied window
                host = stable_hosts[index % len(stable_hosts)]
                named = NamedProperty(host, prop, chromium_from=1, gecko_from=1, edgehtml=True)
            elif kind < 0.7:  # never shipped
                host = stable_hosts[index % len(stable_hosts)]
                named = NamedProperty(host, prop, chromium_from=None, gecko_from=None, edgehtml=False)
            else:  # appeared mid-window; only ancient releases lack it
                host = volatile_hosts[index % len(volatile_hosts)]
                named = NamedProperty(
                    host,
                    prop,
                    chromium_from=int(rng.integers(60, 75)),
                    gecko_from=int(rng.integers(47, 60)),
                    edgehtml=bool(rng.random() < 0.5),
                )
            properties.append(named)
            index += 1
        return tuple(properties)


def _era_index(starts: Tuple[int, ...], version: int) -> int:
    """Number of boundaries at or below ``version`` minus one.

    Versions before the first boundary clamp into era 0 (the simulator
    treats pre-window releases as frozen at the earliest surface).
    """
    return max(0, bisect.bisect_right(starts, int(version)) - 1)


def _stable_small_int(text: str, seed: int, bound: int) -> int:
    """Deterministic small integer in ``[-bound, bound]`` from a string."""
    import zlib

    digest = zlib.crc32(f"{seed}:{text}".encode("utf-8"))
    return digest % (2 * bound + 1) - bound


@lru_cache(maxsize=4)
def default_model(seed: int = 20240704) -> EvolutionModel:
    """Shared process-wide model instance (profiles are draw-once)."""
    return EvolutionModel(seed=seed)
