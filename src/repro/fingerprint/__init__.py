"""Coarse-grained fingerprint collection machinery.

The flow mirrors the paper's Sections 6.1-6.3:

* :mod:`repro.fingerprint.browserprint` — the 313 BrowserPrint-style
  *time-based* (property-existence) candidate features;
* :mod:`repro.fingerprint.candidates` — candidate fingerprint
  generation: probe every catalog interface across the lab browser
  matrix, rank by standard deviation, keep the top 200 *deviation-based*
  features;
* :mod:`repro.fingerprint.collector` — run a feature list against a
  :class:`~repro.jsengine.environment.JSEnvironment`;
* :mod:`repro.fingerprint.features` — the final 28-feature set of paper
  Table 8;
* :mod:`repro.fingerprint.script` — the deployable collection script:
  wire format, payload-size accounting, service-time measurement.
"""

from repro.fingerprint.browserprint import time_based_features
from repro.fingerprint.candidates import CandidateSet, generate_candidates
from repro.fingerprint.collector import FingerprintCollector
from repro.fingerprint.features import (
    DEVIATION_FEATURES,
    FEATURE_NAMES,
    N_FEATURES,
    TIME_FEATURES,
    FeatureSpec,
    deviation_feature_indices,
    time_feature_indices,
)
from repro.fingerprint.script import CollectionScript, FingerprintPayload

__all__ = [
    "CandidateSet",
    "CollectionScript",
    "DEVIATION_FEATURES",
    "FEATURE_NAMES",
    "FeatureSpec",
    "FingerprintCollector",
    "FingerprintPayload",
    "N_FEATURES",
    "TIME_FEATURES",
    "deviation_feature_indices",
    "generate_candidates",
    "time_based_features",
    "time_feature_indices",
]
