"""Execute feature lists against a simulated JavaScript environment.

:class:`FingerprintCollector` is the in-page script of the paper: given
a list of :class:`~repro.fingerprint.features.FeatureSpec`, it evaluates
each against a :class:`~repro.jsengine.environment.JSEnvironment` —
counting own properties for deviation features, probing
``hasOwnProperty`` for time features — and returns an integer vector
(time features collapse to 0/1, as in the paper's wire format).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.fingerprint.features import FEATURE_SPECS, FeatureSpec
from repro.jsengine.environment import JSEnvironment

__all__ = ["FingerprintCollector"]


class FingerprintCollector:
    """Collect coarse-grained fingerprints from environments.

    Parameters
    ----------
    specs:
        Features to collect, in column order.  Defaults to the final
        28-feature set of paper Table 8.
    """

    def __init__(self, specs: Sequence[FeatureSpec] = FEATURE_SPECS) -> None:
        if not specs:
            raise ValueError("collector needs at least one feature spec")
        self.specs = tuple(specs)

    def collect(self, environment: JSEnvironment) -> np.ndarray:
        """Evaluate every spec; returns an int vector of feature values."""
        values = np.empty(len(self.specs), dtype=np.int32)
        for idx, spec in enumerate(self.specs):
            if spec.kind == "deviation":
                values[idx] = environment.own_property_count(spec.interface)
            else:
                values[idx] = int(
                    environment.prototype_has_own(spec.interface, spec.prop)
                )
        return values

    def collect_many(self, environments: Sequence[JSEnvironment]) -> np.ndarray:
        """Stack fingerprints of several environments into a matrix."""
        if not environments:
            raise ValueError("no environments to collect from")
        return np.vstack([self.collect(env) for env in environments])

    def feature_names(self) -> tuple:
        """The JavaScript expressions, in column order."""
        return tuple(spec.name for spec in self.specs)
