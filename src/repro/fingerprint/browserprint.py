"""Time-based (BrowserPrint-style) candidate features.

Akhavani et al.'s BrowserPrint identifies browsers by the presence or
absence of specific JavaScript properties; the paper imports 313 such
features into its candidate set and finds that only six of them still
track browsers released after 2020 (Table 8 rows 23-28).

The catalog itself lives in the evolution model (the properties must
exist — or not — on simulated prototypes); this module exposes it as
:class:`FeatureSpec` objects for the collection machinery.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fingerprint.features import FeatureSpec
from repro.jsengine.evolution import EvolutionModel, default_model

__all__ = ["time_based_features"]


def time_based_features(model: Optional[EvolutionModel] = None) -> List[FeatureSpec]:
    """All 313 BrowserPrint-style existence features as specs."""
    model = model if model is not None else default_model()
    return [
        FeatureSpec("time", named.interface, named.prop)
        for named in model.time_properties
    ]
