"""The final coarse-grained feature set (paper Table 8).

28 features: 22 *deviation-based* (own-property counts of selected
prototypes) and 6 *time-based* (existence of a specific property on a
prototype).  The order below is the paper's Table 8 order and is the
canonical column order of every feature matrix in this repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.jsengine.evolution import CANONICAL_TIME_PROPERTIES, PRIMARY_INTERFACES

__all__ = [
    "DEVIATION_FEATURES",
    "FEATURE_NAMES",
    "FEATURE_SPECS",
    "FeatureSpec",
    "N_DEVIATION",
    "N_FEATURES",
    "N_TIME",
    "TIME_FEATURES",
    "deviation_feature_indices",
    "time_feature_indices",
]


@dataclass(frozen=True)
class FeatureSpec:
    """One coarse-grained feature.

    ``kind`` is ``"deviation"`` (count the prototype's own properties) or
    ``"time"`` (probe one property's existence); ``prop`` is set only for
    time-based features.
    """

    kind: str
    interface: str
    prop: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("deviation", "time"):
            raise ValueError(f"unknown feature kind: {self.kind!r}")
        if self.kind == "time" and not self.prop:
            raise ValueError("time-based features require a property name")
        if self.kind == "deviation" and self.prop:
            raise ValueError("deviation features must not name a property")

    @property
    def name(self) -> str:
        """The JavaScript expression the paper lists for this feature."""
        if self.kind == "deviation":
            return f"Object.getOwnPropertyNames({self.interface}.prototype).length"
        return f"{self.interface}.prototype.hasOwnProperty('{self.prop}')"

    def key(self) -> str:
        """Short stable identifier."""
        if self.kind == "deviation":
            return f"dev:{self.interface}"
        return f"time:{self.interface}.{self.prop}"


# Table 8 rows 1-22 (deviation-based), in paper order.  The interfaces
# come from the evolution model's PRIMARY set; asserting equality keeps
# the two definitions from drifting apart.
_TABLE8_DEVIATION_ORDER: Tuple[str, ...] = (
    "Element",
    "Document",
    "HTMLElement",
    "SVGElement",
    "SVGFEBlendElement",
    "TextMetrics",
    "Range",
    "StaticRange",
    "AuthenticatorAttestationResponse",
    "HTMLVideoElement",
    "ResizeObserverEntry",
    "ShadowRoot",
    "PointerEvent",
    "IntersectionObserver",
    "CanvasRenderingContext2D",
    "CSSStyleSheet",
    "AudioContext",
    "HTMLLinkElement",
    "HTMLMediaElement",
    "WebGL2RenderingContext",
    "WebGLRenderingContext",
    "CSSRule",
)

if set(_TABLE8_DEVIATION_ORDER) != set(PRIMARY_INTERFACES):
    raise RuntimeError(
        "Table 8 deviation interfaces diverged from the evolution model"
    )

DEVIATION_FEATURES: Tuple[FeatureSpec, ...] = tuple(
    FeatureSpec("deviation", interface) for interface in _TABLE8_DEVIATION_ORDER
)

# Table 8 rows 23-28 (time-based), in paper order.
TIME_FEATURES: Tuple[FeatureSpec, ...] = tuple(
    FeatureSpec("time", named.interface, named.prop)
    for named in CANONICAL_TIME_PROPERTIES
)

FEATURE_SPECS: Tuple[FeatureSpec, ...] = DEVIATION_FEATURES + TIME_FEATURES
FEATURE_NAMES: Tuple[str, ...] = tuple(spec.name for spec in FEATURE_SPECS)

N_DEVIATION = len(DEVIATION_FEATURES)
N_TIME = len(TIME_FEATURES)
N_FEATURES = len(FEATURE_SPECS)


def deviation_feature_indices() -> List[int]:
    """Column indices of the deviation-based features (to be scaled)."""
    return [i for i, spec in enumerate(FEATURE_SPECS) if spec.kind == "deviation"]


def time_feature_indices() -> List[int]:
    """Column indices of the binary time-based features."""
    return [i for i, spec in enumerate(FEATURE_SPECS) if spec.kind == "time"]
