"""Candidate fingerprint generation (paper Section 6.1).

The paper probes all 1006 MDN prototype names across a matrix of lab
browsers (Chrome 59-119, Firefox 46-119, Edge 17-19 and 80-119), ranks
the own-property counts by standard deviation across browsers, and keeps
the top 200 as *deviation-based* candidates; 313 BrowserPrint existence
features join them as *time-based* candidates, for 513 candidates total.

:func:`generate_candidates` reproduces exactly that procedure against
the simulated browser universe, and additionally retains the *reference
fingerprints* of every lab browser — the paper reuses these later to
align clusters of under-represented user-agents (Section 6.4.3) and to
sanity-check the Isolation Forest threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.browsers.releases import ReleaseCalendar, default_calendar, engine_for_vendor
from repro.browsers.useragent import Vendor
from repro.fingerprint.browserprint import time_based_features
from repro.fingerprint.features import FeatureSpec
from repro.jsengine.catalog import ALL_INTERFACES
from repro.jsengine.evolution import EvolutionModel, default_model

__all__ = ["CandidateSet", "generate_candidates"]

_DEFAULT_TOP_N = 200


@dataclass
class CandidateSet:
    """Outcome of the candidate fingerprint generation stage.

    Attributes
    ----------
    deviation:
        Top-N deviation-based feature specs, sorted by decreasing
        standard deviation across the lab browsers.
    time_based:
        The 313 BrowserPrint existence specs.
    deviation_std:
        Normalized standard deviation per selected deviation feature
        (the paper reports a 0.0012-1.3853 range for its selection).
    reference_fingerprints:
        ``{ua_key: feature vector}`` over *all candidate specs* for every
        lab browser, used later for cluster alignment of rare UAs.
    """

    deviation: List[FeatureSpec]
    time_based: List[FeatureSpec]
    deviation_std: Dict[str, float]
    reference_fingerprints: Dict[str, np.ndarray]

    @property
    def all_specs(self) -> List[FeatureSpec]:
        """Deviation + time specs, the 513-column candidate order."""
        return list(self.deviation) + list(self.time_based)

    def reference_vector(self, ua_key: str) -> Optional[np.ndarray]:
        """Reference fingerprint of a lab browser, if it was probed."""
        return self.reference_fingerprints.get(ua_key)


def _lab_releases(
    calendar: ReleaseCalendar, cutoff: Optional[date]
) -> List[Tuple[Vendor, int]]:
    releases = []
    for release in calendar.all_releases():
        if cutoff is not None and release.released >= cutoff:
            continue
        releases.append((release.vendor, release.version))
    if not releases:
        raise ValueError("no lab releases before the requested cutoff")
    return releases


def generate_candidates(
    model: Optional[EvolutionModel] = None,
    calendar: Optional[ReleaseCalendar] = None,
    cutoff: Optional[date] = None,
    top_n: int = _DEFAULT_TOP_N,
) -> CandidateSet:
    """Run the Section 6.1 procedure against the simulated universe.

    Parameters
    ----------
    model, calendar:
        Simulation substrate; defaults to the shared instances.
    cutoff:
        Only probe releases shipped before this date (the paper ran the
        stage once in mid-2022 and extended it for new releases later).
    top_n:
        How many deviation features to keep (200 in the paper).
    """
    model = model if model is not None else default_model()
    calendar = calendar if calendar is not None else default_calendar()
    releases = _lab_releases(calendar, cutoff)

    # Probe every catalog interface on every lab browser.
    counts = np.empty((len(releases), len(ALL_INTERFACES)), dtype=np.int32)
    for row, (vendor, version) in enumerate(releases):
        engine = engine_for_vendor(vendor, version)
        counts[row] = model.count_vector(ALL_INTERFACES, engine, version)

    means = counts.mean(axis=0)
    stds = counts.std(axis=0)
    # Normalized std (coefficient of variation); constant features get 0
    # and are never selected.
    with np.errstate(invalid="ignore", divide="ignore"):
        normalized = np.where(means > 0, stds / np.maximum(means, 1e-9), 0.0)
    varying = np.nonzero(stds > 0)[0]
    ranked = varying[np.argsort(-stds[varying], kind="stable")]
    selected = ranked[: min(top_n, ranked.size)]

    deviation_specs = [
        FeatureSpec("deviation", ALL_INTERFACES[i]) for i in selected
    ]
    deviation_std = {
        ALL_INTERFACES[i]: float(normalized[i]) for i in selected
    }
    time_specs = time_based_features(model)

    # Reference fingerprints over the full candidate order.
    specs = deviation_specs + time_specs
    references: Dict[str, np.ndarray] = {}
    for vendor, version in releases:
        engine = engine_for_vendor(vendor, version)
        vector = np.empty(len(specs), dtype=np.int32)
        for idx, spec in enumerate(specs):
            if spec.kind == "deviation":
                vector[idx] = model.property_count(spec.interface, engine, version)
            else:
                vector[idx] = int(
                    model.has_property(spec.interface, spec.prop, engine, version)
                )
        references[f"{vendor.value}-{version}"] = vector

    return CandidateSet(
        deviation=deviation_specs,
        time_based=time_specs,
        deviation_std=deviation_std,
        reference_fingerprints=references,
    )
