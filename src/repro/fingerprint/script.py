"""The deployable collection script: wire format and cost accounting.

Section 3 of the paper sets two hard deployment constraints for the
FinOrg integration — at most 100ms of service time and at most 1KB of
data per user — and Table 2 compares Browser Polygraph's 6ms / 1KB
against FingerprintJS (51ms / ~23KB), ClientJS (37ms / ~10KB) and
AmIUnique (~1.5s / ~60KB).

:class:`CollectionScript` packages the 28-feature collector into the
shape FinOrg deploys: run it against an environment, get a
:class:`FingerprintPayload` with the serialized bytes that travel to the
backend, and measure the service time with a steady clock.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.fingerprint.collector import FingerprintCollector
from repro.fingerprint.features import FEATURE_SPECS, FeatureSpec
from repro.fraudbrowsers.namespace_probe import scan_environment
from repro.jsengine.environment import JSEnvironment

__all__ = ["CollectionScript", "FingerprintPayload", "MAX_PAYLOAD_BYTES", "MAX_SERVICE_TIME_MS"]

# FinOrg deployment constraints (paper Section 3).
MAX_SERVICE_TIME_MS = 100.0
MAX_PAYLOAD_BYTES = 1024


@dataclass(frozen=True)
class FingerprintPayload:
    """What the script ships to the backend for one session.

    ``suspicious_globals`` carries the namespace probe's findings (the
    Section 8 extension); it is empty for genuine browsers and omitted
    from the wire format when empty, so the 1KB budget is unaffected.
    """

    session_id: str
    user_agent: str
    values: tuple
    service_time_ms: float
    suspicious_globals: tuple = ()

    def to_wire(self) -> bytes:
        """Serialize to the compact JSON wire format."""
        body = {
            "sid": self.session_id,
            "ua": self.user_agent,
            "f": list(self.values),
        }
        if self.suspicious_globals:
            body["g"] = list(self.suspicious_globals)
        return json.dumps(body, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_wire(cls, wire: bytes) -> "FingerprintPayload":
        """Parse a wire payload (service time is not transmitted)."""
        try:
            body = json.loads(wire.decode("utf-8"))
            return cls(
                session_id=str(body["sid"]),
                user_agent=str(body["ua"]),
                values=tuple(int(v) for v in body["f"]),
                service_time_ms=0.0,
                suspicious_globals=tuple(str(g) for g in body.get("g", ())),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"malformed fingerprint payload: {exc}") from exc

    @property
    def size_bytes(self) -> int:
        """Payload size on the wire."""
        return len(self.to_wire())

    def within_budget(self) -> bool:
        """Whether this payload meets both FinOrg constraints."""
        return (
            self.size_bytes <= MAX_PAYLOAD_BYTES
            and self.service_time_ms <= MAX_SERVICE_TIME_MS
        )

    def vector(self) -> np.ndarray:
        """Feature values as an int vector."""
        return np.asarray(self.values, dtype=np.int32)


class CollectionScript:
    """The in-page script FinOrg embeds in its purchase flow."""

    def __init__(self, specs: Sequence[FeatureSpec] = FEATURE_SPECS) -> None:
        self._collector = FingerprintCollector(specs)

    def run(
        self,
        environment: JSEnvironment,
        user_agent: str,
        session_id: str = "anon",
        clock: Optional[object] = None,
    ) -> FingerprintPayload:
        """Collect a fingerprint and time the collection.

        ``clock`` is injectable for tests; it must be a zero-argument
        callable returning seconds (defaults to ``time.perf_counter``).
        """
        tick = clock or time.perf_counter
        started = tick()
        values = self._collector.collect(environment)
        hits = scan_environment(environment)
        elapsed_ms = (tick() - started) * 1000.0
        return FingerprintPayload(
            session_id=session_id,
            user_agent=user_agent,
            values=tuple(int(v) for v in values),
            service_time_ms=elapsed_ms,
            suspicious_globals=tuple(hit.global_name for hit in hits),
        )
