"""Zero-copy shared-memory transport between router and process shards.

The pickle-over-``Pipe`` transport serializes every wire payload twice
(request out, verdict back) and funnels both through a single reader
thread; profiles of ``bench_cluster_scaling`` show that this plumbing —
not scoring — is what flattens the shard-scaling curve.  This module
replaces it for process-backed shards:

* **Router-side ingest + verdict cache.**  The wire contract
  (:class:`~repro.runtime.fastingest.WireIngest`) and the
  :class:`~repro.runtime.cache.VerdictCache` move to the parent, one
  instance per shard.  Coarse-grained fingerprints are low-cardinality
  by design, so the overwhelming majority of wires resolve to a cache
  hit that never crosses the process boundary at all.

* **Shared-memory slab per shard.**  Cache *misses* cross as fixed-
  stride ``float64`` feature rows written directly into a
  ``multiprocessing.shared_memory`` slab; the child scores them with
  one vectorized model call reading the rows in place (zero copy on
  both sides) and writes compact integer results back into the slab.
  Only tiny control tuples — ``("shmscore", seq, start, n)`` out,
  ``("shmdone", seq, generation)`` back — travel over the pipe.

* **Slot ring with FIFO lease/ack.**  Slab rows are leased in
  contiguous runs from a ring cursor and released when the child acks
  the batch.  Because batches complete in pipe order, the free region
  is always exactly the run ``[head, head+free)`` (mod ``n_slots``),
  which keeps the ring a pair of integers — no per-slot state.  When
  the ring is exhausted the transport *waits for the oldest in-flight
  ack* (counted as a backpressure pause) instead of dropping work.

Slab layout (all little-endian, offsets in bytes)::

    0     header   int64[8]      [MAGIC, n_slots, n_features, 0...]
    64    meta     int64[S]      per-slot interned user-agent index
    64+8S results  int64[S, 4]   (predicted, expected|-1, flagged, risk|-1)
    64+40S rows    float64[S, F] feature vectors, fixed stride

User-agent keys are interned: the parent assigns each distinct
``ua_key`` a small integer and tells the child once
(``("shmua", idx, key)``, fire-and-forget — pipe ordering guarantees
the child sees it before any batch referencing it).

Failure semantics: a pipe error marks the transport ``broken``, every
unanswered miss in flight completes with an :func:`overloaded_verdict`
(exactly the pickle path's crash behaviour, so the router's existing
failover/retry logic re-routes them), and the supervisor restart spawns
a fresh child that re-attaches the *same* slab by name with a fresh
transport — cold cache and dedup window after a crash, matching
``ThreadShard.restart``.

Escalation parity: the child writes **raw** (un-escalated) results; the
parent caches the raw result and applies the Section 8 namespace-probe
escalation per request with the child's handshaked config — the same
cache-raw / escalate-per-request order as ``RuntimeScoringService``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.detection import DetectionResult
from repro.runtime.cache import VerdictCache
from repro.runtime.fastingest import WireIngest
from repro.runtime.pool import overloaded_verdict
from repro.runtime.stats import RuntimeStats
from repro.service.ingest import PayloadValidator
from repro.service.scoring import Verdict

__all__ = [
    "SLAB_MAGIC",
    "ShmSlab",
    "SlotRing",
    "ShmTransport",
    "attach_slab_views",
    "slab_nbytes",
]

SLAB_MAGIC = 0x504F4C59  # "POLY"

_HEADER_BYTES = 64  # int64[8]

# Distinct user-agent equivalence classes are bounded by the release
# calendar (a few hundred in practice); the table cap only guards
# against pathological traffic, and overflowing it resets the intern
# table on both sides rather than falling off the fast path.
_UA_TABLE_LIMIT = 65_536

# Rows shipped per ("shmscore", ...) control message.  Large enough to
# amortize the pipe round-trip into one vectorized model call, small
# enough that two batches pipeline inside the default ring.
_DEFAULT_BATCH_ROWS = 1024
_PIPELINE_DEPTH = 2


def slab_nbytes(n_slots: int, n_features: int) -> int:
    """Total slab size for ``n_slots`` rows of ``n_features`` floats."""
    return _HEADER_BYTES + n_slots * (8 + 32 + 8 * n_features)


def _slab_views(buf, n_slots: int, n_features: int):
    """(header, meta, results, rows) numpy views over one slab buffer."""
    header = np.ndarray((8,), dtype=np.int64, buffer=buf, offset=0)
    offset = _HEADER_BYTES
    meta = np.ndarray((n_slots,), dtype=np.int64, buffer=buf, offset=offset)
    offset += n_slots * 8
    results = np.ndarray(
        (n_slots, 4), dtype=np.int64, buffer=buf, offset=offset
    )
    offset += n_slots * 32
    rows = np.ndarray(
        (n_slots, n_features), dtype=np.float64, buffer=buf, offset=offset
    )
    return header, meta, results, rows


class ShmSlab:
    """Parent-owned shared-memory slab (create / close / unlink)."""

    def __init__(self, n_slots: int, n_features: int) -> None:
        from multiprocessing import shared_memory

        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        self.n_slots = n_slots
        self.n_features = n_features
        self._shm = shared_memory.SharedMemory(
            create=True, size=slab_nbytes(n_slots, n_features)
        )
        self.name = self._shm.name
        self.header, self.meta, self.results, self.rows = _slab_views(
            self._shm.buf, n_slots, n_features
        )
        self.header[0] = SLAB_MAGIC
        self.header[1] = n_slots
        self.header[2] = n_features

    def close(self) -> None:
        """Release the mapping and unlink the segment (parent owns it)."""
        # Drop the numpy views first: SharedMemory.close() refuses to
        # unmap while exported buffers are alive.
        self.header = self.meta = self.results = self.rows = None
        try:
            self._shm.close()
        except (BufferError, OSError):
            return
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):
            pass


def attach_slab_views(name: str, n_slots: int, n_features: int):
    """Attach a parent-created slab from the child process.

    Maps ``/dev/shm/<name>`` directly — attaching through
    ``SharedMemory(name=...)`` would register the segment with the
    child's ``resource_tracker``, which then unlinks it at child exit
    while the parent still owns it (the parent holds create/unlink).
    Falls back to ``SharedMemory`` where ``/dev/shm`` is absent.

    Returns ``(meta, results, rows, close)``; raises ``OSError`` or
    ``ValueError`` when the slab is missing or malformed.
    """
    import mmap

    closer = None
    try:
        with open(f"/dev/shm/{name}", "r+b") as handle:
            mapped = mmap.mmap(handle.fileno(), 0)
        buf = memoryview(mapped)

        def closer() -> None:
            nonlocal buf
            buf.release()
            mapped.close()

    except OSError:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        buf = shm.buf
        closer = shm.close
    try:
        header, meta, results, rows = _slab_views(buf, n_slots, n_features)
        if (
            header[0] != SLAB_MAGIC
            or header[1] != n_slots
            or header[2] != n_features
        ):
            raise ValueError(
                f"slab {name!r} header mismatch: "
                f"{header[0]:#x}/{header[1]}/{header[2]} vs "
                f"{SLAB_MAGIC:#x}/{n_slots}/{n_features}"
            )
    except Exception:
        # numpy views over ``buf`` may still be alive in local frames;
        # best-effort release so the error propagates cleanly.
        header = meta = results = rows = None
        try:
            closer()
        except BufferError:
            pass
        raise
    return meta, results, rows, closer


class SlotRing:
    """Contiguous-run lease/free cursor over ``n_slots`` ring slots.

    Invariant (relied on for correctness): leases are *released in
    lease order* — the transport completes batches FIFO because pipe
    replies arrive in pipe-send order.  Under that invariant the
    occupied region is always one contiguous run ``[tail, head)`` (mod
    ``n_slots``), so two integers fully describe the ring.
    """

    __slots__ = ("n_slots", "head", "free")

    def __init__(self, n_slots: int) -> None:
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        self.n_slots = n_slots
        self.head = 0
        self.free = n_slots

    @property
    def occupancy(self) -> int:
        """Slots currently leased (in flight to the child)."""
        return self.n_slots - self.free

    def lease(self, want: int) -> Optional[Tuple[int, int]]:
        """Lease up to ``want`` contiguous slots; ``None`` when full.

        May return fewer than ``want`` at the ring edge (the caller
        sends a short batch and the next lease wraps to slot 0) or
        when partially occupied.  Returns ``None`` only when no slot
        is free — which, under the FIFO invariant, means a batch is in
        flight and waiting for its ack will free slots.
        """
        if want < 1:
            raise ValueError("want must be >= 1")
        if self.free == 0:
            return None
        if self.head == self.n_slots:
            self.head = 0
        count = min(want, self.n_slots - self.head, self.free)
        start = self.head
        self.head += count
        self.free -= count
        return start, count

    def release(self, count: int) -> None:
        """Return the *oldest* leased run of ``count`` slots (FIFO)."""
        if count < 0 or self.free + count > self.n_slots:
            raise ValueError(
                f"release({count}) with {self.free}/{self.n_slots} free"
            )
        self.free += count


class _Miss:
    """One cache-missed wire awaiting a slab round-trip."""

    __slots__ = (
        "index",
        "session_id",
        "values",
        "globs",
        "ua_key",
        "cache_key",
        "started",
    )

    def __init__(
        self, index, session_id, values, globs, ua_key, cache_key, started
    ) -> None:
        self.index = index
        self.session_id = session_id
        self.values = values
        self.globs = globs
        self.ua_key = ua_key
        self.cache_key = cache_key
        self.started = started


class ShmTransport:
    """Router-side scoring engine for one shared-memory process shard.

    Owns the shard's ingest (wire contract + dedup window), verdict
    cache, user-agent intern table, and slot ring; talks to the child
    over ``conn`` with tiny control tuples.  All pipe + ring state is
    serialized by :attr:`lock` — the owning shard must hold it for
    *any* use of ``conn`` (heartbeat pings, model installs), and should
    score large chunks in sub-chunks so health checks can interleave.
    """

    def __init__(
        self,
        slab: ShmSlab,
        conn,
        config,
        *,
        namespace_probe: bool,
        vendor_risk: int,
        generation: int,
        validator: Optional[PayloadValidator] = None,
        batch_rows: int = _DEFAULT_BATCH_ROWS,
    ) -> None:
        self.slab = slab
        self.conn = conn
        self.lock = threading.RLock()  # pipe + ring + slab writes
        self.ingest = WireIngest(validator)
        self.stats = RuntimeStats()
        self.cache: Optional[VerdictCache] = None
        if config.cache_entries > 0:
            self.cache = VerdictCache(
                max_entries=config.cache_entries,
                ttl_seconds=config.cache_ttl_seconds,
                quantization_step=config.quantization_step,
                stats=self.stats,
            )
            self.cache.set_model_generation(generation)
        self.ring = SlotRing(slab.n_slots)
        self.batch_rows = max(1, min(batch_rows, slab.n_slots))
        self._ua_index: Dict[str, int] = {}
        self._namespace_probe = namespace_probe
        self._vendor_risk = vendor_risk
        self._seq = 0
        self.broken = False
        # Optional CoverageTracker (repro.coverage), shared across the
        # cluster's transports; fed with admitted UA keys per chunk.
        self.coverage = None
        self.scored_count = 0
        self.flagged_count = 0
        self.zero_copy_batches = 0
        self.zero_copy_rows = 0
        self.backpressure_waits = 0
        self.occupancy_peak = 0
        self._count_lock = threading.Lock()

    # ------------------------------------------------------------------
    # scoring

    def score_one(self, wire: bytes) -> Verdict:
        """Score a single wire (the routed / hedged per-request path)."""
        return self.score_wires([wire])[0]

    def score_wires(self, wires: Sequence[bytes]) -> List[Verdict]:
        """Ingest, cache-probe, and score one chunk of wires.

        Rejects and cache hits resolve entirely router-side; only the
        misses lease slab slots and round-trip to the child.  Verdicts
        come back in input order.  On a broken pipe the unanswered
        misses resolve to overloaded verdicts (the router re-routes).

        The chunk is the unit of accounting on this path: ingest takes
        the validator lock once (:meth:`WireIngest.ingest_many`), the
        cache is probed once (:meth:`VerdictCache.get_many`), and the
        rejects/hits of a chunk share one latency stamp — a per-wire
        clock on a bulk path mostly measures the clock.
        """
        started = time.perf_counter()
        verdicts: List[Optional[Verdict]] = [None] * len(wires)
        prepared = self.ingest.ingest_many(wires)
        if self.coverage is not None:
            self.coverage.observe_many(
                [f[4] for f in prepared if f.__class__ is tuple]
            )
        cache = self.cache
        if cache is not None:
            # Rejected wires carry their RejectReason in ``prepared``;
            # admitted ones the fields tuple.  make_key is inlined for
            # identity quantization (ingest always hands back int
            # tuples, which it reuses).
            if cache.quantization_step <= 1:
                keys = [
                    (fields[4], fields[2])
                    if fields.__class__ is tuple
                    else None
                    for fields in prepared
                ]
            else:
                make_key = cache.make_key
                keys = [
                    make_key(fields[2], fields[4])
                    if fields.__class__ is tuple
                    else None
                    for fields in prepared
                ]
            cached = cache.get_many(keys)
        else:
            keys = cached = None
        misses: List[_Miss] = []
        miss_append = misses.append
        hit_scored = 0
        hit_flagged = 0
        namespace_probe = self._namespace_probe
        vendor_risk = self._vendor_risk
        verdict_new = Verdict.__new__
        set_attr = object.__setattr__
        latency_ms = (time.perf_counter() - started) * 1000.0
        # Frozen-dataclass construction, amortized: the chunk shares one
        # latency stamp, so all constant Verdict fields live in two
        # per-chunk proto dicts; each verdict is a dict copy plus the
        # per-wire fields, swapped in wholesale (``__init__`` would
        # re-run ten guarded ``object.__setattr__`` calls per wire).
        # Infer-mode provenance never crosses the slab (results rows are
        # four ints), so the inferred_* fields stay None on this path.
        reject_proto = {
            "session_id": "", "accepted": False, "flagged": False,
            "risk_factor": None, "reject_reason": None,
            "latency_ms": latency_ms, "fused_flagged": None,
            "fusion_cell": None, "second_probability": None,
            "second_lift": None, "inferred_release": None,
            "inferred_distance": None,
        }
        hit_proto = dict(reject_proto)
        hit_proto["accepted"] = True
        for i, fields in enumerate(prepared):
            if fields.__class__ is not tuple:
                verdict = verdict_new(Verdict)
                state = reject_proto.copy()
                state["reject_reason"] = fields.value
                set_attr(verdict, "__dict__", state)
                verdicts[i] = verdict
                continue
            if cached is not None:
                result = cached[i]
                if result is not None:
                    # _escalate, inlined: the hit path only needs the
                    # final (flagged, risk_factor) pair.
                    globs = fields[3]
                    if namespace_probe and globs:
                        flagged = True
                        risk = vendor_risk
                    else:
                        flagged = result.flagged
                        risk = result.risk_factor
                    hit_scored += 1
                    if flagged:
                        hit_flagged += 1
                    verdict = verdict_new(Verdict)
                    state = hit_proto.copy()
                    state["session_id"] = fields[0]
                    state["flagged"] = flagged
                    state["risk_factor"] = risk
                    set_attr(verdict, "__dict__", state)
                    verdicts[i] = verdict
                    continue
                cache_key = keys[i]
            else:
                cache_key = None
            miss_append(
                _Miss(
                    i, fields[0], fields[2], fields[3], fields[4],
                    cache_key, started,
                )
            )
        if hit_scored:
            with self._count_lock:
                self.scored_count += hit_scored
                self.flagged_count += hit_flagged
        if misses:
            with self.lock:
                if self.broken:
                    self._fail_misses(misses, verdicts)
                else:
                    try:
                        self._score_misses(misses, verdicts)
                    except (EOFError, OSError, BrokenPipeError):
                        self.broken = True
                        self._fail_misses(misses, verdicts)
        return verdicts

    def _score_misses(
        self, misses: List[_Miss], verdicts: List[Optional[Verdict]]
    ) -> None:
        """Lease → write rows → send → (pipelined) ack.  Holds the lock."""
        pending = deque()
        rows = self.slab.rows
        meta = self.slab.meta
        ua_index = self._ua_index
        pos = 0
        while pos < len(misses) or pending:
            if pos >= len(misses):
                self._complete_batch(pending.popleft(), verdicts)
                continue
            lease = self.ring.lease(min(self.batch_rows, len(misses) - pos))
            if lease is None:
                # Every slot is in flight: wait for the oldest ack.
                # This is the backpressure point — upstream producers
                # stall here instead of the ring dropping work.
                self.backpressure_waits += 1
                self._complete_batch(pending.popleft(), verdicts)
                continue
            start, count = lease
            batch = misses[pos : pos + count]
            pos += count
            for j, miss in enumerate(batch):
                idx = ua_index.get(miss.ua_key)
                if idx is None:
                    idx = self._intern_ua(miss.ua_key)
                meta[start + j] = idx
                rows[start + j] = miss.values
            seq = self._seq
            self._seq += 1
            self.conn.send(("shmscore", seq, start, count))
            self.zero_copy_batches += 1
            self.zero_copy_rows += count
            if self.ring.occupancy > self.occupancy_peak:
                self.occupancy_peak = self.ring.occupancy
            pending.append((seq, start, count, batch))
            if len(pending) >= _PIPELINE_DEPTH:
                self._complete_batch(pending.popleft(), verdicts)

    def _complete_batch(self, entry, verdicts: List[Optional[Verdict]]) -> None:
        seq, start, count, batch = entry
        reply = self.conn.recv()
        if reply[0] == "shmerr" and reply[1] == seq:
            # Child failed this batch (model error): overload these
            # wires so the router's retry path re-routes them, keep
            # the transport up for the next batch.
            for miss in batch:
                verdicts[miss.index] = overloaded_verdict(
                    miss.session_id,
                    (time.perf_counter() - miss.started) * 1000.0,
                )
            self.ring.release(count)
            return
        if reply[0] != "shmdone" or reply[1] != seq:
            raise EOFError(f"shm protocol violation: {reply[:2]!r}")
        generation = reply[2]
        results = self.slab.results
        cache = self.cache
        completed = time.perf_counter()
        scored = 0
        flagged = 0
        for j, miss in enumerate(batch):
            row = results[start + j]
            expected = int(row[1])
            risk = int(row[3])
            result = DetectionResult(
                ua_key=miss.ua_key,
                predicted_cluster=int(row[0]),
                expected_cluster=None if expected < 0 else expected,
                flagged=bool(row[2]),
                risk_factor=None if risk < 0 else risk,
            )
            if cache is not None and miss.cache_key is not None:
                cache.put(miss.cache_key, result, generation=generation)
            final = self._escalate(result, miss.globs)
            scored += 1
            if final.flagged:
                flagged += 1
            verdicts[miss.index] = Verdict(
                session_id=miss.session_id,
                accepted=True,
                flagged=final.flagged,
                risk_factor=final.risk_factor,
                reject_reason=None,
                latency_ms=(completed - miss.started) * 1000.0,
            )
        self.ring.release(count)
        with self._count_lock:
            self.scored_count += scored
            self.flagged_count += flagged

    def _fail_misses(
        self, misses: List[_Miss], verdicts: List[Optional[Verdict]]
    ) -> None:
        """Overload every miss not yet answered (pipe died mid-chunk)."""
        now = time.perf_counter()
        for miss in misses:
            if verdicts[miss.index] is None:
                verdicts[miss.index] = overloaded_verdict(
                    miss.session_id, (now - miss.started) * 1000.0
                )

    def _intern_ua(self, ua_key: str) -> int:
        if len(self._ua_index) >= _UA_TABLE_LIMIT:
            self.conn.send(("shmuareset",))
            self._ua_index.clear()
        idx = len(self._ua_index)
        self._ua_index[ua_key] = idx
        self.conn.send(("shmua", idx, ua_key))
        return idx

    def _escalate(
        self, result: DetectionResult, globs: Tuple[str, ...]
    ) -> DetectionResult:
        """Namespace-probe escalation, config handshaked from the child.

        Must mirror ``BrowserPolygraph.escalate_result`` exactly: the
        child ships raw results, so the parent re-applies Section 8
        per request (after caching the raw result, like the runtime).
        """
        if self._namespace_probe and globs:
            return DetectionResult(
                ua_key=result.ua_key,
                predicted_cluster=result.predicted_cluster,
                expected_cluster=result.expected_cluster,
                flagged=True,
                risk_factor=self._vendor_risk,
            )
        return result

    # ------------------------------------------------------------------
    # lifecycle / introspection

    def on_model_swap(self, generation: int) -> None:
        """Model install completed child-side: drop derived state."""
        if self.cache is not None:
            self.cache.invalidate(generation)
        self.ingest.clear_ua_memo()

    def transport_stats(self) -> Dict[str, object]:
        """Counter snapshot for ``/metrics`` and ``cluster_status``."""
        cache_hits = cache_misses = 0
        if self.cache is not None:
            self.cache.sync_stats()
            cache_hits = self.stats.counter("cache_hits")
            cache_misses = self.stats.counter("cache_misses")
        with self._count_lock:
            scored = self.scored_count
            flagged = self.flagged_count
        return {
            "mode": "shm",
            "broken": self.broken,
            "zero_copy_batches": self.zero_copy_batches,
            "zero_copy_rows": self.zero_copy_rows,
            "pickle_fallbacks": 0,
            "backpressure_waits": self.backpressure_waits,
            "ring_slots": self.ring.n_slots,
            "ring_occupancy": self.ring.occupancy,
            "ring_occupancy_peak": self.occupancy_peak,
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "cache_entries": len(self.cache) if self.cache is not None else 0,
            "scored": scored,
            "flagged": flagged,
        }
