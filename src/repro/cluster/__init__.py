"""Sharded serving cluster: ring routing, shard supervision, replication.

The single-process scoring runtime (``repro.runtime``) tops out at one
process's throughput no matter how well its cache and batcher behave.
This package turns it into a horizontally-scaled cluster on one surface:

* :mod:`repro.cluster.ring` — consistent-hash ring with virtual nodes;
  stable SessionID → shard placement that survives membership changes.
* :mod:`repro.cluster.supervisor` — N shard replicas (threads by
  default, processes optionally), heartbeat health checks, automatic
  drain/restart, ring-range re-routing while a shard is down.
* :mod:`repro.cluster.router` — the ``score_wire`` facade with
  failover and latency-budget hedging; first same-generation verdict
  wins.
* :mod:`repro.cluster.distribution` — digest-verified model replication
  from the registry with a quorum-gated serving-version flip.
"""

from repro.cluster.distribution import DistributionReport, ModelDistributor
from repro.cluster.ring import HashRing, ring_hash, wire_routing_key
from repro.cluster.router import ClusterRouter, RouterConfig
from repro.cluster.sessions import ClusterSessionService
from repro.cluster.supervisor import (
    ClusterConfig,
    ProcessShard,
    ShardError,
    ShardStatus,
    ShardSupervisor,
    ThreadShard,
)

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "ClusterSessionService",
    "DistributionReport",
    "HashRing",
    "ModelDistributor",
    "ProcessShard",
    "RouterConfig",
    "ShardError",
    "ShardStatus",
    "ShardSupervisor",
    "ThreadShard",
    "ring_hash",
    "wire_routing_key",
]
