"""Shard-affine event-stream session scoring for the cluster.

The single-process session layer
(:class:`~repro.sessions.service.SessionScoringService`) keeps all
session state behind one tracker lock — fine for one process, a
bottleneck and a single point of loss behind a sharded router.  This
module partitions that state the same way the scoring tier is
partitioned: one *session lane* (its own tracker, its own revision
counters, its own durable event-log directory) per shard, with the
session id's ring position choosing the lane.

Scoring itself still flows through the
:class:`~repro.cluster.router.ClusterRouter` — every lane wraps the
*router* as its inner service, so failover, hedging and the
shared-memory shard transport all apply to event scoring unchanged.
The lane only owns the session *state*: sticky verdicts, revision
tracking, TTL/capacity eviction.

Lane choice follows :meth:`HashRing.node_for` over the session id, the
same placement the router uses under ``--affinity session`` — so an
event's state lane and its scoring shard coincide while the ring is
stable.  When the ring cannot answer (all shards draining), a
deterministic hash over the sorted lane ids keeps placement stable
rather than failing the event.

``GET /sessions`` aggregates across lanes: summed counters, merged
revision reasons, and a per-shard breakdown.  ``metrics_lines`` keeps
the single-process ``polygraph_session_*`` names for the aggregates so
dashboards are indifferent to the deployment shape, and adds per-shard
active-session gauges.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.cluster.ring import ring_hash, wire_routing_key
from repro.sessions.service import SessionObservation, SessionScoringService
from repro.sessions.store import SessionEventLog

__all__ = ["ClusterSessionService"]


class ClusterSessionService:
    """Session-layer facade over per-shard session lanes.

    Parameters
    ----------
    router:
        A started :class:`~repro.cluster.router.ClusterRouter`; it is
        the inner scoring service of every lane.
    ttl_seconds / max_sessions:
        As for the single-process layer; ``max_sessions`` is the
        *cluster-wide* budget, split evenly across lanes.
    event_log_root:
        Optional directory for durable event logs; each lane writes to
        its own ``shard-<id>`` subdirectory so a shard's stream can be
        replayed (or discarded) independently.
    """

    def __init__(
        self,
        router,
        *,
        ttl_seconds: float = 1800.0,
        max_sessions: int = 100_000,
        event_log_root: Optional[Union[str, Path]] = None,
    ) -> None:
        self.router = router
        shard_ids = sorted(router.supervisor.shards)
        if not shard_ids:
            raise ValueError("cluster has no shards to attach lanes to")
        per_lane_max = max(1, max_sessions // len(shard_ids))
        self._order: List[str] = shard_ids
        self._lanes: Dict[str, SessionScoringService] = {}
        for shard_id in shard_ids:
            event_log = None
            if event_log_root is not None:
                event_log = SessionEventLog(
                    Path(event_log_root) / f"shard-{shard_id}"
                )
            self._lanes[shard_id] = SessionScoringService(
                router,
                event_log=event_log,
                ttl_seconds=ttl_seconds,
                max_sessions=per_lane_max,
            )

    # ------------------------------------------------------------------
    # placement

    def lane_of(self, session_id: str) -> str:
        """The shard id whose lane owns ``session_id``'s state."""
        return self._lane_key(session_id.encode("utf-8"))

    def _lane_key(self, key: bytes) -> str:
        shard_id = self.router.supervisor.ring.node_for(key)
        if shard_id is None or shard_id not in self._lanes:
            # Ring drained or membership changed under us: place by a
            # stable hash so the same session keeps the same lane.
            shard_id = self._order[ring_hash(key) % len(self._order)]
        return shard_id

    # ------------------------------------------------------------------
    # scoring

    def observe_wire(self, wire: bytes, day=None) -> SessionObservation:
        """Score one event envelope through its owning lane.

        The lane is chosen from the raw bytes exactly the way the
        router's session affinity would — no JSON parse on the hot
        path; malformed envelopes go to a deterministic lane and are
        rejected there.
        """
        key = wire_routing_key(wire, "session")
        return self._lanes[self._lane_key(key)].observe_wire(wire, day=day)

    def observe_event(self, event, day=None) -> SessionObservation:
        return self._lanes[self.lane_of(event.session_id)].observe_event(
            event, day=day
        )

    # ------------------------------------------------------------------
    # introspection (the CollectionApp session-endpoint surface)

    def session_snapshot(self, session_id: str) -> Optional[dict]:
        """Live state of one session, wherever its lane is.

        The owning lane answers first; if the ring moved since the
        session started, the other lanes are probed so an operator's
        lookup still finds the state.
        """
        owner = self.lane_of(session_id)
        snapshot = self._lanes[owner].session_snapshot(session_id)
        if snapshot is not None:
            snapshot["shard"] = owner
            return snapshot
        for shard_id, lane in self._lanes.items():
            if shard_id == owner:
                continue
            snapshot = lane.session_snapshot(session_id)
            if snapshot is not None:
                snapshot["shard"] = shard_id
                return snapshot
        return None

    def status_dict(self) -> dict:
        """Aggregate status (``GET /sessions``): sums + per-shard."""
        per_shard: Dict[str, dict] = {
            shard_id: lane.status_dict()
            for shard_id, lane in self._lanes.items()
        }
        reasons: Dict[str, int] = {}
        for status in per_shard.values():
            for reason, count in status["revision_reasons"].items():
                reasons[reason] = reasons.get(reason, 0) + count

        def total(field: str) -> int:
            return sum(status[field] for status in per_shard.values())

        first = next(iter(per_shard.values()))
        return {
            "partitions": len(per_shard),
            "active_sessions": total("active_sessions"),
            "ttl_seconds": first["ttl_seconds"],
            "max_sessions": total("max_sessions"),
            "events_total": total("events_total"),
            "revisions_total": total("revisions_total"),
            "escalations_total": total("escalations_total"),
            "revision_reasons": reasons,
            "evicted_ttl": total("evicted_ttl"),
            "evicted_capacity": total("evicted_capacity"),
            "shards": per_shard,
        }

    def metrics_lines(self) -> List[str]:
        """Aggregated ``polygraph_session_*`` + per-shard gauges."""
        status = self.status_dict()
        lines = [
            "# TYPE polygraph_session_active gauge",
            f"polygraph_session_active {status['active_sessions']}",
            "# TYPE polygraph_session_events_total counter",
            f"polygraph_session_events_total {status['events_total']}",
            "# TYPE polygraph_session_revisions_total counter",
            f"polygraph_session_revisions_total {status['revisions_total']}",
            "# TYPE polygraph_session_escalations_total counter",
            f"polygraph_session_escalations_total {status['escalations_total']}",
            "# TYPE polygraph_session_evictions_total counter",
            f"polygraph_session_evictions_total{{kind=\"ttl\"}} "
            f"{status['evicted_ttl']}",
            f"polygraph_session_evictions_total{{kind=\"capacity\"}} "
            f"{status['evicted_capacity']}",
            "# TYPE polygraph_session_revision_reason_total counter",
        ]
        for reason, count in sorted(status["revision_reasons"].items()):
            lines.append(
                "polygraph_session_revision_reason_total"
                f"{{reason=\"{reason}\"}} {count}"
            )
        lines.append("# TYPE polygraph_session_active_by_shard gauge")
        for shard_id in self._order:
            active = status["shards"][shard_id]["active_sessions"]
            lines.append(
                f'polygraph_session_active_by_shard{{shard="{shard_id}"}} '
                f"{active}"
            )
        return lines
