"""The consistent-hash ring: stable request → shard placement.

Routing a serving cluster by ``hash(key) % n_shards`` forgets everything
on every topology change: grow the cluster by one shard and nearly every
session lands on a different shard, every shard-local verdict cache goes
cold at once, and canary stickiness is only preserved because the arm
split is computed from the session id inside the shard.  A consistent
ring with virtual nodes fixes the operational half of that: each shard
owns many small arcs of a 64-bit hash circle, a key routes to the owner
of the first point at or after its hash, and adding or removing one
shard moves only the arcs that shard owned (~1/n of the key space).
A shard crash therefore invalidates only its own cache partition, and a
restarted shard gets its old arcs — and its old keys — back.

Two routing keys matter to the cluster:

* ``session`` affinity — the ring key is the session id, matching the
  paper's per-session verdict contract and the canary's sticky buckets;
* ``fingerprint`` affinity — the ring key is the payload bytes *after*
  the session id (user-agent + features + globals).  Coarse-grained
  fingerprints are deliberately low-cardinality (Section 7), so this
  partitions the verdict-cache key space across shards: each shard
  caches only its arc of fingerprint space and the cluster's effective
  cache capacity scales with the shard count.  A real session posts one
  fingerprint, so fingerprint affinity is still session-sticky.

Hashing is ``blake2b`` (8-byte digests): deterministic across processes
and runs, unlike the builtin ``hash``, so placement survives restarts.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b
from typing import Dict, Iterator, List, Optional, Sequence

__all__ = ["HashRing", "ring_hash", "wire_routing_key"]

_SID_PREFIX = b'{"sid":"'


def ring_hash(key: bytes) -> int:
    """Deterministic 64-bit position of ``key`` on the ring."""
    return int.from_bytes(blake2b(key, digest_size=8).digest(), "big")


def wire_routing_key(wire: bytes, affinity: str = "session") -> bytes:
    """The ring key of one wire payload, without a JSON parse.

    Live payloads open with ``{"sid":"<id>"`` (the collection script
    emits them), so the session id and the fingerprint suffix are both
    byte slices.  Payloads that do not match the shape — malformed,
    oversized, adversarial — fall back to hashing the whole wire: they
    will be rejected identically by any shard's validator, so their
    placement only needs to be deterministic, not meaningful.
    """
    if wire.startswith(_SID_PREFIX):
        quote = wire.find(b'"', 8)
        if quote >= 8:
            if affinity == "fingerprint":
                return wire[quote:]
            return wire[8:quote]
    return wire


class HashRing:
    """A consistent-hash ring with virtual nodes.

    Parameters
    ----------
    vnodes:
        Ring points per node.  More points smooth the load split at the
        cost of a larger sorted array; 64 keeps the imbalance across a
        handful of shards within a few percent.
    """

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.epoch = 0  # bumped on membership change; invalidates memos
        self._points: List[int] = []  # sorted ring positions
        self._owners: Dict[int, str] = {}  # position -> node
        self._nodes: Dict[str, List[int]] = {}  # node -> its positions

    # ------------------------------------------------------------------
    # membership

    def add(self, node: str) -> None:
        """Place ``node``'s virtual points on the ring (idempotent)."""
        if node in self._nodes:
            return
        points: List[int] = []
        for replica in range(self.vnodes):
            point = ring_hash(f"{node}#{replica}".encode("utf-8"))
            # A 64-bit collision across vnode labels is vanishingly
            # unlikely; skip the point rather than silently re-owning it.
            if point in self._owners:
                continue
            points.append(point)
            self._owners[point] = node
            bisect.insort(self._points, point)
        self._nodes[node] = points
        self.epoch += 1

    def remove(self, node: str) -> None:
        """Lift ``node``'s points off the ring (idempotent).

        Every key the node owned routes to the next point on the circle;
        keys owned by other nodes do not move at all.
        """
        points = self._nodes.pop(node, None)
        if points is None:
            return
        for point in points:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            if index < len(self._points) and self._points[index] == point:
                del self._points[index]
        self.epoch += 1

    @property
    def nodes(self) -> List[str]:
        """Current ring members, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    # lookup

    def node_for(self, key: bytes) -> Optional[str]:
        """The owner of ``key`` (``None`` on an empty ring)."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, ring_hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def preference(self, key: bytes, limit: Optional[int] = None) -> List[str]:
        """Distinct nodes in ring order starting at ``key``'s owner.

        The failover/hedging order: entry 0 is the primary, entry 1 the
        shard that would inherit the key if the primary left the ring,
        and so on.  Deterministic for a fixed membership.
        """
        want = len(self._nodes) if limit is None else min(limit, len(self._nodes))
        result: List[str] = []
        if not self._points or want <= 0:
            return result
        seen = set()
        start = bisect.bisect_right(self._points, ring_hash(key))
        n_points = len(self._points)
        for step in range(n_points):
            owner = self._owners[self._points[(start + step) % n_points]]
            if owner in seen:
                continue
            seen.add(owner)
            result.append(owner)
            if len(result) >= want:
                break
        return result

    # ------------------------------------------------------------------
    # introspection

    def spread(self, keys: Sequence[bytes]) -> Dict[str, int]:
        """How many of ``keys`` each node owns (balance diagnostics)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            owner = self.node_for(key)
            if owner is not None:
                counts[owner] += 1
        return counts

    def __iter__(self) -> Iterator[str]:
        return iter(self.nodes)
