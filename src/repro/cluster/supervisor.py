"""Shard lifecycle: replicas, heartbeats, failover, restart.

A *shard* is one complete scoring stack — its own model replica, its
own :class:`~repro.runtime.service.RuntimeScoringService`, its own
verdict cache — behind a small uniform surface (``submit_wire``,
``score_chunk``, ``ping``, ``install``, ``restart``).  Two backends:

* :class:`ThreadShard` — the shard's runtime lives in this process.
  The default: cheap to boot, trivially debuggable, and the right shape
  for the single-host deployment the benchmarks measure.
* :class:`ProcessShard` — the shard's runtime lives in a child process
  behind a pipe, one process per shard.  Buys real CPU parallelism and
  fault isolation (a crashed shard is a dead process, not a corrupted
  heap) at the cost of per-chunk serialization.

Both backends *load their own model replica from a file* and verify it
against the registry's sha256 digest before serving — the replication
contract: no shard ever serves bytes the registry cannot account for.

:class:`ShardSupervisor` owns N shards plus the consistent-hash ring.
A heartbeat thread pings every shard; ``unhealthy_after`` consecutive
failures (heartbeat or router-reported) take the shard off the ring —
its arcs drain to the ring-order successors — and the supervisor then
restarts it and puts it back.  The router never waits on a sick shard:
re-routing is a ring lookup away the moment the node is removed.
"""

from __future__ import annotations

import multiprocessing
import queue
import signal
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.cluster.ring import HashRing
from repro.cluster.transport import ShmSlab, ShmTransport
from repro.core.model_store import stored_digest
from repro.core.pipeline import BrowserPolygraph
from repro.fingerprint.features import N_FEATURES
from repro.runtime.pool import OVERLOADED_REASON, overloaded_verdict
from repro.runtime.service import PendingVerdict, RuntimeConfig, RuntimeScoringService
from repro.service.scoring import Verdict

__all__ = [
    "ClusterConfig",
    "ProcessShard",
    "ShardError",
    "ShardStatus",
    "ShardSupervisor",
    "ThreadShard",
]


class ShardError(RuntimeError):
    """A shard could not serve: dead process, stopped pool, bad replica."""


@dataclass(frozen=True)
class ClusterConfig:
    """Topology and health-checking knobs of the serving cluster.

    ``transport`` selects how routed chunks reach *process* shards:
    ``"shm"`` (default) scores through the zero-copy shared-memory
    slab of :mod:`repro.cluster.transport` with router-side ingest and
    verdict cache; ``"pickle"`` keeps the legacy pickle-over-pipe path.
    Thread shards always score in-process, so the field is inert for
    ``backend="thread"``.
    """

    n_shards: int = 2
    backend: str = "thread"  # "thread" | "process"
    transport: str = "shm"  # "shm" | "pickle" (process backend only)
    vnodes: int = 64
    heartbeat_interval_s: float = 0.25
    unhealthy_after: int = 2  # consecutive failures before removal
    ping_timeout_s: float = 5.0
    ring_slots: int = 4096  # shm slab rows per shard

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.backend not in ("thread", "process"):
            raise ValueError("backend must be 'thread' or 'process'")
        if self.transport not in ("shm", "pickle"):
            raise ValueError("transport must be 'shm' or 'pickle'")
        if self.unhealthy_after < 1:
            raise ValueError("unhealthy_after must be >= 1")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.ring_slots < 1:
            raise ValueError("ring_slots must be >= 1")


@dataclass(frozen=True)
class ShardStatus:
    """One heartbeat's view of one shard."""

    shard_id: str
    model_version: int
    model_generation: int
    queue_depth: int
    scored_count: int
    flagged_count: int
    queue_depth_peak: int = 0


def _verify_replica(path: Path, expected_digest: Optional[str]) -> None:
    """Refuse a replica whose bytes the registry cannot account for."""
    if expected_digest is None:
        return
    on_disk = stored_digest(path)
    if on_disk is not None and on_disk != expected_digest:
        raise ShardError(
            f"replica digest mismatch for {path.name}: expected "
            f"{expected_digest[:12]}..., file carries {on_disk[:12]}..."
        )


# ----------------------------------------------------------------------
# thread backend


class ThreadShard:
    """One scoring shard hosted in this process.

    The shard loads its *own* :class:`BrowserPolygraph` replica from
    ``model_path`` (digest-verified), so installs and generation bumps
    on one shard never touch another — exactly the isolation a
    multi-host deployment would have, minus the network.
    """

    def __init__(
        self,
        shard_id: str,
        model_path: Union[str, Path],
        runtime_config: RuntimeConfig = RuntimeConfig(),
        expected_digest: Optional[str] = None,
        model_version: int = 1,
    ) -> None:
        self.shard_id = shard_id
        self.model_path = Path(model_path)
        self.runtime_config = runtime_config
        self.model_version = model_version
        _verify_replica(self.model_path, expected_digest)
        self.polygraph = BrowserPolygraph.load(self.model_path)
        self.service: Optional[RuntimeScoringService] = None
        # Cluster-shared CoverageTracker (set by the supervisor); every
        # (re)started runtime re-attaches it.
        self.coverage = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ThreadShard":
        if self.service is None:
            self.service = RuntimeScoringService(
                self.polygraph, config=self.runtime_config
            ).start()
            if self.coverage is not None:
                self.service.attach_coverage(self.coverage)
        return self

    def stop(self, drain: bool = True) -> None:
        service = self.service
        self.service = None
        if service is not None:
            service.shutdown(drain=drain)

    def kill(self) -> None:
        """Crash simulation: die mid-batch, shedding the backlog."""
        service = self.service
        self.service = None
        if service is not None:
            service.shutdown(drain=False)

    def restart(self) -> None:
        """Fresh runtime over the replica this shard already holds.

        The dedup window and verdict cache start cold (they died with
        the runtime, as they would in a real crash); the model replica
        and its version survive, so verdicts are unchanged.
        """
        self.stop(drain=False)
        self.service = RuntimeScoringService(
            self.polygraph, config=self.runtime_config
        ).start()
        if self.coverage is not None:
            self.service.attach_coverage(self.coverage)

    # -- serving --------------------------------------------------------

    def submit_wire(self, wire: bytes) -> PendingVerdict:
        service = self.service
        if service is None:
            raise ShardError(f"shard {self.shard_id} is not running")
        return service.submit_wire(wire)

    def score_chunk(self, wires: Sequence[bytes]) -> List[Verdict]:
        """Pipelined scoring of one routed chunk."""
        service = self.service
        if service is None:
            raise ShardError(f"shard {self.shard_id} is not running")
        window = max(1, service.config.queue_capacity // 2)
        verdicts: List[Optional[Verdict]] = [None] * len(wires)
        pending: List[tuple] = []
        for index, wire in enumerate(wires):
            pending.append((index, service.submit_wire(wire)))
            if len(pending) >= window:
                slot, handle = pending.pop(0)
                verdicts[slot] = handle.result(timeout=30.0)
        for slot, handle in pending:
            verdicts[slot] = handle.result(timeout=30.0)
        return verdicts  # type: ignore[return-value]

    # -- control --------------------------------------------------------

    def ping(self) -> ShardStatus:
        service = self.service
        if service is None or not service.pool.is_running:
            raise ShardError(f"shard {self.shard_id} is not running")
        return ShardStatus(
            shard_id=self.shard_id,
            model_version=self.model_version,
            model_generation=self.polygraph.model_generation,
            queue_depth=service.pool.queue_depth,
            scored_count=service.scored_count,
            flagged_count=service.flagged_count,
            queue_depth_peak=int(service.runtime_stats.peak("queue_depth")),
        )

    def install(
        self, path: Union[str, Path], digest: Optional[str], version: int
    ) -> int:
        """Adopt a new replica: load, digest-verify, atomic swap."""
        path = Path(path)
        _verify_replica(path, digest)
        replica = BrowserPolygraph.load(path)
        self.polygraph.install(replica.cluster_model)
        self.model_path = path
        self.model_version = version
        return version

    def transport_stats(self) -> Optional[dict]:
        """Thread shards score in-process — no transport to report."""
        return None


# ----------------------------------------------------------------------
# process backend


def _shard_worker(
    conn,
    model_path: str,
    runtime_config: RuntimeConfig,
    slab_name: Optional[str] = None,
    n_slots: int = 0,
    n_features: int = 0,
) -> None:
    """Child-process main loop: one scoring runtime behind a pipe.

    With ``slab_name`` set (shm transport), the child attaches the
    parent-created slab and handshakes
    ``("shm_ready", attached, namespace_probe, vendor_risk, generation)``
    — the parent needs the escalation config because ingest and the
    Section 8 escalation run router-side in shm mode, and the child
    only evaluates raw feature rows (``shmscore``) straight out of the
    slab with one vectorized model call.  A failed attach degrades to
    the pickle protocol (``attached=False``); the ``score`` op stays
    available either way.
    """
    # Terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group; the supervisor stops children through a ("stop", drain)
    # pipe message, so the signal would only interrupt conn.recv()
    # with a stray traceback mid-drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    polygraph = BrowserPolygraph.load(model_path)
    service = RuntimeScoringService(polygraph, config=runtime_config).start()
    model_version = 0
    shm_meta = shm_results = shm_rows = None
    close_slab = None
    ua_table: Dict[int, str] = {}
    if slab_name is not None:
        from repro.cluster.transport import attach_slab_views

        try:
            shm_meta, shm_results, shm_rows, close_slab = attach_slab_views(
                slab_name, n_slots, n_features
            )
            attached = True
        except Exception:  # noqa: BLE001 — degrade to pickle, don't die
            attached = False
        conn.send(
            (
                "shm_ready",
                attached,
                bool(polygraph.config.enable_namespace_probe),
                int(polygraph.config.vendor_mismatch_risk),
                polygraph.model_generation,
            )
        )
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        if op == "shmscore":
            _, seq, start, count = message
            try:
                generation, detector = polygraph.detection_snapshot()
                user_agents = [
                    ua_table[index]
                    for index in shm_meta[start : start + count].tolist()
                ]
                results = detector.evaluate_vectors(
                    shm_rows[start : start + count], user_agents
                )
                out = shm_results
                for offset, result in enumerate(results):
                    row = out[start + offset]
                    row[0] = result.predicted_cluster
                    row[1] = (
                        -1
                        if result.expected_cluster is None
                        else result.expected_cluster
                    )
                    row[2] = 1 if result.flagged else 0
                    row[3] = (
                        -1 if result.risk_factor is None else result.risk_factor
                    )
                conn.send(("shmdone", seq, generation))
            except Exception as exc:  # noqa: BLE001 — reply, don't die
                conn.send(("shmerr", seq, f"{type(exc).__name__}: {exc}"))
        elif op == "shmua":
            ua_table[message[1]] = message[2]
        elif op == "shmuareset":
            ua_table.clear()
        elif op == "score":
            handles = [service.submit_wire(wire) for wire in message[1]]
            verdicts = [handle.result(timeout=30.0) for handle in handles]
            conn.send(
                [
                    (
                        v.session_id,
                        v.accepted,
                        v.flagged,
                        v.risk_factor,
                        v.reject_reason,
                        v.latency_ms,
                    )
                    for v in verdicts
                ]
            )
        elif op == "ping":
            conn.send(
                (
                    model_version,
                    polygraph.model_generation,
                    service.pool.queue_depth,
                    service.scored_count,
                    service.flagged_count,
                    int(service.runtime_stats.peak("queue_depth")),
                )
            )
        elif op == "install":
            _, path, digest, version = message
            try:
                _verify_replica(Path(path), digest)
                replica = BrowserPolygraph.load(path)
                polygraph.install(replica.cluster_model)
                model_version = version
                conn.send(("ok", version, polygraph.model_generation))
            except Exception as exc:  # noqa: BLE001 — reply, don't die
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
        elif op == "stop":
            service.shutdown(drain=bool(message[1]))
            conn.send(("stopped",))
            break
    if close_slab is not None:
        shm_meta = shm_results = shm_rows = None
        try:
            close_slab()
        except BufferError:
            pass
    conn.close()


class _Call:
    """One control-plane request travelling through the I/O thread."""

    __slots__ = ("message", "event", "reply", "error")

    def __init__(self, message: tuple) -> None:
        self.message = message
        self.event = threading.Event()
        self.reply = None
        self.error: Optional[BaseException] = None

    def wait(self, timeout: float):
        if not self.event.wait(timeout):
            raise ShardError("shard control call timed out")
        if self.error is not None:
            raise self.error
        return self.reply


class ProcessShard:
    """One scoring shard hosted in a child process.

    Two transports:

    * ``"shm"`` (default via :class:`ClusterConfig`): ingest, dedup and
      the verdict cache run router-side in a
      :class:`~repro.cluster.transport.ShmTransport`; only cache misses
      cross the process boundary, as zero-copy feature rows in a
      shared-memory slab.  The transport lock serializes pipe use, and
      :meth:`score_chunk` works in sub-chunks so heartbeat pings and
      installs interleave between them.
    * ``"pickle"``: the legacy path — all pipe traffic flows through a
      single I/O thread; scoring submissions coalesce into chunks (one
      pickle round-trip scores many wires) and control calls interleave
      between chunks.

    Either way a dead child fails outstanding submissions with
    :data:`~repro.runtime.pool.OVERLOADED_REASON` verdicts, which the
    router treats as its cue to re-route.  If slab creation or the
    child-side attach fails, the shard degrades to pickle and counts
    the wires it scores that way (``pickle_fallbacks``).

    Crash/restart semantics: the slab outlives the child.  ``restart``
    spawns a fresh child that re-attaches the *same* slab by name, with
    a fresh transport — cache and dedup window start cold, exactly like
    :meth:`ThreadShard.restart` after a crash.
    """

    _CHUNK = 128
    _SHM_SUBCHUNK = 4096

    def __init__(
        self,
        shard_id: str,
        model_path: Union[str, Path],
        runtime_config: RuntimeConfig = RuntimeConfig(),
        expected_digest: Optional[str] = None,
        model_version: int = 1,
        transport: str = "shm",
        ring_slots: int = 4096,
    ) -> None:
        self.shard_id = shard_id
        self.model_path = Path(model_path)
        self.runtime_config = runtime_config
        self.model_version = model_version
        self._expected_digest = expected_digest
        _verify_replica(self.model_path, expected_digest)
        if transport not in ("shm", "pickle"):
            raise ValueError("transport must be 'shm' or 'pickle'")
        self.transport_mode = transport
        self.ring_slots = ring_slots
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._process = None
        self._conn = None
        self._inbox: "queue.Queue[object]" = queue.Queue()
        self._io_thread: Optional[threading.Thread] = None
        self._alive = False
        self._slab: Optional[ShmSlab] = None
        self._transport: Optional[ShmTransport] = None
        self.pickle_fallback_wires = 0  # wires over pickle while shm requested
        # Cluster-shared CoverageTracker; applied to each fresh shm
        # transport (pickle-fallback wires are not fed — the routed
        # pickle path has no parent-side ingest to observe).
        self.coverage = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ProcessShard":
        if self._alive:
            return self
        slab_name: Optional[str] = None
        if self.transport_mode == "shm":
            if self._slab is None:
                try:
                    self._slab = ShmSlab(self.ring_slots, N_FEATURES)
                except (OSError, ValueError):
                    self._slab = None  # no shared memory here: pickle fallback
            if self._slab is not None:
                slab_name = self._slab.name
        parent_conn, child_conn = self._ctx.Pipe()
        self._process = self._ctx.Process(
            target=_shard_worker,
            args=(
                child_conn,
                str(self.model_path),
                self.runtime_config,
                slab_name,
                self._slab.n_slots if self._slab is not None else 0,
                self._slab.n_features if self._slab is not None else 0,
            ),
            name=f"polygraph-shard-{self.shard_id}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        self._transport = None
        if slab_name is not None:
            try:
                if not parent_conn.poll(30.0):
                    raise ShardError(
                        f"shard {self.shard_id} shm handshake timed out"
                    )
                reply = parent_conn.recv()
                tag, attached, namespace_probe, vendor_risk, generation = reply
                if tag != "shm_ready":
                    raise ShardError(
                        f"shard {self.shard_id} bad handshake: {tag!r}"
                    )
            except (EOFError, OSError, ValueError) as exc:
                self.kill()
                self._reap()
                raise ShardError(
                    f"shard {self.shard_id} died during shm handshake"
                ) from exc
            if attached:
                self._transport = ShmTransport(
                    self._slab,
                    parent_conn,
                    self.runtime_config,
                    namespace_probe=namespace_probe,
                    vendor_risk=vendor_risk,
                    generation=generation,
                )
                self._transport.coverage = self.coverage
        self._alive = True
        if self._transport is None:
            self._io_thread = threading.Thread(
                target=self._io_loop,
                name=f"polygraph-shard-io-{self.shard_id}",
                daemon=True,
            )
            self._io_thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        if not self._alive:
            self._reap()
            self._close_slab()
            return
        try:
            if self._transport is not None:
                self._direct_call(("stop", drain), timeout=30.0)
            else:
                self._call(("stop", drain), timeout=30.0)
        except ShardError:
            pass
        self._alive = False
        self._reap()
        self._close_slab()

    def kill(self) -> None:
        """Crash simulation: SIGKILL the child mid-batch."""
        transport = self._transport
        if transport is not None:
            transport.broken = True
        process = self._process
        if process is not None and process.is_alive():
            process.kill()
        self._alive = False

    def restart(self) -> None:
        """Fresh child re-attaching the same slab; transport starts cold."""
        self.kill()
        self._reap()
        self.start()

    def _close_slab(self) -> None:
        self._transport = None
        slab = self._slab
        self._slab = None
        if slab is not None:
            slab.close()

    def _reap(self) -> None:
        process = self._process
        self._process = None
        if process is not None:
            process.join(timeout=5.0)
        conn = self._conn
        self._conn = None
        if conn is not None:
            conn.close()
        thread = self._io_thread
        self._io_thread = None
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)

    # -- serving --------------------------------------------------------

    def submit_wire(self, wire: bytes) -> PendingVerdict:
        if not self._alive:
            raise ShardError(f"shard {self.shard_id} is not running")
        transport = self._transport
        if transport is not None:
            # Synchronous under the transport lock: the handle comes
            # back already decided (hedging still works — the poller
            # sees an instantly-done handle).
            verdict = transport.score_one(wire)
            if transport.broken:
                self._alive = False
            return PendingVerdict(verdict)
        handle = PendingVerdict()
        self._inbox.put((wire, handle))
        return handle

    def score_chunk(self, wires: Sequence[bytes]) -> List[Verdict]:
        transport = self._transport
        if transport is not None:
            if not self._alive:
                raise ShardError(f"shard {self.shard_id} is not running")
            verdicts: List[Verdict] = []
            # Sub-chunks bound how long the transport lock is held so
            # heartbeat pings and installs interleave mid-chunk.
            for begin in range(0, len(wires), self._SHM_SUBCHUNK):
                verdicts.extend(
                    transport.score_wires(
                        wires[begin : begin + self._SHM_SUBCHUNK]
                    )
                )
            if transport.broken:
                self._alive = False
            return verdicts
        handles = [self.submit_wire(wire) for wire in wires]
        return [handle.result(timeout=30.0) for handle in handles]

    # -- control --------------------------------------------------------

    def ping(self) -> ShardStatus:
        transport = self._transport
        if transport is not None:
            reply = self._direct_call(("ping",), timeout=5.0)
            version, generation = reply[0], reply[1]
            stats = transport.transport_stats()
            return ShardStatus(
                shard_id=self.shard_id,
                model_version=version or self.model_version,
                model_generation=generation,
                queue_depth=stats["ring_occupancy"],
                scored_count=stats["scored"],
                flagged_count=stats["flagged"],
                queue_depth_peak=stats["ring_occupancy_peak"],
            )
        reply = self._call(("ping",), timeout=5.0)
        version, generation, depth, scored, flagged, depth_peak = reply
        # The child tracks installs it performed; before the first
        # install its counter is 0 and the boot version stands.
        return ShardStatus(
            shard_id=self.shard_id,
            model_version=version or self.model_version,
            model_generation=generation,
            queue_depth=depth,
            scored_count=scored,
            flagged_count=flagged,
            queue_depth_peak=depth_peak,
        )

    def install(
        self, path: Union[str, Path], digest: Optional[str], version: int
    ) -> int:
        message = ("install", str(path), digest, version)
        if self._transport is not None:
            reply = self._direct_call(message, timeout=30.0)
        else:
            reply = self._call(message, timeout=30.0)
        if reply[0] != "ok":
            raise ShardError(f"shard {self.shard_id} install failed: {reply[1]}")
        if self._transport is not None:
            # The child swapped models: drop the router-side cache and
            # derived parse state, pinned to the child's new generation
            # so in-flight stale batch results are refused.
            self._transport.on_model_swap(reply[2])
            if self.coverage is not None:
                # Re-seed the shared tracker's known-release table from
                # the replica the child just adopted (installs are rare;
                # one parent-side load keeps classification aligned).
                replica = BrowserPolygraph.load(path)
                self.coverage.set_known_keys(
                    replica.cluster_model.ua_to_cluster, generation=reply[2]
                )
        self.model_path = Path(path)
        self.model_version = version
        return version

    def transport_stats(self) -> Optional[dict]:
        """Counter snapshot of this shard's transport (process backend)."""
        transport = self._transport
        if transport is not None:
            return transport.transport_stats()
        return {
            "mode": "pickle",
            "broken": False,
            "zero_copy_batches": 0,
            "zero_copy_rows": 0,
            "pickle_fallbacks": self.pickle_fallback_wires,
            "backpressure_waits": 0,
            "ring_slots": 0,
            "ring_occupancy": 0,
            "ring_occupancy_peak": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_entries": 0,
            "scored": 0,
            "flagged": 0,
        }

    def _call(self, message: tuple, timeout: float):
        if not self._alive:
            raise ShardError(f"shard {self.shard_id} is not running")
        call = _Call(message)
        self._inbox.put(call)
        return call.wait(timeout)

    def _direct_call(self, message: tuple, timeout: float):
        """Control call over the shared pipe (shm mode: no I/O thread)."""
        transport = self._transport
        if not self._alive or transport is None:
            raise ShardError(f"shard {self.shard_id} is not running")
        with transport.lock:
            if transport.broken:
                raise ShardError(f"shard {self.shard_id} pipe is broken")
            try:
                self._conn.send(message)
                if not self._conn.poll(timeout):
                    raise ShardError(
                        f"shard {self.shard_id} control call timed out"
                    )
                return self._conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                transport.broken = True
                self._alive = False
                raise ShardError(
                    f"shard {self.shard_id} pipe broke: {type(exc).__name__}"
                ) from exc

    # -- pipe pump ------------------------------------------------------

    def _io_loop(self) -> None:
        conn = self._conn
        pending_scores: List[tuple] = []
        while self._alive:
            try:
                item = self._inbox.get(timeout=0.01)
            except queue.Empty:
                item = None
            try:
                if isinstance(item, _Call):
                    self._flush_scores(conn, pending_scores)
                    conn.send(item.message)
                    item.reply = conn.recv()
                    item.event.set()
                    if item.message[0] == "stop":
                        return
                    continue
                if item is not None:
                    pending_scores.append(item)
                    # Coalesce whatever else is already queued.
                    while len(pending_scores) < self._CHUNK:
                        try:
                            extra = self._inbox.get_nowait()
                        except queue.Empty:
                            break
                        if isinstance(extra, _Call):
                            self._inbox.put(extra)
                            break
                        pending_scores.append(extra)
                self._flush_scores(conn, pending_scores)
            except (EOFError, OSError, BrokenPipeError) as exc:
                self._alive = False
                for _, handle in pending_scores:
                    handle._complete(overloaded_verdict())
                pending_scores = []
                if isinstance(item, _Call):
                    item.error = ShardError(
                        f"shard {self.shard_id} pipe broke: {type(exc).__name__}"
                    )
                    item.event.set()
                self._drain_inbox()
                return

    def _flush_scores(self, conn, pending: List[tuple]) -> None:
        if not pending:
            return
        wires = [wire for wire, _ in pending]
        if self.transport_mode == "shm":
            # Only reachable when the slab could not be created or
            # attached: shm was requested but pickle is serving.
            self.pickle_fallback_wires += len(wires)
        conn.send(("score", wires))
        replies = conn.recv()
        for (_, handle), reply in zip(pending, replies):
            sid, accepted, flagged, risk, reason, latency = reply
            handle._complete(
                Verdict(
                    session_id=sid,
                    accepted=accepted,
                    flagged=flagged,
                    risk_factor=risk,
                    reject_reason=reason,
                    latency_ms=latency,
                )
            )
        pending.clear()

    def _drain_inbox(self) -> None:
        """Fail everything queued behind a dead pipe (nothing hangs)."""
        while True:
            try:
                item = self._inbox.get_nowait()
            except queue.Empty:
                return
            if isinstance(item, _Call):
                item.error = ShardError(f"shard {self.shard_id} is not running")
                item.event.set()
            else:
                item[1]._complete(overloaded_verdict())


# ----------------------------------------------------------------------
# supervisor


class _Health:
    __slots__ = ("healthy", "failures", "restarts")

    def __init__(self) -> None:
        self.healthy = True
        self.failures = 0
        self.restarts = 0


class ShardSupervisor:
    """Owns N shards, the ring, and the heartbeat/restart loop.

    Parameters
    ----------
    model_path:
        The replica source every shard loads (and re-loads on restart).
    expected_digest:
        sha256 recorded by the registry for that file; every shard
        verifies its replica against it before serving.
    model_version:
        The registry version the replicas correspond to; becomes the
        initial serving version.
    """

    def __init__(
        self,
        model_path: Union[str, Path],
        config: ClusterConfig = ClusterConfig(),
        runtime_config: RuntimeConfig = RuntimeConfig(),
        expected_digest: Optional[str] = None,
        model_version: int = 1,
    ) -> None:
        self.config = config
        self.runtime_config = runtime_config
        self.model_path = Path(model_path)
        self.expected_digest = expected_digest
        self.shards: Dict[str, object] = {}
        for index in range(config.n_shards):
            shard_id = f"s{index}"
            if config.backend == "thread":
                shard = ThreadShard(
                    shard_id,
                    self.model_path,
                    runtime_config=runtime_config,
                    expected_digest=expected_digest,
                    model_version=model_version,
                )
            else:
                shard = ProcessShard(
                    shard_id,
                    self.model_path,
                    runtime_config=runtime_config,
                    expected_digest=expected_digest,
                    model_version=model_version,
                    transport=config.transport,
                    ring_slots=config.ring_slots,
                )
            self.shards[shard_id] = shard
        self.ring = HashRing(vnodes=config.vnodes)
        self._health: Dict[str, _Health] = {
            shard_id: _Health() for shard_id in self.shards
        }
        self._serving_version = model_version
        self._lock = threading.RLock()
        self._heartbeat: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._owned_tmp: Optional[tempfile.TemporaryDirectory] = None
        self.rollout_managers: List[object] = []

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_registry(
        cls,
        registry,
        config: ClusterConfig = ClusterConfig(),
        runtime_config: RuntimeConfig = RuntimeConfig(),
    ) -> "ShardSupervisor":
        """Replicate the registry's live model across the shards."""
        version = registry.live_version
        if version < 1:
            raise LookupError("the registry has no live model to replicate")
        entry = next(e for e in registry.versions() if e["version"] == version)
        return cls(
            Path(registry.root) / entry["path"],
            config=config,
            runtime_config=runtime_config,
            expected_digest=entry.get("sha256"),
            model_version=version,
        )

    @classmethod
    def from_polygraph(
        cls,
        polygraph: BrowserPolygraph,
        config: ClusterConfig = ClusterConfig(),
        runtime_config: RuntimeConfig = RuntimeConfig(),
    ) -> "ShardSupervisor":
        """Serve an in-memory pipeline: save one replica source, share it."""
        tmp = tempfile.TemporaryDirectory(prefix="polygraph-cluster-")
        path = Path(tmp.name) / "model-v001.json"
        digest = polygraph.save(path)
        supervisor = cls(
            path,
            config=config,
            runtime_config=runtime_config,
            expected_digest=digest,
            model_version=1,
        )
        supervisor._owned_tmp = tmp
        return supervisor

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ShardSupervisor":
        with self._lock:
            for shard_id, shard in self.shards.items():
                shard.start()
                self.ring.add(shard_id)
            if self._heartbeat is None:
                self._stop.clear()
                self._heartbeat = threading.Thread(
                    target=self._heartbeat_loop,
                    name="polygraph-cluster-heartbeat",
                    daemon=True,
                )
                self._heartbeat.start()
        return self

    def shutdown(self, drain: bool = True) -> None:
        """Stop the heartbeat, then settle and stop every shard."""
        self._stop.set()
        heartbeat = self._heartbeat
        self._heartbeat = None
        if heartbeat is not None:
            heartbeat.join(timeout=10.0)
        with self._lock:
            for shard in self.shards.values():
                try:
                    shard.stop(drain=drain)
                except ShardError:
                    pass
        tmp = self._owned_tmp
        self._owned_tmp = None
        if tmp is not None:
            tmp.cleanup()

    def drain(self) -> None:
        """Graceful SIGTERM path: score every queued request, then stop."""
        self.shutdown(drain=True)

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)

    # -- routing surface ------------------------------------------------

    def route(self, key: bytes) -> List[object]:
        """Healthy shards in failover order for ``key``."""
        with self._lock:
            return [self.shards[sid] for sid in self.ring.preference(key)]

    @property
    def serving_version(self) -> int:
        """The model version the quorum of the cluster has converged on."""
        with self._lock:
            return self._serving_version

    def set_serving_version(self, version: int) -> None:
        with self._lock:
            self._serving_version = version

    # -- health ---------------------------------------------------------

    def note_failure(self, shard_id: str) -> None:
        """Router-reported failure; counted like a missed heartbeat."""
        with self._lock:
            health = self._health.get(shard_id)
            if health is None:
                return
            health.failures += 1
            if health.healthy and health.failures >= self.config.unhealthy_after:
                self._mark_unhealthy(shard_id)

    def kill(self, shard_id: str) -> None:
        """Crash one shard (tests, chaos drills); recovery is automatic."""
        self.shards[shard_id].kill()

    def _mark_unhealthy(self, shard_id: str) -> None:
        health = self._health[shard_id]
        if health.healthy:
            health.healthy = False
            self.ring.remove(shard_id)

    def _mark_healthy(self, shard_id: str) -> None:
        health = self._health[shard_id]
        health.healthy = True
        health.failures = 0
        self.ring.add(shard_id)

    @property
    def healthy_count(self) -> int:
        with self._lock:
            return sum(1 for h in self._health.values() if h.healthy)

    def restarts(self, shard_id: str) -> int:
        with self._lock:
            return self._health[shard_id].restarts

    def check_once(self) -> None:
        """One heartbeat sweep (the loop calls this; tests may too)."""
        for shard_id, shard in list(self.shards.items()):
            with self._lock:
                health = self._health[shard_id]
                healthy = health.healthy
            if healthy:
                try:
                    shard.ping()
                except Exception:  # noqa: BLE001 — any failure counts
                    self.note_failure(shard_id)
                else:
                    with self._lock:
                        health.failures = 0
            else:
                try:
                    shard.restart()
                    shard.ping()
                except Exception:  # noqa: BLE001 — retry next sweep
                    continue
                with self._lock:
                    self._mark_healthy(shard_id)
                    health.restarts += 1

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.config.heartbeat_interval_s):
            self.check_once()

    # -- rollout integration -------------------------------------------

    def attach_rollout(self, registry, config=None) -> List[object]:
        """Resume the registry's persisted rollout on every shard.

        Each thread shard gets its own
        :class:`~repro.rollout.manager.RolloutManager` resumed from the
        *same* persisted state file, so every shard routes arms with the
        same salt and the same stage fraction — a session's sticky
        canary bucket agrees no matter which shard answers it.  (The
        process backend scores across a pipe and cannot host an
        in-process manager; arm routing there needs the child to resume
        the state itself, which this PR does not wire.)
        """
        if self.config.backend != "thread":
            raise NotImplementedError(
                "rollout attach requires the thread backend"
            )
        from repro.rollout import RolloutManager

        managers: List[object] = []
        for shard in self.shards.values():
            manager = RolloutManager(registry, runtime=shard.service, config=config)
            manager.resume()
            managers.append(manager)
        self.rollout_managers = managers
        return managers

    @property
    def rollout(self):
        """The first shard's rollout manager (``/rollout`` endpoint)."""
        return self.rollout_managers[0] if self.rollout_managers else None

    # -- coverage -------------------------------------------------------

    def attach_coverage(self, tracker) -> None:
        """Share one CoverageTracker across every shard's scoring path.

        Thread shards feed it from their runtimes (and re-sync its
        known-release table on model swaps); shm process shards feed
        admitted UA keys from the router-side transport ingest.  Shards
        re-apply the tracker on restart.
        """
        with self._lock:
            for shard in self.shards.values():
                shard.coverage = tracker
                service = getattr(shard, "service", None)
                if service is not None:
                    service.attach_coverage(tracker)
                transport = getattr(shard, "_transport", None)
                if transport is not None:
                    transport.coverage = tracker

    def unknown_ua_counts(self) -> Dict[str, int]:
        """Per-vendor unknown-UA totals summed across shard-local runtimes.

        Thread shards count in-process; process shards keep the counter
        child-side, so they contribute only through the coverage
        tracker's ``polygraph_coverage_unknown_total`` when one is
        attached.
        """
        totals: Dict[str, int] = {}
        with self._lock:
            shards = list(self.shards.values())
        for shard in shards:
            counts = getattr(
                getattr(shard, "service", None), "unknown_ua_counts", None
            )
            if not counts:
                continue
            for vendor, count in dict(counts).items():
                totals[vendor] = totals.get(vendor, 0) + count
        return totals

    # -- introspection --------------------------------------------------

    def shard_versions(self) -> Dict[str, int]:
        with self._lock:
            return {
                shard_id: shard.model_version
                for shard_id, shard in self.shards.items()
            }

    def transport_stats(self) -> Dict[str, dict]:
        """Per-shard transport counters (empty for the thread backend)."""
        with self._lock:
            shards = list(self.shards.items())
        stats: Dict[str, dict] = {}
        for shard_id, shard in shards:
            shard_stats = shard.transport_stats()
            if shard_stats is not None:
                stats[shard_id] = shard_stats
        return stats

    def status_dict(self) -> dict:
        """JSON-friendly view for ``GET /cluster`` and the CLI."""
        with self._lock:
            shards = []
            for shard_id, shard in self.shards.items():
                health = self._health[shard_id]
                entry = {
                    "shard_id": shard_id,
                    "healthy": health.healthy,
                    "failures": health.failures,
                    "restarts": health.restarts,
                    "model_version": shard.model_version,
                    "on_ring": shard_id in self.ring,
                }
                shard_stats = shard.transport_stats()
                if shard_stats is not None:
                    entry["transport"] = shard_stats["mode"]
                shards.append(entry)
            document = {
                "backend": self.config.backend,
                "n_shards": self.config.n_shards,
                "healthy_shards": sum(1 for s in shards if s["healthy"]),
                "serving_version": self._serving_version,
                "vnodes": self.config.vnodes,
                "shards": shards,
            }
            if self.config.backend == "process":
                document["transport"] = self.config.transport
            return document
