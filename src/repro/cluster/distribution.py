"""Replicated model distribution: registry → every shard, quorum flip.

The model registry (PR 2) is the replication source of truth: every
version it stages carries a sha256 digest recorded at save time.  The
distributor pushes one version to every shard; each shard re-verifies
the artifact's digest before adopting it, so a torn copy or a tampered
file is refused at the shard boundary, not discovered in verdicts.

The serving version only *flips* — becomes the generation the cluster
advertises and the router hedges within — once a configurable quorum of
shards has converged on it.  A lagging or failed shard keeps serving
the previous generation in its entirety; because the router never
hedges or fails over across versions, a single session sees verdicts
from exactly one generation at a time, never a mixture.  The laggard is
retried (:meth:`ModelDistributor.retry_lagging`) until it converges or
the supervisor replaces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.cluster.supervisor import ShardError, ShardSupervisor

__all__ = ["DistributionReport", "ModelDistributor"]


@dataclass(frozen=True)
class DistributionReport:
    """Outcome of one distribution round."""

    version: int
    digest: Optional[str]
    installed: List[str] = field(default_factory=list)
    failed: Dict[str, str] = field(default_factory=dict)
    quorum: int = 0
    flipped: bool = False
    serving_version: int = 0

    @property
    def converged(self) -> bool:
        """Every shard adopted the version (not merely a quorum)."""
        return not self.failed

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "digest": self.digest,
            "installed": list(self.installed),
            "failed": dict(self.failed),
            "quorum": self.quorum,
            "flipped": self.flipped,
            "serving_version": self.serving_version,
        }


class ModelDistributor:
    """Push registry versions to shards; flip serving at quorum.

    Parameters
    ----------
    quorum:
        Shards that must verify-and-adopt a version before the cluster's
        serving version flips to it.  ``None`` means a majority
        (``n_shards // 2 + 1``).
    """

    def __init__(
        self,
        supervisor: ShardSupervisor,
        registry,
        quorum: Optional[int] = None,
    ) -> None:
        n_shards = len(supervisor.shards)
        if quorum is None:
            quorum = n_shards // 2 + 1
        if not 1 <= quorum <= n_shards:
            raise ValueError(
                f"quorum must be within [1, {n_shards}], got {quorum}"
            )
        self.supervisor = supervisor
        self.registry = registry
        self.quorum = quorum
        self.last_report: Optional[DistributionReport] = None

    # ------------------------------------------------------------------

    def _entry(self, version: int) -> dict:
        for entry in self.registry.versions():
            if entry["version"] == version:
                return entry
        raise LookupError(f"registry has no version {version}")

    def publish(self, version: Optional[int] = None) -> DistributionReport:
        """Distribute ``version`` (default: the registry's live one).

        Every shard gets an install attempt; the serving version flips
        if and only if at least ``quorum`` shards hold the new version
        afterwards.  Shards that fail stay on whatever complete
        generation they already serve.
        """
        if version is None:
            version = self.registry.live_version
        if version < 1:
            raise LookupError("the registry has no live model to distribute")
        entry = self._entry(version)
        path = Path(self.registry.root) / entry["path"]
        digest = entry.get("sha256")
        installed: List[str] = []
        failed: Dict[str, str] = {}
        for shard_id, shard in self.supervisor.shards.items():
            if shard.model_version == version:
                installed.append(shard_id)  # already converged
                continue
            try:
                shard.install(path, digest, version)
            except (ShardError, ValueError, OSError) as exc:
                failed[shard_id] = f"{type(exc).__name__}: {exc}"
            else:
                installed.append(shard_id)
        flipped = False
        if len(installed) >= self.quorum:
            if self.supervisor.serving_version != version:
                flipped = True
            self.supervisor.set_serving_version(version)
            # The replica source for future restarts follows the flip,
            # so a shard that crashes after the rollout reloads the
            # generation the cluster actually serves.
            self.supervisor.model_path = path
            self.supervisor.expected_digest = digest
        report = DistributionReport(
            version=version,
            digest=digest,
            installed=sorted(installed),
            failed=failed,
            quorum=self.quorum,
            flipped=flipped,
            serving_version=self.supervisor.serving_version,
        )
        self.last_report = report
        return report

    def retry_lagging(self) -> DistributionReport:
        """Re-push the serving version to shards still behind it."""
        return self.publish(self.supervisor.serving_version)

    def lagging_shards(self) -> List[str]:
        """Shards not yet on the serving version."""
        serving = self.supervisor.serving_version
        return sorted(
            shard_id
            for shard_id, version in self.supervisor.shard_versions().items()
            if version != serving
        )
