"""The cluster router: one ``score_wire`` surface over many shards.

:class:`ClusterRouter` speaks the same contract as
:class:`~repro.service.scoring.ScoringService` — ``score_wire`` in,
:class:`~repro.service.scoring.Verdict` out, plus the counters and
metrics hooks :class:`~repro.service.api.CollectionApp` reads — so the
WSGI app and the CLI serve path do not know whether one shard or eight
sit behind them.

Routing is the ring's job (``preference(key)`` yields the primary and
its failover successors); the router's job is what happens when the
primary disappoints:

* **Failover** — a shard that raises, sheds (``overloaded``), or is
  off the ring re-routes the request to the next replica in ring order.
* **Hedging** — with a latency budget configured, a request still
  undecided at the budget is *also* submitted to the next replica and
  the first verdict wins.  Hedges only go to replicas holding the same
  model version as the primary, so the winning verdict is byte-identical
  either way (latency aside) and a rollout can never race a hedge into
  a mixed-generation answer.

Both paths preserve the invariant the determinism tests pin down: for a
fixed model generation, a hedged or re-routed request returns exactly
the verdict a single-shard service would have produced.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.cluster.ring import _SID_PREFIX, wire_routing_key
from repro.cluster.supervisor import ShardError, ShardSupervisor
from repro.core.pipeline import BrowserPolygraph
from repro.runtime.pool import OVERLOADED_REASON, overloaded_verdict
from repro.service.ingest import RejectReason
from repro.service.scoring import Verdict

__all__ = ["ClusterRouter", "RouterConfig"]

_POLL_S = 0.0002  # first-wins poll interval while a hedge is in flight
_ROUTE_MEMO_LIMIT = 65_536  # distinct routing keys memoized per epoch

# Per-shard dispatch threads only pay off when there is a second CPU to
# run them on: the router-side hit path is pure Python (GIL-bound), and
# on a single-CPU host even the child processes timeshare the one core,
# so threads add switch overhead without adding any overlap.
_PARALLEL_DISPATCH = (os.cpu_count() or 1) > 1


class _ExtraReason(str):
    """A reject reason outside :class:`RejectReason` (e.g. shed traffic).

    Quacks like an enum member — ``.value`` and string ordering — so the
    ``/metrics`` breakdown can mix it with real quarantine reasons.
    """

    @property
    def value(self) -> str:
        return str(self)


def _reason_key(value: str):
    try:
        return RejectReason(value)
    except ValueError:
        return _ExtraReason(value)


class _RouterQuarantine:
    """Aggregated reject counts, same shape as the validator's."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()

    def record(self, reason: str) -> None:
        with self._lock:
            self._counts[reason] = self._counts.get(reason, 0) + 1

    @property
    def total_rejects(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def counts(self) -> Dict[object, int]:
        with self._lock:
            return {_reason_key(value): n for value, n in self._counts.items()}


class _RouterValidator:
    """Shim so ``CollectionApp._metrics`` finds ``validator.quarantine``."""

    def __init__(self) -> None:
        self.quarantine = _RouterQuarantine()


class RouterConfig:
    """Routing policy knobs.

    Parameters
    ----------
    affinity:
        ``"session"`` routes by session id (the default; canary buckets
        and dedup windows stay shard-sticky).  ``"fingerprint"`` routes
        by the payload's fingerprint bytes, partitioning the verdict
        cache's key space so aggregate cache capacity scales with the
        shard count.
    hedge_after_ms:
        Latency budget after which an undecided request is hedged to the
        next same-version replica.  ``None`` disables hedging.
    request_timeout_s:
        Hard ceiling on one request's life in the router.
    """

    __slots__ = ("affinity", "hedge_after_ms", "request_timeout_s")

    def __init__(
        self,
        affinity: str = "session",
        hedge_after_ms: Optional[float] = None,
        request_timeout_s: float = 30.0,
    ) -> None:
        if affinity not in ("session", "fingerprint"):
            raise ValueError("affinity must be 'session' or 'fingerprint'")
        self.affinity = affinity
        self.hedge_after_ms = hedge_after_ms
        self.request_timeout_s = request_timeout_s


class ClusterRouter:
    """Route wire payloads across a :class:`ShardSupervisor`'s shards."""

    def __init__(
        self,
        supervisor: ShardSupervisor,
        config: Optional[RouterConfig] = None,
    ) -> None:
        self.supervisor = supervisor
        self.config = config or RouterConfig()
        # A reference replica for endpoints that introspect the model
        # (/health); loaded once from the same digest-verified source
        # the shards use, never scored against.
        self.polygraph = BrowserPolygraph.load(supervisor.model_path)
        self.validator = _RouterValidator()
        self._lock = threading.Lock()
        self.scored_count = 0
        self.flagged_count = 0
        self.requests_total = 0
        self.hedged_total = 0
        self.hedge_wins_total = 0
        self.failovers_total = 0
        self.unroutable_total = 0
        self._routed: Dict[str, int] = {}
        # Ring lookups memoized per routing key: coarse fingerprints
        # repeat constantly, so the bulk path resolves almost every
        # wire with one dict probe instead of a hash + bisect.  The
        # ring's epoch counter invalidates the memo on any membership
        # change (shard death, restart, scale events).
        self._route_memo: Dict[bytes, str] = {}
        self._route_epoch = -1
        # Optional cluster-wide CoverageTracker (repro.coverage).
        self.coverage = None

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "ClusterRouter":
        self.supervisor.start()
        return self

    def shutdown(self, drain: bool = True) -> None:
        self.supervisor.shutdown(drain=drain)

    @property
    def rollout(self):
        return self.supervisor.rollout

    def attach_coverage(self, tracker) -> "ClusterRouter":
        """Share one CoverageTracker across the whole cluster.

        Seeds the known-release table from the router's reference
        replica, then propagates the tracker to every shard via the
        supervisor.
        """
        generation, detector = self.polygraph.detection_snapshot()
        tracker.set_known_keys(
            detector.model.ua_to_cluster, generation=generation
        )
        self.supervisor.attach_coverage(tracker)
        self.coverage = tracker
        return self

    # ------------------------------------------------------------------
    # scoring

    def score_wire(self, wire: bytes, day=None) -> Verdict:
        """Route, score, and failover/hedge one wire payload."""
        with self._lock:
            self.requests_total += 1
        key = wire_routing_key(wire, self.config.affinity)
        candidates = self.supervisor.route(key)
        verdict = self._score_routed(wire, candidates)
        if verdict is None:
            with self._lock:
                self.unroutable_total += 1
            verdict = overloaded_verdict(session_id="")
        self._account(verdict)
        return verdict

    def _owner_of(self, key: bytes) -> Optional[str]:
        """Memoized ring owner lookup for the bulk path."""
        ring = self.supervisor.ring
        memo = self._route_memo
        epoch = ring.epoch
        if epoch != self._route_epoch:
            memo.clear()
            self._route_epoch = epoch
        shard_id = memo.get(key)
        if shard_id is None:
            try:
                shard_id = ring.node_for(key)
            except (IndexError, KeyError):
                # The heartbeat thread mutated the ring mid-lookup; take
                # the supervisor's lock and resolve consistently.
                owned = self.supervisor.route(key)
                shard_id = owned[0].shard_id if owned else None
            if shard_id is not None:
                if len(memo) >= _ROUTE_MEMO_LIMIT:
                    memo.clear()
                memo[key] = shard_id
        return shard_id

    def score_many(self, wires: Sequence[bytes]) -> List[Verdict]:
        """Bulk path: partition by ring owner, score chunks concurrently.

        Each shard's chunk runs on its own dispatch thread — shards are
        process- (or pool-) parallel, so scoring them sequentially
        would serialize the whole cluster behind one dispatcher, which
        is exactly the plateau this transport exists to break.  Wires
        whose chunk hits a dead or shedding shard are individually
        re-routed through :meth:`score_wire` afterwards — nothing is
        lost, order is kept.
        """
        results: List[Optional[Verdict]] = [None] * len(wires)
        chunks: Dict[str, List[int]] = {}
        chunks_get = chunks.get
        affinity = self.config.affinity
        fingerprint = affinity == "fingerprint"
        unroutable = 0
        # Fused partition loop: ``wire_routing_key`` and the memo probe
        # of ``_owner_of`` inlined — two function calls per wire are
        # measurable at hundreds of kwps.  The epoch check runs once
        # per chunk; a membership change mid-loop lands wires on the
        # old owner, and the retry pass below re-routes them, exactly
        # as it does for a chunk already in flight during the change.
        ring = self.supervisor.ring
        memo = self._route_memo
        if ring.epoch != self._route_epoch:
            memo.clear()
            self._route_epoch = ring.epoch
        memo_get = memo.get
        owner_of = self._owner_of
        for index, wire in enumerate(wires):
            key = wire
            if wire.startswith(_SID_PREFIX):
                quote = wire.find(b'"', 8)
                if quote >= 8:
                    key = wire[quote:] if fingerprint else wire[8:quote]
            shard_id = memo_get(key)
            if shard_id is None:
                shard_id = owner_of(key)
                if shard_id is None:
                    unroutable += 1
                    results[index] = overloaded_verdict(session_id="")
                    continue
            chunk = chunks_get(shard_id)
            if chunk is None:
                chunk = chunks[shard_id] = []
            chunk.append(index)
        if unroutable:
            with self._lock:
                self.requests_total += unroutable
                self.unroutable_total += unroutable
        retries: Dict[str, List[int]] = {}
        items = list(chunks.items())

        def dispatch(shard_id: str, indices: List[int]) -> None:
            try:
                retries[shard_id] = self._score_chunk_into(
                    shard_id, indices, wires, results
                )
            except Exception:  # noqa: BLE001 — a dead dispatcher loses wires
                retries[shard_id] = [
                    i for i in indices if results[i] is None
                ]

        if len(items) <= 1 or not _PARALLEL_DISPATCH:
            for shard_id, indices in items:
                dispatch(shard_id, indices)
        else:
            threads = [
                threading.Thread(
                    target=dispatch,
                    args=(shard_id, indices),
                    name=f"polygraph-dispatch-{shard_id}",
                    daemon=True,
                )
                for shard_id, indices in items
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for shard_id, retry in retries.items():
            if retry:
                self.supervisor.note_failure(shard_id)
                with self._lock:
                    self.failovers_total += len(retry)
                for i in retry:
                    results[i] = self.score_wire(wires[i])
        return results  # type: ignore[return-value]

    def _score_chunk_into(
        self,
        shard_id: str,
        indices: List[int],
        wires: Sequence[bytes],
        results: List[Optional[Verdict]],
    ) -> List[int]:
        """Score one shard's chunk in place; return indices to re-route.

        Runs on a per-shard dispatch thread: writes only to its own
        ``results`` slots, and all shared counters are lock-guarded.
        """
        shard = self.supervisor.shards.get(shard_id)
        if shard is None:
            return indices
        try:
            verdicts = shard.score_chunk([wires[i] for i in indices])
        except (ShardError, TimeoutError):
            self.supervisor.note_failure(shard_id)
            return indices
        retry: List[int] = []
        scored = 0
        flagged = 0
        for i, verdict in zip(indices, verdicts):
            if verdict.reject_reason == OVERLOADED_REASON:
                retry.append(i)
                continue
            results[i] = verdict
            if verdict.accepted:
                scored += 1
                flagged += verdict.flagged
            else:
                self.validator.quarantine.record(
                    verdict.reject_reason or "unknown"
                )
        answered = len(indices) - len(retry)
        with self._lock:
            self.requests_total += answered
            self.scored_count += scored
            self.flagged_count += flagged
            self._routed[shard_id] = self._routed.get(shard_id, 0) + answered
        return retry

    # ------------------------------------------------------------------
    # routing internals

    def _score_routed(self, wire: bytes, candidates: List) -> Optional[Verdict]:
        """Submit along the preference list; hedge; first verdict wins."""
        pending = list(candidates)
        in_flight: List[tuple] = []
        version: Optional[int] = None
        primary = None

        def submit_next() -> bool:
            nonlocal version, primary
            while pending:
                shard = pending.pop(0)
                if version is not None and shard.model_version != version:
                    continue  # replicas on another generation cannot answer
                try:
                    handle = shard.submit_wire(wire)
                except ShardError:
                    self.supervisor.note_failure(shard.shard_id)
                    with self._lock:
                        self.failovers_total += 1
                    continue
                if version is None:
                    version = shard.model_version
                    primary = shard
                with self._lock:
                    self._routed[shard.shard_id] = (
                        self._routed.get(shard.shard_id, 0) + 1
                    )
                in_flight.append((shard, handle))
                return True
            return False

        submit_next()
        budget = self.config.hedge_after_ms
        deadline = time.monotonic() + self.config.request_timeout_s
        hedge_at = None if budget is None else time.monotonic() + budget / 1000.0
        while in_flight:
            if budget is None and len(in_flight) == 1:
                # Fast path: no hedging configured, block on the handle.
                shard, handle = in_flight.pop(0)
                try:
                    verdict = handle.result(
                        timeout=max(0.0, deadline - time.monotonic())
                    )
                except TimeoutError:
                    self.supervisor.note_failure(shard.shard_id)
                    with self._lock:
                        self.failovers_total += 1
                    submit_next()
                    continue
            else:
                now = time.monotonic()
                if now > deadline:
                    break
                if hedge_at is not None and now >= hedge_at:
                    hedge_at = None  # at most one hedge per request
                    if submit_next():
                        with self._lock:
                            self.hedged_total += 1
                decided = next(
                    (pair for pair in in_flight if pair[1].done()), None
                )
                if decided is None:
                    time.sleep(_POLL_S)
                    continue
                in_flight.remove(decided)
                shard, handle = decided
                verdict = handle.result(timeout=0.0)
            if verdict.reject_reason == OVERLOADED_REASON:
                # Shed or died under us: count it and try a replica.
                self.supervisor.note_failure(shard.shard_id)
                with self._lock:
                    self.failovers_total += 1
                if not in_flight:
                    submit_next()
                continue
            if primary is not None and shard is not primary:
                with self._lock:
                    self.hedge_wins_total += 1
            return verdict
        return None

    def _account(self, verdict: Verdict) -> None:
        if verdict.accepted:
            with self._lock:
                self.scored_count += 1
                if verdict.flagged:
                    self.flagged_count += 1
        else:
            self.validator.quarantine.record(verdict.reject_reason or "unknown")

    # ------------------------------------------------------------------
    # observability

    def cluster_status(self) -> dict:
        """The ``GET /cluster`` document: topology + routing counters."""
        status = self.supervisor.status_dict()
        transport_stats = self.supervisor.transport_stats()
        if transport_stats:
            status["transport_stats"] = transport_stats
        with self._lock:
            status["router"] = {
                "affinity": self.config.affinity,
                "hedge_after_ms": self.config.hedge_after_ms,
                "requests_total": self.requests_total,
                "hedged_total": self.hedged_total,
                "hedge_wins_total": self.hedge_wins_total,
                "failovers_total": self.failovers_total,
                "unroutable_total": self.unroutable_total,
                "routed_by_shard": dict(sorted(self._routed.items())),
            }
        return status

    def runtime_metrics_lines(self) -> List[str]:
        """``polygraph_cluster_*`` lines for the ``/metrics`` endpoint."""
        status = self.supervisor.status_dict()
        with self._lock:
            lines = [
                "# TYPE polygraph_cluster_shards gauge",
                f"polygraph_cluster_shards {status['n_shards']}",
                "# TYPE polygraph_cluster_healthy_shards gauge",
                f"polygraph_cluster_healthy_shards {status['healthy_shards']}",
                "# TYPE polygraph_cluster_serving_version gauge",
                f"polygraph_cluster_serving_version {status['serving_version']}",
                "# TYPE polygraph_cluster_requests_total counter",
                f"polygraph_cluster_requests_total {self.requests_total}",
                "# TYPE polygraph_cluster_hedged_total counter",
                f"polygraph_cluster_hedged_total {self.hedged_total}",
                "# TYPE polygraph_cluster_hedge_wins_total counter",
                f"polygraph_cluster_hedge_wins_total {self.hedge_wins_total}",
                "# TYPE polygraph_cluster_failovers_total counter",
                f"polygraph_cluster_failovers_total {self.failovers_total}",
                "# TYPE polygraph_cluster_routed_total counter",
            ]
            for shard_id, count in sorted(self._routed.items()):
                lines.append(
                    f'polygraph_cluster_routed_total{{shard="{shard_id}"}} {count}'
                )
        for shard in status["shards"]:
            lines.append(
                f'polygraph_cluster_shard_healthy{{shard="{shard["shard_id"]}"}} '
                f'{1 if shard["healthy"] else 0}'
            )
            lines.append(
                f'polygraph_cluster_shard_model_version{{shard="{shard["shard_id"]}"}} '
                f'{shard["model_version"]}'
            )
            lines.append(
                f'polygraph_cluster_shard_restarts{{shard="{shard["shard_id"]}"}} '
                f'{shard["restarts"]}'
            )
        lines.extend(self._transport_metrics_lines())
        unknown = self.supervisor.unknown_ua_counts()
        for vendor in sorted(unknown):
            lines.append(
                f'polygraph_unknown_ua_total{{vendor="{vendor}"}} '
                f"{unknown[vendor]}"
            )
        if self.coverage is not None:
            lines.extend(self.coverage.metrics_lines())
        return lines

    _TRANSPORT_METRICS = (
        ("zero_copy_batches", "zero_copy_batches_total", "counter"),
        ("zero_copy_rows", "zero_copy_rows_total", "counter"),
        ("pickle_fallbacks", "pickle_fallbacks_total", "counter"),
        ("backpressure_waits", "backpressure_pauses_total", "counter"),
        ("cache_hits", "cache_hits_total", "counter"),
        ("cache_misses", "cache_misses_total", "counter"),
        ("ring_occupancy", "ring_occupancy", "gauge"),
        ("ring_occupancy_peak", "ring_occupancy_peak", "gauge"),
    )

    def _transport_metrics_lines(self) -> List[str]:
        """``polygraph_transport_*`` lines, one series per process shard.

        Thread-backed clusters (and single-process serving) have no
        transport, so these lines are cleanly absent there.
        """
        per_shard = self.supervisor.transport_stats()
        if not per_shard:
            return []
        lines: List[str] = []
        for key, metric, kind in self._TRANSPORT_METRICS:
            lines.append(f"# TYPE polygraph_transport_{metric} {kind}")
            for shard_id, stats in sorted(per_shard.items()):
                lines.append(
                    f'polygraph_transport_{metric}{{shard="{shard_id}"}} '
                    f"{stats[key]}"
                )
        lines.append("# TYPE polygraph_transport_shm_mode gauge")
        for shard_id, stats in sorted(per_shard.items()):
            lines.append(
                f'polygraph_transport_shm_mode{{shard="{shard_id}"}} '
                f'{1 if stats["mode"] == "shm" else 0}'
            )
        return lines
