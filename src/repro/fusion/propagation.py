"""Semi-supervised label spreading over fingerprint-space neighborhoods.

Coarse fingerprints are low-cardinality by design (the paper's whole
privacy argument), so sessions collapse into a few hundred *nodes*
keyed by ``(fingerprint, untrusted_ip, untrusted_cookie,
staleness-bucket)``.  Each node embeds as the mean PCA projection of
its member sessions plus scaled tag/staleness dimensions; a k-NN
Gaussian affinity graph connects look-alike nodes, and the classic
Zhou-style iteration

    F  <-  alpha * S @ F + (1 - alpha) * Y

spreads the sparse ``ato`` seed rates (shrunk toward the base rate so
tiny nodes don't scream) across the graph.  The result is a soft fraud
score for *every* node — including ones whose own sessions carry no
tags at all, which is the point: Category-4 replays sit in nodes whose
neighborhoods are enriched with tagged Category-1/2 fraud.

Non-convergence within the iteration cap is not an error: the scores
fall back to the seed rates ``Y`` (documented, observable via
``PropagationResult.converged``) so a pathological graph degrades to
per-node empirical rates instead of shipping a half-mixed state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = ["NodeIndex", "PropagationConfig", "PropagationResult", "propagate"]


@dataclass(frozen=True)
class PropagationConfig:
    """Knobs of the node graph and the spreading iteration.

    Parameters
    ----------
    n_neighbors:
        k of the k-NN affinity graph (clamped to ``n_nodes - 1``).
    alpha:
        Mixing weight of neighborhood information vs the seed rates;
        higher spreads further.
    max_iterations / tolerance:
        Convergence cap: iteration stops when the max absolute score
        delta drops below ``tolerance`` or the cap is hit (then scores
        fall back to the seeds).
    shrinkage:
        Pseudo-count pulling small nodes' seed rates toward the
        population base rate (Laplace-style: ``(k + m*base)/(n + m)``).
    tag_scale:
        Weight of the tag/staleness embedding dimensions, as a multiple
        of the median per-dimension spread of the PCA projection.
    staleness_bucket_days / max_staleness_buckets:
        Claimed-release staleness is bucketed into
        ``min(days // bucket, max)`` so nodes stay low-cardinality.
    """

    n_neighbors: int = 10
    alpha: float = 0.85
    max_iterations: int = 200
    tolerance: float = 1e-9
    shrinkage: float = 10.0
    tag_scale: float = 4.0
    staleness_bucket_days: float = 45.0
    max_staleness_buckets: int = 5

    def __post_init__(self) -> None:
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must lie in (0, 1)")
        if self.max_iterations < 0:
            raise ValueError("max_iterations must be >= 0")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.shrinkage < 0.0:
            raise ValueError("shrinkage must be >= 0")
        if self.tag_scale <= 0.0:
            raise ValueError("tag_scale must be positive")
        if self.staleness_bucket_days <= 0.0:
            raise ValueError("staleness_bucket_days must be positive")
        if self.max_staleness_buckets < 0:
            raise ValueError("max_staleness_buckets must be >= 0")


@dataclass(frozen=True)
class PropagationResult:
    """Outcome of one spreading run over the node graph."""

    node_scores: np.ndarray
    iterations: int
    converged: bool


@dataclass
class NodeIndex:
    """Session-to-node assignment plus per-node aggregates.

    ``keys[i]`` is the ``(fingerprint-digest, ip, cookie, bucket)``
    tuple of node ``i``; ``node_of[j]`` maps session ``j`` to its node.
    """

    keys: list
    node_of: np.ndarray
    counts: np.ndarray
    embeddings: np.ndarray
    tag_scale_abs: float

    def __len__(self) -> int:
        return len(self.keys)


def staleness_bucket(
    staleness: np.ndarray, config: PropagationConfig
) -> np.ndarray:
    """Bucket staleness days per the config's coarse grid."""
    buckets = np.floor(
        np.asarray(staleness, dtype=np.float64) / config.staleness_bucket_days
    )
    return np.minimum(buckets, config.max_staleness_buckets).astype(np.int64)


def build_node_index(
    fingerprint_digests: list,
    projected: np.ndarray,
    untrusted_ip: np.ndarray,
    untrusted_cookie: np.ndarray,
    staleness: np.ndarray,
    config: PropagationConfig,
) -> NodeIndex:
    """Collapse sessions into nodes and embed each node.

    The embedding concatenates the mean PCA projection of the node's
    members with the (ip, cookie, normalized-staleness) dimensions
    scaled to ``tag_scale`` times the median projection spread, so
    neighborhoods respect both fingerprint similarity and behavioural
    context without either axis drowning the other.
    """
    n = projected.shape[0]
    ip = np.asarray(untrusted_ip, dtype=np.float64)
    cookie = np.asarray(untrusted_cookie, dtype=np.float64)
    buckets = staleness_bucket(staleness, config)

    index_of: Dict[Tuple, int] = {}
    keys: list = []
    node_of = np.empty(n, dtype=np.int64)
    for row in range(n):
        key = (
            fingerprint_digests[row],
            int(ip[row]),
            int(cookie[row]),
            int(buckets[row]),
        )
        node = index_of.get(key)
        if node is None:
            node = len(keys)
            index_of[key] = node
            keys.append(key)
        node_of[row] = node

    n_nodes = len(keys)
    counts = np.bincount(node_of, minlength=n_nodes).astype(np.float64)
    mean_proj = np.zeros((n_nodes, projected.shape[1]))
    np.add.at(mean_proj, node_of, projected)
    mean_proj /= counts[:, None]

    spread = float(np.median(mean_proj.std(axis=0))) if n_nodes > 1 else 1.0
    tag_scale_abs = config.tag_scale * (spread if spread > 0 else 1.0)

    denominator = float(max(config.max_staleness_buckets, 1))
    tag_dims = np.zeros((n_nodes, 3))
    for column, values in enumerate((ip, cookie, buckets / denominator)):
        totals = np.zeros(n_nodes)
        np.add.at(totals, node_of, np.asarray(values, dtype=np.float64))
        tag_dims[:, column] = totals / counts

    embeddings = np.hstack([mean_proj, tag_dims * tag_scale_abs])
    return NodeIndex(
        keys=keys,
        node_of=node_of,
        counts=counts,
        embeddings=embeddings,
        tag_scale_abs=tag_scale_abs,
    )


def seed_scores(
    index: NodeIndex,
    seed_mask: np.ndarray,
    config: PropagationConfig,
    member_mask: np.ndarray = None,
) -> Tuple[np.ndarray, float]:
    """Shrunk per-node seed rates and the population base rate.

    ``member_mask`` restricts which sessions contribute (the trainer
    seeds on the fit half only, keeping the calibration half blind);
    a node with no contributing members falls back to the base rate.
    """
    seeds = np.asarray(seed_mask, dtype=np.float64)
    if member_mask is None:
        members = np.ones_like(seeds)
    else:
        members = np.asarray(member_mask, dtype=np.float64)
        seeds = seeds * members
    total_members = float(members.sum())
    base = float(seeds.sum() / total_members) if total_members else 0.0
    per_node_seeds = np.zeros(len(index))
    per_node_members = np.zeros(len(index))
    np.add.at(per_node_seeds, index.node_of, seeds)
    np.add.at(per_node_members, index.node_of, members)
    denominator = per_node_members + config.shrinkage
    shrunk = np.full(len(index), base)
    observed = denominator > 0
    shrunk[observed] = (
        per_node_seeds[observed] + config.shrinkage * base
    ) / denominator[observed]
    return shrunk, base


def _affinity(embeddings: np.ndarray, config: PropagationConfig) -> np.ndarray:
    """Symmetrized, degree-normalized k-NN Gaussian affinity matrix."""
    n_nodes = embeddings.shape[0]
    if n_nodes < 2:
        return np.zeros((n_nodes, n_nodes))
    deltas = embeddings[:, None, :] - embeddings[None, :, :]
    distances = np.einsum("ijk,ijk->ij", deltas, deltas)
    np.fill_diagonal(distances, np.inf)
    k = min(config.n_neighbors, n_nodes - 1)
    neighbor_idx = np.argsort(distances, axis=1)[:, :k]
    rows = np.repeat(np.arange(n_nodes), k)
    cols = neighbor_idx.ravel()
    sigma2 = float(np.median(distances[rows, cols]))
    if not np.isfinite(sigma2) or sigma2 <= 0:
        sigma2 = 1.0
    weights = np.zeros((n_nodes, n_nodes))
    weights[rows, cols] = np.exp(-distances[rows, cols] / sigma2)
    weights = np.maximum(weights, weights.T)
    degree = weights.sum(axis=1)
    degree[degree == 0] = 1.0
    inv_sqrt = 1.0 / np.sqrt(degree)
    return weights * inv_sqrt[:, None] * inv_sqrt[None, :]


def propagate(
    embeddings: np.ndarray,
    seeds: np.ndarray,
    config: PropagationConfig,
) -> PropagationResult:
    """Run the spreading iteration; fall back to seeds on non-convergence."""
    seeds = np.asarray(seeds, dtype=np.float64)
    normalized = _affinity(embeddings, config)
    scores = seeds.copy()
    for iteration in range(1, config.max_iterations + 1):
        updated = config.alpha * (normalized @ scores) + (
            1.0 - config.alpha
        ) * seeds
        delta = float(np.abs(updated - scores).max()) if scores.size else 0.0
        scores = updated
        if delta < config.tolerance:
            return PropagationResult(
                node_scores=scores, iterations=iteration, converged=True
            )
    # Documented fallback: half-mixed scores are worse than the plain
    # shrunk empirical rates, so ship the seeds and say so.
    return PropagationResult(
        node_scores=seeds.copy(),
        iterations=config.max_iterations,
        converged=False,
    )
