"""The sanctioned accessor for FinOrg's weak-tag columns.

The three tag columns (``untrusted_ip``, ``untrusted_cookie``, ``ato``)
are *risk-engine outcomes*, not browser observables: a model that reads
them as features is training on a proxy of its own target.  The
fingerprinting pipeline therefore must never touch them — its input is
the 28-column feature matrix and the claimed user-agent, nothing else.

The fusion trainer is the one legitimate consumer: label propagation
*seeds* on the sparse ``ato`` tags and conditions on the infrastructure
tags, by design.  To keep that boundary auditable, all fusion code
reads tags through :func:`weak_labels` / :class:`WeakLabels` — and the
tripwire in ``tests/test_tag_boundary.py`` replaces the raw columns
with guards (:func:`with_guarded_tags`) and runs the full fit/detect
path to prove the model-facing code never reads them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "WEAK_TAG_COLUMNS",
    "WeakLabelLeak",
    "WeakLabels",
    "weak_labels",
    "with_guarded_tags",
]

WEAK_TAG_COLUMNS = ("untrusted_ip", "untrusted_cookie", "ato")


class WeakLabelLeak(RuntimeError):
    """A model-facing code path read a weak-tag column."""


@dataclass(frozen=True)
class WeakLabels:
    """The three tag columns, as booleans, detached from the dataset."""

    untrusted_ip: np.ndarray
    untrusted_cookie: np.ndarray
    ato: np.ndarray

    def __post_init__(self) -> None:
        n = self.untrusted_ip.shape[0]
        if self.untrusted_cookie.shape[0] != n or self.ato.shape[0] != n:
            raise ValueError("weak-label columns are misaligned")

    def __len__(self) -> int:
        return int(self.untrusted_ip.shape[0])

    @property
    def ato_rate(self) -> float:
        """Marginal rate of the sparse seed tag."""
        return float(self.ato.mean()) if len(self) else 0.0


def weak_labels(dataset) -> WeakLabels:
    """Extract the tag columns for the fusion trainer.

    This is the only place outside the traffic simulator where the tag
    columns are read; copies are returned so the caller can never
    mutate the dataset through them.
    """
    return WeakLabels(
        untrusted_ip=np.asarray(dataset.untrusted_ip, dtype=bool).copy(),
        untrusted_cookie=np.asarray(dataset.untrusted_cookie, dtype=bool).copy(),
        ato=np.asarray(dataset.ato, dtype=bool).copy(),
    )


class _GuardedColumn:
    """Stand-in for a tag column that detonates on any read.

    Only ``shape`` survives (the dataset's alignment check needs it);
    indexing, iteration, casting, or reduction raises
    :class:`WeakLabelLeak` with the column name, so the tripwire test
    points straight at the offending code path.
    """

    def __init__(self, name: str, length: int) -> None:
        self._name = name
        self.shape = (length,)

    def _leak(self, *args, **kwargs):
        raise WeakLabelLeak(
            f"model-facing code read weak-tag column {self._name!r}; "
            "only repro.fusion.labels.weak_labels may consume it"
        )

    __getitem__ = _leak
    __iter__ = _leak
    __array__ = _leak
    __len__ = _leak
    astype = _leak
    sum = _leak
    mean = _leak
    tolist = _leak
    copy = _leak


def with_guarded_tags(dataset):
    """A shallow dataset copy whose tag columns raise on access."""
    n = len(dataset)
    return replace(
        dataset,
        untrusted_ip=_GuardedColumn("untrusted_ip", n),
        untrusted_cookie=_GuardedColumn("untrusted_cookie", n),
        ato=_GuardedColumn("ato", n),
    )
