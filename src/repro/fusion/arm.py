"""The serving-side fusion arm: scoring, counters, auto-disable.

:class:`FusionArm` is what a scoring service attaches.  Per session it
computes the second opinion, runs the policy, updates the agreement
counters, and evaluates the guardrails; any breach disables the arm
*stickily* — subsequent sessions get cluster-only verdicts (the
additive-only contract makes that a bit-for-bit rollback), while the
breach stays visible in ``/metrics`` and the status document.

The arm also watches the pipeline's model generation: a retrain swaps
the projection the node embeddings were computed in, so the arm
disables itself with ``model_generation_changed`` instead of serving
scores from a stale geometry.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from datetime import date
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fusion.model import FusionModel, SecondOpinion
from repro.fusion.policy import (
    AgreementCell,
    FusedVerdict,
    FusionGuardrailConfig,
    FusionPolicy,
)

__all__ = ["FusionArm"]

_LATENCY_WINDOW = 512


class FusionArm:
    """Guardrailed second-opinion scoring for a serving path."""

    def __init__(
        self,
        model: FusionModel,
        policy: Optional[FusionPolicy] = None,
        guardrails: Optional[FusionGuardrailConfig] = None,
    ) -> None:
        self.model = model
        self.policy = policy or FusionPolicy()
        self.guardrails = guardrails or FusionGuardrailConfig()
        self._lock = threading.Lock()
        self.verdicts = 0
        self.second_flagged = 0
        self.fused_flagged = 0
        self.cluster_flagged = 0
        self.cell_counts: Dict[str, int] = {
            cell.value: 0 for cell in AgreementCell
        }
        self.disabled = False
        self.disable_reason: Optional[str] = None
        self.breach: Optional[Dict] = None
        self._latencies_ms: deque = deque(maxlen=_LATENCY_WINDOW)

    # ------------------------------------------------------------------

    def bind_pipeline(self, polygraph) -> "FusionArm":
        """Auto-disable when the cluster model generation changes."""
        self.model.bind(polygraph.cluster_model)

        def _on_swap(_generation: int) -> None:
            self.disable("model_generation_changed")

        polygraph.add_retrain_listener(_on_swap)
        return self

    def disable(self, reason: str, breach: Optional[Dict] = None) -> None:
        """Sticky rollback to cluster-only verdicts."""
        with self._lock:
            if self.disabled:
                return
            self.disabled = True
            self.disable_reason = reason
            self.breach = breach

    @property
    def enabled(self) -> bool:
        return not self.disabled

    # ------------------------------------------------------------------

    def consider(
        self,
        values: Sequence[int],
        user_agent: str,
        cluster_flagged: bool,
        day: Optional[date] = None,
        tags: Optional[Tuple[bool, bool]] = None,
    ) -> Optional[Tuple[SecondOpinion, FusedVerdict]]:
        """Score one session; ``None`` when the arm is disabled.

        ``tags`` is the risk engine's ``(untrusted_ip,
        untrusted_cookie)`` pair when it has one; absent tags score as
        trusted, which only lowers the second opinion.
        """
        if self.disabled:
            return None
        started = time.perf_counter()
        untrusted_ip, untrusted_cookie = tags if tags is not None else (
            False,
            False,
        )
        opinion = self.model.second_opinion(
            values,
            user_agent,
            day=day,
            untrusted_ip=untrusted_ip,
            untrusted_cookie=untrusted_cookie,
        )
        fused = self.policy.decide(cluster_flagged, opinion)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        with self._lock:
            self.verdicts += 1
            self.cell_counts[fused.cell.value] += 1
            if fused.second_flagged:
                self.second_flagged += 1
            if fused.fused_flagged:
                self.fused_flagged += 1
            if cluster_flagged:
                self.cluster_flagged += 1
            self._latencies_ms.append(elapsed_ms)
            breach = self._check_guardrails_locked()
        if breach is not None:
            self.disable(breach["name"], breach)
        return opinion, fused

    def _check_guardrails_locked(self) -> Optional[Dict]:
        limits = self.guardrails
        if self.verdicts < limits.min_verdicts:
            return None
        second_rate = self.second_flagged / self.verdicts
        if second_rate > limits.max_second_flag_rate:
            return {
                "name": "second_flag_rate",
                "value": round(second_rate, 6),
                "limit": limits.max_second_flag_rate,
            }
        delta = (self.fused_flagged - self.cluster_flagged) / self.verdicts
        if delta > limits.max_fused_flag_rate_delta:
            return {
                "name": "fused_flag_rate_delta",
                "value": round(delta, 6),
                "limit": limits.max_fused_flag_rate_delta,
            }
        if self._latencies_ms:
            mean_ms = sum(self._latencies_ms) / len(self._latencies_ms)
            if mean_ms > limits.max_mean_latency_ms:
                return {
                    "name": "second_opinion_latency",
                    "value": round(mean_ms, 3),
                    "limit": limits.max_mean_latency_ms,
                }
        return None

    # ------------------------------------------------------------------
    # introspection

    def status_dict(self) -> Dict:
        with self._lock:
            return {
                "enabled": not self.disabled,
                "disable_reason": self.disable_reason,
                "breach": self.breach,
                "verdicts": self.verdicts,
                "second_flagged": self.second_flagged,
                "fused_flagged": self.fused_flagged,
                "cluster_flagged": self.cluster_flagged,
                "cells": dict(self.cell_counts),
                "model": self.model.status_dict(),
            }

    def metrics_lines(self) -> List[str]:
        """Prometheus-style ``polygraph_fusion_*`` lines."""
        with self._lock:
            lines = [
                "# TYPE polygraph_fusion_enabled gauge",
                f"polygraph_fusion_enabled {0 if self.disabled else 1}",
                "# TYPE polygraph_fusion_verdicts_total counter",
                f"polygraph_fusion_verdicts_total {self.verdicts}",
                "# TYPE polygraph_fusion_second_flagged_total counter",
                f"polygraph_fusion_second_flagged_total {self.second_flagged}",
                "# TYPE polygraph_fusion_fused_flagged_total counter",
                f"polygraph_fusion_fused_flagged_total {self.fused_flagged}",
                "# TYPE polygraph_fusion_cell_total counter",
            ]
            for cell, count in sorted(self.cell_counts.items()):
                lines.append(
                    f'polygraph_fusion_cell_total{{cell="{cell}"}} {count}'
                )
            if self.disable_reason is not None:
                lines.append("# TYPE polygraph_fusion_disabled_info gauge")
                lines.append(
                    "polygraph_fusion_disabled_info"
                    f'{{reason="{self.disable_reason}"}} 1'
                )
        return lines
